// bdrmapd — snapshot-serving border-map daemon (one-shot driver).
//
// Stands up the full serving stack over a synthetic scenario: builds a
// serve::ServeEngine across every VP of the featured network, compiles and
// publishes the epoch-0 BorderMapSnapshot, answers a batch of owner/border
// queries against it, then feeds a deterministic churn stream through the
// incremental re-inference path, publishing one snapshot per epoch.
//
// One-shot by design: the process runs the requested epochs/queries and
// exits 0, so CI (tools/check.sh --serve) can smoke the whole subsystem.
// --compare-full re-derives the final epoch from scratch and hard-gates
// bit-identity (eval::same_border_map per VP + snapshot fingerprint).
//
// Usage:
//   bdrmapd [--scenario NAME] [--seed N] [--threads N] [--churn K]
//           [--queries M] [--compare-full] [--obs-json FILE] [--quiet]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "eval/degradation.h"
#include "eval/scenario_registry.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "serve/churn.h"
#include "serve/engine.h"
#include "serve/handle.h"
#include "serve/snapshot.h"

using namespace bdrmap;

namespace {

struct Options {
  std::string scenario = "ren";
  std::uint64_t seed = 42;
  unsigned threads = std::thread::hardware_concurrency();
  std::size_t churn = 4;     // churn events to apply (epochs after 0)
  std::size_t queries = 100000;
  bool compare_full = false;
  bool quiet = false;
  std::string obs_json_path;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario NAME] [--seed N] [--threads N]\n"
               "          [--churn K] [--queries M] [--compare-full]\n"
               "          [--obs-json FILE] [--quiet]\n",
               argv0);
}

bool parse_args(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--scenario") {
      const char* v = next();
      if (!v) return false;
      opts->scenario = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opts->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      opts->threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--churn") {
      const char* v = next();
      if (!v) return false;
      opts->churn = std::strtoull(v, nullptr, 10);
    } else if (arg == "--queries") {
      const char* v = next();
      if (!v) return false;
      opts->queries = std::strtoull(v, nullptr, 10);
    } else if (arg == "--compare-full") {
      opts->compare_full = true;
    } else if (arg == "--quiet") {
      opts->quiet = true;
    } else if (arg == "--obs-json") {
      const char* v = next();
      if (!v) return false;
      opts->obs_json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic query mix: addresses drawn from the announced space (so
// most hit) plus a sprinkle of the whole u32 space (so some miss).
std::uint64_t run_queries(const serve::BorderMapSnapshot& snap,
                          const topo::Internet& net, std::size_t count,
                          std::uint64_t seed, std::size_t* hits) {
  const auto& announced = net.announced();
  std::uint64_t state = seed ^ 0xdab;
  std::uint64_t sink = 0;
  std::size_t routed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t r = splitmix64(state);
    net::Ipv4Addr addr(static_cast<std::uint32_t>(r));
    if (!announced.empty() && (r & 7u) != 0) {  // 7/8 in announced space
      const auto& ap = announced[(r >> 32) % announced.size()];
      addr = net::Ipv4Addr(ap.prefix.network().value() +
                           static_cast<std::uint32_t>(
                               r % ap.prefix.size()));
    }
    serve::BorderMapSnapshot::Lookup q = snap.lookup(addr);
    if (q.routed) {
      ++routed;
      sink += q.owner.value + q.border_count;
    }
  }
  *hits = routed;
  return sink;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    usage(argv[0]);
    return 2;
  }

  auto spec = eval::scenario_spec(opts.scenario, opts.seed);
  if (!spec.has_value()) {
    std::fprintf(stderr, "unknown scenario: %s\n", opts.scenario.c_str());
    usage(argv[0]);
    return 2;
  }

  obs::ObsOptions obs_options;
  obs_options.enabled = !opts.obs_json_path.empty();
  obs_options.run_label = opts.scenario;
  obs::Observability obs(obs_options);

  route::FibOptions fib_options;
  fib_options.metrics = obs.registry();
  eval::Scenario scenario(*spec, fib_options);
  const net::AsId vp_as = scenario.first_of(spec->vp_kind);
  const auto vps = scenario.vps_in(vp_as);
  if (vps.empty()) {
    std::fprintf(stderr, "no VP available in %s\n", vp_as.str().c_str());
    return 1;
  }

  auto pool = runtime::make_pool(opts.threads, obs.registry());
  serve::EngineOptions engine_options;
  engine_options.config.obs = &obs;
  engine_options.base_seed = opts.seed ^ 0x515;
  engine_options.obs = &obs;
  engine_options.pool = pool.get();

  std::vector<serve::VpContext> contexts;
  for (const topo::Vp& vp : vps) {
    serve::VpContext ctx;
    ctx.make_services = [&scenario, vp](std::uint64_t seed) {
      return std::unique_ptr<probe::ProbeServices>(
          scenario.services_for(vp, seed));
    };
    ctx.inputs = scenario.inputs_for(vp_as);
    contexts.push_back(std::move(ctx));
  }

  serve::ServeEngine engine(scenario.net(), scenario.bgp_mutable(),
                            scenario.fib_mutable(), std::move(contexts),
                            engine_options);

  if (!opts.quiet) {
    std::printf("bdrmapd: scenario=%s seed=%llu, %zu VPs in %s, "
                "%zu target ASes, %u thread(s)\n",
                opts.scenario.c_str(),
                static_cast<unsigned long long>(opts.seed), vps.size(),
                vp_as.str().c_str(), engine.targets().size(), opts.threads);
  }

  auto t0 = std::chrono::steady_clock::now();
  engine.rebuild_full();
  const double build_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  auto snap = engine.handle().current();
  if (!opts.quiet) {
    std::printf("epoch %llu: %zu prefixes, %zu borders, %zu trie nodes, "
                "fingerprint %016llx (full build %.3fs)\n",
                static_cast<unsigned long long>(snap->epoch()),
                snap->prefix_count(), snap->borders().size(),
                snap->node_count(),
                static_cast<unsigned long long>(snap->fingerprint()),
                build_s);
  }

  // Query batch against the live snapshot.
  if (opts.queries > 0) {
    std::size_t hits = 0;
    auto q0 = std::chrono::steady_clock::now();
    std::uint64_t sink =
        run_queries(*snap, scenario.net(), opts.queries, opts.seed, &hits);
    const double q_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - q0)
            .count();
    if (!opts.quiet) {
      std::printf("queries: %zu lookups, %zu routed, %.2fM lookups/s "
                  "(sink %llx)\n",
                  opts.queries, hits,
                  static_cast<double>(opts.queries) / q_s / 1e6,
                  static_cast<unsigned long long>(sink));
    }
  }

  // Churn-driven incremental epochs.
  serve::ChurnStream stream(scenario.net(), opts.seed);
  for (std::size_t i = 0; i < opts.churn; ++i) {
    const serve::ChurnEvent event = stream.next();
    auto c0 = std::chrono::steady_clock::now();
    const serve::ChurnApplyStats stats = engine.apply(event);
    const double c_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
            .count();
    snap = engine.handle().current();
    if (!opts.quiet) {
      std::printf("epoch %llu: %-28s %zu dirty targets, %zu/%zu slices "
                  "re-collected, fingerprint %016llx (%.3fs)\n",
                  static_cast<unsigned long long>(stats.epoch),
                  serve::describe(event).c_str(), stats.dirty_targets,
                  stats.dirty_slices,
                  stats.dirty_slices + stats.clean_slices,
                  static_cast<unsigned long long>(snap->fingerprint()), c_s);
    }
  }

  if (opts.compare_full) {
    auto r0 = std::chrono::steady_clock::now();
    serve::ServeEngine::Reference ref = engine.recompute_reference();
    const double r_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
            .count();
    bool identical = ref.per_vp.size() == engine.last_results().size() &&
                     ref.snapshot->fingerprint() == snap->fingerprint();
    for (std::size_t i = 0; identical && i < ref.per_vp.size(); ++i) {
      identical = eval::same_border_map(ref.per_vp[i],
                                        engine.last_results()[i]);
    }
    std::printf("compare-full: incremental %s from-scratch recompute "
                "(%.3fs)\n",
                identical ? "IDENTICAL to" : "DIVERGES from", r_s);
    if (!identical) return 1;
  }

  if (!opts.obs_json_path.empty()) {
    obs::ExportInfo info;
    info.tool = "bdrmapd";
    info.scenario = opts.scenario;
    info.seed = opts.seed;
    info.vps = vps.size();
    info.threads = opts.threads;
    if (!obs::write_json_file(opts.obs_json_path, obs, info)) {
      std::fprintf(stderr, "cannot open %s\n", opts.obs_json_path.c_str());
      return 1;
    }
    if (!opts.quiet) {
      std::printf("wrote observability export to %s\n",
                  opts.obs_json_path.c_str());
    }
  }
  return 0;
}
