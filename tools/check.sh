#!/usr/bin/env bash
# Build + test gate: the plain preset runs the full suite; the asan-ubsan
# preset re-runs the protocol/channel/split tests (the code paths that parse
# attacker-shaped bytes) under AddressSanitizer + UBSan.
#
# Usage: tools/check.sh [--fast]
#   --fast   skip the sanitizer pass
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== default preset: configure + build + full ctest =="
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

if [[ "$FAST" == "1" ]]; then
  echo "== --fast: skipping sanitizer pass =="
  exit 0
fi

echo "== asan-ubsan preset: configure + build + remote/protocol tests =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$JOBS" --target \
  remote_protocol_test remote_channel_test remote_split_test \
  remote_degraded_test
ctest --test-dir build-asan -j "$JOBS" --output-on-failure \
  -R 'Protocol|Frame|ChannelFixture|SplitFixture|DegradedFixture|RemoteTimestamp'
echo "== all checks passed =="
