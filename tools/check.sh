#!/usr/bin/env bash
# Repository gate: hardened build + full ctest + static analysis + sanitizers.
#
#   default        build (warnings-as-errors) + full ctest, then lint +
#                  clang-tidy, then the asan-ubsan preset over the entire
#                  test suite
#   --fast         skip the sanitizer pass
#   --lint         run only the static-analysis stage (lint.py + clang-tidy)
#   --tsan         run only the thread-sanitizer pass over the concurrency
#                  suites (runtime pool/executor + contract tests + the
#                  fast-path concurrent cache-fill suite)
#   --bench        build and run the forwarding fast-path benchmark
#                  (bench_hotpath) plus a bench_scale --smoke pass (the
#                  §14 batching/sharding identity gates over the small
#                  scenario); the bit-identity gates are hard, the
#                  throughput targets are informational here
#   --obs          observability smoke: run bdrmap_sim --obs-json over the
#                  small scenario (single-VP and multi-VP) and validate the
#                  exports against docs/obs_schema.json with
#                  tools/check_obs.py
#   --serve        serving smoke: bdrmapd one-shot over the small scenario
#                  with churn, --compare-full (hard bit-identity gate
#                  incremental vs from-scratch) and an --obs-json export
#                  validated with tools/check_obs.py --serve
#   --analyze      bdrmap-analyze stage: all tools/lint.py passes
#                  (hygiene, module layering, determinism, raw locks)
#                  repo-wide, the fixture self-test
#                  (tools/lint_selftest.py), and — when clang++ is
#                  installed — a Clang build with -Wthread-safety
#                  -Werror=thread-safety-analysis over the netbase/sync.h
#                  capability annotations (clang-tsa preset)
#   --fuzz         property-based scenario fuzz smoke: fixed-seed sweep of
#                  25 cases across every adversarial family (scenario_fuzz;
#                  failing seeds print one-line repro commands)
#   --ablation     heuristic-ablation smoke: bench_ablation --smoke over the
#                  small scenario (hard registry-vs-legacy identity gate),
#                  then tools/check_ablation.py — structural honesty checks
#                  are hard, accuracy drift vs the committed
#                  BENCH_ablation.json is warn-only (EXPERIMENTS.md)
#
# clang-tidy is optional: when the binary is absent the tidy stage is
# skipped with a notice (the .clang-tidy profile still gates CI runners
# that have it).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)
FAST=0
LINT_ONLY=0
TSAN_ONLY=0
BENCH_ONLY=0
OBS_ONLY=0
FUZZ_ONLY=0
ANALYZE_ONLY=0
SERVE_ONLY=0
ABLATION_ONLY=0
case "${1:-}" in
  --fast) FAST=1 ;;
  --lint) LINT_ONLY=1 ;;
  --tsan) TSAN_ONLY=1 ;;
  --bench) BENCH_ONLY=1 ;;
  --obs) OBS_ONLY=1 ;;
  --fuzz) FUZZ_ONLY=1 ;;
  --analyze) ANALYZE_ONLY=1 ;;
  --serve) SERVE_ONLY=1 ;;
  --ablation) ABLATION_ONLY=1 ;;
  "") ;;
  *) echo "usage: tools/check.sh [--fast|--lint|--tsan|--bench|--obs|--fuzz|--analyze|--serve|--ablation]" >&2; exit 2 ;;
esac

run_tsan() {
  echo "== tsan preset: configure + build + concurrency suites =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS" --target \
    runtime_thread_pool_test runtime_multi_vp_test netbase_contract_test \
    route_fastpath_test trace_batch_test obs_metrics_test obs_trace_test \
    eval_fuzzer_test serve_handle_test serve_snapshot_test \
    serve_incremental_test heuristic_engine_parity_test \
    heuristic_confidence_test
  ctest --test-dir build-tsan -j "$JOBS" --output-on-failure \
    -R 'ThreadPool|TaskGroup|ParallelFor|ParallelMap|MultiVp|Contract|FastPath|TraceBatch|Obs|Fuzzer|Serve|Heuristic'
}

run_fuzz() {
  echo "== fuzz smoke: scenario_fuzz, fixed-seed 25-case sweep =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS" --target scenario_fuzz
  ./build/tools/scenario_fuzz --seeds 25 --threads "$JOBS"
}

run_obs() {
  echo "== obs smoke: bdrmap_sim --obs-json + schema check =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS" --target bdrmap_sim
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  ./build/tools/bdrmap_sim --scenario small --obs-json "$tmp/obs_single.json" \
    >/dev/null
  python3 tools/check_obs.py "$tmp/obs_single.json"
  ./build/tools/bdrmap_sim --scenario small --all-vps --threads 4 \
    --obs-json "$tmp/obs_multi.json" >/dev/null
  python3 tools/check_obs.py "$tmp/obs_multi.json"
}

run_serve() {
  echo "== serve smoke: bdrmapd churn + --compare-full + obs export =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS" --target bdrmapd
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  ./build/tools/bdrmapd --scenario small --seed 42 --churn 3 \
    --queries 10000 --compare-full --obs-json "$tmp/obs_serve.json"
  python3 tools/check_obs.py --serve "$tmp/obs_serve.json"
}

run_bench() {
  echo "== bench: forwarding fast path (bench_hotpath) =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS" --target bench_hotpath bench_scale
  ./build/bench/bench_hotpath --out BENCH_hotpath.json
  echo "== bench: data-oriented core smoke (bench_scale --smoke) =="
  # Same code paths and identity gates as the committed BENCH_scale.json
  # run, on the CI-sized scenario. Identity failures exit 1 here too.
  ./build/bench/bench_scale --smoke --out BENCH_scale_smoke.json
}

run_ablation() {
  echo "== ablation smoke: bench_ablation --smoke + gate =="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS" --target bench_ablation
  # Same code paths and registry-vs-legacy identity gate as the committed
  # BENCH_ablation.json run, on the CI-sized scenario. Identity failures
  # exit 1 in the bench itself; the gate script then hard-checks the
  # honesty fields and warns (only) on accuracy drift vs the reference.
  ./build/bench/bench_ablation --smoke --out BENCH_ablation_smoke.json
  python3 tools/check_ablation.py BENCH_ablation_smoke.json
}

run_lint() {
  echo "== lint: tools/lint.py (all passes) =="
  python3 tools/lint.py

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy =="
    # Needs a compile database; the default preset writes one. The net
    # covers every compiled tree: src/, tools/, bench/, examples/ and
    # tests/ (lint fixtures are deliberately bad and never compiled, so
    # they are excluded).
    if [[ ! -f build/compile_commands.json ]]; then
      cmake --preset default >/dev/null
    fi
    git ls-files 'src/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cc' \
        'tests/*.cc' | grep -v lint_fixtures | xargs -r -P "$JOBS" -n 8 \
      clang-tidy -p build --quiet
  else
    echo "== lint: clang-tidy not installed, skipping tidy stage =="
  fi
}

run_analyze() {
  echo "== analyze: tools/lint.py (hygiene + layering + determinism + raw locks) =="
  python3 tools/lint.py

  echo "== analyze: lint fixture self-test =="
  python3 tools/lint_selftest.py

  if command -v clang++ >/dev/null 2>&1; then
    echo "== analyze: Clang thread-safety analysis (-Werror=thread-safety-analysis) =="
    cmake --preset clang-tsa >/dev/null
    cmake --build --preset clang-tsa -j "$JOBS"
  else
    echo "== analyze: clang++ not installed, skipping thread-safety build =="
  fi
}

if [[ "$LINT_ONLY" == "1" ]]; then
  run_lint
  echo "== lint passed =="
  exit 0
fi

if [[ "$TSAN_ONLY" == "1" ]]; then
  run_tsan
  echo "== tsan passed =="
  exit 0
fi

if [[ "$BENCH_ONLY" == "1" ]]; then
  run_bench
  echo "== bench passed =="
  exit 0
fi

if [[ "$OBS_ONLY" == "1" ]]; then
  run_obs
  echo "== obs smoke passed =="
  exit 0
fi

if [[ "$FUZZ_ONLY" == "1" ]]; then
  run_fuzz
  echo "== fuzz smoke passed =="
  exit 0
fi

if [[ "$SERVE_ONLY" == "1" ]]; then
  run_serve
  echo "== serve smoke passed =="
  exit 0
fi

if [[ "$ANALYZE_ONLY" == "1" ]]; then
  run_analyze
  echo "== analyze passed =="
  exit 0
fi

if [[ "$ABLATION_ONLY" == "1" ]]; then
  run_ablation
  echo "== ablation smoke passed =="
  exit 0
fi

echo "== default preset: configure + build (-Werror) + full ctest =="
cmake --preset default -DBDRMAP_WERROR=ON
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

run_lint

if [[ "$FAST" == "1" ]]; then
  echo "== --fast: skipping sanitizer pass =="
  echo "== all checks passed =="
  exit 0
fi

echo "== asan-ubsan preset: configure + build + FULL test suite =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$JOBS"
ctest --test-dir build-asan -j "$JOBS" --output-on-failure

run_tsan
echo "== all checks passed =="
