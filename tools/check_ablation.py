#!/usr/bin/env python3
"""Ablation bench gate: structural hard checks + warn-only accuracy drift.

Validates a JSON document written by bench_ablation (bench/bench_ablation.cc)
and compares it against the committed reference (BENCH_ablation.json).

Hard checks — any failure exits 1:

  * the document parses and carries the bench_scale honesty fields
    (bench == "ablation", repeat >= 1, warmup, hardware_concurrency,
    scenario_seed) so numbers can never be quoted without their context
  * every family reports legacy_identical == true: the registry engine is
    bit-identical to the hard-coded §5.4 ladder (confidence aside); a
    divergence is an inference bug, never a perf regression
  * every family carries the full threshold sweep and one leave-one-out
    entry per registered rule, and threshold coverage is non-increasing
    as the threshold rises (retaining MORE links at a HIGHER confidence
    floor means the sweep is broken)

Warn-only checks — printed as "WARN:" but never fail the gate, because
accuracy floors are scenario-generator properties, not code contracts
(see EXPERIMENTS.md; note leave-one-out deltas can legitimately be
POSITIVE, e.g. disabling counting helps on spoofed_source):

  * per family present in both documents: full-registry link accuracy
    within --tolerance of the reference
  * per (family, rule): leave-one-out link accuracy within --tolerance
  * per (family, threshold): sweep accuracy and coverage within
    --tolerance

Usage: tools/check_ablation.py EXPORT.json [--reference PATH]
                                           [--tolerance F]
Exit status: 0 clean (warnings allowed), 1 hard findings, 2 usage error.
Used by tools/check.sh --ablation and CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

RULES = [
    "vp_network", "firewall", "unrouted", "onenet",
    "relationships", "counting", "analytic_alias", "uncooperative",
]


def hard_check(doc) -> list[str]:
    findings: list[str] = []
    if doc.get("bench") != "ablation":
        findings.append("bench field is not 'ablation'")
    repeat = doc.get("repeat")
    if not isinstance(repeat, int) or repeat < 1:
        findings.append("repeat missing or < 1 (timing honesty field)")
    if doc.get("warmup") is not True:
        findings.append("warmup missing or false (timing honesty field)")
    hw = doc.get("hardware_concurrency")
    if not isinstance(hw, int) or hw < 1:
        findings.append("hardware_concurrency missing (honesty field)")
    if "scenario_seed" not in doc:
        findings.append("scenario_seed missing (reproducibility field)")
    families = doc.get("families")
    if not isinstance(families, list) or not families:
        findings.append("families missing or empty")
        return findings
    for fam in families:
        name = fam.get("family", "<unnamed>")
        if fam.get("legacy_identical") is not True:
            findings.append(
                f"{name}: legacy_identical is not true — the registry "
                "engine diverged from the hard-coded §5.4 ladder")
        loo = {row.get("rule") for row in fam.get("leave_one_out", [])}
        missing = [r for r in RULES if r not in loo]
        if missing:
            findings.append(
                f"{name}: leave_one_out missing rules {missing}")
        sweep = fam.get("thresholds", [])
        if not sweep:
            findings.append(f"{name}: threshold sweep missing")
        prev_threshold, prev_coverage = -1.0, 2.0
        for row in sweep:
            t, cov = row.get("threshold"), row.get("coverage")
            if t is None or cov is None:
                findings.append(f"{name}: malformed threshold row {row}")
                break
            if t <= prev_threshold:
                findings.append(
                    f"{name}: threshold sweep not strictly increasing "
                    f"at {t}")
            if cov > prev_coverage + 1e-9:
                findings.append(
                    f"{name}: coverage rose ({prev_coverage:.4f} -> "
                    f"{cov:.4f}) at threshold {t} — sweep is broken")
            prev_threshold, prev_coverage = t, cov
    return findings


def drift_warnings(doc, ref, tolerance: float) -> list[str]:
    warnings: list[str] = []
    ref_families = {f["family"]: f for f in ref.get("families", [])}

    def compare(label: str, got: float, want: float) -> None:
        if abs(got - want) > tolerance:
            warnings.append(
                f"{label}: {got:.4f} vs reference {want:.4f} "
                f"(|delta| {abs(got - want):.4f} > {tolerance})")

    for fam in doc.get("families", []):
        name = fam["family"]
        ref_fam = ref_families.get(name)
        if ref_fam is None:
            continue  # smoke runs only a subset; absence is expected
        compare(f"{name}: link_accuracy",
                fam.get("link_accuracy", 0.0),
                ref_fam.get("link_accuracy", 0.0))
        ref_loo = {r["rule"]: r for r in ref_fam.get("leave_one_out", [])}
        for row in fam.get("leave_one_out", []):
            ref_row = ref_loo.get(row["rule"])
            if ref_row is not None:
                compare(f"{name}: -{row['rule']} link_accuracy",
                        row.get("link_accuracy", 0.0),
                        ref_row.get("link_accuracy", 0.0))
        ref_sweep = {r["threshold"]: r for r in ref_fam.get("thresholds", [])}
        for row in fam.get("thresholds", []):
            ref_row = ref_sweep.get(row["threshold"])
            if ref_row is not None:
                compare(f"{name}: threshold {row['threshold']} accuracy",
                        row.get("accuracy", 0.0),
                        ref_row.get("accuracy", 0.0))
                compare(f"{name}: threshold {row['threshold']} coverage",
                        row.get("coverage", 0.0),
                        ref_row.get("coverage", 0.0))
    return warnings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("export", help="JSON written by bench_ablation")
    parser.add_argument(
        "--reference", default=str(REPO / "BENCH_ablation.json"),
        help="committed reference document (default: BENCH_ablation.json)")
    parser.add_argument(
        "--tolerance", type=float, default=0.02,
        help="warn when an accuracy/coverage drifts more than this")
    args = parser.parse_args(argv)

    try:
        doc = json.loads(Path(args.export).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_ablation: {e}", file=sys.stderr)
        return 1

    findings = hard_check(doc)
    if findings:
        for f in findings:
            print(f"check_ablation: {args.export}: {f}", file=sys.stderr)
        return 1

    try:
        ref = json.loads(Path(args.reference).read_text())
    except (OSError, json.JSONDecodeError) as e:
        # Reference drift is warn-only, so a missing/broken reference is
        # noisy but not fatal — the structural gate above already ran.
        print(f"check_ablation: WARN: reference unreadable: {e}")
        ref = {}

    warnings = drift_warnings(doc, ref, args.tolerance)
    for w in warnings:
        print(f"check_ablation: WARN: {w}")

    n_fam = len(doc.get("families", []))
    print(f"check_ablation: {args.export}: ok "
          f"({n_fam} families, {len(warnings)} warnings, warn-only)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
