#!/usr/bin/env python3
"""Observability export gate: schema + run-completeness checks.

Validates a JSON document written by ``--obs-json`` (bdrmap_sim,
bench_table1, bench_hotpath) against docs/obs_schema.json using the same
JSON-Schema subset the C++ validator (src/obs/json.h) implements:

  type (string), properties, required, items, enum, minimum, minItems,
  additionalProperties (boolean form)

Beyond the shape, a full run must actually have been instrumented, so by
default the gate also requires:

  * run.enabled is true
  * every pipeline stage span fired at least once
    (bdrmap.run, stage.schedule, stage.trace, stage.alias, stage.merge,
    stage.heuristics)
  * at least one per-heuristic fire counter (core.heuristic.*) is nonzero
  * every span is closed and parent ids point at earlier spans
  * data-oriented core consistency (DESIGN.md §14), whenever the metrics
    appear: core.arena.bytes_used <= core.arena.bytes_reserved, and the
    probe.batch.flows_per_batch histogram observes exactly once per batch
    (count == probe.batch.batches, sum == probe.batch.flows)
  * heuristic confidence accounting (DESIGN.md §15), whenever the
    histograms appear: every core.heuristic.<tag>.confidence histogram
    shares its observation sites with the core.heuristic.<tag> fire
    counter, so histogram count == counter value for every tag

--schema-only skips the run-completeness checks (for exports from partial
or disabled runs). --serve switches the completeness profile to the one
bdrmapd produces (docs/serving.md): the serve.* spans and churn counters
are required instead of the batch pipeline stages.

Usage: tools/check_obs.py EXPORT.json [--schema PATH] [--schema-only]
                                      [--serve]
Exit status: 0 clean, 1 findings, 2 usage error. Used by tools/check.sh
--obs / --serve and CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

REQUIRED_SPANS = [
    "bdrmap.run",
    "stage.schedule",
    "stage.trace",
    "stage.alias",
    "stage.merge",
    "stage.heuristics",
]

# What a bdrmapd run must have emitted (docs/serving.md): one full build,
# at least one churn epoch with its collect/infer/compile chain.
SERVE_REQUIRED_SPANS = [
    "serve.rebuild",
    "serve.apply",
    "serve.collect",
    "serve.infer",
    "serve.compile",
]
SERVE_REQUIRED_COUNTERS = [
    "serve.churn.events",
    "serve.snapshot.compiles",
]


def is_integer(doc) -> bool:
    # Booleans are ints in Python; JSON distinguishes them.
    return isinstance(doc, int) and not isinstance(doc, bool)


def type_matches(name: str, doc) -> bool:
    if name == "object":
        return isinstance(doc, dict)
    if name == "array":
        return isinstance(doc, list)
    if name == "string":
        return isinstance(doc, str)
    if name == "number":
        return is_integer(doc) or isinstance(doc, float)
    if name == "integer":
        return is_integer(doc)
    if name == "boolean":
        return isinstance(doc, bool)
    if name == "null":
        return doc is None
    return False  # unknown type name never matches (schema bug surfaces)


def validate(schema, doc, path: str = "") -> str | None:
    """Returns the path of the first violation, or None when valid."""
    where = path or "/"
    if not isinstance(schema, dict):
        return f"{where}: schema node must be an object"
    if "type" in schema and not type_matches(schema["type"], doc):
        return f"{where}: expected type '{schema['type']}'"
    if "enum" in schema:
        # Exact-kind match: True must not satisfy an enum of [1].
        hits = [
            o for o in schema["enum"]
            if type(o) is type(doc) and o == doc
        ]
        if not hits:
            return f"{where}: value not in enum"
    if "minimum" in schema and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < schema["minimum"]:
        return f"{where}: below minimum"
    if "minItems" in schema and isinstance(doc, list) \
            and len(doc) < schema["minItems"]:
        return f"{where}: fewer than minItems entries"
    if isinstance(doc, dict):
        for key in schema.get("required", []):
            if key not in doc:
                return f"{where}: missing required member '{key}'"
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in doc:
                err = validate(sub, doc[key], f"{path}/{key}")
                if err:
                    return err
        if schema.get("additionalProperties", True) is False:
            for key in doc:
                if key not in props:
                    return f"{where}: unexpected member '{key}'"
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            err = validate(schema["items"], item, f"{path}/{i}")
            if err:
                return err
    return None


def check_run(doc, serve: bool = False) -> list[str]:
    """Run-completeness findings for a full instrumented run."""
    findings = []
    if not doc["run"]["enabled"]:
        findings.append("run.enabled is false: export is from a disabled run")
    span_names = [s["name"] for s in doc["spans"]]
    required = SERVE_REQUIRED_SPANS if serve else REQUIRED_SPANS
    kind = "serve" if serve else "pipeline stage"
    for name in required:
        if name not in span_names:
            findings.append(f"missing {kind} span '{name}'")
    for i, span in enumerate(doc["spans"]):
        if not span["closed"]:
            findings.append(f"span {i} ('{span['name']}') never closed")
        if span["id"] != i:
            findings.append(f"span {i} has id {span['id']} (must be its index)")
        if span["parent"] >= i:
            findings.append(
                f"span {i} ('{span['name']}') parent {span['parent']} "
                "is not an earlier span"
            )
    counters = {c["name"]: c["value"] for c in doc["metrics"]["counters"]}
    if serve:
        for name in SERVE_REQUIRED_COUNTERS:
            if counters.get(name, 0) <= 0:
                findings.append(f"serve counter '{name}' never fired")
        touched = (counters.get("serve.churn.dirty_slices", 0)
                   + counters.get("serve.churn.clean_slices", 0))
        if touched <= 0:
            findings.append("no slice was classified dirty or clean "
                            "(churn never reached the engine)")
    fired = [
        name for name, value in counters.items()
        if name.startswith("core.heuristic.") and value > 0
    ]
    if not fired:
        findings.append("no core.heuristic.* counter fired")

    # Data-oriented core consistency (DESIGN.md §14). Conditional: waves
    # can be disabled (probe_wave=0) and serve runs publish different
    # families, so absence is fine — inconsistency is not.
    gauges = {g["name"]: g["value"] for g in doc["metrics"]["gauges"]}
    reserved = gauges.get("core.arena.bytes_reserved")
    used = gauges.get("core.arena.bytes_used")
    if reserved is not None and used is not None and used > reserved:
        findings.append(
            f"core.arena.bytes_used ({used}) exceeds bytes_reserved "
            f"({reserved}): arena accounting is broken")
    hists = {h["name"]: h for h in doc["metrics"]["histograms"]}
    per_batch = hists.get("probe.batch.flows_per_batch")
    if per_batch is not None:
        batches = counters.get("probe.batch.batches", 0)
        flows = counters.get("probe.batch.flows", 0)
        if per_batch["count"] != batches:
            findings.append(
                f"probe.batch.flows_per_batch count ({per_batch['count']}) "
                f"!= probe.batch.batches ({batches}): not one observation "
                "per batch")
        if per_batch["sum"] != flows:
            findings.append(
                f"probe.batch.flows_per_batch sum ({per_batch['sum']}) "
                f"!= probe.batch.flows ({flows}): flow accounting drifted")

    # Heuristic confidence accounting (DESIGN.md §15). The engine observes
    # one confidence per placement at the same site that increments the
    # per-tag counter (src/core/bdrmap.cc publish_result), so the two must
    # agree exactly; drift means a placement was scored without being
    # counted or vice versa.
    for name, hist in hists.items():
        if not (name.startswith("core.heuristic.")
                and name.endswith(".confidence")):
            continue
        tag = name[:-len(".confidence")]
        tag_count = counters.get(tag, 0)
        if hist["count"] != tag_count:
            findings.append(
                f"{name} count ({hist['count']}) != counter '{tag}' "
                f"({tag_count}): confidence observed without a matching "
                "fire count")
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("export", help="JSON document written by --obs-json")
    parser.add_argument(
        "--schema", default=str(REPO / "docs" / "obs_schema.json"))
    parser.add_argument(
        "--schema-only", action="store_true",
        help="skip the run-completeness checks")
    parser.add_argument(
        "--serve", action="store_true",
        help="require the bdrmapd serve.* profile instead of the "
             "batch pipeline stages")
    args = parser.parse_args(argv)

    try:
        schema = json.loads(Path(args.schema).read_text())
        doc = json.loads(Path(args.export).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_obs: {e}", file=sys.stderr)
        return 1

    err = validate(schema, doc)
    if err:
        print(f"check_obs: {args.export}: schema violation: {err}",
              file=sys.stderr)
        return 1

    if not args.schema_only:
        findings = check_run(doc, serve=args.serve)
        if findings:
            for f in findings:
                print(f"check_obs: {args.export}: {f}", file=sys.stderr)
            return 1

    n_spans = len(doc["spans"])
    n_metrics = sum(len(v) for v in doc["metrics"].values())
    print(f"check_obs: {args.export}: ok "
          f"({n_metrics} metrics, {n_spans} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
