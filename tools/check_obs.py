#!/usr/bin/env python3
"""Observability export gate: schema + run-completeness checks.

Validates a JSON document written by ``--obs-json`` (bdrmap_sim,
bench_table1, bench_hotpath) against docs/obs_schema.json using the same
JSON-Schema subset the C++ validator (src/obs/json.h) implements:

  type (string), properties, required, items, enum, minimum, minItems,
  additionalProperties (boolean form)

Beyond the shape, a full run must actually have been instrumented, so by
default the gate also requires:

  * run.enabled is true
  * every pipeline stage span fired at least once
    (bdrmap.run, stage.schedule, stage.trace, stage.alias, stage.merge,
    stage.heuristics)
  * at least one per-heuristic fire counter (core.heuristic.*) is nonzero
  * every span is closed and parent ids point at earlier spans

--schema-only skips the run-completeness checks (for exports from partial
or disabled runs).

Usage: tools/check_obs.py EXPORT.json [--schema PATH] [--schema-only]
Exit status: 0 clean, 1 findings, 2 usage error. Used by tools/check.sh
--obs and CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

REQUIRED_SPANS = [
    "bdrmap.run",
    "stage.schedule",
    "stage.trace",
    "stage.alias",
    "stage.merge",
    "stage.heuristics",
]


def is_integer(doc) -> bool:
    # Booleans are ints in Python; JSON distinguishes them.
    return isinstance(doc, int) and not isinstance(doc, bool)


def type_matches(name: str, doc) -> bool:
    if name == "object":
        return isinstance(doc, dict)
    if name == "array":
        return isinstance(doc, list)
    if name == "string":
        return isinstance(doc, str)
    if name == "number":
        return is_integer(doc) or isinstance(doc, float)
    if name == "integer":
        return is_integer(doc)
    if name == "boolean":
        return isinstance(doc, bool)
    if name == "null":
        return doc is None
    return False  # unknown type name never matches (schema bug surfaces)


def validate(schema, doc, path: str = "") -> str | None:
    """Returns the path of the first violation, or None when valid."""
    where = path or "/"
    if not isinstance(schema, dict):
        return f"{where}: schema node must be an object"
    if "type" in schema and not type_matches(schema["type"], doc):
        return f"{where}: expected type '{schema['type']}'"
    if "enum" in schema:
        # Exact-kind match: True must not satisfy an enum of [1].
        hits = [
            o for o in schema["enum"]
            if type(o) is type(doc) and o == doc
        ]
        if not hits:
            return f"{where}: value not in enum"
    if "minimum" in schema and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < schema["minimum"]:
        return f"{where}: below minimum"
    if "minItems" in schema and isinstance(doc, list) \
            and len(doc) < schema["minItems"]:
        return f"{where}: fewer than minItems entries"
    if isinstance(doc, dict):
        for key in schema.get("required", []):
            if key not in doc:
                return f"{where}: missing required member '{key}'"
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in doc:
                err = validate(sub, doc[key], f"{path}/{key}")
                if err:
                    return err
        if schema.get("additionalProperties", True) is False:
            for key in doc:
                if key not in props:
                    return f"{where}: unexpected member '{key}'"
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            err = validate(schema["items"], item, f"{path}/{i}")
            if err:
                return err
    return None


def check_run(doc) -> list[str]:
    """Run-completeness findings for a full instrumented run."""
    findings = []
    if not doc["run"]["enabled"]:
        findings.append("run.enabled is false: export is from a disabled run")
    span_names = [s["name"] for s in doc["spans"]]
    for name in REQUIRED_SPANS:
        if name not in span_names:
            findings.append(f"missing pipeline stage span '{name}'")
    for i, span in enumerate(doc["spans"]):
        if not span["closed"]:
            findings.append(f"span {i} ('{span['name']}') never closed")
        if span["id"] != i:
            findings.append(f"span {i} has id {span['id']} (must be its index)")
        if span["parent"] >= i:
            findings.append(
                f"span {i} ('{span['name']}') parent {span['parent']} "
                "is not an earlier span"
            )
    fired = [
        c for c in doc["metrics"]["counters"]
        if c["name"].startswith("core.heuristic.") and c["value"] > 0
    ]
    if not fired:
        findings.append("no core.heuristic.* counter fired")
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("export", help="JSON document written by --obs-json")
    parser.add_argument(
        "--schema", default=str(REPO / "docs" / "obs_schema.json"))
    parser.add_argument(
        "--schema-only", action="store_true",
        help="skip the run-completeness checks")
    args = parser.parse_args(argv)

    try:
        schema = json.loads(Path(args.schema).read_text())
        doc = json.loads(Path(args.export).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_obs: {e}", file=sys.stderr)
        return 1

    err = validate(schema, doc)
    if err:
        print(f"check_obs: {args.export}: schema violation: {err}",
              file=sys.stderr)
        return 1

    if not args.schema_only:
        findings = check_run(doc)
        if findings:
            for f in findings:
                print(f"check_obs: {args.export}: {f}", file=sys.stderr)
            return 1

    n_spans = len(doc["spans"])
    n_metrics = sum(len(v) for v in doc["metrics"].values())
    print(f"check_obs: {args.export}: ok "
          f"({n_metrics} metrics, {n_spans} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
