// topo_dump — inspect a generated synthetic Internet.
//
// Prints the AS inventory, relationship counts, per-kind router/link
// statistics, and optionally the full interdomain link list — useful when
// tuning generator configurations or debugging an experiment.
//
// Usage: topo_dump [--scenario ren|access|tier1|small] [--seed N] [--links]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "eval/scenario.h"

using namespace bdrmap;

namespace {

const char* kind_name(topo::AsKind kind) {
  switch (kind) {
    case topo::AsKind::kTier1: return "tier1";
    case topo::AsKind::kTransit: return "transit";
    case topo::AsKind::kAccess: return "access";
    case topo::AsKind::kContent: return "content";
    case topo::AsKind::kEnterprise: return "enterprise";
    case topo::AsKind::kResearchEdu: return "research";
    case topo::AsKind::kIxpOperator: return "ixp";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "access";
  std::uint64_t seed = 42;
  bool list_links = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--scenario" && i + 1 < argc) {
      scenario_name = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--links") {
      list_links = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenario ren|access|tier1|small] "
                   "[--seed N] [--links]\n",
                   argv[0]);
      return 2;
    }
  }

  topo::GeneratorConfig config;
  if (scenario_name == "ren") {
    config = eval::research_education_config(seed);
  } else if (scenario_name == "access") {
    config = eval::large_access_config(seed);
  } else if (scenario_name == "tier1") {
    config = eval::tier1_config(seed);
  } else if (scenario_name == "small") {
    config = eval::small_access_config(seed);
  } else {
    std::fprintf(stderr, "unknown scenario %s\n", scenario_name.c_str());
    return 2;
  }

  auto gen = topo::generate(config);
  const auto& net = gen.net;

  std::map<topo::AsKind, std::size_t> as_counts, router_counts;
  for (const auto& info : net.ases()) {
    ++as_counts[info.kind];
    router_counts[info.kind] += info.routers.size();
  }
  std::printf("ASes: %zu   routers: %zu   interfaces: %zu   links: %zu\n",
              net.ases().size(), net.routers().size(), net.ifaces().size(),
              net.links().size());
  for (const auto& [kind, count] : as_counts) {
    std::printf("  %-10s %4zu ASes, %5zu routers\n", kind_name(kind), count,
                router_counts[kind]);
  }

  std::size_t c2p = 0, p2p = 0;
  const auto& rels = net.truth_relationships();
  for (net::AsId as : rels.all_ases()) {
    c2p += rels.customers(as).size();
    p2p += rels.peers(as).size();
  }
  std::printf("relationships: %zu c2p, %zu p2p\n", c2p, p2p / 2);
  std::printf("interdomain links: %zu (%zu via IXP LANs)\n",
              net.interdomain_links().size(),
              static_cast<std::size_t>(std::count_if(
                  net.interdomain_links().begin(),
                  net.interdomain_links().end(),
                  [](const auto& il) { return il.via_ixp; })));
  std::printf("announced prefixes: %zu   RIR delegations: %zu   "
              "PTR records: %zu\n",
              net.announced().size(), net.rir().all().size(),
              net.reverse_dns().size());
  std::printf("VPs: %zu\n", gen.vps.size());

  if (list_links) {
    std::printf("\nlink  kind  a -> b (routers, city)\n");
    for (const auto& il : net.interdomain_links()) {
      std::printf("%5u %s %s(R%u) -- %s(R%u) @ %s\n", il.link.value,
                  il.via_ixp ? "ixp " : "pniv", il.as_a.str().c_str(),
                  il.router_a.value, il.as_b.str().c_str(),
                  il.router_b.value,
                  net.pops()[net.router(il.router_a).pop].city.c_str());
    }
  }
  return 0;
}
