#!/usr/bin/env python3
"""Repository lint gate: include hygiene and banned patterns.

Checks every C++ source under src/, tools/, bench/, examples/ and tests/:

  * include hygiene — project headers use quoted project-relative paths
    ("core/bdrmap.h"), never "../" traversal; a .cc includes its own header
    first; no include of a build directory artifact
  * banned patterns —
      - raw assert( outside tests/ (use BDRMAP_EXPECTS / BDRMAP_ENSURES /
        BDRMAP_ASSERT from netbase/contract.h)
      - `using namespace` at file scope in headers
      - non-explicit single-argument constructors in headers (conversion
        traps; annotate intentional ones with /*implicit*/)
      - std::endl (flushes; use '\n')
      - NULL literal (use nullptr)

Exit status: 0 clean, 1 findings, 2 usage error. Used by tools/check.sh
--lint and CI. Pass file paths to lint a subset (e.g. changed files only).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_DIRS = ["src", "tools", "bench", "examples", "tests"]
CPP_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

# Matches `explicit`-less constructor-looking declarations is too fragile in
# pure regex; instead we flag single-argument constructors in headers that
# are neither explicit, copy/move, nor marked /*implicit*/.
CTOR_RE = re.compile(
    r"^\s*(?:constexpr\s+)?([A-Z]\w+)\s*\(\s*((?:const\s+)?[\w:<>,\s&*]+?)\s*"
    r"(?:\bconst\b\s*)?\)\s*(?::|{|;)"
)

ASSERT_RE = re.compile(r"(?<!\w)assert\s*\(")
STATIC_ASSERT_RE = re.compile(r"static_assert\s*\(")


def is_header(path: Path) -> bool:
    return path.suffix in {".h", ".hpp"}


def strip_comments_and_strings(line: str) -> str:
    """Crude single-line scrub of string literals and // comments."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def ctor_finding(path: Path, line: str) -> bool:
    """True when `line` declares a non-explicit single-arg constructor."""
    m = CTOR_RE.match(line)
    if m is None:
        return False
    name, args = m.group(1), m.group(2)
    if "explicit" in line or "/*implicit*/" in line or "= delete" in line:
        return False
    if args in ("", "void"):
        return False
    if "," in args:  # multi-argument (default args still convert, but rare)
        return False
    # Copy/move constructors are implicitly fine.
    if re.search(rf"\b{re.escape(name)}\s*(?:&&?|&)", args):
        return False
    # Heuristic: the declaring class must match the ctor name; cheap check —
    # the file must contain "class <name>" or "struct <name>".
    text = path.read_text(errors="replace")
    if not re.search(rf"\b(?:class|struct)\s+{re.escape(name)}\b", text):
        return False
    return True


def lint_file(path: Path) -> list[str]:
    findings: list[str] = []
    try:
        rel = path.relative_to(REPO)
    except ValueError:
        rel = path
    in_tests = "tests" in rel.parts
    try:
        lines = path.read_text(errors="replace").splitlines()
    except OSError as e:
        return [f"{rel}: unreadable: {e}"]

    own_header = None
    if path.suffix in (".cc", ".cpp"):
        candidate = path.with_suffix(".h")
        if candidate.exists():
            own_header = candidate.name

    first_include = None
    in_block_comment = False
    for n, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*", 1)[0]
        code = strip_comments_and_strings(line)

        # Parse includes from the unstripped line: the path is itself a
        # string literal.
        inc = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
        if inc:
            target = inc.group(1)
            if first_include is None:
                first_include = target
            if target.startswith(("..", "./")):
                findings.append(
                    f"{rel}:{n}: relative include \"{target}\" — use a "
                    "project-root path"
                )
            if target.startswith(("build/", "build-")):
                findings.append(
                    f"{rel}:{n}: include of a build artifact \"{target}\""
                )

        if ASSERT_RE.search(code) and not STATIC_ASSERT_RE.search(code):
            if not in_tests:
                findings.append(
                    f"{rel}:{n}: raw assert() — use BDRMAP_EXPECTS/"
                    "BDRMAP_ENSURES/BDRMAP_ASSERT (netbase/contract.h)"
                )

        if is_header(path) and re.match(r"\s*using\s+namespace\s+\w", code):
            indent = len(raw) - len(raw.lstrip())
            if indent == 0:
                findings.append(
                    f"{rel}:{n}: file-scope `using namespace` in a header"
                )

        if "std::endl" in code:
            findings.append(f"{rel}:{n}: std::endl — use '\\n'")

        if re.search(r"(?<!\w)NULL(?!\w)", code):
            findings.append(f"{rel}:{n}: NULL literal — use nullptr")

        if is_header(path) and not in_tests and ctor_finding(path, code):
            findings.append(
                f"{rel}:{n}: single-argument constructor without `explicit` "
                "(mark /*implicit*/ if conversion is intended)"
            )

    if own_header is not None and first_include is not None:
        if Path(first_include).name != own_header:
            findings.append(
                f"{rel}: first include should be its own header "
                f"\"{own_header}\" (got \"{first_include}\")"
            )

    return findings


def gather(args: list[str]) -> list[Path]:
    if args:
        out = []
        for a in args:
            p = Path(a)
            if not p.is_absolute():
                p = REPO / p
            if p.suffix in CPP_SUFFIXES and p.exists():
                out.append(p.resolve())
        return out
    files = []
    for d in SRC_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for p in sorted(root.rglob("*")):
            if p.suffix in CPP_SUFFIXES and "build" not in p.parts:
                files.append(p)
    return files


def main(argv: list[str]) -> int:
    files = gather(argv[1:])
    if not files:
        print("lint.py: nothing to lint", file=sys.stderr)
        return 0
    findings: list[str] = []
    for path in files:
        findings.extend(lint_file(path))
    for f in findings:
        print(f)
    print(
        f"lint.py: {len(files)} files checked, {len(findings)} findings",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
