#!/usr/bin/env python3
"""bdrmap-analyze: multi-pass repository static analyzer.

Runs every C++ source under src/, tools/, bench/, examples/ and tests/
through three analysis passes (docs/static_analysis.md §3):

  hygiene     — per-line include hygiene and banned patterns (the original
                lint gate): quoted project-relative includes, own-header
                first, no raw assert() outside tests, no file-scope
                `using namespace` in headers, explicit single-argument
                constructors, no std::endl, no NULL.

  layering    — the module DAG: each src/<module> may include only the
                modules beneath it (netbase at the bottom, eval at the
                top); any back-edge is an error. The allowed edges are the
                table MODULE_DEPS below, diagrammed in
                docs/static_analysis.md §3.

  concurrency+determinism —
      determinism: src/core, src/route, src/probe, src/topo must stay
        bit-reproducible, so ambient entropy and wall clocks are banned
        there (rand/srand, std::random_device, system_clock, time()):
        use netbase/rng.h seeded RNGs or an injected clock.
      raw locks: std::mutex / std::shared_mutex / std::condition_variable
        anywhere in src/ outside netbase/sync.h are banned — use the
        TSA-annotated net::Mutex / net::SharedMutex / net::CondVar
        capabilities so Clang thread-safety analysis sees every lock site.

  hot-region   — between `// BDRMAP_HOT_BEGIN(name)` and
                `// BDRMAP_HOT_END(name)` markers (the data-oriented inner
                loops, DESIGN.md §14) node-based containers and naked
                `new` are banned; allocations there belong in arenas or
                flat vectors.

Each finding carries a stable rule id (catalog in RULES; `--list-rules`).
`--json` emits a machine-readable document instead of text lines.
`--disable RULE` (repeatable) suppresses a rule by id or name.

Exit status: 0 clean, 1 findings, 2 usage error (unknown flag, a named
path that does not exist, or a named path that is not a C++ source).
Used by tools/check.sh --lint / --analyze and CI. Pass file paths to lint
a subset (e.g. changed files only). The fixture suite under
tests/lint_fixtures/ (excluded from default walks) exercises every rule;
tools/lint_selftest.py asserts each one fires and is registered in ctest.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_DIRS = ["src", "tools", "bench", "examples", "tests"]
CPP_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}
# Directories never linted by the default walk: fixture files are
# deliberately bad and are only linted when named explicitly (the
# self-test does exactly that).
EXCLUDED_DIRS = {"lint_fixtures", "build"}

# --------------------------------------------------------------------------
# Rule catalog. Ids are stable; messages may evolve.
# --------------------------------------------------------------------------

RULES = {
    "BDR001": ("include-relative",
               "project includes must use project-root paths, not ../ or ./"),
    "BDR002": ("include-build-artifact",
               "never include files out of a build directory"),
    "BDR003": ("include-own-header-first",
               "a .cc file's first include is its own header"),
    "BDR004": ("raw-assert",
               "use BDRMAP_EXPECTS/ENSURES/ASSERT (netbase/contract.h) "
               "outside tests"),
    "BDR005": ("using-namespace-header",
               "no file-scope `using namespace` in headers"),
    "BDR006": ("implicit-ctor",
               "single-argument constructors must be explicit "
               "(or marked /*implicit*/)"),
    "BDR007": ("std-endl", "std::endl flushes; use '\\n'"),
    "BDR008": ("null-literal", "use nullptr, not NULL"),
    "BDR009": ("unreadable-file", "source file could not be read"),
    "BDR101": ("layer-back-edge",
               "include violates the module DAG (docs/static_analysis.md §3)"),
    "BDR102": ("determinism",
               "ambient entropy / wall clock banned in the inference core; "
               "use netbase/rng.h or an injected clock"),
    "BDR103": ("raw-lock",
               "raw std lock primitive in src/; use the TSA-annotated "
               "capabilities from netbase/sync.h"),
    "BDR104": ("hot-region-alloc",
               "node-based container / naked new inside a "
               "BDRMAP_HOT_BEGIN/END region (DESIGN.md §14)"),
    "BDR105": ("direct-ladder-call",
               "direct §5.4 phase call outside the heuristic engine "
               "(DESIGN.md §15); dispatch through HeuristicEngine"),
}
RULE_BY_NAME = {name: rid for rid, (name, _) in RULES.items()}


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative when possible
    line: int  # 0 for whole-file findings
    message: str

    def text(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        return {
            "rule": self.rule,
            "name": RULES[self.rule][0],
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class UsageError(Exception):
    pass


# --------------------------------------------------------------------------
# Layering pass configuration: module -> modules it may include. This is
# the DAG (bottom-up: netbase, then obs/asdata, topo, route, probe, the
# core ring, then the top-level consumers); every edge not listed is a
# back-edge and an error.
# --------------------------------------------------------------------------

_BASE = {"netbase"}
_MID = _BASE | {"obs", "asdata", "topo", "route", "probe"}
_WITH_CORE = _MID | {"core"}
MODULE_DEPS = {
    "netbase": set(),
    "obs": _BASE,
    "asdata": _BASE,
    "topo": _BASE | {"asdata"},
    "route": _BASE | {"obs", "asdata", "topo"},
    "probe": _MID - {"probe"},
    "core": _MID,
    "remote": _MID,
    "runtime": _WITH_CORE,
    "congestion": _WITH_CORE,
    "check": _WITH_CORE,
    "warts": _WITH_CORE,
    "eval": _WITH_CORE | {"runtime", "remote", "check", "congestion", "warts"},
    # The serving layer sits above the pipeline but below the harnesses:
    # it may consume the inference core, the routing substrate and the
    # executor, and NOTHING in src/ may depend on it (only tools/ and
    # bench/ link it) — its absence from every other allow-set is the
    # enforcement.
    "serve": _BASE | {"obs", "core", "route", "runtime"},
}

# Modules whose inference output must be bit-reproducible (BDR102).
DETERMINISTIC_MODULES = {"core", "route", "probe", "topo", "serve"}

DETERMINISM_BANS = [
    (re.compile(r"(?<![\w.:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"(?<![\w.])time\s*\("), "time()"),
]

RAW_LOCK_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?)\b")
# The one place allowed to touch the std primitives: the capability layer.
RAW_LOCK_EXEMPT = ("netbase", "sync.h")

# --------------------------------------------------------------------------
# Shared per-file helpers
# --------------------------------------------------------------------------

CTOR_RE = re.compile(
    r"^\s*(?:constexpr\s+)?([A-Z]\w+)\s*\(\s*((?:const\s+)?[\w:<>,\s&*]+?)\s*"
    r"(?:\bconst\b\s*)?\)\s*(?::|{|;)"
)
ASSERT_RE = re.compile(r"(?<!\w)assert\s*\(")
STATIC_ASSERT_RE = re.compile(r"static_assert\s*\(")
CLASS_NAME_RE = re.compile(r"\b(?:class|struct)\s+(\w+)\b")


def is_header(path: Path) -> bool:
    return path.suffix in {".h", ".hpp"}


def module_of(rel: Path) -> str | None:
    """The src/<module> a file belongs to, or None outside src/.

    The LAST `src` path component wins so fixture trees shaped like
    tests/lint_fixtures/src/<module>/x.cc exercise the path-scoped passes.
    """
    parts = rel.parts
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "src" and parts[i + 1] in MODULE_DEPS:
            return parts[i + 1]
    return None


def strip_comments_and_strings(line: str) -> str:
    """Crude single-line scrub of string literals and // comments."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


@dataclass
class FileContext:
    """Everything the passes need, computed once per file."""
    path: Path
    rel: Path
    relstr: str
    module: str | None
    in_tests: bool
    raw_lines: list[str]
    code_lines: list[str]  # block comments, // comments, strings scrubbed
    class_names: set[str]  # every `class X` / `struct X` in the file


def build_context(path: Path) -> FileContext | Finding:
    try:
        rel = path.relative_to(REPO)
    except ValueError:
        rel = path
    relstr = str(rel)
    try:
        text = path.read_text(errors="replace")
    except OSError as e:
        return Finding("BDR009", relstr, 0, f"unreadable: {e}")
    raw_lines = text.splitlines()

    code_lines: list[str] = []
    in_block_comment = False
    for raw in raw_lines:
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                code_lines.append("")
                continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*", 1)[0]
        code_lines.append(strip_comments_and_strings(line))

    # Fixture trees under tests/lint_fixtures model non-test sources, so
    # they do NOT get the tests/ exemptions.
    in_tests = "tests" in rel.parts and "lint_fixtures" not in rel.parts
    return FileContext(
        path=path,
        rel=rel,
        relstr=relstr,
        module=module_of(rel),
        in_tests=in_tests,
        raw_lines=raw_lines,
        code_lines=code_lines,
        class_names=set(CLASS_NAME_RE.findall("\n".join(code_lines))),
    )


def ctor_finding(ctx: FileContext, code: str) -> bool:
    """True when `code` declares a non-explicit single-arg constructor."""
    m = CTOR_RE.match(code)
    if m is None:
        return False
    name, args = m.group(1), m.group(2)
    if "explicit" in code or "/*implicit*/" in code or "= delete" in code:
        return False
    if args in ("", "void"):
        return False
    if "," in args:  # multi-argument (default args still convert, but rare)
        return False
    # Copy/move constructors are implicitly fine.
    if re.search(rf"\b{re.escape(name)}\s*(?:&&?|&)", args):
        return False
    # The declaring class must match the ctor name — checked against the
    # class/struct names collected once per file (no re-reads from disk).
    return name in ctx.class_names


# --------------------------------------------------------------------------
# Pass 1: include hygiene + banned patterns (per line)
# --------------------------------------------------------------------------

def pass_hygiene(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    rel, relstr = ctx.rel, ctx.relstr

    own_header = None
    if ctx.path.suffix in (".cc", ".cpp"):
        candidate = ctx.path.with_suffix(".h")
        if candidate.exists():
            own_header = candidate.name

    first_include = None
    for n, raw in enumerate(ctx.raw_lines, start=1):
        code = ctx.code_lines[n - 1]

        # Parse includes from the unstripped line: the path is itself a
        # string literal.
        inc = re.match(r'\s*#\s*include\s+"([^"]+)"', raw)
        if inc:
            target = inc.group(1)
            if first_include is None:
                first_include = target
            if target.startswith(("..", "./")):
                findings.append(Finding(
                    "BDR001", relstr, n,
                    f'relative include "{target}" — use a project-root path'))
            if target.startswith(("build/", "build-")):
                findings.append(Finding(
                    "BDR002", relstr, n,
                    f'include of a build artifact "{target}"'))

        if ASSERT_RE.search(code) and not STATIC_ASSERT_RE.search(code):
            if not ctx.in_tests:
                findings.append(Finding(
                    "BDR004", relstr, n,
                    "raw assert() — use BDRMAP_EXPECTS/BDRMAP_ENSURES/"
                    "BDRMAP_ASSERT (netbase/contract.h)"))

        if is_header(ctx.path) and re.match(r"\s*using\s+namespace\s+\w",
                                            code):
            indent = len(raw) - len(raw.lstrip())
            if indent == 0:
                findings.append(Finding(
                    "BDR005", relstr, n,
                    "file-scope `using namespace` in a header"))

        if "std::endl" in code:
            findings.append(Finding("BDR007", relstr, n,
                                    "std::endl — use '\\n'"))

        if re.search(r"(?<!\w)NULL(?!\w)", code):
            findings.append(Finding("BDR008", relstr, n,
                                    "NULL literal — use nullptr"))

        if is_header(ctx.path) and not ctx.in_tests and \
                ctor_finding(ctx, code):
            findings.append(Finding(
                "BDR006", relstr, n,
                "single-argument constructor without `explicit` "
                "(mark /*implicit*/ if conversion is intended)"))

    if own_header is not None and first_include is not None:
        if Path(first_include).name != own_header:
            findings.append(Finding(
                "BDR003", relstr, 0,
                f'first include should be its own header "{own_header}" '
                f'(got "{first_include}")'))

    return findings


# --------------------------------------------------------------------------
# Pass 2: module layering (src/ only)
# --------------------------------------------------------------------------

def pass_layering(ctx: FileContext) -> list[Finding]:
    if ctx.module is None:
        return []
    allowed = MODULE_DEPS[ctx.module]
    findings: list[Finding] = []
    for n, raw in enumerate(ctx.raw_lines, start=1):
        inc = re.match(r'\s*#\s*include\s+"([^"]+)"', raw)
        if not inc:
            continue
        target_module = inc.group(1).split("/", 1)[0]
        if target_module not in MODULE_DEPS:
            continue  # not a module path (e.g. a sibling header)
        if target_module == ctx.module or target_module in allowed:
            continue
        findings.append(Finding(
            "BDR101", ctx.relstr, n,
            f'module "{ctx.module}" may not include "{target_module}" '
            f'(allowed: {", ".join(sorted(allowed)) or "none"}) — '
            "back-edge in the module DAG"))
    return findings


# --------------------------------------------------------------------------
# Pass 3: concurrency + determinism (src/ only)
# --------------------------------------------------------------------------

def pass_concurrency_determinism(ctx: FileContext) -> list[Finding]:
    if ctx.module is None:
        return []
    findings: list[Finding] = []
    deterministic = ctx.module in DETERMINISTIC_MODULES
    exempt_raw_lock = ctx.rel.parts[-2:] == RAW_LOCK_EXEMPT
    for n, code in enumerate(ctx.code_lines, start=1):
        if deterministic:
            for ban_re, what in DETERMINISM_BANS:
                if ban_re.search(code):
                    findings.append(Finding(
                        "BDR102", ctx.relstr, n,
                        f"{what} in src/{ctx.module} breaks bit-"
                        "reproducibility — use netbase/rng.h seeded RNGs "
                        "or an injected clock"))
        if not exempt_raw_lock:
            m = RAW_LOCK_RE.search(code)
            if m:
                findings.append(Finding(
                    "BDR103", ctx.relstr, n,
                    f"raw {m.group(0)} — use the annotated net::Mutex/"
                    "net::SharedMutex/net::CondVar capabilities "
                    "(netbase/sync.h) so thread-safety analysis covers "
                    "this lock"))
    return findings


# --------------------------------------------------------------------------
# Pass 4: hot-region allocation discipline (BDR104)
#
# `// BDRMAP_HOT_BEGIN(name)` ... `// BDRMAP_HOT_END(name)` comment markers
# designate the per-trace inner loops of the data-oriented core
# (DESIGN.md §14). Inside a region, node-based containers
# (std::unordered_map / std::map / std::list) and naked `new` are banned:
# every per-element allocation there belongs in an arena or a flat vector.
# Unbalanced markers are findings too, so a region cannot silently stop
# being checked.
# --------------------------------------------------------------------------

HOT_MARKER_RE = re.compile(r"BDRMAP_HOT_(BEGIN|END)\((\w+)\)")
HOT_BANS = [
    (re.compile(r"\bstd::unordered_map\b"), "std::unordered_map"),
    (re.compile(r"\bstd::map\b"), "std::map"),
    (re.compile(r"\bstd::list\b"), "std::list"),
    (re.compile(r"(?<![\w.:])new\b"), "naked new"),
]


def pass_hot_region(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    open_regions: dict[str, int] = {}  # name -> BEGIN line
    for n, raw in enumerate(ctx.raw_lines, start=1):
        # Markers live in comments, so match the raw line; bans are
        # checked against the comment/string-scrubbed code line.
        for kind, name in HOT_MARKER_RE.findall(raw):
            if kind == "BEGIN":
                if name in open_regions:
                    findings.append(Finding(
                        "BDR104", ctx.relstr, n,
                        f"BDRMAP_HOT_BEGIN({name}) opened twice (first at "
                        f"line {open_regions[name]})"))
                open_regions[name] = n
            else:
                if name not in open_regions:
                    findings.append(Finding(
                        "BDR104", ctx.relstr, n,
                        f"BDRMAP_HOT_END({name}) without a matching BEGIN"))
                open_regions.pop(name, None)
        if not open_regions:
            continue
        code = ctx.code_lines[n - 1]
        for ban_re, what in HOT_BANS:
            if ban_re.search(code):
                region = ", ".join(sorted(open_regions))
                findings.append(Finding(
                    "BDR104", ctx.relstr, n,
                    f"{what} inside hot region '{region}' — use an arena "
                    "or flat vector (DESIGN.md §14)"))
    for name, line in sorted(open_regions.items()):
        findings.append(Finding(
            "BDR104", ctx.relstr, line,
            f"BDRMAP_HOT_BEGIN({name}) is never closed"))
    return findings


# --------------------------------------------------------------------------
# Pass 5: heuristic-engine encapsulation (BDR105)
#
# The §5.4 ladder bodies (phase1_vp_network .. phase8_uncooperative) are
# private to core::Heuristics and reachable only through the registry
# engine's trampolines (core/heuristic_engine.{h,cc}) or the legacy
# dispatcher in core/heuristics.cc. Any other src/ file naming one of them
# — a new friend, a refactor that re-exposes the ladder — bypasses the
# rule registry's order, skip accounting and confidence scaling, so the
# call sites themselves are banned (DESIGN.md §15).
# --------------------------------------------------------------------------

LADDER_CALL_RE = re.compile(
    r"\bphase[1-8]_(?:vp_network|firewall|unrouted|onenet|relationships|"
    r"counting|analytic_alias|uncooperative)\s*\(")
# The only files allowed to declare, define or dispatch the phase bodies.
LADDER_EXEMPT = {
    ("core", "heuristics.h"),
    ("core", "heuristics.cc"),
    ("core", "heuristic_engine.h"),
    ("core", "heuristic_engine.cc"),
}


def pass_ladder_encapsulation(ctx: FileContext) -> list[Finding]:
    if ctx.module is None:
        return []
    if tuple(ctx.rel.parts[-2:]) in LADDER_EXEMPT:
        return []
    findings: list[Finding] = []
    for n, code in enumerate(ctx.code_lines, start=1):
        m = LADDER_CALL_RE.search(code)
        if m:
            findings.append(Finding(
                "BDR105", ctx.relstr, n,
                f"direct ladder call {m.group(0).rstrip('(').rstrip()}() — "
                "run §5.4 rules through HeuristicEngine "
                "(core/heuristic_engine.h) so order, skip accounting and "
                "confidence scaling apply"))
    return findings


PASSES = [pass_hygiene, pass_layering, pass_concurrency_determinism,
          pass_hot_region, pass_ladder_encapsulation]


def lint_file(path: Path) -> list[Finding]:
    ctx = build_context(path)
    if isinstance(ctx, Finding):
        return [ctx]
    findings: list[Finding] = []
    for p in PASSES:
        findings.extend(p(ctx))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def gather(args: list[str]) -> list[Path]:
    if args:
        out: list[Path] = []
        bad: list[str] = []
        for a in args:
            p = Path(a)
            if not p.is_absolute():
                p = REPO / p
            if not p.exists():
                bad.append(f"{a}: no such file")
            elif p.suffix not in CPP_SUFFIXES:
                bad.append(
                    f"{a}: not a C++ source "
                    f"(suffix {p.suffix or '<none>'}; "
                    f"expected one of {', '.join(sorted(CPP_SUFFIXES))})")
            else:
                out.append(p.resolve())
        if bad:
            raise UsageError("\n".join(f"lint.py: {b}" for b in bad))
        return out
    files = []
    for d in SRC_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for p in sorted(root.rglob("*")):
            if p.suffix in CPP_SUFFIXES and \
                    not EXCLUDED_DIRS.intersection(p.parts):
                files.append(p)
    return files


def parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="lint.py", add_help=True,
        description="bdrmap-analyze: multi-pass repository static analyzer")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: repo-wide walk)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON document on stdout")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE",
                        help="suppress a rule by id (BDR102) or name "
                             "(determinism); repeatable")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    try:
        return parser.parse_args(argv)
    except SystemExit as e:
        # argparse exits 2 on bad flags already; normalize --help to 0.
        raise SystemExit(0 if e.code == 0 else 2) from e


def main(argv: list[str]) -> int:
    opts = parse_args(argv[1:])

    if opts.list_rules:
        for rid, (name, summary) in sorted(RULES.items()):
            print(f"{rid}  {name:. <28} {summary}")
        return 0

    disabled: set[str] = set()
    for d in opts.disable:
        rid = d if d in RULES else RULE_BY_NAME.get(d)
        if rid is None:
            print(f"lint.py: unknown rule {d!r} in --disable "
                  f"(see --list-rules)", file=sys.stderr)
            return 2
        disabled.add(rid)

    try:
        files = gather(opts.paths)
    except UsageError as e:
        print(e, file=sys.stderr)
        return 2

    if not files:
        print("lint.py: nothing to lint", file=sys.stderr)
        return 0

    findings: list[Finding] = []
    for path in files:
        findings.extend(f for f in lint_file(path)
                        if f.rule not in disabled)

    if opts.json:
        counts: dict[str, int] = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        print(json.dumps({
            "tool": "bdrmap-analyze",
            "schema_version": 1,
            "files_checked": len(files),
            "disabled_rules": sorted(disabled),
            "findings": [f.as_json() for f in findings],
            "counts": counts,
        }, indent=2))
    else:
        for f in findings:
            print(f.text())
        print(
            f"lint.py: {len(files)} files checked, "
            f"{len(findings)} findings",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
