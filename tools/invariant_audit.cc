// invariant_audit — run the bdrmap-verify invariant passes from the shell.
//
// Audits the routing substrate of a named scenario (AS graph, RIB, FIB) and
// optionally a full bdrmap inference run on top of it. Exit status: 0 when
// every pass is clean, 1 when violations were found, 2 on usage errors —
// which makes it usable directly as a CI gate.
//
// Usage:
//   invariant_audit [--scenario ren|access|tier1|small] [--seed N] [--vp K]
//                   [--passes id,id,...] [--list] [--no-pipeline]
//                   [--max-route-pairs N] [--max-fib-walks N] [--quiet]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/check.h"
#include "eval/scenario.h"

using namespace bdrmap;

namespace {

struct Options {
  std::string scenario = "ren";
  std::uint64_t seed = 42;
  std::size_t vp_index = 0;
  std::vector<std::string> passes;
  bool list = false;
  bool run_pipeline = true;
  std::size_t max_route_pairs = 2000;
  std::size_t max_fib_walks = 400;
  bool quiet = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario ren|access|tier1|small] [--seed N] [--vp K]\n"
      "          [--passes id,id,...] [--list] [--no-pipeline]\n"
      "          [--max-route-pairs N] [--max-fib-walks N] [--quiet]\n",
      argv0);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->scenario = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--vp") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->vp_index = std::strtoull(v, nullptr, 10);
    } else if (arg == "--passes") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->passes = split_csv(v);
    } else if (arg == "--list") {
      opts->list = true;
    } else if (arg == "--no-pipeline") {
      opts->run_pipeline = false;
    } else if (arg == "--max-route-pairs") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->max_route_pairs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-fib-walks") {
      const char* v = next();
      if (v == nullptr) return false;
      opts->max_fib_walks = std::strtoull(v, nullptr, 10);
    } else if (arg == "--quiet") {
      opts->quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void print_report(const char* title, const check::CheckReport& report,
                  bool quiet) {
  if (quiet && report.clean()) return;
  std::printf("-- %s --\n%s", title, report.summary().c_str());
  for (const auto& skipped : report.passes_skipped) {
    std::printf("  (skipped: %s)\n", skipped.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    usage(argv[0]);
    return 2;
  }

  check::InvariantChecker checker;
  if (opts.list) {
    for (const auto& pass : checker.passes()) {
      std::printf("%-28s %s\n", pass.id.c_str(), pass.description.c_str());
    }
    return 0;
  }

  topo::GeneratorConfig config;
  topo::AsKind vp_kind;
  if (opts.scenario == "ren") {
    config = eval::research_education_config(opts.seed);
    vp_kind = topo::AsKind::kResearchEdu;
  } else if (opts.scenario == "access") {
    config = eval::large_access_config(opts.seed);
    vp_kind = topo::AsKind::kAccess;
  } else if (opts.scenario == "tier1") {
    config = eval::tier1_config(opts.seed);
    vp_kind = topo::AsKind::kTier1;
  } else if (opts.scenario == "small") {
    config = eval::small_access_config(opts.seed);
    vp_kind = topo::AsKind::kAccess;
  } else {
    usage(argv[0]);
    return 2;
  }

  eval::Scenario scenario(config);
  bool violations = false;

  check::CheckContext substrate =
      check::substrate_context(scenario.net(), scenario.bgp(), scenario.fib());
  substrate.max_route_pairs = opts.max_route_pairs;
  substrate.max_fib_walks = opts.max_fib_walks;
  substrate.sample_seed = opts.seed;
  check::CheckReport substrate_report = checker.run(substrate, opts.passes);
  print_report("substrate", substrate_report, opts.quiet);
  violations = violations || !substrate_report.clean();

  if (opts.run_pipeline) {
    net::AsId vp_as = scenario.first_of(vp_kind);
    auto vps = scenario.vps_in(vp_as);
    if (vps.empty()) {
      std::fprintf(stderr, "no VPs in %s\n", vp_as.str().c_str());
      return 2;
    }
    const topo::Vp& vp = vps[opts.vp_index % vps.size()];
    core::InferenceInputs inputs = scenario.inputs_for(vp_as);
    core::BdrmapResult result = scenario.run_bdrmap(vp);

    check::CheckContext inference =
        check::inference_context(result, inputs);
    inference.net = &scenario.net();
    inference.sample_seed = opts.seed;
    check::CheckReport inference_report = checker.run(inference, opts.passes);
    print_report("inference", inference_report, opts.quiet);
    violations = violations || !inference_report.clean();
  }

  if (!opts.quiet) {
    std::printf("%s\n", violations ? "AUDIT: violations found"
                                   : "AUDIT: all invariants hold");
  }
  return violations ? 1 : 0;
}
