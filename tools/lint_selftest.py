#!/usr/bin/env python3
"""Self-test for the bdrmap-analyze lint passes (tools/lint.py).

Fixture-based: every rule in the catalog has a deliberately-bad file under
tests/lint_fixtures/ (excluded from default lint walks) plus good fixtures
that must stay silent. The test asserts, per fixture, the EXACT set of
rule ids that fire — so a rule that stops firing (deleted, broken regex,
disabled by default) fails the suite, as does a rule that starts
misfiring on the good fixtures. It also validates the --json document
shape, the --disable mechanism, the exit-code contract (0 clean /
1 findings / 2 usage error), and that the repository itself is clean
under every pass.

Registered in ctest as LintSelfTest; also run by tools/check.sh --analyze.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures"

# fixture path (relative to tests/lint_fixtures) -> exact rule ids expected
EXPECT: dict[str, set[str]] = {
    "clean.h": set(),
    "clean.cc": set(),
    "bad_include_relative.cc": {"BDR001"},
    "bad_include_build.cc": {"BDR002"},
    "bad_own_header.h": set(),
    "bad_own_header.cc": {"BDR003"},
    "bad_assert.cc": {"BDR004"},
    "bad_using_namespace.h": {"BDR005"},
    "bad_implicit_ctor.h": {"BDR006"},
    "bad_endl.cc": {"BDR007"},
    "bad_null.cc": {"BDR008"},
    "src/core/good_core.cc": set(),
    "src/core/bad_layer.cc": {"BDR101"},
    "src/core/bad_determinism.cc": {"BDR102"},
    "src/route/bad_rawlock.h": {"BDR103"},
    "src/route/bad_hotpath.cc": {"BDR104"},
    "src/core/bad_ladder.cc": {"BDR105"},
    "src/serve/bad_layer.cc": {"BDR101"},
}

failures: list[str] = []


def check(cond: bool, what: str) -> None:
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {what}")
    if not cond:
        failures.append(what)


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, cwd=REPO, check=False)


def run_json(*args: str) -> tuple[int, dict]:
    proc = run_lint("--json", *args)
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError:
        check(False, f"--json output parses as JSON (args: {args})")
        return proc.returncode, {}
    return proc.returncode, doc


def rules_by_file(doc: dict) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    for f in doc.get("findings", []):
        out.setdefault(f["path"], set()).add(f["rule"])
    return out


def main() -> int:
    fixture_paths = [str(FIXTURES / rel) for rel in EXPECT]
    for p in fixture_paths:
        if not Path(p).exists():
            print(f"missing fixture: {p}", file=sys.stderr)
            return 1

    print("== fixture pass: every rule fires on its bad fixture only ==")
    rc, doc = run_json(*fixture_paths)
    check(rc == 1, "fixture run exits 1 (findings present)")
    fired = rules_by_file(doc)
    for rel, want in EXPECT.items():
        relpath = str(Path("tests/lint_fixtures") / rel)
        got = fired.get(relpath, set())
        label = f"{rel}: expect {sorted(want) or 'clean'}"
        check(got == want, f"{label}, got {sorted(got) or 'clean'}")

    print("== json schema ==")
    for key, typ in [("tool", str), ("schema_version", int),
                     ("files_checked", int), ("disabled_rules", list),
                     ("findings", list), ("counts", dict)]:
        check(isinstance(doc.get(key), typ), f"top-level {key!r} is {typ.__name__}")
    check(doc.get("tool") == "bdrmap-analyze", "tool name stamped")
    check(doc.get("files_checked") == len(EXPECT),
          "files_checked matches fixture count")
    for f in doc.get("findings", []):
        ok = (isinstance(f.get("rule"), str) and isinstance(f.get("name"), str)
              and isinstance(f.get("path"), str)
              and isinstance(f.get("line"), int)
              and isinstance(f.get("message"), str))
        if not ok:
            check(False, f"finding shape valid: {f}")
            break
    else:
        check(True, "every finding has rule/name/path/line/message")
    total = sum(doc.get("counts", {}).values())
    check(total == len(doc.get("findings", [])),
          "counts sum equals findings length")

    print("== --disable silences exactly the named rule ==")
    exercised = sorted({r for want in EXPECT.values() for r in want})
    for rule in exercised:
        rc_d, doc_d = run_json("--disable", rule, *fixture_paths)
        fired_d = {r for rules in rules_by_file(doc_d).values()
                   for r in rules}
        check(rule not in fired_d, f"--disable {rule} removes its findings")
        others = {r for r in exercised if r != rule}
        check(others <= fired_d,
              f"--disable {rule} leaves the other rules firing")
        check(rule in doc_d.get("disabled_rules", []),
              f"--disable {rule} recorded in the document")
    rc_all = run_lint("--disable", "nonexistent-rule").returncode
    check(rc_all == 2, "--disable with an unknown rule is a usage error (2)")

    print("== exit-code contract ==")
    rc_clean, doc_clean = run_json(str(FIXTURES / "clean.h"),
                                   str(FIXTURES / "clean.cc"))
    check(rc_clean == 0 and doc_clean.get("findings") == [],
          "clean fixtures exit 0 with no findings")
    proc = run_lint(str(FIXTURES / "does_not_exist.cc"))
    check(proc.returncode == 2, "missing explicit path exits 2")
    check("does_not_exist.cc" in proc.stderr,
          "missing path is named on stderr")
    proc = run_lint(str(REPO / "README.md"))
    check(proc.returncode == 2, "non-C++ suffix exits 2")
    check("README.md" in proc.stderr, "non-C++ path is named on stderr")

    print("== repository is clean under every pass ==")
    proc = run_lint()
    check(proc.returncode == 0,
          f"repo-wide lint exits 0 (stdout: {proc.stdout[:400]!r})")

    if failures:
        print(f"\nlint_selftest: {len(failures)} FAILURES", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nlint_selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
