// bdrmap_sim — command-line front end for the full pipeline.
//
// Mirrors how the released sc_bdrmap is driven: pick a network to host the
// VP in, run the measurement + inference, and export the border map. The
// "Internet" is the synthetic substrate, selected by scenario name + seed.
//
// Usage:
//   bdrmap_sim [--scenario NAME] [--list-scenarios] [--seed N] [--vp K]
//              [--all-vps] [--threads N]
//              [--json FILE] [--warts FILE] [--dump-traces] [--table1]
//              [--validate] [--audit] [--quiet] [--no-route-cache]
//
// Scenario names come from eval::scenario_registry — the four clean §5.6
// networks plus the adversarial families (route_leak, hijack, ...).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "check/check.h"
#include "core/offline.h"
#include "eval/ground_truth.h"
#include "eval/scenario_registry.h"
#include "eval/table1.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "runtime/multi_vp.h"
#include "runtime/thread_pool.h"
#include "warts/dot.h"
#include "warts/json.h"
#include "warts/warts.h"

using namespace bdrmap;

namespace {

struct Options {
  std::string scenario = "ren";
  bool list_scenarios = false;
  std::uint64_t seed = 42;
  std::size_t vp_index = 0;
  bool all_vps = false;  // run every VP of the network, in parallel
  unsigned threads = std::thread::hardware_concurrency();
  std::string json_path;
  std::string warts_path;
  std::string dot_path;
  std::string replay_path;  // offline re-analysis of an archived run
  bool dump_traces = false;
  bool table1 = false;
  bool validate = false;
  bool audit = false;  // invariant-check the run (src/check/)
  bool quiet = false;
  // Disable the forwarding-plane fast-path caches (DESIGN.md §9); results
  // are bit-identical, only slower — a production escape hatch and the
  // baseline knob bench_hotpath uses.
  bool no_route_cache = false;
  // Observability export (DESIGN.md §11): when set, the run executes with
  // metrics + tracing enabled and writes one JSON document here. The
  // border map itself is bit-identical either way.
  std::string obs_json_path;
};

void list_scenarios(std::FILE* out) {
  std::fprintf(out, "available scenarios:\n");
  for (const std::string& name : eval::scenario_names()) {
    auto spec = eval::scenario_spec(name, 1);
    std::fprintf(out, "  %-15s %s\n", name.c_str(),
                 spec ? spec->description.c_str() : "");
  }
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario NAME] [--list-scenarios] [--seed N] [--vp K]\n"
      "          [--all-vps] [--threads N]\n"
      "          [--json FILE] [--warts FILE] [--dot FILE] [--replay FILE]\n"
      "          [--dump-traces] [--table1] [--validate] [--audit] "
      "[--quiet]\n"
      "          [--no-route-cache] [--obs-json FILE]\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--scenario") {
      const char* v = next();
      if (!v) return false;
      opts->scenario = v;
    } else if (arg == "--list-scenarios") {
      opts->list_scenarios = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opts->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--vp") {
      const char* v = next();
      if (!v) return false;
      opts->vp_index = std::strtoull(v, nullptr, 10);
    } else if (arg == "--all-vps") {
      opts->all_vps = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      opts->threads =
          static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return false;
      opts->json_path = v;
    } else if (arg == "--warts") {
      const char* v = next();
      if (!v) return false;
      opts->warts_path = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return false;
      opts->dot_path = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return false;
      opts->replay_path = v;
    } else if (arg == "--dump-traces") {
      opts->dump_traces = true;
    } else if (arg == "--table1") {
      opts->table1 = true;
    } else if (arg == "--validate") {
      opts->validate = true;
    } else if (arg == "--audit") {
      opts->audit = true;
    } else if (arg == "--quiet") {
      opts->quiet = true;
    } else if (arg == "--no-route-cache") {
      opts->no_route_cache = true;
    } else if (arg == "--obs-json") {
      const char* v = next();
      if (!v) return false;
      opts->obs_json_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    usage(argv[0]);
    return 2;
  }

  if (opts.list_scenarios) {
    list_scenarios(stdout);
    return 0;
  }

  auto spec = eval::scenario_spec(opts.scenario, opts.seed);
  if (!spec.has_value()) {
    std::fprintf(stderr, "unknown scenario: %s\n", opts.scenario.c_str());
    list_scenarios(stderr);
    usage(argv[0]);
    return 2;
  }
  const topo::AsKind vp_kind = spec->vp_kind;

  obs::ObsOptions obs_options;
  obs_options.enabled = !opts.obs_json_path.empty();
  obs_options.run_label = opts.scenario;
  obs::Observability obs(obs_options);

  route::FibOptions fib_options;
  fib_options.enable_caches = !opts.no_route_cache;
  fib_options.metrics = obs.registry();
  eval::Scenario scenario(*spec, fib_options);
  net::AsId vp_as = scenario.first_of(vp_kind);
  auto vps = scenario.vps_in(vp_as);
  if (vps.empty()) {
    std::fprintf(stderr, "no VP available in %s\n", vp_as.str().c_str());
    return 1;
  }
  if (opts.all_vps) {
    if (!opts.replay_path.empty() || opts.dump_traces || opts.table1 ||
        opts.audit || !opts.json_path.empty() || !opts.warts_path.empty() ||
        !opts.dot_path.empty()) {
      std::fprintf(stderr,
                   "--all-vps combines only with --validate/--threads/"
                   "--quiet/--obs-json; export and replay flags are "
                   "per-VP\n");
      return 2;
    }
    // The pool reports into the run's registry when observability is on
    // (registry() is null otherwise, giving the pool a private one).
    auto pool = runtime::make_pool(opts.threads, obs.registry());
    core::BdrmapConfig run_config;
    run_config.obs = &obs;
    if (!opts.quiet) {
      std::printf("scenario=%s seed=%llu: %zu VPs in %s on %u thread(s)\n",
                  opts.scenario.c_str(),
                  static_cast<unsigned long long>(opts.seed), vps.size(),
                  vp_as.str().c_str(), opts.threads);
    }
    // VP i probes with seed (seed ^ 0x515) + i, so VP 0 reproduces the
    // single-VP run bit for bit.
    runtime::MultiVpResult runs = scenario.run_bdrmap_parallel(
        vps, run_config, opts.seed ^ 0x515, pool.get());

    for (std::size_t i = 0; i < runs.per_vp.size(); ++i) {
      const core::BdrmapResult& r = runs.per_vp[i];
      std::printf("VP %2zu %-14s %zu traces -> %zu routers, %zu links, "
                  "%zu neighbor ASes\n",
                  i, scenario.net().pops()[vps[i].pop].city.c_str(),
                  r.stats.traces, r.stats.routers, r.links.size(),
                  r.links_by_as.size());
    }
    std::printf("merged: %zu links (%zu distinct neighbor ASes), "
                "%llu probes, %zu traces total\n",
                runs.merged_links.size(), runs.merged_links_by_as.size(),
                static_cast<unsigned long long>(runs.total.probes_sent),
                runs.total.traces);

    if (opts.validate) {
      eval::GroundTruth truth(scenario.net(), vp_as);
      std::size_t links_total = 0, links_correct = 0;
      for (const auto& r : runs.per_vp) {
        auto summary = truth.validate(r);
        links_total += summary.links_total;
        links_correct += summary.links_correct;
      }
      std::printf("validation: %zu/%zu links correct (%.1f%%) across "
                  "%zu VPs\n",
                  links_correct, links_total,
                  100.0 * static_cast<double>(links_correct) /
                      static_cast<double>(std::max<std::size_t>(
                          links_total, 1)),
                  runs.per_vp.size());
    }

    if (!opts.quiet) {
      std::printf("stages: run %.3fs, reduce %.3fs\n",
                  runs.times.run_seconds, runs.times.reduce_seconds);
      if (pool) {
        obs::MetricsSnapshot s = pool->metrics().snapshot();
        std::printf(
            "pool: %llu tasks submitted, %llu executed, "
            "%llu steals, %llu parks, %llu unparks\n",
            static_cast<unsigned long long>(
                s.counter("runtime.tasks_submitted")),
            static_cast<unsigned long long>(
                s.counter("runtime.tasks_executed")),
            static_cast<unsigned long long>(s.counter("runtime.steals")),
            static_cast<unsigned long long>(s.counter("runtime.parks")),
            static_cast<unsigned long long>(s.counter("runtime.unparks")));
      }
    }
    if (!opts.obs_json_path.empty()) {
      obs::ExportInfo info;
      info.tool = "bdrmap_sim";
      info.scenario = opts.scenario;
      info.seed = opts.seed;
      info.vps = vps.size();
      info.threads = opts.threads;
      if (!obs::write_json_file(opts.obs_json_path, obs, info)) {
        std::fprintf(stderr, "cannot open %s\n", opts.obs_json_path.c_str());
        return 1;
      }
      if (!opts.quiet) {
        std::printf("wrote observability export to %s\n",
                    opts.obs_json_path.c_str());
      }
    }
    return 0;
  }

  if (opts.vp_index >= vps.size()) {
    std::fprintf(stderr, "vp index %zu out of range (%zu VPs)\n",
                 opts.vp_index, vps.size());
    return 1;
  }
  const topo::Vp& vp = vps[opts.vp_index];
  if (!opts.quiet) {
    std::printf("scenario=%s seed=%llu VP %zu/%zu: %s at %s\n",
                opts.scenario.c_str(),
                static_cast<unsigned long long>(opts.seed), opts.vp_index + 1,
                vps.size(), vp.as.str().c_str(),
                scenario.net().pops()[vp.pop].city.c_str());
  }

  core::BdrmapConfig run_config;
  run_config.obs = &obs;
  core::BdrmapResult result =
      opts.replay_path.empty()
          ? scenario.run_bdrmap(vp, run_config, opts.seed ^ 0x515)
          : core::analyze_offline(warts::load_traces(opts.replay_path),
                                  scenario.inputs_for(vp_as));
  if (!opts.replay_path.empty() && !opts.quiet) {
    std::printf("offline re-analysis of %s (analytic aliases only)\n",
                opts.replay_path.c_str());
  }

  if (!opts.quiet) {
    std::printf("%zu blocks, %llu probes, %zu traces -> %zu routers, "
                "%zu links across %zu neighbor ASes\n",
                result.stats.blocks,
                static_cast<unsigned long long>(result.stats.probes_sent),
                result.stats.traces, result.stats.routers,
                result.links.size(), result.links_by_as.size());
  }

  if (opts.table1) {
    auto inputs = scenario.inputs_for(vp_as);
    auto table = eval::build_table1(result, *inputs.rels, inputs.vp_ases);
    std::fputs(eval::render_table1(table, "heuristic attribution").c_str(),
               stdout);
  }

  if (opts.validate) {
    eval::GroundTruth truth(scenario.net(), vp_as);
    auto summary = truth.validate(result);
    std::printf("validation: %zu/%zu links correct (%.1f%%), "
                "%zu/%zu routers correct (%.1f%%)\n",
                summary.links_correct, summary.links_total,
                100.0 * summary.link_accuracy(), summary.routers_correct,
                summary.routers_total, 100.0 * summary.router_accuracy());
  }

  if (opts.audit) {
    // Invariant-check the inference products against the inputs the run
    // consumed (and the substrate, for the owner universe).
    auto inputs = scenario.inputs_for(vp_as);
    check::CheckContext ctx = check::inference_context(result, inputs);
    ctx.net = &scenario.net();
    check::CheckReport report = check::InvariantChecker().run(ctx);
    if (!report.clean()) std::fputs(report.summary().c_str(), stdout);
    std::printf("audit: %zu passes, %zu violations (%zu errors)\n",
                report.passes_run.size(), report.violations.size(),
                report.error_count());
    if (report.error_count() > 0) return 1;
  }

  if (opts.dump_traces) {
    std::fputs(warts::dump_text(result.graph.traces()).c_str(), stdout);
  }
  if (!opts.warts_path.empty()) {
    warts::save_traces(opts.warts_path, result.graph.traces());
    if (!opts.quiet) {
      std::printf("wrote %zu traces to %s\n", result.graph.traces().size(),
                  opts.warts_path.c_str());
    }
  }
  if (!opts.dot_path.empty()) {
    std::ofstream out(opts.dot_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opts.dot_path.c_str());
      return 1;
    }
    out << warts::result_to_dot(result);
    if (!opts.quiet) {
      std::printf("wrote graphviz map to %s\n", opts.dot_path.c_str());
    }
  }
  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opts.json_path.c_str());
      return 1;
    }
    out << warts::result_to_json(result) << "\n";
    if (!opts.quiet) {
      std::printf("wrote border map to %s\n", opts.json_path.c_str());
    }
  }
  if (!opts.obs_json_path.empty()) {
    obs::ExportInfo info;
    info.tool = "bdrmap_sim";
    info.scenario = opts.scenario;
    info.seed = opts.seed;
    info.vps = 1;
    info.threads = 1;
    if (!obs::write_json_file(opts.obs_json_path, obs, info)) {
      std::fprintf(stderr, "cannot open %s\n", opts.obs_json_path.c_str());
      return 1;
    }
    if (!opts.quiet) {
      std::printf("wrote observability export to %s\n",
                  opts.obs_json_path.c_str());
    }
  }
  return 0;
}
