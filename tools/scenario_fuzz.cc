// scenario_fuzz — property-based Gao-Rexford scenario fuzzer (eval/fuzzer.h).
//
// Sweeps randomized topologies through the full pipeline, one scenario
// family per case, and checks the three fuzz properties (no crash/contract
// abort, per-family accuracy floor, clean invariant audit). Failing seeds
// are printed as one-line repro commands and the exit status is nonzero.
//
// Usage:
//   scenario_fuzz [--seeds N] [--base-seed S] [--family NAME]...
//                 [--floor X] [--threads N] [--obs-json FILE]
//                 [--list] [--quiet]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "eval/fuzzer.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

using namespace bdrmap;

namespace {

struct Options {
  std::size_t seeds = 25;
  std::uint64_t base_seed = 1;
  std::vector<std::string> families;
  double floor_override = -1.0;
  unsigned threads = std::thread::hardware_concurrency();
  std::string obs_json_path;
  bool list = false;
  bool quiet = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--base-seed S] [--family NAME]...\n"
               "          [--floor X] [--threads N] [--obs-json FILE]\n"
               "          [--list] [--quiet]\n",
               argv0);
}

bool parse_args(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v) return false;
      opts->seeds = std::strtoull(v, nullptr, 10);
    } else if (arg == "--base-seed") {
      const char* v = next();
      if (!v) return false;
      opts->base_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--family") {
      const char* v = next();
      if (!v) return false;
      opts->families.emplace_back(v);
    } else if (arg == "--floor") {
      const char* v = next();
      if (!v) return false;
      opts->floor_override = std::strtod(v, nullptr);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      opts->threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--obs-json") {
      const char* v = next();
      if (!v) return false;
      opts->obs_json_path = v;
    } else if (arg == "--list") {
      opts->list = true;
    } else if (arg == "--quiet") {
      opts->quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    usage(argv[0]);
    return 2;
  }
  if (opts.list) {
    std::printf("default fuzz families:\n");
    for (const std::string& name : eval::default_fuzz_families()) {
      auto spec = eval::scenario_spec(name, 1);
      std::printf("  %-15s floor %.2f  %s\n", name.c_str(),
                  spec ? spec->fuzz_floor : 0.0,
                  spec ? spec->description.c_str() : "");
    }
    return 0;
  }
  for (const std::string& name : opts.families) {
    if (!eval::scenario_spec(name, 1).has_value()) {
      std::fprintf(stderr, "unknown family: %s\n", name.c_str());
      std::fprintf(stderr, "registered scenarios:\n");
      for (const std::string& known : eval::scenario_names()) {
        std::fprintf(stderr, "  %s\n", known.c_str());
      }
      return 2;
    }
  }

  obs::ObsOptions obs_options;
  obs_options.enabled = !opts.obs_json_path.empty();
  obs_options.run_label = "fuzz";
  obs::Observability obs(obs_options);

  eval::FuzzConfig config;
  config.base_seed = opts.base_seed;
  config.cases = opts.seeds;
  config.families = opts.families;
  config.floor_override = opts.floor_override;
  config.obs = obs_options.enabled ? &obs : nullptr;
  auto pool = runtime::make_pool(opts.threads, obs.registry());
  config.pool = pool.get();

  eval::FuzzSummary summary = eval::run_fuzz(config);

  for (const eval::FuzzCaseResult& c : summary.cases) {
    if (c.passed && opts.quiet) continue;
    if (c.passed) {
      std::printf("ok   %-15s seed %llu  accuracy %.3f (floor %.2f, "
                  "%zu links, audit clean)\n",
                  c.family.c_str(), static_cast<unsigned long long>(c.seed),
                  c.link_accuracy, c.floor, c.links_total);
      continue;
    }
    std::printf("FAIL %-15s seed %llu:", c.family.c_str(),
                static_cast<unsigned long long>(c.seed));
    if (c.crashed) std::printf(" crash [%s]", c.error.c_str());
    if (!c.gr_consistent) std::printf(" truth-graph-not-gao-rexford");
    if (c.audit_errors > 0) std::printf(" audit-errors=%zu", c.audit_errors);
    if (!c.crashed && c.links_total == 0) std::printf(" no-links-inferred");
    if (!c.crashed && c.links_total > 0 && c.link_accuracy < c.floor) {
      std::printf(" accuracy=%.3f<%.2f", c.link_accuracy, c.floor);
    }
    std::printf("\n     repro: %s\n", c.repro.c_str());
  }
  std::printf("fuzz: %zu cases, %zu failures\n", summary.cases.size(),
              summary.failures());

  if (!opts.obs_json_path.empty()) {
    obs::ExportInfo info;
    info.tool = "scenario_fuzz";
    info.scenario = "fuzz";
    info.seed = opts.base_seed;
    info.vps = opts.seeds;  // one VP pipeline per case
    info.threads = opts.threads;
    if (!obs::write_json_file(opts.obs_json_path, obs, info)) {
      std::fprintf(stderr, "cannot open %s\n", opts.obs_json_path.c_str());
      return 1;
    }
    if (!opts.quiet) {
      std::printf("wrote observability export to %s\n",
                  opts.obs_json_path.c_str());
    }
  }
  return summary.passed() ? 0 : 1;
}
