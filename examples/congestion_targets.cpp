// Congestion measurement target list (the paper's §2 motivation).
//
// The CAIDA/MIT interdomain-congestion project probes the near and far side
// of every interdomain link with TTL-limited probes (time-series latency
// probing, [24]); the paper notes the hard part is *identifying* which
// (near, far) address pairs to probe. This example runs bdrmap and emits
// exactly that target list for the hosting network.
#include <cstdio>

#include "eval/scenario.h"

using namespace bdrmap;

int main() {
  eval::Scenario scenario(eval::small_access_config(7));
  net::AsId vp_as = scenario.first_of(topo::AsKind::kAccess);
  auto vps = scenario.vps_in(vp_as);
  if (vps.empty()) {
    std::fprintf(stderr, "no VP available\n");
    return 1;
  }
  auto result = scenario.run_bdrmap(vps.front());

  std::printf("# near_addr far_addr neighbor_as heuristic\n");
  std::size_t pairs = 0;
  const auto& routers = result.graph.routers();
  for (const auto& link : result.links) {
    // Near-side probe address: an interface of the VP-side router.
    std::string near = "-";
    if (link.vp_router != core::InferredLink::kNoRouter &&
        !routers[link.vp_router].addrs.empty()) {
      near = routers[link.vp_router].addrs.front().str();
    }
    // Far-side probe address: prefer an address on the neighbor router
    // that sits in the VP network's space (the interconnect subnet).
    std::string far = "-";
    if (link.neighbor_router != core::InferredLink::kNoRouter) {
      const auto& neighbor = routers[link.neighbor_router];
      if (!neighbor.addrs.empty()) far = neighbor.addrs.front().str();
    }
    if (near == "-" && far == "-") continue;
    std::printf("%-16s %-16s %-8s %s\n", near.c_str(), far.c_str(),
                link.neighbor_as.str().c_str(),
                core::heuristic_name(link.how));
    ++pairs;
  }
  std::printf("# %zu probe pairs across %zu neighbor networks\n", pairs,
              result.links_by_as.size());
  return 0;
}
