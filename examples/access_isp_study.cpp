// Interconnection study of a large access ISP (§6, condensed).
//
// Deploys VPs across the featured 19-PoP access network, maps its borders
// from each, and reports (a) how many interconnects each additional VP
// reveals for the Tier-1 peer and the CDNs, and (b) the density of
// router-level interconnection per neighbor — the paper's headline "45
// links with one Tier-1 peer".
#include <cstdio>
#include <vector>

#include "core/merge.h"
#include "eval/scenario.h"

using namespace bdrmap;

int main() {
  eval::Scenario scenario(eval::large_access_config(42));
  net::AsId vp_as = scenario.featured_access();
  auto vps = scenario.vps_in(vp_as);
  std::printf("access network %s: %zu VPs available\n", vp_as.str().c_str(),
              vps.size());

  // A five-VP deployment, geographically spread west to east.
  std::vector<std::size_t> picks = {0, vps.size() / 4, vps.size() / 2,
                                    3 * vps.size() / 4, vps.size() - 1};
  std::vector<core::BdrmapResult> results;
  std::vector<const core::BdrmapResult*> run_ptrs;
  for (std::size_t pick : picks) {
    results.push_back(scenario.run_bdrmap(vps[pick], {}, 0x7000 + pick));
    std::printf("VP at %-14s -> %3zu links, %3zu neighbor ASes\n",
                scenario.net().pops()[vps[pick].pop].city.c_str(),
                results.back().links.size(),
                results.back().links_by_as.size());
  }
  for (const auto& r : results) run_ptrs.push_back(&r);

  // Aggregate into one network-wide border map (what the deployment's
  // central system does with its 19 VPs).
  auto merged = core::merge_results(run_ptrs);
  std::printf("\nmerged map: %zu routers, %zu distinct links across %zu "
              "neighbor ASes\n",
              merged.routers.size(), merged.links.size(),
              merged.links_by_as.size());
  std::printf("marginal utility:");
  for (std::size_t c : merged.cumulative_links) std::printf(" %zu", c);
  std::printf("  (links known after each VP)\n");

  // Densest interconnections (the paper's headline is 45 router-level
  // links with one Tier-1 peer).
  std::vector<std::pair<std::size_t, net::AsId>> ranked;
  for (const auto& [as, links] : merged.links_by_as) {
    ranked.emplace_back(links.size(), as);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\ndensest neighbors (merged view):\n");
  for (std::size_t i = 0; i < ranked.size() && i < 10; ++i) {
    const auto& info = scenario.net().as_info(ranked[i].second);
    std::printf("  %-8s %-12s %2zu router-level links%s\n",
                ranked[i].second.str().c_str(), info.name.c_str(),
                ranked[i].first,
                ranked[i].second == scenario.level3_like()
                    ? "   <- the Tier-1 peer (45 in truth)"
                    : "");
  }
  std::printf("\nsee bench_fig15 / bench_fig16 for the full 19-VP curves.\n");
  return 0;
}
