// Resilience study (§2): which border routers carry traffic to most of the
// routed Internet, and what a single-router outage would cost.
#include <cstdio>

#include "eval/analysis.h"
#include "eval/report.h"
#include "eval/robustness.h"
#include "eval/scenario.h"

using namespace bdrmap;

int main() {
  eval::Scenario scenario(eval::small_access_config(7));
  net::AsId vp_as = scenario.first_of(topo::AsKind::kAccess);
  auto vps = scenario.vps_in(vp_as);
  eval::GroundTruth truth(scenario.net(), vp_as);

  std::vector<std::vector<eval::TraceExit>> runs;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    auto result = scenario.run_bdrmap(vps[i], {}, 0xB00 + i);
    runs.push_back(eval::trace_exits(result, truth,
                                     scenario.collectors().public_origins()));
    std::printf("VP %zu/%zu mapped\n", i + 1, vps.size());
  }
  auto report = eval::robustness_report(runs);

  std::printf("\n%zu routed prefixes measured from %zu VPs\n",
              report.prefixes_measured, vps.size());
  std::printf("prefixes with a single observed egress: %zu (%.1f%%)\n",
              report.single_homed_prefixes,
              eval::pct(report.single_homed_prefixes,
                        std::max<std::size_t>(report.prefixes_measured, 1)));
  std::printf("worst single-router blast radius: %.1f%% of prefixes\n\n",
              100.0 * report.worst_blast_radius);

  std::printf("most critical border routers:\n");
  for (std::size_t i = 0; i < report.routers.size() && i < 8; ++i) {
    const auto& r = report.routers[i];
    std::printf("  R%-5u %-14s carries %5.1f%% of prefixes, sole exit for "
                "%zu\n",
                r.router.value,
                scenario.net()
                    .pops()[scenario.net().router(r.router).pop]
                    .city.c_str(),
                100.0 * r.share, r.sole_exit_for);
  }
  return 0;
}
