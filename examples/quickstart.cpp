// Quickstart: map the borders of a network from a single vantage point.
//
// Builds a small synthetic Internet, hosts a VP inside an R&E network,
// runs the full bdrmap pipeline (targeted traceroutes -> alias resolution
// -> router graph -> ownership heuristics), and prints the inferred
// interdomain links with their ground-truth score.
#include <cstdio>

#include "eval/ground_truth.h"
#include "eval/scenario.h"

using namespace bdrmap;

int main() {
  // 1. A deterministic synthetic Internet (substitute for live probing).
  eval::Scenario scenario(eval::research_education_config(/*seed=*/42));

  // 2. Pick the VP: a research-and-education network (cf. §5.6).
  net::AsId vp_as = scenario.first_of(topo::AsKind::kResearchEdu);
  auto vps = scenario.vps_in(vp_as);
  if (vps.empty()) {
    std::fprintf(stderr, "no VP available\n");
    return 1;
  }
  const topo::Vp& vp = vps.front();
  std::printf("VP: %s attached to router %u (%s)\n",
              vp.as.str().c_str(), vp.attach_router.value,
              scenario.net().pops()[vp.pop].city.c_str());

  // 3. Run bdrmap.
  core::BdrmapResult result = scenario.run_bdrmap(vp);
  std::printf("probed %zu blocks with %llu packets; %zu traces\n",
              result.stats.blocks,
              static_cast<unsigned long long>(result.stats.probes_sent),
              result.stats.traces);
  std::printf("router graph: %zu routers (%zu VP-side, %zu neighbors)\n",
              result.stats.routers, result.stats.vp_routers,
              result.stats.neighbor_routers);

  // 4. Report inferred interdomain links per neighbor AS.
  std::printf("\ninterdomain links by neighbor AS:\n");
  for (const auto& [as, links] : result.links_by_as) {
    std::printf("  %-8s %2zu link(s)\n", as.str().c_str(), links.size());
  }

  // 5. Score against ground truth (the generator knows the real owners).
  eval::GroundTruth truth(scenario.net(), vp_as);
  auto summary = truth.validate(result);
  std::printf("\nvalidation: %zu/%zu neighbor routers correct (%.1f%%), "
              "%zu/%zu links correct (%.1f%%)\n",
              summary.routers_correct, summary.routers_total,
              100.0 * summary.router_accuracy(), summary.links_correct,
              summary.links_total, 100.0 * summary.link_accuracy());
  return 0;
}
