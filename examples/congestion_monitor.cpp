// End-to-end congestion monitoring (§2): bdrmap finds the interdomain
// links, TSLP probes their near/far sides across a simulated day, and a
// level-shift detector flags the congested interconnects — scored against
// the congestion model's ground truth.
#include <cstdio>

#include "congestion/tslp.h"
#include "eval/scenario.h"

using namespace bdrmap;

int main() {
  eval::Scenario scenario(eval::small_access_config(7));
  net::AsId vp_as = scenario.first_of(topo::AsKind::kAccess);
  auto vp = scenario.vps_in(vp_as).front();

  // Step 1: map the borders.
  auto result = scenario.run_bdrmap(vp);
  auto targets = congestion::make_targets(result, scenario.net());
  std::printf("bdrmap: %zu links -> %zu probe-able near/far pairs\n",
              result.links.size(), targets.size());

  // Step 2: a day of time-series latency probing.
  congestion::CongestionConfig model_config;
  model_config.seed = 99;
  congestion::CongestionModel model(scenario.net(), scenario.fib(),
                                    model_config);
  auto series = congestion::run_tslp(targets, model, vp);

  std::printf("\nlink                              peak elevation  verdict\n");
  for (const auto& s : series) {
    if (!s.congested) continue;
    std::printf("%-15s -> %-15s %8.1f ms   CONGESTED (%s)\n",
                s.target.near_addr.str().c_str(),
                s.target.far_addr.str().c_str(), s.max_elevation_ms,
                s.target.neighbor_as.str().c_str());
  }

  // Step 3: score against the model's truth.
  auto score = congestion::score_tslp(series, model);
  std::printf("\n%zu targets, %zu truly congested, %zu detected: "
              "precision %.0f%%, recall %.0f%%\n",
              score.targets, score.truth_congested, score.detected,
              100.0 * score.precision(), 100.0 * score.recall());
  return 0;
}
