// Building a hand-crafted Internet and mapping it — the library as an API.
//
// Instead of the statistical generator, this example constructs the exact
// topology of the paper's Figure 1 by hand (ASes A, B, C, D plus a VP
// network), wires routing and probing over it, runs bdrmap, and prints the
// inference for each router. Useful as a template for experimenting with
// pathological configurations.
#include <cstdio>

#include "core/bdrmap.h"
#include "probe/alias.h"
#include "route/bgp_sim.h"
#include "route/collectors.h"
#include "route/fib.h"
#include "topo/internet.h"

using namespace bdrmap;

int main() {
  topo::Internet net;
  std::uint32_t pop = net.add_pop({"Lab", -100.0, 40.0});

  // Organizations and ASes: X hosts the VP; A is X's provider; B peers
  // with X; D is an enterprise customer of B that firewalls probes.
  auto make_as = [&](topo::AsKind kind, const char* name) {
    static std::uint32_t org = 1;
    return net.add_as(kind, net::OrgId(org++), name);
  };
  net::AsId x = make_as(topo::AsKind::kAccess, "X-hosting");
  net::AsId a = make_as(topo::AsKind::kTransit, "A-provider");
  net::AsId b = make_as(topo::AsKind::kTransit, "B-peer");
  net::AsId d = make_as(topo::AsKind::kEnterprise, "D-enterprise");

  auto& rels = net.truth_relationships();
  rels.add_c2p(x, a);  // X buys transit from A
  rels.add_p2p(x, b);  // X peers with B
  rels.add_c2p(d, b);  // D buys transit from B

  // Routers. X: two (core + border). Others: one each, except D's border
  // which filters probes at the edge (Figure 1's R5).
  topo::RouterBehavior plain;
  auto rx1 = net.add_router(x, pop, plain);
  auto rx2 = net.add_router(x, pop, plain);
  auto ra = net.add_router(a, pop, plain);
  auto rb = net.add_router(b, pop, plain);
  topo::RouterBehavior firewalled;
  firewalled.firewall_edge = true;
  auto rd = net.add_router(d, pop, firewalled);

  auto ip = [](const char* s) { return *net::Ipv4Addr::parse(s); };
  auto pfx = [](const char* s) { return *net::Prefix::parse(s); };

  auto link = [&](topo::LinkKind kind, net::AsId supplier, net::RouterId r1,
                  const char* a1, net::RouterId r2, const char* a2) {
    topo::LinkId l = net.add_link(kind, net::Prefix(ip(a1), 30), supplier,
                                  {{r1, ip(a1)}, {r2, ip(a2)}});
    if (kind != topo::LinkKind::kInternal) {
      net.record_interdomain({l, net.router(r1).owner, net.router(r2).owner,
                              r1, r2, false});
    }
  };
  link(topo::LinkKind::kInternal, x, rx1, "10.0.0.1", rx2, "10.0.0.2");
  link(topo::LinkKind::kInterdomain, a, rx2, "20.0.9.1", ra, "20.0.9.2");
  link(topo::LinkKind::kInterdomain, x, rx2, "10.0.9.1", rb, "10.0.9.2");
  link(topo::LinkKind::kInterdomain, b, rb, "30.0.9.1", rd, "30.0.9.2");

  net.add_announced({pfx("10.0.0.0/16"), x, rx1, {}, 1.0});
  net.add_announced({pfx("20.0.0.0/16"), a, ra, {}, 1.0});
  net.add_announced({pfx("30.0.0.0/16"), b, rb, {}, 1.0});
  net.add_announced({pfx("40.0.0.0/16"), d, rd, {}, 1.0});

  // Routing, the public BGP view, and the probe stack.
  route::BgpSimulator bgp(net);
  route::Fib fib(net, bgp);
  route::CollectorConfig cc;
  cc.exclude_featured_access = false;
  cc.transit_peer_fraction = 1.0;  // tiny lab net: full collector view
  cc.access_peer_fraction = 1.0;
  route::CollectorView collectors(net, bgp, cc);
  asdata::RelationshipInferenceConfig ric;
  ric.clique_seed_size = 2;  // A and B are the "top" of this lab Internet
  auto inferred_rels = collectors.infer_relationships(ric);

  topo::Vp vp{x, rx1, ip("10.0.200.1"), pop};
  probe::LocalProbeServices services(net, fib, vp, 1);

  core::InferenceInputs inputs;
  inputs.origins = &collectors.public_origins();
  inputs.rels = &inferred_rels;
  inputs.ixps = &net.ixp_directory();
  inputs.rir = &net.rir();
  inputs.siblings = &net.sibling_table();
  inputs.vp_ases = {x};

  core::Bdrmap bdrmap(services, inputs);
  auto result = bdrmap.run();

  std::printf("inferred routers:\n");
  for (const auto& r : result.graph.routers()) {
    if (r.addrs.empty() || r.ttl_addrs.empty()) continue;
    std::printf("  %-14s owner=%-5s %s%s\n", r.addrs.front().str().c_str(),
                r.owner.valid() ? r.owner.str().c_str() : "?",
                core::heuristic_name(r.how), r.vp_side ? "  [VP side]" : "");
  }
  std::printf("\ninferred interdomain links:\n");
  for (const auto& inferred : result.links) {
    std::printf("  -> %s via %s\n", inferred.neighbor_as.str().c_str(),
                core::heuristic_name(inferred.how));
  }
  std::printf("\nexpected: X's two routers VP-side; A's router by IP-AS; "
              "B's router inferred\nbehind its X-supplied address; D (a "
              "customer of B, not of X) is B's problem,\nits firewalled "
              "border showing only B-space.\n");
  return 0;
}
