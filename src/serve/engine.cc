#include "serve/engine.h"

#include <algorithm>
#include <utility>

#include "netbase/contract.h"

namespace bdrmap::serve {

namespace {

// Seed mixer (splitmix64 finalizer over a keyed combination): slice seeds
// depend on (base, vp, target AS) ONLY — never on the epoch — which is the
// whole incremental-correctness argument (engine.h header comment).
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                    ((c + 1) * 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kInferSalt = 0x1f3a9;

std::vector<net::AsId> sorted_union(std::vector<net::AsId> a,
                                    const std::vector<net::AsId>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

}  // namespace

ServeEngine::ServeEngine(const topo::Internet& net, route::BgpSimulator& bgp,
                         route::Fib& fib, std::vector<VpContext> vps,
                         EngineOptions options)
    : net_(net),
      bgp_(bgp),
      fib_(fib),
      vps_(std::move(vps)),
      options_(std::move(options)),
      executor_(options_.pool) {
  BDRMAP_EXPECTS(!vps_.empty(), "ServeEngine needs at least one VP");
  vp_targets_.reserve(vps_.size());
  for (const VpContext& vp : vps_) {
    BDRMAP_EXPECTS(vp.inputs.origins != nullptr,
                   "VpContext needs an origin table");
    BDRMAP_EXPECTS(static_cast<bool>(vp.make_services),
                   "VpContext needs a seeded probe-services factory");
    // The §5.3 schedule sorts blocks by target AS; the unique AS list in
    // that order is this VP's slice keyspace.
    std::vector<net::AsId> list;
    for (const core::ProbeBlock& block :
         core::build_probe_blocks(*vp.inputs.origins, vp.inputs.vp_ases)) {
      if (list.empty() || list.back() != block.target_as) {
        list.push_back(block.target_as);
      }
    }
    targets_ = sorted_union(std::move(targets_), list);
    vp_targets_.push_back(std::move(list));
  }
  store_.resize(vps_.size());
  if (options_.obs && options_.obs->registry()) {
    obs::MetricsRegistry* reg = options_.obs->registry();
    churn_events_ = reg->counter("serve.churn.events");
    dirty_slices_ = reg->counter("serve.churn.dirty_slices");
    clean_slices_ = reg->counter("serve.churn.clean_slices");
    compiles_ = reg->counter("serve.snapshot.compiles");
  }
}

std::uint64_t ServeEngine::slice_seed(std::size_t vp, net::AsId as) const {
  return mix(options_.base_seed, vp, as.value);
}

std::uint64_t ServeEngine::infer_seed(std::size_t vp) const {
  return mix(options_.base_seed, vp, kInferSalt);
}

runtime::VpJob ServeEngine::slice_job(std::size_t vp, net::AsId as) const {
  runtime::VpJob job;
  auto factory = vps_[vp].make_services;
  const std::uint64_t seed = slice_seed(vp, as);
  job.make_services = [factory = std::move(factory), seed] {
    return factory(seed);
  };
  job.inputs = vps_[vp].inputs;
  job.config = options_.config;
  job.config.target_filter = {as};
  return job;
}

runtime::VpJob ServeEngine::infer_job(std::size_t vp) const {
  runtime::VpJob job;
  auto factory = vps_[vp].make_services;
  const std::uint64_t seed = infer_seed(vp);
  job.make_services = [factory = std::move(factory), seed] {
    return factory(seed);
  };
  job.inputs = vps_[vp].inputs;
  job.config = options_.config;
  job.config.target_filter.clear();
  return job;
}

std::vector<OwnedPrefix> ServeEngine::owned_prefixes() const {
  std::vector<OwnedPrefix> out;
  for (const auto& [prefix, origins] :
       vps_.front().inputs.origins->all_prefixes()) {
    if (withdrawn_.count(prefix)) continue;
    BDRMAP_EXPECTS(!origins.empty(), "announced prefix without origins");
    out.push_back({prefix, *std::min_element(origins.begin(), origins.end())});
  }
  return out;
}

void ServeEngine::rebuild_full() {
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer() : nullptr;
  obs::Span span(tracer, "serve.rebuild");
  if (built_) ++epoch_;
  built_ = true;
  std::vector<runtime::VpJob> jobs;
  std::vector<std::pair<std::size_t, net::AsId>> keys;
  for (std::size_t vp = 0; vp < vps_.size(); ++vp) {
    for (net::AsId as : vp_targets_[vp]) {
      jobs.push_back(slice_job(vp, as));
      keys.emplace_back(vp, as);
    }
  }
  std::vector<core::CollectedTraces> collected = executor_.collect(jobs);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    store_[keys[i].first][keys[i].second] = std::move(collected[i]);
  }
  span.note("slices", static_cast<std::int64_t>(keys.size()));
  reinfer_and_publish(tracer);
}

ChurnApplyStats ServeEngine::apply(const ChurnEvent& event) {
  BDRMAP_EXPECTS(built_, "apply() requires an initial rebuild_full()");
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer() : nullptr;
  obs::Span span(tracer, "serve.apply");
  span.note("event", churn_kind_name(event.kind));

  // Dirty bound in the OLD state (routes the event destroys)...
  std::vector<net::AsId> dirty =
      affected_targets(event, bgp_, net_, targets_);
  apply_event(event, bgp_, fib_);
  // ...unioned with the bound in the NEW state (routes it creates).
  dirty = sorted_union(std::move(dirty),
                       affected_targets(event, bgp_, net_, targets_));

  if (event.kind == ChurnKind::kWithdraw) withdrawn_.insert(event.prefix);
  if (event.kind == ChurnKind::kAnnounce) withdrawn_.erase(event.prefix);

  ++epoch_;
  churn_events_.inc();

  std::vector<runtime::VpJob> jobs;
  std::vector<std::pair<std::size_t, net::AsId>> keys;
  std::size_t total_slices = 0;
  for (std::size_t vp = 0; vp < vps_.size(); ++vp) {
    total_slices += vp_targets_[vp].size();
    for (net::AsId as : vp_targets_[vp]) {
      if (!std::binary_search(dirty.begin(), dirty.end(), as)) continue;
      jobs.push_back(slice_job(vp, as));
      keys.emplace_back(vp, as);
    }
  }
  {
    obs::Span collect_span(tracer, "serve.collect");
    collect_span.note("dirty_slices", static_cast<std::int64_t>(keys.size()));
    std::vector<core::CollectedTraces> collected = executor_.collect(jobs);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      store_[keys[i].first][keys[i].second] = std::move(collected[i]);
    }
  }

  ChurnApplyStats stats;
  stats.dirty_targets = dirty.size();
  stats.dirty_slices = keys.size();
  stats.clean_slices = total_slices - keys.size();
  stats.epoch = epoch_;
  dirty_slices_.inc(stats.dirty_slices);
  clean_slices_.inc(stats.clean_slices);

  reinfer_and_publish(tracer);
  return stats;
}

void ServeEngine::reinfer_and_publish(obs::Tracer* tracer) {
  // Concatenate each VP's slices in target-AS order — the same order the
  // monolithic §5.3 schedule would have probed them.
  std::vector<core::CollectedTraces> per_vp(vps_.size());
  for (std::size_t vp = 0; vp < vps_.size(); ++vp) {
    for (const auto& [as, slice] : store_[vp]) {
      per_vp[vp].append(slice);
    }
  }
  std::vector<core::BdrmapResult> results;
  {
    obs::Span span(tracer, "serve.infer");
    results = infer_all(std::move(per_vp));
  }
  std::shared_ptr<const BorderMapSnapshot> snap;
  {
    obs::Span span(tracer, "serve.compile");
    snap = compile_snapshot(results, epoch_);
    span.note("prefixes", static_cast<std::int64_t>(snap->prefix_count()));
    span.note("borders",
              static_cast<std::int64_t>(snap->borders().size()));
  }
  handle_.publish(snap);
  compiles_.inc();
  last_results_ = std::move(results);
}

std::vector<core::BdrmapResult> ServeEngine::infer_all(
    std::vector<core::CollectedTraces> per_vp_traces) const {
  std::vector<runtime::VpJob> jobs;
  jobs.reserve(vps_.size());
  for (std::size_t vp = 0; vp < vps_.size(); ++vp) {
    jobs.push_back(infer_job(vp));
  }
  return executor_.infer(jobs, std::move(per_vp_traces));
}

std::shared_ptr<const BorderMapSnapshot> ServeEngine::compile_snapshot(
    const std::vector<core::BdrmapResult>& results,
    std::uint64_t epoch) const {
  std::vector<const core::BdrmapResult*> ptrs;
  ptrs.reserve(results.size());
  for (const core::BdrmapResult& r : results) ptrs.push_back(&r);
  return BorderMapSnapshot::compile(owned_prefixes(),
                                    core::merge_results(ptrs), epoch);
}

ServeEngine::Reference ServeEngine::recompute_reference() const {
  obs::Tracer* tracer = options_.obs ? options_.obs->tracer() : nullptr;
  obs::Span span(tracer, "serve.reference");
  // Fresh collection of EVERY slice with the cache's own seeds, bypassing
  // the cache entirely: what the incremental path must match bit-for-bit.
  std::vector<runtime::VpJob> jobs;
  std::vector<std::pair<std::size_t, net::AsId>> keys;
  for (std::size_t vp = 0; vp < vps_.size(); ++vp) {
    for (net::AsId as : vp_targets_[vp]) {
      jobs.push_back(slice_job(vp, as));
      keys.emplace_back(vp, as);
    }
  }
  std::vector<core::CollectedTraces> collected = executor_.collect(jobs);
  std::vector<core::CollectedTraces> per_vp(vps_.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    per_vp[keys[i].first].append(std::move(collected[i]));
  }
  Reference ref;
  ref.per_vp = infer_all(std::move(per_vp));
  ref.snapshot = compile_snapshot(ref.per_vp, epoch_);
  return ref;
}

}  // namespace bdrmap::serve
