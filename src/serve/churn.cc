#include "serve/churn.h"

#include <algorithm>
#include <utility>

#include "netbase/contract.h"

namespace bdrmap::serve {

namespace {

// Own splitmix64: the serve module is in lint.py's DETERMINISTIC_MODULES
// set (BDR102), so no <random>, no clocks.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string addr_str(net::Ipv4Addr a) {
  const std::uint32_t v = a.value();
  return std::to_string((v >> 24) & 0xff) + "." +
         std::to_string((v >> 16) & 0xff) + "." +
         std::to_string((v >> 8) & 0xff) + "." + std::to_string(v & 0xff);
}

std::string prefix_str(const net::Prefix& p) {
  return addr_str(p.network()) + "/" + std::to_string(p.length());
}

bool overlaps(const net::Prefix& a, const net::Prefix& b) {
  return a.contains(b) || b.contains(a);
}

// Does `as` appear in any candidate tier of tiers(src, dst)?
bool in_some_tier(const route::BgpSimulator& bgp, net::AsId src,
                  net::AsId dst, net::AsId as) {
  const auto& set = bgp.tiers(src, dst);
  for (const auto& tier : set.tiers) {
    if (std::find(tier.begin(), tier.end(), as) != tier.end()) return true;
  }
  return false;
}

}  // namespace

const char* churn_kind_name(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kWithdraw:
      return "withdraw";
    case ChurnKind::kAnnounce:
      return "announce";
    case ChurnKind::kLinkDown:
      return "link_down";
    case ChurnKind::kLinkUp:
      return "link_up";
    case ChurnKind::kRelChange:
      return "rel_change";
  }
  return "unknown";
}

std::string describe(const ChurnEvent& e) {
  std::string out = churn_kind_name(e.kind);
  switch (e.kind) {
    case ChurnKind::kWithdraw:
    case ChurnKind::kAnnounce:
      out += " " + prefix_str(e.prefix);
      break;
    case ChurnKind::kLinkDown:
    case ChurnKind::kLinkUp:
      out += " link " + std::to_string(e.link.value) + " AS" +
             std::to_string(e.as_a.value) + "-AS" +
             std::to_string(e.as_b.value);
      break;
    case ChurnKind::kRelChange:
      out += " AS" + std::to_string(e.as_a.value) + "-AS" +
             std::to_string(e.as_b.value) + " -> " +
             (e.new_rel == asdata::Relationship::kPeer
                  ? "p2p"
                  : e.new_rel == asdata::Relationship::kCustomer ? "c2p"
                                                                 : "other");
      break;
  }
  return out;
}

void apply_event(const ChurnEvent& e, route::BgpSimulator& bgp,
                 route::Fib& fib) {
  switch (e.kind) {
    case ChurnKind::kWithdraw:
      fib.set_prefix_withdrawn(e.prefix, true);
      break;
    case ChurnKind::kAnnounce:
      fib.set_prefix_withdrawn(e.prefix, false);
      break;
    case ChurnKind::kLinkDown:
      fib.set_link_state(e.link, false);
      break;
    case ChurnKind::kLinkUp:
      fib.set_link_state(e.link, true);
      break;
    case ChurnKind::kRelChange:
      // New candidate tiers can reshuffle hot-potato egress choices, so the
      // FIB's memoized decisions go too.
      bgp.set_relationship(e.as_a, e.as_b, e.new_rel);
      fib.invalidate_egress();
      break;
  }
}

std::vector<net::AsId> affected_targets(
    const ChurnEvent& e, const route::BgpSimulator& bgp,
    const topo::Internet& net, const std::vector<net::AsId>& targets) {
  std::vector<net::AsId> out;
  switch (e.kind) {
    case ChurnKind::kWithdraw:
    case ChurnKind::kAnnounce: {
      // State-independent: only probes into blocks covered by (or covering)
      // the prefix can change outcome, and those blocks' target ASes are
      // the origins of the overlapping announcements.
      for (const topo::AnnouncedPrefix& ap : net.announced()) {
        if (!overlaps(ap.prefix, e.prefix)) continue;
        if (std::find(targets.begin(), targets.end(), ap.origin) !=
                targets.end() &&
            std::find(out.begin(), out.end(), ap.origin) == out.end()) {
          out.push_back(ap.origin);
        }
      }
      break;
    }
    case ChurnKind::kLinkDown:
    case ChurnKind::kLinkUp:
    case ChurnKind::kRelChange: {
      // A path toward D through the (A, B) edge requires the counterpart
      // endpoint to be a next-hop candidate toward D from the other — so a
      // target outside this bound keeps its forwarding verbatim. The
      // endpoints themselves are always in (their own reachability is what
      // changed).
      for (net::AsId d : targets) {
        const bool endpoint = d == e.as_a || d == e.as_b;
        if (endpoint || in_some_tier(bgp, e.as_a, d, e.as_b) ||
            in_some_tier(bgp, e.as_b, d, e.as_a)) {
          out.push_back(d);
        }
      }
      break;
    }
  }
  return out;
}

ChurnStream::ChurnStream(const topo::Internet& net, std::uint64_t seed)
    : state_(seed ^ 0x5e7e5e7e5e7e5e7eULL) {
  for (const topo::InterdomainLinkInfo& info : net.interdomain_links()) {
    links_.push_back({info.link, info.as_a, info.as_b, false});
  }
  for (const topo::AnnouncedPrefix& ap : net.announced()) {
    prefixes_.push_back({ap.prefix, false});
  }
  // Unique ground-truth c2p AS pairs over the interdomain links: flipping
  // one to p2p (and back) preserves the valley-free hierarchy — no
  // provider cycle can appear — so the stream never wedges the simulator.
  const asdata::RelationshipStore& rels = net.truth_relationships();
  std::vector<std::pair<net::AsId, net::AsId>> seen;
  for (const LinkState& l : links_) {
    net::AsId customer, provider;
    if (rels.rel(l.as_a, l.as_b) == asdata::Relationship::kCustomer) {
      provider = l.as_a;
      customer = l.as_b;
    } else if (rels.rel(l.as_a, l.as_b) == asdata::Relationship::kProvider) {
      provider = l.as_b;
      customer = l.as_a;
    } else {
      continue;
    }
    auto key = std::make_pair(customer, provider);
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    rel_edges_.push_back({customer, provider, false});
  }
}

std::uint64_t ChurnStream::next_u64() { return splitmix64(state_); }

ChurnEvent ChurnStream::next() {
  BDRMAP_EXPECTS(!prefixes_.empty() || !links_.empty(),
                 "ChurnStream needs announced prefixes or interdomain links");
  // Candidate actions, in fixed order; the seeded stream picks among the
  // currently possible ones.
  enum Action { kDoWithdraw, kDoAnnounce, kDoLinkDown, kDoLinkUp, kDoRel };
  for (;;) {
    std::vector<Action> possible;
    auto count_if = [](const auto& v, auto pred) {
      return static_cast<std::size_t>(
          std::count_if(v.begin(), v.end(), pred));
    };
    const std::size_t up_prefixes =
        count_if(prefixes_, [](const PrefixState& p) { return !p.withdrawn; });
    const std::size_t down_prefixes = prefixes_.size() - up_prefixes;
    const std::size_t up_links =
        count_if(links_, [](const LinkState& l) { return !l.down; });
    const std::size_t down_links = links_.size() - up_links;
    // Keep at least half the prefixes/links alive so churn perturbs the
    // topology instead of demolishing it.
    if (up_prefixes > prefixes_.size() / 2) possible.push_back(kDoWithdraw);
    if (down_prefixes > 0) possible.push_back(kDoAnnounce);
    if (up_links > links_.size() / 2) possible.push_back(kDoLinkDown);
    if (down_links > 0) possible.push_back(kDoLinkUp);
    if (!rel_edges_.empty()) possible.push_back(kDoRel);
    BDRMAP_EXPECTS(!possible.empty(), "churn stream wedged");
    const Action act = possible[next_u64() % possible.size()];
    const std::uint64_t r = next_u64();
    ChurnEvent e;
    switch (act) {
      case kDoWithdraw:
      case kDoAnnounce: {
        const bool want = act == kDoAnnounce;  // pick a withdrawn one
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < prefixes_.size(); ++i) {
          if (prefixes_[i].withdrawn == want) idx.push_back(i);
        }
        PrefixState& p = prefixes_[idx[r % idx.size()]];
        p.withdrawn = !want;
        e.kind = want ? ChurnKind::kAnnounce : ChurnKind::kWithdraw;
        e.prefix = p.prefix;
        return e;
      }
      case kDoLinkDown:
      case kDoLinkUp: {
        const bool want = act == kDoLinkUp;  // pick a down one
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < links_.size(); ++i) {
          if (links_[i].down == want) idx.push_back(i);
        }
        LinkState& l = links_[idx[r % idx.size()]];
        l.down = !want;
        e.kind = want ? ChurnKind::kLinkUp : ChurnKind::kLinkDown;
        e.link = l.link;
        e.as_a = l.as_a;
        e.as_b = l.as_b;
        return e;
      }
      case kDoRel: {
        RelState& edge = rel_edges_[r % rel_edges_.size()];
        edge.flipped = !edge.flipped;
        e.kind = ChurnKind::kRelChange;
        e.as_a = edge.provider;
        e.as_b = edge.customer;
        // rel(provider, customer): customer-of normally, peer when flipped.
        e.new_rel = edge.flipped ? asdata::Relationship::kPeer
                                 : asdata::Relationship::kCustomer;
        return e;
      }
    }
  }
}

}  // namespace bdrmap::serve
