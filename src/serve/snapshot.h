// Immutable border-map snapshot: the read side of bdrmapd.
//
// A BorderMapSnapshot freezes one inference epoch — the merged multi-VP
// border map plus the public prefix-origin view — into a query structure
// a daemon can serve at millions of lookups per second:
//
//  * a path-compressed binary trie over the owned prefixes, flattened
//    into one contiguous node array (u32 child indices, no pointers),
//    answering longest-prefix "who owns IP X, and which of our borders
//    lead toward that owner?" lookups with a handful of cache lines;
//  * dense border/owner tables: one BorderRecord per merged interdomain
//    link with a flat per-border VP list answering the catchment-style
//    "which VPs' traffic crosses border B?" query (Sermpezis & Kotronis,
//    PAPERS.md), and a per-neighbor-AS index over the records.
//
// Snapshots are immutable after compile(): readers share them through
// serve::SnapshotHandle (RCU-style atomic swap, handle.h) and never
// synchronize with the writer that compiles the next epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/merge.h"
#include "netbase/ids.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"

namespace bdrmap::serve {

// One routed prefix with the owner the snapshot answers for it (the lowest
// origin AS of the prefix, matching asdata::OriginTable::origin).
struct OwnedPrefix {
  net::Prefix prefix;
  net::AsId owner;
};

// One interdomain link of the serving network, compiled from a
// core::MergedLink. Addresses are the canonical (lowest) interface address
// of the merged router on each side; zero when that side was silent
// (§5.4.8 placements / first-after-gap borders).
struct BorderRecord {
  net::AsId neighbor_as;
  core::Heuristic how = core::Heuristic::kNone;
  net::Ipv4Addr near_addr;
  net::Ipv4Addr far_addr;
  std::uint32_t vp_begin = 0;  // [vp_begin, vp_begin + vp_count) into
  std::uint32_t vp_count = 0;  // the snapshot's flat VP index array
};

class BorderMapSnapshot {
 public:
  struct Lookup {
    bool routed = false;
    net::AsId owner;                          // origin of the longest match
    const std::uint32_t* borders = nullptr;   // indices into borders()
    std::uint32_t border_count = 0;           // links toward owner's AS
  };

  // Compiles one epoch. `prefixes` is the routed-prefix view (any order;
  // duplicates keep the first owner), `map` the merged multi-VP result.
  static std::shared_ptr<const BorderMapSnapshot> compile(
      std::vector<OwnedPrefix> prefixes, const core::MergedMap& map,
      std::uint64_t epoch);

  // Longest-prefix match; routed == false for uncovered addresses.
  Lookup lookup(net::Ipv4Addr addr) const;

  const std::vector<BorderRecord>& borders() const { return borders_; }

  // Catchment: the VP indices (merge order) whose traffic crosses border
  // `b` — the VPs whose runs observed the link.
  const std::uint32_t* catchment(std::uint32_t b, std::uint32_t* count) const {
    const BorderRecord& r = borders_[b];
    *count = r.vp_count;
    return vp_index_.data() + r.vp_begin;
  }

  // Indices of every border whose neighbor is `as` (empty when `as` is not
  // a neighbor of the serving network).
  std::vector<std::uint32_t> borders_toward(net::AsId as) const;

  std::uint64_t epoch() const { return epoch_; }
  std::size_t prefix_count() const { return prefixes_.size(); }
  std::size_t node_count() const { return nodes_.size(); }

  // Structural hash over every table — two snapshots answering queries
  // identically hash identically (the bit-identity gates compare this).
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // Path-compressed trie node. Arriving at a node with `pos` address bits
  // consumed: first match `skip_len` further bits against `skip_bits`
  // (left-aligned fragment), then — if a prefix of length pos + skip_len
  // exists — record `value`, then branch on the next bit.
  struct Node {
    std::uint32_t child[2] = {kNil, kNil};
    std::int32_t value = -1;  // index into prefixes_ / slots_
    std::uint8_t skip_len = 0;
    std::uint32_t skip_bits = 0;
  };

  BorderMapSnapshot() = default;

  std::vector<Node> nodes_;  // nodes_[0] is the root (when non-empty)
  std::vector<OwnedPrefix> prefixes_;
  // Per prefix: the owner's [begin, count) slice of border_idx_.
  struct BorderSlice {
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };
  std::vector<BorderSlice> slots_;        // parallel to prefixes_
  std::vector<std::uint32_t> border_idx_;  // border indices grouped by AS
  std::vector<BorderRecord> borders_;
  std::vector<std::uint32_t> vp_index_;   // flat catchment lists
  // Sorted (neighbor AS -> slice of border_idx_) for borders_toward().
  std::vector<std::pair<net::AsId, BorderSlice>> by_as_;
  std::uint64_t epoch_ = 0;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace bdrmap::serve
