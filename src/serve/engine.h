// ServeEngine: incremental churn-driven re-inference behind a snapshot.
//
// The engine decomposes every vantage point's bdrmap run into per-target-AS
// *slices* — one (VP, target AS) unit of trace collection, keyed by the
// deterministic seed mix(base_seed, vp, as) — and keeps the collected
// traces of every slice cached across epochs. When a ChurnEvent arrives it
//
//   1. bounds the blast radius with churn.h's affected_targets() (union of
//      the bound before and after the event is applied, covering routes
//      that disappear and routes that appear),
//   2. re-collects ONLY the dirty (VP, target) slices through
//      runtime::MultiVpExecutor, reusing every clean slice verbatim,
//   3. re-runs the inference tail (alias resolution onward) for every VP
//      over the concatenated slices — inference is global per VP, and the
//      alias/confirmation probing consults the post-churn FIB — and
//   4. compiles and atomically publishes a fresh BorderMapSnapshot.
//
// The scheme is *exact*, not approximate: because each slice's collection
// seed depends only on (base_seed, vp, as) — never on the epoch — a cached
// clean slice is bit-identical to what a fresh collection would produce,
// and recompute_reference() exists so tests can hard-gate
// eval::same_border_map(incremental, from_scratch) on every scenario.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/bdrmap.h"
#include "obs/obs.h"
#include "route/fib.h"
#include "runtime/multi_vp.h"
#include "serve/churn.h"
#include "serve/handle.h"
#include "serve/snapshot.h"

namespace bdrmap::serve {

// One vantage point as the engine sees it: a seeded probe-stack factory
// (each collection slice and each inference pass gets its own services,
// seeded deterministically) plus the VP's read-only inference inputs.
struct VpContext {
  std::function<std::unique_ptr<probe::ProbeServices>(std::uint64_t seed)>
      make_services;
  core::InferenceInputs inputs;
};

struct EngineOptions {
  core::BdrmapConfig config;        // target_filter is engine-managed
  std::uint64_t base_seed = 0x515;  // scenario seed
  obs::Observability* obs = nullptr;
  runtime::ThreadPool* pool = nullptr;  // null: sequential baseline
};

// What one apply() did, for the daemon's log and the serve.* counters.
struct ChurnApplyStats {
  std::size_t dirty_targets = 0;  // union over old and new routing state
  std::size_t dirty_slices = 0;   // (VP, target) slices re-collected
  std::size_t clean_slices = 0;   // slices reused from the cache
  std::uint64_t epoch = 0;        // epoch the resulting snapshot carries
};

class ServeEngine {
 public:
  // References must outlive the engine. `bgp` and `fib` are the mutable
  // routing substrate the churn events are applied to; the engine is the
  // only writer and guarantees the quiescence their overlays require.
  ServeEngine(const topo::Internet& net, route::BgpSimulator& bgp,
              route::Fib& fib, std::vector<VpContext> vps,
              EngineOptions options);

  // Collects every slice from scratch and publishes epoch 0 (or, after
  // churn, the next epoch as a full rebuild). The identity baseline.
  void rebuild_full();

  // Applies one churn event and publishes the next epoch incrementally.
  ChurnApplyStats apply(const ChurnEvent& event);

  // From-scratch recompute of the CURRENT routing state through the same
  // slice pipeline and seeds, touching neither the cache nor the handle.
  // per_vp is job-ordered; snapshot carries the same epoch as the live one
  // — bit-identity gates compare both against the incremental results.
  struct Reference {
    std::vector<core::BdrmapResult> per_vp;
    std::shared_ptr<const BorderMapSnapshot> snapshot;
  };
  Reference recompute_reference() const;

  SnapshotHandle& handle() { return handle_; }
  const SnapshotHandle& handle() const { return handle_; }

  // Per-VP results of the most recent publish (job order).
  const std::vector<core::BdrmapResult>& last_results() const {
    return last_results_;
  }

  // Union of every VP's target ASes, sorted (the dirty-set domain).
  const std::vector<net::AsId>& targets() const { return targets_; }
  std::uint64_t epoch() const { return epoch_; }
  std::size_t vp_count() const { return vps_.size(); }

 private:
  std::uint64_t slice_seed(std::size_t vp, net::AsId as) const;
  std::uint64_t infer_seed(std::size_t vp) const;
  runtime::VpJob slice_job(std::size_t vp, net::AsId as) const;
  runtime::VpJob infer_job(std::size_t vp) const;
  std::vector<OwnedPrefix> owned_prefixes() const;

  // Concatenates each VP's cached slices (target-AS order), runs the
  // inference tails, merges, compiles, publishes.
  void reinfer_and_publish(obs::Tracer* tracer);
  std::vector<core::BdrmapResult> infer_all(
      std::vector<core::CollectedTraces> per_vp_traces) const;
  std::shared_ptr<const BorderMapSnapshot> compile_snapshot(
      const std::vector<core::BdrmapResult>& results,
      std::uint64_t epoch) const;

  const topo::Internet& net_;
  route::BgpSimulator& bgp_;
  route::Fib& fib_;
  std::vector<VpContext> vps_;
  EngineOptions options_;
  runtime::MultiVpExecutor executor_;

  std::vector<std::vector<net::AsId>> vp_targets_;  // sorted, per VP
  std::vector<net::AsId> targets_;                  // sorted union
  // The slice cache: per VP, per target AS, the collected traces. Sorted
  // map iteration reproduces the monolithic §5.3 schedule's AS order when
  // slices are concatenated.
  std::vector<std::map<net::AsId, core::CollectedTraces>> store_;
  // Prefixes currently withdrawn by churn; excluded from the snapshot's
  // routed view (and from recompute_reference's, identically).
  std::set<net::Prefix> withdrawn_;

  SnapshotHandle handle_;
  std::vector<core::BdrmapResult> last_results_;
  std::uint64_t epoch_ = 0;
  bool built_ = false;

  obs::Counter churn_events_;
  obs::Counter dirty_slices_;
  obs::Counter clean_slices_;
  obs::Counter compiles_;
};

}  // namespace bdrmap::serve
