// Routing churn: typed events, their application to the routing substrate,
// and the dirty-set analysis that makes re-inference incremental.
//
// A ChurnEvent models one control- or data-plane change between inference
// epochs: a BGP announcement or withdrawal, an interdomain link failing or
// recovering, or a business-relationship change (e.g. a customer depeering
// to settlement-free). apply_event() pushes the event into the
// route::BgpSimulator / route::Fib churn overlays; affected_targets()
// bounds which destination ASes the event can possibly reroute, so the
// serve engine re-collects only the (VP, target) slices in that bound and
// reuses every other slice's cached traces — with a hard bit-identity gate
// against full recomputation (tests/serve_incremental_test.cc).
//
// Quiescence contract: events are applied strictly between epochs, never
// while probes are in flight (the executor's fork/join provides the
// happens-before edge).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "route/fib.h"

namespace bdrmap::serve {

enum class ChurnKind : std::uint8_t {
  kWithdraw,   // `prefix` leaves BGP (no less-specific fallback; serving.md)
  kAnnounce,   // `prefix` is (re-)announced
  kLinkDown,   // interdomain `link` fails (data plane only)
  kLinkUp,     // interdomain `link` recovers
  kRelChange,  // rel(as_a, as_b) becomes `new_rel`
};

const char* churn_kind_name(ChurnKind kind);

struct ChurnEvent {
  ChurnKind kind = ChurnKind::kWithdraw;
  net::Prefix prefix;                // kWithdraw / kAnnounce
  topo::LinkId link;                 // kLinkDown / kLinkUp
  net::AsId as_a, as_b;              // link endpoints, or the rel pair
  asdata::Relationship new_rel = asdata::Relationship::kNone;  // kRelChange
};

std::string describe(const ChurnEvent& e);

// Applies one event to the substrate's churn overlays. Requires quiescence
// (see above): no concurrent forwarding or route queries.
void apply_event(const ChurnEvent& e, route::BgpSimulator& bgp,
                 route::Fib& fib);

// The destination ASes (drawn from `targets`) whose routing the event can
// have changed, in `bgp`'s CURRENT state. Prefix events are state-
// independent (origins of every announced prefix overlapping e.prefix).
// Link/relationship events on (A, B) taint target D when the other
// endpoint appears in some candidate tier of tiers(A, D) or tiers(B, D) —
// a tier value toward D can only move where the counterpart AS was (or
// becomes) a candidate — plus A and B themselves unconditionally. The
// engine takes the union of this bound evaluated before AND after
// apply_event, covering both routes that existed and routes that appear.
std::vector<net::AsId> affected_targets(const ChurnEvent& e,
                                        const route::BgpSimulator& bgp,
                                        const topo::Internet& net,
                                        const std::vector<net::AsId>& targets);

// Deterministic churn generator for the daemon, the bench and the tests:
// walks the ground-truth topology and emits a reproducible, seeded stream
// of consistent events (never withdraws a withdrawn prefix, never fails a
// failed link; relationship flips toggle c2p edges to p2p and back, which
// cannot create provider cycles). Uses its own splitmix64 so BDR102 keeps
// holding for the serve module.
class ChurnStream {
 public:
  ChurnStream(const topo::Internet& net, std::uint64_t seed);

  // The next event. Contracts (BDRMAP_EXPECTS) if the topology offers no
  // churnable state at all (no announced prefixes and no interdomain links).
  ChurnEvent next();

 private:
  std::uint64_t next_u64();

  struct LinkState {
    topo::LinkId link;
    net::AsId as_a, as_b;
    bool down = false;
  };
  struct PrefixState {
    net::Prefix prefix;
    bool withdrawn = false;
  };
  struct RelState {
    net::AsId customer, provider;  // ground-truth c2p edge
    bool flipped = false;          // currently overridden to p2p
  };

  std::uint64_t state_;
  std::vector<LinkState> links_;
  std::vector<PrefixState> prefixes_;
  std::vector<RelState> rel_edges_;
};

}  // namespace bdrmap::serve
