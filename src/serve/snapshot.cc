#include "serve/snapshot.h"

#include <algorithm>

#include "netbase/contract.h"

namespace bdrmap::serve {

namespace {

// FNV-1a, the repo's stock structural hash.
inline std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

// Mutable pointer-free trie used only during compilation.
struct BuildNode {
  std::uint32_t child[2] = {0, 0};  // 0 == none (root is never a child)
  std::int32_t value = -1;
};

inline std::uint32_t bit_at(std::uint32_t value, std::uint8_t pos) {
  return (value >> (31u - pos)) & 1u;
}

}  // namespace

std::shared_ptr<const BorderMapSnapshot> BorderMapSnapshot::compile(
    std::vector<OwnedPrefix> prefixes, const core::MergedMap& map,
    std::uint64_t epoch) {
  auto snap = std::shared_ptr<BorderMapSnapshot>(new BorderMapSnapshot());
  snap->epoch_ = epoch;

  // Canonical prefix order; duplicates keep the first owner (matching
  // OriginTable's first-wins add()).
  std::sort(prefixes.begin(), prefixes.end(),
            [](const OwnedPrefix& a, const OwnedPrefix& b) {
              return a.prefix != b.prefix ? a.prefix < b.prefix
                                          : a.owner < b.owner;
            });
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end(),
                             [](const OwnedPrefix& a, const OwnedPrefix& b) {
                               return a.prefix == b.prefix;
                             }),
                 prefixes.end());
  snap->prefixes_ = std::move(prefixes);

  // Border tables from the merged map, in link order.
  snap->borders_.reserve(map.links.size());
  for (const core::MergedLink& link : map.links) {
    BorderRecord rec;
    rec.neighbor_as = link.neighbor_as;
    rec.how = link.how;
    auto addr_of = [&](std::size_t router) {
      if (router == core::MergedLink::kNoRouter) return net::Ipv4Addr();
      const auto& addrs = map.routers[router].addrs;
      return addrs.empty() ? net::Ipv4Addr() : addrs.front();
    };
    rec.near_addr = addr_of(link.near_router);
    rec.far_addr = addr_of(link.far_router);
    rec.vp_begin = static_cast<std::uint32_t>(snap->vp_index_.size());
    for (std::size_t vp : link.seen_by) {
      snap->vp_index_.push_back(static_cast<std::uint32_t>(vp));
    }
    rec.vp_count = static_cast<std::uint32_t>(snap->vp_index_.size()) -
                   rec.vp_begin;
    snap->borders_.push_back(rec);
  }

  // Per-neighbor-AS grouping (links_by_as is already sorted by AS).
  for (const auto& [as, indices] : map.links_by_as) {
    BorderSlice slice;
    slice.begin = static_cast<std::uint32_t>(snap->border_idx_.size());
    for (std::size_t i : indices) {
      snap->border_idx_.push_back(static_cast<std::uint32_t>(i));
    }
    slice.count =
        static_cast<std::uint32_t>(snap->border_idx_.size()) - slice.begin;
    snap->by_as_.emplace_back(as, slice);
  }

  // Resolve each prefix owner to its border slice once, at compile time.
  snap->slots_.resize(snap->prefixes_.size());
  for (std::size_t i = 0; i < snap->prefixes_.size(); ++i) {
    const net::AsId owner = snap->prefixes_[i].owner;
    auto it = std::lower_bound(
        snap->by_as_.begin(), snap->by_as_.end(), owner,
        [](const auto& entry, net::AsId as) { return entry.first < as; });
    if (it != snap->by_as_.end() && it->first == owner) {
      snap->slots_[i] = it->second;
    }
  }

  // Uncompressed binary trie over the prefixes...
  std::vector<BuildNode> build(1);
  for (std::size_t i = 0; i < snap->prefixes_.size(); ++i) {
    const net::Prefix& p = snap->prefixes_[i].prefix;
    std::uint32_t cur = 0;
    for (std::uint8_t d = 0; d < p.length(); ++d) {
      const std::uint32_t b = bit_at(p.network().value(), d);
      if (build[cur].child[b] == 0) {
        build[cur].child[b] = static_cast<std::uint32_t>(build.size());
        build.emplace_back();
      }
      cur = build[cur].child[b];
    }
    if (build[cur].value < 0) build[cur].value = static_cast<std::int32_t>(i);
  }

  // ...then flatten with path compression: valueless single-child chains
  // collapse into the successor's skip fragment. Iterative DFS; children
  // are emitted after their parent, so child indices are patched when the
  // child is emitted.
  struct Work {
    std::uint32_t build_idx;
    std::uint32_t parent_flat;  // kNil for the root
    std::uint8_t parent_bit;
  };
  std::vector<Work> stack;
  if (!snap->prefixes_.empty()) stack.push_back({0, kNil, 0});
  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();
    Node flat;
    std::uint32_t cur = w.build_idx;
    while (build[cur].value < 0 &&
           (build[cur].child[0] == 0) != (build[cur].child[1] == 0)) {
      const std::uint8_t b = build[cur].child[1] != 0 ? 1 : 0;
      flat.skip_bits |= static_cast<std::uint32_t>(b)
                        << (31u - flat.skip_len);
      ++flat.skip_len;
      cur = build[cur].child[b];
    }
    flat.value = build[cur].value;
    const std::uint32_t flat_idx =
        static_cast<std::uint32_t>(snap->nodes_.size());
    snap->nodes_.push_back(flat);
    if (w.parent_flat != kNil) {
      snap->nodes_[w.parent_flat].child[w.parent_bit] = flat_idx;
    }
    for (std::uint8_t b = 0; b < 2; ++b) {
      if (build[cur].child[b] != 0) {
        stack.push_back({build[cur].child[b], flat_idx, b});
      }
    }
  }

  // Structural fingerprint over every table the queries read.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const OwnedPrefix& p : snap->prefixes_) {
    h = fnv(h, (std::uint64_t{p.prefix.network().value()} << 8) |
                   p.prefix.length());
    h = fnv(h, p.owner.value);
  }
  for (const BorderRecord& r : snap->borders_) {
    h = fnv(h, (std::uint64_t{r.neighbor_as.value} << 8) |
                   static_cast<std::uint64_t>(r.how));
    h = fnv(h, (std::uint64_t{r.near_addr.value()} << 32) |
                   r.far_addr.value());
    h = fnv(h, (std::uint64_t{r.vp_begin} << 32) | r.vp_count);
  }
  for (std::uint32_t v : snap->vp_index_) h = fnv(h, v);
  for (std::uint32_t v : snap->border_idx_) h = fnv(h, v);
  snap->fingerprint_ = h;
  return snap;
}

BorderMapSnapshot::Lookup BorderMapSnapshot::lookup(net::Ipv4Addr addr) const {
  Lookup out;
  if (nodes_.empty()) return out;
  const std::uint32_t value = addr.value();
  std::uint32_t node = 0;
  std::uint32_t pos = 0;  // bits consumed
  std::int32_t best = -1;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.skip_len > 0) {
      // Compare the compressed fragment in one shot: address bits
      // [pos, pos + skip_len) against the left-aligned skip_bits.
      if (pos + n.skip_len > 32) break;
      const std::uint32_t frag = (value << pos) &
                                 ~(n.skip_len == 32
                                       ? 0u
                                       : (~0u >> n.skip_len));
      if (frag != n.skip_bits) break;
      pos += n.skip_len;
    }
    if (n.value >= 0) best = n.value;
    if (pos >= 32) break;
    const std::uint32_t b = (value >> (31u - pos)) & 1u;
    if (n.child[b] == kNil) break;
    node = n.child[b];
    ++pos;
  }
  if (best < 0) return out;
  out.routed = true;
  out.owner = prefixes_[static_cast<std::size_t>(best)].owner;
  const BorderSlice& slice = slots_[static_cast<std::size_t>(best)];
  out.borders = border_idx_.data() + slice.begin;
  out.border_count = slice.count;
  return out;
}

std::vector<std::uint32_t> BorderMapSnapshot::borders_toward(
    net::AsId as) const {
  std::vector<std::uint32_t> out;
  auto it = std::lower_bound(
      by_as_.begin(), by_as_.end(), as,
      [](const auto& entry, net::AsId a) { return entry.first < a; });
  if (it == by_as_.end() || it->first != as) return out;
  out.assign(border_idx_.begin() + it->second.begin,
             border_idx_.begin() + it->second.begin + it->second.count);
  return out;
}

}  // namespace bdrmap::serve
