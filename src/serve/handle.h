// RCU-style snapshot publication: readers never sleep, never see a torn map.
//
// The daemon's query threads call current() — one spinlocked shared_ptr
// copy — and keep the returned snapshot alive for as long as their query
// runs, regardless of how many epochs the writer publishes meanwhile. The
// writer side (ServeEngine) serializes publications under a net::Mutex and
// swaps the pointer inside the same spinlock; the superseded snapshot is
// reclaimed by shared_ptr refcounting once its last in-flight reader drops
// it, outside any lock.
//
// Why not std::atomic<std::shared_ptr>: libstdc++ 12's _Sp_atomic unlocks
// the reader side of its internal spinlock with a RELAXED fetch_sub, so the
// reader's plain _M_ptr read is not ordered before a later writer's _M_ptr
// write — ThreadSanitizer (correctly, per the memory model) reports a data
// race under reader/swapper stress. This class implements the same
// pointer-sized spinlock protocol with proper acquire/release pairing:
// readers spin only for the handful of instructions a concurrent swap
// holds the latch, exactly like the library implementation, but every
// unlock is a release so the happens-before chain is complete.
//
// bench/bench_serve.cc measures exactly this read path under a concurrent
// swapper; tests/serve_handle_test.cc stress-tests it under tsan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "netbase/sync.h"
#include "serve/snapshot.h"

namespace bdrmap::serve {

class SnapshotHandle {
 public:
  using SnapshotPtr = std::shared_ptr<const BorderMapSnapshot>;

  // The snapshot live right now; nullptr before the first publish. The
  // latch acquire pairs with publish()'s release, so every table of the
  // snapshot is visible before the pointer is.
  SnapshotPtr current() const {
    lock_latch();
    SnapshotPtr copy = snap_;
    unlock_latch();
    return copy;
  }

  // Installs `next` as the live snapshot. Writers are serialized (the
  // version counter and the pointer move together); readers are never
  // waited on beyond the latch. The superseded snapshot's refcount drop —
  // potentially the destructor — runs after the latch is released.
  void publish(SnapshotPtr next) BDRMAP_EXCLUDES(mu_) {
    net::MutexLock lk(mu_);
    lock_latch();
    snap_.swap(next);
    unlock_latch();
    version_.fetch_add(1, std::memory_order_release);
  }

  // Number of publish() calls so far; strictly monotonic.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  void lock_latch() const {
    while (latch_.exchange(true, std::memory_order_acquire)) {
      // Spin; the holder only copies or swaps one shared_ptr.
    }
  }
  void unlock_latch() const { latch_.store(false, std::memory_order_release); }

  net::Mutex mu_;  // serializes writers only
  mutable std::atomic<bool> latch_{false};
  SnapshotPtr snap_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace bdrmap::serve
