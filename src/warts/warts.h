// Measurement persistence — a "warts-lite" container.
//
// The released bdrmap drives scamper, which archives raw measurements in
// warts files so analysis can be re-run offline. This module provides the
// equivalent for our pipeline: a versioned binary container for observed
// traces, plus a human-readable dump. The format is deliberately simple
// (magic, version, length-prefixed records, big-endian integers) and is
// round-trip tested; readers reject foreign or truncated files instead of
// misparsing them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/observations.h"

namespace bdrmap::warts {

inline constexpr char kMagic[4] = {'B', 'D', 'R', 'W'};
inline constexpr std::uint16_t kVersion = 1;

// Serializes traces to the stream. Throws std::runtime_error on I/O error.
void write_traces(std::ostream& out,
                  const std::vector<core::ObservedTrace>& traces);

// Parses a container written by write_traces. Throws std::runtime_error on
// bad magic, unsupported version, or truncation.
std::vector<core::ObservedTrace> read_traces(std::istream& in);

// Convenience file wrappers.
void save_traces(const std::string& path,
                 const std::vector<core::ObservedTrace>& traces);
std::vector<core::ObservedTrace> load_traces(const std::string& path);

// One line per trace: "dst target_as flags: hop hop ...". '*' marks lost
// hops, '!' suffixes echo replies.
std::string dump_text(const std::vector<core::ObservedTrace>& traces);

}  // namespace bdrmap::warts
