#include "warts/json.h"

#include <cstdio>

namespace bdrmap::warts {

void JsonWriter::separator() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::escape(std::string_view text) {
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  stack_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!stack_.empty()) stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  stack_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!stack_.empty()) stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separator();
  escape(name);
  out_ += ':';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separator();
  escape(text);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separator();
  out_ += std::to_string(number);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separator();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", number);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  separator();
  out_ += boolean ? "true" : "false";
  need_comma_ = true;
  return *this;
}

std::string result_to_json(const core::BdrmapResult& result) {
  JsonWriter w;
  const auto& routers = result.graph.routers();
  w.begin_object();

  w.key("stats").begin_object();
  w.key("probes_sent").value(result.stats.probes_sent);
  w.key("blocks").value(static_cast<std::uint64_t>(result.stats.blocks));
  w.key("traces").value(static_cast<std::uint64_t>(result.stats.traces));
  w.key("routers").value(static_cast<std::uint64_t>(result.stats.routers));
  w.key("vp_routers")
      .value(static_cast<std::uint64_t>(result.stats.vp_routers));
  w.key("neighbor_routers")
      .value(static_cast<std::uint64_t>(result.stats.neighbor_routers));
  w.end_object();

  w.key("neighbors").begin_array();
  for (const auto& [as, link_indices] : result.links_by_as) {
    w.begin_object();
    w.key("asn").value(static_cast<std::uint64_t>(as.value));
    w.key("links").begin_array();
    for (std::size_t index : link_indices) {
      const auto& link = result.links[index];
      w.begin_object();
      w.key("heuristic").value(core::heuristic_name(link.how));
      w.key("near_addrs").begin_array();
      if (link.vp_router != core::InferredLink::kNoRouter) {
        for (auto a : routers[link.vp_router].addrs) w.value(a.str());
      }
      w.end_array();
      w.key("far_addrs").begin_array();
      if (link.neighbor_router != core::InferredLink::kNoRouter) {
        for (auto a : routers[link.neighbor_router].addrs) w.value(a.str());
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

}  // namespace bdrmap::warts
