#include "warts/dot.h"

#include <map>
#include <set>

namespace bdrmap::warts {

namespace {

const char* heuristic_color(core::Heuristic h) {
  switch (h) {
    case core::Heuristic::kFirewall: return "lightcoral";
    case core::Heuristic::kOnenet: return "lightblue";
    case core::Heuristic::kRelationship: return "palegreen";
    case core::Heuristic::kHiddenPeer: return "gold";
    case core::Heuristic::kThirdParty: return "plum";
    case core::Heuristic::kSilent:
    case core::Heuristic::kOtherIcmp: return "lightgray";
    default: return "white";
  }
}

std::string node_name(std::size_t index) {
  return "r" + std::to_string(index);
}

}  // namespace

std::string result_to_dot(const core::BdrmapResult& result) {
  const auto& routers = result.graph.routers();
  std::string out = "digraph borders {\n  rankdir=LR;\n"
                    "  node [shape=box, style=filled, fontsize=9];\n";

  // VP-side cluster.
  out += "  subgraph cluster_vp {\n    label=\"VP network\";\n"
         "    style=dashed;\n";
  std::set<std::size_t> vp_nodes, far_nodes;
  for (const auto& link : result.links) {
    if (link.vp_router != core::InferredLink::kNoRouter) {
      vp_nodes.insert(link.vp_router);
    }
    if (link.neighbor_router != core::InferredLink::kNoRouter) {
      far_nodes.insert(link.neighbor_router);
    }
  }
  for (std::size_t v : vp_nodes) {
    out += "    " + node_name(v) + " [label=\"" +
           (routers[v].addrs.empty() ? std::string("?")
                                     : routers[v].addrs.front().str()) +
           "\", fillcolor=white];\n";
  }
  out += "  }\n";

  // Far-side routers, grouped per neighbor AS.
  std::map<net::AsId, std::vector<std::size_t>> by_as;
  for (std::size_t f : far_nodes) by_as[routers[f].owner].push_back(f);
  std::size_t cluster = 0;
  for (const auto& [as, nodes] : by_as) {
    out += "  subgraph cluster_" + std::to_string(cluster++) +
           " {\n    label=\"" + as.str() + "\";\n";
    for (std::size_t f : nodes) {
      out += "    " + node_name(f) + " [label=\"" +
             (routers[f].addrs.empty() ? std::string("?")
                                       : routers[f].addrs.front().str()) +
             "\", fillcolor=" + heuristic_color(routers[f].how) + "];\n";
    }
    out += "  }\n";
  }

  // Links (silent neighbors render as a synthetic node).
  std::size_t silent = 0;
  for (const auto& link : result.links) {
    std::string from = link.vp_router != core::InferredLink::kNoRouter
                           ? node_name(link.vp_router)
                           : "unknown_near";
    std::string to;
    if (link.neighbor_router != core::InferredLink::kNoRouter) {
      to = node_name(link.neighbor_router);
    } else {
      to = "silent" + std::to_string(silent++);
      out += "  " + to + " [label=\"" + link.neighbor_as.str() +
             " (silent)\", fillcolor=lightgray, style=\"filled,dotted\"];\n";
    }
    out += "  " + from + " -> " + to + " [label=\"" +
           core::heuristic_name(link.how) + "\", fontsize=7];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace bdrmap::warts
