#include "warts/warts.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace bdrmap::warts {

namespace {

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}
void put_u16(std::ostream& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
  put_u8(out, static_cast<std::uint8_t>(v));
}
void put_u32(std::ostream& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

std::uint8_t get_u8(std::istream& in) {
  int c = in.get();
  if (c == EOF) throw std::runtime_error("warts: truncated file");
  return static_cast<std::uint8_t>(c);
}
std::uint16_t get_u16(std::istream& in) {
  std::uint16_t hi = get_u8(in);
  return static_cast<std::uint16_t>((hi << 8) | get_u8(in));
}
std::uint32_t get_u32(std::istream& in) {
  std::uint32_t hi = get_u16(in);
  return (hi << 16) | get_u16(in);
}

}  // namespace

void write_traces(std::ostream& out,
                  const std::vector<core::ObservedTrace>& traces) {
  out.write(kMagic, sizeof(kMagic));
  put_u16(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(traces.size()));
  for (const auto& trace : traces) {
    put_u32(out, trace.dst.value());
    put_u32(out, trace.target_as.value);
    std::uint8_t flags = 0;
    if (trace.reached_dst) flags |= 0x1;
    if (trace.stopped_by_stopset) flags |= 0x2;
    put_u8(out, flags);
    put_u16(out, static_cast<std::uint16_t>(trace.hops.size()));
    for (const auto& hop : trace.hops) {
      put_u32(out, hop.addr.value());
      put_u8(out, static_cast<std::uint8_t>(hop.kind));
    }
  }
  if (!out) throw std::runtime_error("warts: write failed");
}

std::vector<core::ObservedTrace> read_traces(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("warts: bad magic");
  }
  std::uint16_t version = get_u16(in);
  if (version != kVersion) {
    throw std::runtime_error("warts: unsupported version " +
                             std::to_string(version));
  }
  std::uint32_t count = get_u32(in);
  std::vector<core::ObservedTrace> traces;
  traces.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    core::ObservedTrace trace;
    trace.dst = net::Ipv4Addr(get_u32(in));
    trace.target_as = net::AsId(get_u32(in));
    std::uint8_t flags = get_u8(in);
    trace.reached_dst = flags & 0x1;
    trace.stopped_by_stopset = flags & 0x2;
    std::uint16_t hops = get_u16(in);
    trace.hops.reserve(hops);
    for (std::uint16_t h = 0; h < hops; ++h) {
      core::ObservedHop hop;
      hop.addr = net::Ipv4Addr(get_u32(in));
      std::uint8_t kind = get_u8(in);
      if (kind > static_cast<std::uint8_t>(
                     probe::ReplyKind::kDestUnreachable)) {
        throw std::runtime_error("warts: bad hop kind");
      }
      hop.kind = static_cast<probe::ReplyKind>(kind);
      trace.hops.push_back(hop);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

void save_traces(const std::string& path,
                 const std::vector<core::ObservedTrace>& traces) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("warts: cannot open " + path);
  write_traces(out, traces);
}

std::vector<core::ObservedTrace> load_traces(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("warts: cannot open " + path);
  return read_traces(in);
}

std::string dump_text(const std::vector<core::ObservedTrace>& traces) {
  std::string out;
  for (const auto& trace : traces) {
    out += trace.dst.str();
    out += " ";
    out += trace.target_as.str();
    if (trace.reached_dst) out += " R";
    if (trace.stopped_by_stopset) out += " S";
    out += ":";
    for (const auto& hop : trace.hops) {
      out += " ";
      if (hop.kind == probe::ReplyKind::kNone) {
        out += "*";
        continue;
      }
      out += hop.addr.str();
      if (hop.kind == probe::ReplyKind::kEchoReply) out += "!";
      if (hop.kind == probe::ReplyKind::kDestUnreachable) out += "#";
    }
    out += "\n";
  }
  return out;
}

}  // namespace bdrmap::warts
