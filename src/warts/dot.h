// Graphviz export of the inferred border map.
//
// Renders the VP network's border as a dot graph: VP-side routers in one
// cluster, each neighbor AS grouped and colored by the heuristic that
// identified it. Feed to `dot -Tsvg` for the visual the paper's Figure 3
// gestures at.
#pragma once

#include <string>

#include "core/bdrmap.h"

namespace bdrmap::warts {

std::string result_to_dot(const core::BdrmapResult& result);

}  // namespace bdrmap::warts
