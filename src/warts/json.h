// Minimal JSON emission for bdrmap results.
//
// The deployed system feeds downstream analysis (the congestion project's
// probers, dashboards); a machine-readable export of the inferred border
// map is part of being adoptable. This is a small, dependency-free writer
// — emission only, correct string escaping, deterministic key order.
#pragma once

#include <string>

#include "core/bdrmap.h"

namespace bdrmap::warts {

// Streaming JSON writer with minimal state tracking.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view text);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(double number);
  JsonWriter& value(bool boolean);

  const std::string& str() const { return out_; }

 private:
  void separator();
  void escape(std::string_view text);

  std::string out_;
  // Tracks whether a value has been emitted at each nesting level.
  std::string stack_;  // '{' or '[' per level
  std::string pending_;
  bool need_comma_ = false;
};

// Serializes the inferred border map: per neighbor AS, its links with the
// heuristic used and the observed router addresses, plus run statistics.
std::string result_to_json(const core::BdrmapResult& result);

}  // namespace bdrmap::warts
