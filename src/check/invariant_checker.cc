#include "check/check.h"

#include <algorithm>

#include "check/passes.h"
#include "netbase/contract.h"

namespace bdrmap::check {

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

// ---------------------------------------------------------------------------
// ViolationSink
// ---------------------------------------------------------------------------

ViolationSink::ViolationSink(std::string pass_id, std::vector<Violation>& out,
                             std::size_t cap)
    : pass_id_(std::move(pass_id)), out_(out), cap_(cap) {
  BDRMAP_EXPECTS(!pass_id_.empty(), "violations must be attributable");
}

void ViolationSink::emit(Severity sev, std::string entity,
                         std::string detail) {
  ++seen_;
  if (seen_ == cap_ + 1) {
    out_.push_back({pass_id_, Severity::kWarning, "(sink)",
                    "further violations from this pass suppressed (cap " +
                        std::to_string(cap_) + ")"});
    return;
  }
  if (seen_ > cap_) return;
  out_.push_back({pass_id_, sev, std::move(entity), std::move(detail)});
}

// ---------------------------------------------------------------------------
// CheckReport
// ---------------------------------------------------------------------------

std::size_t CheckReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(), [](const auto& v) {
        return v.severity == Severity::kError;
      }));
}

std::size_t CheckReport::count(std::string_view pass_id) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [&](const auto& v) { return v.pass_id == pass_id; }));
}

std::vector<const Violation*> CheckReport::of_pass(
    std::string_view pass_id) const {
  std::vector<const Violation*> out;
  for (const auto& v : violations) {
    if (v.pass_id == pass_id) out.push_back(&v);
  }
  return out;
}

std::string CheckReport::summary() const {
  std::string out;
  out += "invariant audit: " + std::to_string(passes_run.size()) +
         " passes run, " + std::to_string(passes_skipped.size()) +
         " skipped, " + std::to_string(violations.size()) + " violations\n";
  for (const auto& v : violations) {
    out += "  [" + std::string(severity_name(v.severity)) + "] " + v.pass_id +
           ": " + v.entity + ": " + v.detail + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// InvariantChecker
// ---------------------------------------------------------------------------

InvariantChecker::InvariantChecker() {
  detail::register_as_graph_passes(*this);
  detail::register_route_passes(*this);
  detail::register_inference_passes(*this);
}

void InvariantChecker::register_pass(Pass pass) {
  BDRMAP_EXPECTS(!pass.id.empty() && pass.applicable != nullptr &&
                     pass.run != nullptr,
                 "a pass needs an id, a gate and a body");
  for (auto& existing : passes_) {
    if (existing.id == pass.id) {
      existing = std::move(pass);
      return;
    }
  }
  passes_.push_back(std::move(pass));
}

const InvariantChecker::Pass* InvariantChecker::find(
    std::string_view id) const {
  for (const auto& pass : passes_) {
    if (pass.id == id) return &pass;
  }
  return nullptr;
}

CheckReport InvariantChecker::run(const CheckContext& ctx,
                                  const std::vector<std::string>& ids) const {
  CheckReport report;
  auto selected = [&](const Pass& pass) {
    if (ids.empty()) return true;
    return std::find(ids.begin(), ids.end(), pass.id) != ids.end();
  };
  for (const auto& pass : passes_) {
    if (!selected(pass)) continue;
    if (!pass.applicable(ctx)) {
      report.passes_skipped.push_back(pass.id);
      continue;
    }
    ViolationSink sink(pass.id, report.violations);
    pass.run(ctx, sink);
    report.passes_run.push_back(pass.id);
  }
  for (const auto& id : ids) {
    if (find(id) == nullptr) report.passes_skipped.push_back(id);
  }
  return report;
}

CheckContext substrate_context(const topo::Internet& net,
                               const route::BgpSimulator& bgp,
                               const route::Fib& fib) {
  CheckContext ctx;
  ctx.net = &net;
  ctx.rels = &net.truth_relationships();
  ctx.bgp = &bgp;
  ctx.fib = &fib;
  return ctx;
}

CheckContext inference_context(const core::BdrmapResult& result,
                               const core::InferenceInputs& inputs) {
  CheckContext ctx;
  ctx.result = &result;
  ctx.inputs = &inputs;
  ctx.rels = inputs.rels;
  return ctx;
}

}  // namespace bdrmap::check
