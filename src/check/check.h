// Cross-layer invariant checking ("bdrmap-verify").
//
// bdrmap's inference is only as good as the structural invariants of its
// inputs and intermediate products: relationship symmetry and Gao-Rexford
// consistency in the AS graph (§3), valley-free RIB paths and FIB/RIB
// agreement in the routing substrate, alias-set and router-graph
// well-formedness (§5.3), and the precondition/owner discipline of the
// §5.4 heuristics. Silent violations of any of these corrupt every
// downstream border inference, so this subsystem makes them machine-checked:
// an InvariantChecker holds registered passes, each of which audits the
// slice of a CheckContext it understands and emits structured Violation
// records consumable by tests, tools/bdrmap_sim --audit, and
// tools/invariant_audit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "asdata/as_relationships.h"
#include "core/alias_resolution.h"
#include "core/bdrmap.h"
#include "core/heuristics.h"
#include "core/router_graph.h"
#include "route/bgp_sim.h"
#include "route/fib.h"
#include "topo/internet.h"

namespace bdrmap::check {

enum class Severity : std::uint8_t { kWarning, kError };

const char* severity_name(Severity s);

// One detected invariant violation, attributed to the pass that found it
// and the entity (AS pair, router, address, link...) at fault.
struct Violation {
  std::string pass_id;
  Severity severity = Severity::kError;
  std::string entity;  // culprit: "AS12<->AS7", "router#42", "10.0.0.1"
  std::string detail;  // what exactly is inconsistent
};

// Everything a pass may audit. All pointers are optional and non-owning; a
// pass whose required slices are absent is skipped (and reported as such).
struct CheckContext {
  // --- substrate layer ---
  const topo::Internet* net = nullptr;
  // Relationship input under audit. For substrate audits this is the ground
  // truth store; for inference audits it is the *inferred* store the
  // heuristics actually consume.
  const asdata::RelationshipStore* rels = nullptr;
  const route::BgpSimulator* bgp = nullptr;
  const route::Fib* fib = nullptr;

  // --- inference layer ---
  const core::RouterGraph* graph = nullptr;
  const core::BdrmapResult* result = nullptr;
  const core::InferenceInputs* inputs = nullptr;
  const core::AliasResolver* aliases = nullptr;
  const std::vector<std::vector<net::Ipv4Addr>>* alias_groups = nullptr;

  // Sampling bounds for the quadratic route-level checks. Deterministic for
  // a given sample_seed.
  std::size_t max_route_pairs = 2000;
  std::size_t max_fib_walks = 400;
  std::size_t max_walk_hops = 96;  // loop bound for forwarding walks
  std::uint64_t sample_seed = 1;

  // The router graph to audit: explicit `graph` wins, else the result's.
  const core::RouterGraph* effective_graph() const {
    if (graph != nullptr) return graph;
    return result != nullptr ? &result->graph : nullptr;
  }
};

// Where passes report findings; enforces a per-pass cap so a systemically
// corrupt input produces a bounded report instead of millions of records.
class ViolationSink {
 public:
  ViolationSink(std::string pass_id, std::vector<Violation>& out,
                std::size_t cap = kDefaultCap);

  void error(std::string entity, std::string detail) {
    emit(Severity::kError, std::move(entity), std::move(detail));
  }
  void warn(std::string entity, std::string detail) {
    emit(Severity::kWarning, std::move(entity), std::move(detail));
  }

  // Total violations seen, including ones dropped by the cap.
  std::size_t seen() const { return seen_; }

  static constexpr std::size_t kDefaultCap = 200;

 private:
  void emit(Severity sev, std::string entity, std::string detail);

  std::string pass_id_;
  std::vector<Violation>& out_;
  std::size_t cap_;
  std::size_t seen_ = 0;
};

struct CheckReport {
  std::vector<Violation> violations;
  std::vector<std::string> passes_run;
  std::vector<std::string> passes_skipped;  // required inputs absent

  bool clean() const { return violations.empty(); }
  std::size_t error_count() const;
  std::size_t count(std::string_view pass_id) const;
  std::vector<const Violation*> of_pass(std::string_view pass_id) const;
  // Human-readable multi-line summary (one line per violation).
  std::string summary() const;
};

// Built-in pass identifiers.
namespace pass_id {
inline constexpr std::string_view kAsGraphSymmetry = "as-graph.symmetry";
inline constexpr std::string_view kAsGraphGaoRexford = "as-graph.gao-rexford";
inline constexpr std::string_view kRibValleyFree = "rib.valley-free";
inline constexpr std::string_view kFibRibAgreement = "fib.rib-agreement";
inline constexpr std::string_view kRouterGraphStructure =
    "router-graph.structure";
inline constexpr std::string_view kAliasConsistency = "alias.consistency";
inline constexpr std::string_view kOwnerAssignment = "owner.assignment";
inline constexpr std::string_view kHeuristicPreconditions =
    "heuristic.preconditions";
}  // namespace pass_id

class InvariantChecker {
 public:
  using PassFn = std::function<void(const CheckContext&, ViolationSink&)>;
  using Gate = std::function<bool(const CheckContext&)>;

  struct Pass {
    std::string id;
    std::string description;
    Gate applicable;  // true when the context carries the needed inputs
    PassFn run;
  };

  // Constructs a checker with every built-in pass registered.
  InvariantChecker();

  // Registers an additional (or project-specific) pass. Ids are unique;
  // re-registering an id replaces the pass.
  void register_pass(Pass pass);

  const std::vector<Pass>& passes() const { return passes_; }
  const Pass* find(std::string_view id) const;

  // Runs every applicable pass (or only `ids` when non-empty; unknown ids
  // are reported as skipped).
  CheckReport run(const CheckContext& ctx,
                  const std::vector<std::string>& ids = {}) const;

 private:
  std::vector<Pass> passes_;
};

// --- convenience context builders ---

// Audits the routing substrate: AS graph, RIB, FIB.
CheckContext substrate_context(const topo::Internet& net,
                               const route::BgpSimulator& bgp,
                               const route::Fib& fib);

// Audits one VP's inference output against the inputs it consumed.
CheckContext inference_context(const core::BdrmapResult& result,
                               const core::InferenceInputs& inputs);

}  // namespace bdrmap::check
