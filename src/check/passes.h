// Internal registration hooks for the built-in invariant passes.
#pragma once

#include "check/check.h"

namespace bdrmap::check::detail {

// Each translation unit registers its passes on the given checker.
void register_as_graph_passes(InvariantChecker& checker);
void register_route_passes(InvariantChecker& checker);
void register_inference_passes(InvariantChecker& checker);

}  // namespace bdrmap::check::detail
