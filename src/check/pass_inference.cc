// Inference-layer invariant passes: router-graph well-formedness, alias-set
// consistency, owner-assignment discipline, and §5.4 heuristic
// preconditions. These audit the products of the inference core — the
// structures every reported border link is derived from.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/passes.h"

namespace bdrmap::check::detail {

namespace {

using core::GraphRouter;
using core::Heuristic;
using core::InferredLink;
using core::RouterGraph;
using net::AsId;
using net::Ipv4Addr;

std::string router_name(std::size_t i) { return "router#" + std::to_string(i); }

bool silent_heuristic(Heuristic h) {
  return h == Heuristic::kSilent || h == Heuristic::kOtherIcmp;
}

// ---------------------------------------------------------------------------
// router-graph.structure
// ---------------------------------------------------------------------------

void run_router_graph(const CheckContext& ctx, ViolationSink& sink) {
  const RouterGraph& graph = *ctx.effective_graph();
  const auto& routers = graph.routers();

  // Interface-to-router uniqueness: one observed address, one live router.
  std::unordered_map<Ipv4Addr, std::size_t> owner_of;
  for (std::size_t i = 0; i < routers.size(); ++i) {
    const GraphRouter& r = routers[i];
    if (graph.merged_away(i)) {
      if (!r.prev.empty() || !r.next.empty() || r.owner.valid()) {
        sink.error(router_name(i),
                   "merged-away router still carries adjacency or ownership");
      }
      continue;
    }
    for (Ipv4Addr a : r.addrs) {
      auto [it, inserted] = owner_of.emplace(a, i);
      if (!inserted) {
        sink.error(a.str(), "interface address appears in two live routers (" +
                                router_name(it->second) + " and " +
                                router_name(i) + ")");
      }
    }
    std::unordered_set<Ipv4Addr> addr_set(r.addrs.begin(), r.addrs.end());
    if (addr_set.size() != r.addrs.size()) {
      sink.error(router_name(i), "duplicate address inside one alias set");
    }
    for (Ipv4Addr a : r.ttl_addrs) {
      if (addr_set.count(a) == 0) {
        sink.error(router_name(i), "time-exceeded address " + a.str() +
                                       " is not in the router's alias set");
      }
    }
    auto check_adjacency = [&](const std::set<std::size_t>& side,
                               const char* dir) {
      for (std::size_t j : side) {
        if (j >= routers.size()) {
          sink.error(router_name(i), std::string(dir) +
                                         " adjacency index out of range: " +
                                         std::to_string(j));
          continue;
        }
        if (j == i) {
          sink.error(router_name(i), std::string("self-loop in ") + dir +
                                         " adjacency");
          continue;
        }
        if (graph.merged_away(j)) {
          sink.error(router_name(i), std::string(dir) +
                                         " adjacency references merged-away " +
                                         router_name(j));
        }
      }
    };
    check_adjacency(r.prev, "prev");
    check_adjacency(r.next, "next");
  }

  // Adjacency symmetry: i -> j observed means j lists i as a predecessor.
  for (std::size_t i = 0; i < routers.size(); ++i) {
    if (graph.merged_away(i)) continue;
    for (std::size_t j : routers[i].next) {
      if (j < routers.size() && !graph.merged_away(j) &&
          routers[j].prev.count(i) == 0) {
        sink.error(router_name(i), "asymmetric adjacency: next contains " +
                                       router_name(j) +
                                       " but its prev does not contain " +
                                       router_name(i));
      }
    }
    for (std::size_t j : routers[i].prev) {
      if (j < routers.size() && !graph.merged_away(j) &&
          routers[j].next.count(i) == 0) {
        sink.error(router_name(i), "asymmetric adjacency: prev contains " +
                                       router_name(j) +
                                       " but its next does not contain " +
                                       router_name(i));
      }
    }
  }

  // router_of agrees with the structures it indexes.
  for (const auto& [addr, idx] : owner_of) {
    auto found = graph.router_of(addr);
    if (!found.has_value() || *found != idx) {
      sink.error(addr.str(),
                 "router_of() disagrees with the router that lists the "
                 "address (index drift after a corrupting mutation)");
    }
  }
}

// ---------------------------------------------------------------------------
// alias.consistency
// ---------------------------------------------------------------------------

void run_alias_consistency(const CheckContext& ctx, ViolationSink& sink) {
  // The groups under audit: explicit alias groups when given, otherwise the
  // live routers' alias sets.
  std::vector<std::vector<Ipv4Addr>> graph_groups;
  const std::vector<std::vector<Ipv4Addr>>* groups = ctx.alias_groups;
  bool explicit_groups = groups != nullptr;
  if (!explicit_groups) {
    const RouterGraph& graph = *ctx.effective_graph();
    for (std::size_t i = 0; i < graph.routers().size(); ++i) {
      if (!graph.merged_away(i)) {
        graph_groups.push_back(graph.routers()[i].addrs);
      }
    }
    groups = &graph_groups;
  }

  // Disjointness (alias-set uniqueness).
  std::unordered_map<Ipv4Addr, std::size_t> group_of;
  for (std::size_t g = 0; g < groups->size(); ++g) {
    for (Ipv4Addr a : (*groups)[g]) {
      auto [it, inserted] = group_of.emplace(a, g);
      if (!inserted && it->second != g) {
        sink.error(a.str(), "address belongs to two alias groups (#" +
                                std::to_string(it->second) + " and #" +
                                std::to_string(g) + ")");
      }
    }
  }

  if (ctx.aliases == nullptr) return;
  for (const auto& pv : ctx.aliases->all_verdicts()) {
    auto ga = group_of.find(pv.a);
    auto gb = group_of.find(pv.b);
    bool both = ga != group_of.end() && gb != group_of.end();
    std::string ent = pv.a.str() + "/" + pv.b.str();
    if (pv.verdict == core::AliasVerdict::kAlias) {
      if (both && ga->second != gb->second) {
        sink.error(ent, "pair measured as aliases but split across groups "
                        "(symmetry/transitivity break)");
      }
    } else if (pv.verdict == core::AliasVerdict::kNotAlias) {
      if (both && ga->second == gb->second) {
        // The §5.4.7 analytic collapse may legitimately override probe-level
        // negative evidence, so graph-derived sets only warn.
        if (explicit_groups) {
          sink.error(ent, "pair with negative alias evidence placed in one "
                          "alias group");
        } else {
          sink.warn(ent, "router alias set contains a pair with negative "
                         "probe evidence (analytic collapse?)");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// owner.assignment
// ---------------------------------------------------------------------------

void run_owner_assignment(const CheckContext& ctx, ViolationSink& sink) {
  const core::BdrmapResult& result = *ctx.result;
  const RouterGraph& graph = result.graph;
  const auto& routers = graph.routers();

  // The universe of ASes an owner may legally come from: the VP's own
  // (sibling-expanded) ASes, anything in the relationship store, anything
  // originating a prefix, anything in the ground truth when present.
  std::unordered_set<AsId> known;
  if (ctx.inputs != nullptr) {
    known.insert(ctx.inputs->vp_ases.begin(), ctx.inputs->vp_ases.end());
    if (ctx.inputs->origins != nullptr) {
      for (const auto& [prefix, origins] : ctx.inputs->origins->all_prefixes()) {
        known.insert(origins.begin(), origins.end());
      }
    }
  }
  if (ctx.rels != nullptr) {
    for (AsId as : ctx.rels->all_ases()) known.insert(as);
  }
  if (ctx.net != nullptr) {
    for (const auto& info : ctx.net->ases()) known.insert(info.id);
  }

  for (std::size_t i = 0; i < routers.size(); ++i) {
    if (graph.merged_away(i)) continue;
    const GraphRouter& r = routers[i];
    if (r.how == Heuristic::kNone) {
      if (r.owner.valid()) {
        sink.error(router_name(i),
                   "owner assigned without a heuristic of record");
      }
      continue;
    }
    if (!r.owner.valid()) {
      sink.error(router_name(i),
                 std::string("heuristic ") + core::heuristic_name(r.how) +
                     " recorded but owner is invalid");
      continue;
    }
    if (!known.empty() && known.count(r.owner) == 0) {
      sink.error(router_name(i), "router owned by unknown AS " +
                                     r.owner.str() +
                                     " (absent from every input dataset)");
    }
  }

  // Link table discipline.
  for (std::size_t k = 0; k < result.links.size(); ++k) {
    const InferredLink& link = result.links[k];
    std::string ent = "link#" + std::to_string(k);
    if (!link.neighbor_as.valid()) {
      sink.error(ent, "inferred link with invalid neighbor AS");
    }
    if (link.vp_router == InferredLink::kNoRouter &&
        link.neighbor_router == InferredLink::kNoRouter) {
      sink.error(ent, "link anchored to no router on either side");
      continue;
    }
    auto check_side = [&](std::size_t idx, const char* side) -> const GraphRouter* {
      if (idx == InferredLink::kNoRouter) return nullptr;
      if (idx >= routers.size()) {
        sink.error(ent, std::string(side) + " router index out of range");
        return nullptr;
      }
      if (graph.merged_away(idx)) {
        sink.error(ent, std::string(side) + " router was merged away");
        return nullptr;
      }
      return &routers[idx];
    };
    const GraphRouter* near = check_side(link.vp_router, "near");
    const GraphRouter* far = check_side(link.neighbor_router, "far");
    if (near != nullptr && !near->vp_side) {
      sink.error(ent, "near side of an interdomain link is not a VP router");
    }
    if (far != nullptr) {
      if (far->vp_side) {
        sink.error(ent, "far side of an interdomain link is a VP router");
      }
      if (far->owner != link.neighbor_as) {
        sink.error(ent, "link neighbor AS " + link.neighbor_as.str() +
                            " disagrees with the far router's owner " +
                            far->owner.str());
      }
      if (far->how != link.how) {
        sink.error(ent, "link heuristic tag disagrees with the far router's");
      }
    }
  }

  // links_by_as is exactly the per-AS index of `links`.
  std::size_t indexed = 0;
  for (const auto& [as, indices] : result.links_by_as) {
    for (std::size_t k : indices) {
      ++indexed;
      if (k >= result.links.size()) {
        sink.error(as.str(), "links_by_as index out of range");
      } else if (result.links[k].neighbor_as != as) {
        sink.error(as.str(),
                   "links_by_as bucket contains a link to a different AS");
      }
    }
  }
  if (indexed != result.links.size()) {
    sink.error("links_by_as", "per-AS index covers " + std::to_string(indexed) +
                                  " links but the result holds " +
                                  std::to_string(result.links.size()));
  }
}

// ---------------------------------------------------------------------------
// heuristic.preconditions
// ---------------------------------------------------------------------------

void run_heuristic_preconditions(const CheckContext& ctx,
                                 ViolationSink& sink) {
  const core::BdrmapResult& result = *ctx.result;
  const RouterGraph& graph = result.graph;
  const auto& routers = graph.routers();

  std::unordered_set<AsId> vp_ases;
  if (ctx.inputs != nullptr) {
    vp_ases.insert(ctx.inputs->vp_ases.begin(), ctx.inputs->vp_ases.end());
  }

  for (std::size_t i = 0; i < routers.size(); ++i) {
    if (graph.merged_away(i)) continue;
    const GraphRouter& r = routers[i];
    if (silent_heuristic(r.how)) {
      sink.error(router_name(i),
                 std::string(core::heuristic_name(r.how)) +
                     " is a §5.4.8 neighbor placement and may not own a "
                     "visible router");
    }
    if (r.vp_side) {
      // §5.4.1: only the VP-network identification marks the near side.
      if (r.how != Heuristic::kVpNetwork) {
        sink.error(router_name(i),
                   std::string("vp_side router annotated by ") +
                       core::heuristic_name(r.how) +
                       " (only kVpNetwork may mark the near side)");
      }
      if (!vp_ases.empty() && r.owner.valid() &&
          vp_ases.count(r.owner) == 0) {
        sink.error(router_name(i), "vp_side router owned by non-VP AS " +
                                       r.owner.str());
      }
    } else if (r.how == Heuristic::kVpNetwork) {
      sink.error(router_name(i),
                 "kVpNetwork annotation on a router not marked vp_side");
    }
  }

  for (std::size_t k = 0; k < result.links.size(); ++k) {
    const InferredLink& link = result.links[k];
    std::string ent = "link#" + std::to_string(k);
    bool has_far = link.neighbor_router != InferredLink::kNoRouter;
    if (silent_heuristic(link.how)) {
      if (has_far) {
        sink.error(ent, "silent-neighbor link points at a visible far "
                        "router");
      }
      if (link.vp_router == InferredLink::kNoRouter) {
        sink.error(ent, "silent-neighbor link has no near router to attach "
                        "the neighbor to");
      }
    } else if (!has_far) {
      // Visible-heuristic links may omit the near side (first hop after a
      // gap) but never the far side.
      sink.error(ent, std::string("link tagged ") +
                          core::heuristic_name(link.how) +
                          " has no far router");
    }
    if (link.how == Heuristic::kNone) {
      sink.error(ent, "link emitted with no heuristic of record");
    }
  }
}

}  // namespace

void register_inference_passes(InvariantChecker& checker) {
  checker.register_pass(
      {std::string(pass_id::kRouterGraphStructure),
       "router graph is well-formed: unique interfaces, symmetric adjacency, "
       "clean tombstones",
       [](const CheckContext& ctx) { return ctx.effective_graph() != nullptr; },
       run_router_graph});
  checker.register_pass(
      {std::string(pass_id::kAliasConsistency),
       "alias groups are disjoint and agree with recorded pair verdicts",
       [](const CheckContext& ctx) {
         return ctx.alias_groups != nullptr ||
                (ctx.aliases != nullptr && ctx.effective_graph() != nullptr);
       },
       run_alias_consistency});
  checker.register_pass(
      {std::string(pass_id::kOwnerAssignment),
       "owner annotations come from known ASes and the link tables agree "
       "with them",
       [](const CheckContext& ctx) { return ctx.result != nullptr; },
       run_owner_assignment});
  checker.register_pass(
      {std::string(pass_id::kHeuristicPreconditions),
       "§5.4 heuristic tags respect their preconditions on routers and links",
       [](const CheckContext& ctx) { return ctx.result != nullptr; },
       run_heuristic_preconditions});
}

}  // namespace bdrmap::check::detail
