// AS-graph invariant passes: relationship symmetry and Gao-Rexford
// consistency. Relationship inputs come from external dumps (or from our own
// inferrer), both of which can be inconsistent; every §5.4.5 heuristic
// silently trusts them, so these passes audit the store itself.
#include <string>
#include <unordered_set>
#include <vector>

#include "check/passes.h"

namespace bdrmap::check::detail {

namespace {

using asdata::Relationship;
using asdata::RelationshipStore;
using net::AsId;

std::string pair_name(AsId a, AsId b) { return a.str() + "<->" + b.str(); }

const char* rel_name(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kProvider:
      return "provider";
    case Relationship::kPeer:
      return "peer";
    case Relationship::kNone:
      break;
  }
  return "none";
}

// Checks that rel(a,b) matches what a's adjacency list claims and that the
// reverse direction carries the inverted label.
void check_direction(const RelationshipStore& rels, AsId a, AsId b,
                     Relationship expected_ab, ViolationSink& sink) {
  Relationship ab = rels.rel(a, b);
  if (ab != expected_ab) {
    sink.error(pair_name(a, b),
               std::string("adjacency list says ") + rel_name(expected_ab) +
                   " but edge map says " + rel_name(ab));
    return;
  }
  Relationship ba = rels.rel(b, a);
  if (ba != invert(ab)) {
    sink.error(pair_name(a, b),
               std::string("asymmetric edge: rel(a,b)=") + rel_name(ab) +
                   " but rel(b,a)=" + rel_name(ba) + " (expected " +
                   rel_name(invert(ab)) + ")");
  }
}

void run_symmetry(const CheckContext& ctx, ViolationSink& sink) {
  const RelationshipStore& rels = *ctx.rels;
  for (AsId a : rels.all_ases()) {
    if (rels.rel(a, a) != Relationship::kNone) {
      sink.error(a.str(), "self-relationship recorded");
    }
    std::unordered_set<AsId> seen;
    auto note_duplicate = [&](AsId b) {
      if (!seen.insert(b).second) {
        sink.error(pair_name(a, b),
                   "neighbor appears in more than one adjacency list of the "
                   "same AS (conflicting labels)");
      }
    };
    for (AsId b : rels.providers(a)) {
      note_duplicate(b);
      check_direction(rels, a, b, Relationship::kProvider, sink);
    }
    for (AsId b : rels.customers(a)) {
      note_duplicate(b);
      check_direction(rels, a, b, Relationship::kCustomer, sink);
    }
    for (AsId b : rels.peers(a)) {
      note_duplicate(b);
      check_direction(rels, a, b, Relationship::kPeer, sink);
    }
    if (ctx.net != nullptr && !ctx.net->has_as(a)) {
      sink.warn(a.str(), "relationship edge references an AS that does not "
                         "exist in the topology");
    }
  }
}

void run_gao_rexford(const CheckContext& ctx, ViolationSink& sink) {
  const RelationshipStore& rels = *ctx.rels;
  std::vector<AsId> ases = rels.all_ases();

  // Provider->customer reachability must be acyclic: an AS inside its own
  // transitive customer cone makes Gao-Rexford routing divergent (§3).
  // Iterative DFS with tri-colour marking over customer edges.
  std::unordered_set<AsId> done;
  for (AsId root : ases) {
    if (done.count(root) != 0) continue;
    std::unordered_set<AsId> on_path;
    // Stack of (node, next-child-index) frames.
    std::vector<std::pair<AsId, std::size_t>> stack{{root, 0}};
    on_path.insert(root);
    while (!stack.empty()) {
      auto& [cur, child] = stack.back();
      const auto& kids = rels.customers(cur);
      if (child >= kids.size()) {
        on_path.erase(cur);
        done.insert(cur);
        stack.pop_back();
        continue;
      }
      AsId next = kids[child++];
      if (on_path.count(next) != 0) {
        sink.error(next.str(),
                   "customer-provider cycle: AS is inside its own customer "
                   "cone");
        continue;
      }
      if (done.count(next) != 0) continue;
      on_path.insert(next);
      stack.push_back({next, 0});
    }
  }

  // Every ground-truth interdomain interconnection should carry some
  // relationship; a link with none is invisible to the §5.4.5 heuristics.
  // Only meaningful when the store under audit is the substrate's own
  // (ground-truth) store: an *inferred* store is partial by nature — a VP
  // cannot observe relationships for links its traces never crossed — so
  // inference audits (ctx.result set) skip this completeness check.
  if (ctx.net != nullptr && ctx.result == nullptr) {
    for (const auto& info : ctx.net->interdomain_links()) {
      if (info.as_a == info.as_b) continue;
      if (rels.rel(info.as_a, info.as_b) == Relationship::kNone) {
        sink.warn(pair_name(info.as_a, info.as_b),
                  "interdomain link with no recorded relationship");
      }
    }
  }
}

}  // namespace

void register_as_graph_passes(InvariantChecker& checker) {
  checker.register_pass(
      {std::string(pass_id::kAsGraphSymmetry),
       "relationship edges are symmetric, self-free and label-consistent",
       [](const CheckContext& ctx) { return ctx.rels != nullptr; },
       run_symmetry});
  checker.register_pass(
      {std::string(pass_id::kAsGraphGaoRexford),
       "customer-provider hierarchy is acyclic; interdomain links have "
       "relationships",
       [](const CheckContext& ctx) { return ctx.rels != nullptr; },
       run_gao_rexford});
}

}  // namespace bdrmap::check::detail
