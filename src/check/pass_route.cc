// Routing-substrate invariant passes: valley-free RIB paths and FIB/RIB
// agreement. The BGP simulator and the router-level FIB are independent
// implementations of the same policy; these passes cross-examine them (and
// the relationship store they are supposed to obey) on deterministic samples.
#include <string>
#include <unordered_set>
#include <vector>

#include "check/passes.h"
#include "netbase/rng.h"

namespace bdrmap::check::detail {

namespace {

using asdata::Relationship;
using net::AsId;
using net::Ipv4Addr;
using net::RouterId;

std::string path_str(const std::vector<AsId>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += " ";
    out += path[i].str();
  }
  return out;
}

// Valley-free phase machine over one AS-level transition. Phase 0: still
// climbing (provider edges allowed); phase 1: crossed the single peer edge;
// phase 2: descending (customer edges only). Returns false on violation.
bool valley_step(const asdata::RelationshipStore& rels, AsId from, AsId to,
                 int& phase, std::string& why) {
  switch (rels.rel(from, to)) {
    case Relationship::kProvider:  // from's provider: climbing
      if (phase != 0) {
        why = "provider edge " + from.str() + "->" + to.str() +
              " after the path already went flat or down (valley)";
        return false;
      }
      return true;
    case Relationship::kPeer:
      if (phase != 0) {
        why = "second peer edge " + from.str() + "->" + to.str() +
              " on one path";
        return false;
      }
      phase = 1;
      return true;
    case Relationship::kCustomer:  // descending
      phase = 2;
      return true;
    case Relationship::kNone:
      break;
  }
  why = "consecutive path hops " + from.str() + "->" + to.str() +
        " have no relationship";
  return false;
}

void run_valley_free(const CheckContext& ctx, ViolationSink& sink) {
  const auto& ases = ctx.net->ases();
  if (ases.size() < 2) return;
  net::Rng rng(ctx.sample_seed);
  for (std::size_t n = 0; n < ctx.max_route_pairs; ++n) {
    AsId src = ases[rng.uniform(0, static_cast<std::uint32_t>(ases.size() - 1))].id;
    AsId dst = ases[rng.uniform(0, static_cast<std::uint32_t>(ases.size() - 1))].id;
    if (src == dst) continue;
    std::vector<AsId> path = ctx.bgp->as_path(src, dst);
    if (path.empty()) continue;  // unreachable is a legal outcome
    std::string ent = src.str() + "->" + dst.str();
    if (path.front() != src || path.back() != dst) {
      sink.error(ent, "as_path endpoints do not match the query: " +
                          path_str(path));
      continue;
    }
    std::unordered_set<AsId> seen(path.begin(), path.end());
    if (seen.size() != path.size()) {
      sink.error(ent, "AS-level loop in path: " + path_str(path));
      continue;
    }
    int phase = 0;
    std::string why;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!valley_step(*ctx.rels, path[i], path[i + 1], phase, why)) {
        sink.error(ent, why + " (path: " + path_str(path) + ")");
        break;
      }
    }
  }
}

// Follows the FIB hop by hop toward `dst`, auditing each step against the
// topology and the AS-level RIB. Returns true when the packet was delivered.
void audit_walk(const CheckContext& ctx, RouterId start, Ipv4Addr dst,
                ViolationSink& sink) {
  const topo::Internet& net = *ctx.net;
  const topo::AnnouncedPrefix* ap = net.announced_match(dst);
  if (ap == nullptr) return;
  AsId dst_as = ap->origin;
  AsId src_as = net.router(start).owner;
  bool expect_delivery = src_as == dst_as ||
                         ctx.bgp->reachable(src_as, dst_as);
  // Selective announcement (only_via_links) deliberately decouples the FIB
  // from RIB preference: when the pinned filter removes an AS's preferred
  // egress sessions, forwarding falls through to a lower tier and may cross
  // a second peer or provider edge. That detour is the §5.4.8 phenomenon
  // itself, not a defect, so valley-freeness is not enforced toward pinned
  // prefixes (loop, boundary and topology checks still are).
  bool pinned_dst = !ap->only_via_links.empty();
  // When dst is an interface address, the last hop delivers across the
  // destination subnet to whichever router physically holds it. On an
  // interdomain link that router belongs to the *far* AS — the address-space
  // phenomenon bdrmap is built around (§5.1) — so that single delivery edge
  // is exempt from the relationship audit.
  RouterId dst_router{};
  if (auto di = net.iface_at(dst)) dst_router = net.iface(*di).router;
  std::string ent = start.str() + "->" + dst.str();

  // One resolution for the whole audited walk (the same resolve-once
  // discipline the tracer uses on the fast path).
  const route::Fib::RouteQuery query = ctx.fib->query(dst);
  RouterId r = start;
  AsId cur_as = src_as;
  int phase = 0;
  std::unordered_set<std::uint32_t> visited{r.value};
  for (std::size_t hop = 0;; ++hop) {
    if (hop >= ctx.max_walk_hops) {
      sink.error(ent, "forwarding walk exceeded " +
                          std::to_string(ctx.max_walk_hops) +
                          " hops without delivery");
      return;
    }
    auto next = ctx.fib->next_hop(r, query);
    if (!next.has_value()) {
      if (ctx.fib->delivered_at(r, query)) return;  // clean delivery
      if (!expect_delivery) return;  // consistently unreachable
      // Selectively-announced prefixes may be legitimately unreachable from
      // ASes that cannot reach the chosen interconnects.
      if (!ap->only_via_links.empty()) {
        sink.warn(ent, "walk dead-ended on a selectively-announced prefix");
      } else {
        sink.error(ent, "RIB says " + src_as.str() + " can reach " +
                            dst_as.str() +
                            " but the FIB walk dead-ended at " + r.str());
      }
      return;
    }
    const auto& step = *next;
    const topo::Interface& in_iface = net.iface(step.ingress);
    if (in_iface.router != step.router) {
      sink.error(ent, "hop ingress interface does not belong to the hop "
                      "router (iface router " +
                          in_iface.router.str() + ", hop " +
                          step.router.str() + ")");
      return;
    }
    if (in_iface.link != step.link) {
      sink.error(ent, "hop ingress interface is not on the hop link");
      return;
    }
    const topo::Link& link = net.link(step.link);
    AsId next_as = net.router(step.router).owner;
    if (next_as != cur_as) {
      if (link.kind == topo::LinkKind::kInternal) {
        sink.error(ent, "packet crossed the AS boundary " + cur_as.str() +
                            "->" + next_as.str() +
                            " over an internal link (FIB/RIB mismatch)");
        return;
      }
      bool delivery_edge =
          dst_router.valid() && step.router == dst_router;
      if (ctx.rels != nullptr && !pinned_dst && !delivery_edge) {
        std::string why;
        if (!valley_step(*ctx.rels, cur_as, next_as, phase, why)) {
          sink.error(ent, "forwarding path not valley-free: " + why);
          return;
        }
      }
      cur_as = next_as;
    } else if (link.kind != topo::LinkKind::kInternal &&
               !step.crossed_interdomain) {
      // Crossing an interdomain link without changing AS is fine (parallel
      // links between the same pair are interdomain too), but the FIB must
      // label the crossing consistently.
      sink.warn(ent, "interdomain link crossed without the "
                     "crossed_interdomain flag");
    }
    if (!visited.insert(step.router.value).second) {
      sink.error(ent, "forwarding loop: " + step.router.str() +
                          " visited twice on the way to " + dst.str());
      return;
    }
    r = step.router;
  }
}

void run_fib_rib(const CheckContext& ctx, ViolationSink& sink) {
  const auto& routers = ctx.net->routers();
  const auto& announced = ctx.net->announced();
  if (routers.empty() || announced.empty()) return;
  net::Rng rng(ctx.sample_seed + 1);
  for (std::size_t n = 0; n < ctx.max_fib_walks; ++n) {
    const auto& router =
        routers[rng.uniform(0, static_cast<std::uint32_t>(routers.size() - 1))];
    const auto& ap =
        announced[rng.uniform(0,
                              static_cast<std::uint32_t>(announced.size() - 1))];
    // Probe an address inside the block, as bdrmap's tracer would.
    Ipv4Addr dst(ap.prefix.network().value() + 1);
    if (!ap.prefix.contains(dst)) dst = ap.prefix.network();
    audit_walk(ctx, router.id, dst, sink);
  }
}

}  // namespace

void register_route_passes(InvariantChecker& checker) {
  checker.register_pass(
      {std::string(pass_id::kRibValleyFree),
       "sampled RIB paths are loop-free, relationship-connected and "
       "valley-free",
       [](const CheckContext& ctx) {
         return ctx.net != nullptr && ctx.bgp != nullptr &&
                ctx.rels != nullptr;
       },
       run_valley_free});
  checker.register_pass(
      {std::string(pass_id::kFibRibAgreement),
       "sampled FIB walks terminate, stay loop-free and agree with the "
       "AS-level RIB",
       [](const CheckContext& ctx) {
         return ctx.net != nullptr && ctx.bgp != nullptr &&
                ctx.fib != nullptr;
       },
       run_fib_rib});
}

}  // namespace bdrmap::check::detail
