// Alias resolution: Ally, Mercator, MIDAR monotonicity, prefixscan, and the
// conflict-aware transitive closure (§5.3).
//
// Ally infers a shared central IP-ID counter from interleaved samples; we
// apply MIDAR's stricter test (non-overlapping samples must strictly
// increase, modulo one 16-bit wrap) and repeat the measurement five times at
// five-minute (virtual) intervals, discarding pairs any round rejects —
// exactly the paper's defence against coincidentally-overlapping counters.
// Mercator compares the source address of UDP port-unreachable replies.
// Prefixscan tests whether a traceroute hop is the inbound interface of a
// /30 or /31 point-to-point subnet by checking its subnet mate against the
// previous hop. The closure only merges pairs with no negative evidence.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "probe/types.h"

namespace bdrmap::core {

using net::Ipv4Addr;

struct AliasConfig {
  int ally_rounds = 5;             // repeated measurements (§5.3)
  double ally_round_interval = 300.0;  // five minutes apart
  int ally_samples = 6;            // interleaved a,b,a,b,a,b per round
  double ally_sample_gap = 0.5;    // seconds between samples in a round
  std::uint16_t ally_max_gap = 2000;  // max believable id jump per step
};

enum class AliasVerdict : std::uint8_t { kUnknown, kAlias, kNotAlias };

class AliasResolver {
 public:
  AliasResolver(probe::ProbeServices& services, AliasConfig config = {})
      : services_(services), config_(config) {}

  // Full pair test: Mercator first (cheap), then Ally+MIDAR. Results and
  // negative evidence are recorded for the closure. Cached per pair.
  AliasVerdict test_pair(Ipv4Addr a, Ipv4Addr b);

  // Individual techniques (also exposed for tests and ablation).
  AliasVerdict mercator(Ipv4Addr a, Ipv4Addr b);
  AliasVerdict ally(Ipv4Addr a, Ipv4Addr b);

  // Prefixscan: if `hop` has a /31 or /30 subnet mate that is an alias of
  // `prev_hop`, returns the mate — evidence that prev_hop—hop is a
  // point-to-point interdomain link and `hop` is the inbound interface.
  std::optional<Ipv4Addr> prefixscan(Ipv4Addr prev_hop, Ipv4Addr hop);

  // Records an externally-derived verdict (e.g. from prefixscan) so the
  // closure can use it.
  void declare(Ipv4Addr a, Ipv4Addr b, AliasVerdict v);

  // Cached verdict for a pair (kUnknown when untested). Never probes.
  AliasVerdict verdict_of(Ipv4Addr a, Ipv4Addr b) const;

  // Every recorded pair verdict, for the alias-consistency invariant pass
  // (check::pass_id::kAliasConsistency). Order is unspecified.
  struct PairVerdict {
    Ipv4Addr a, b;
    AliasVerdict verdict;
  };
  std::vector<PairVerdict> all_verdicts() const;

  // Partitions `addrs` into alias groups: transitive closure over positive
  // pairs, refusing any union between components that contain a negative
  // pair (§5.3 "only used pairs where none of the measurements suggested a
  // pair of IP addresses were not aliases").
  std::vector<std::vector<Ipv4Addr>> groups(
      const std::vector<Ipv4Addr>& addrs) const;

  std::size_t pair_tests() const { return cache_.size(); }

 private:
  static std::uint64_t key(Ipv4Addr a, Ipv4Addr b) {
    auto lo = std::min(a.value(), b.value());
    auto hi = std::max(a.value(), b.value());
    return (std::uint64_t{lo} << 32) | hi;
  }

  probe::ProbeServices& services_;
  AliasConfig config_;
  double clock_ = 0.0;  // virtual measurement time
  std::unordered_map<std::uint64_t, AliasVerdict> cache_;
  std::unordered_map<Ipv4Addr, std::optional<Ipv4Addr>> udp_sources_;
};

}  // namespace bdrmap::core
