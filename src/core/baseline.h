// Naive IP-AS baseline (the method bdrmap improves upon).
//
// The canonical approach (§3, §4): map every traceroute address to the
// origin AS of its longest matching BGP prefix, and call every consecutive
// hop pair with different origins an interdomain link. No alias resolution,
// no third-party handling, no relationship constraints. Huffaker et al.'s
// best router-ownership heuristic validated at 71% [17]; this baseline is
// the comparison point for bench_baseline.
#pragma once

#include <vector>

#include "asdata/bgp_origins.h"
#include "core/observations.h"
#include "core/owner_table.h"

namespace bdrmap::core {

struct BaselineLink {
  Ipv4Addr near_addr;
  Ipv4Addr far_addr;
  AsId near_as;
  AsId far_as;
};

struct BaselineResult {
  // Inferred owner per observed time-exceeded address: the origin of the
  // longest matching prefix (kNoAs when unrouted). Sorted flat vector with
  // std::map-identical contents and iteration order (owner_table.h).
  OwnerTable owners;
  // Consecutive-hop pairs whose IP-AS mappings differ, with the VP network
  // on the near side.
  std::vector<BaselineLink> links;
};

BaselineResult naive_ip_as(const std::vector<ObservedTrace>& traces,
                           const asdata::OriginTable& origins,
                           const std::vector<AsId>& vp_ases);

}  // namespace bdrmap::core
