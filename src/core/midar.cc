#include "core/midar.h"

#include <algorithm>
#include <cmath>

namespace bdrmap::core {

namespace {

// Unwraps b relative to a on the 16-bit counter circle, assuming the
// counter moved forward by less than half the space.
double forward_delta(std::uint16_t a, std::uint16_t b) {
  std::int32_t d = static_cast<std::int32_t>(b) - static_cast<std::int32_t>(a);
  if (d < 0) d += 0x10000;
  return static_cast<double>(d);
}

}  // namespace

void MidarResolver::resolve(const std::vector<Ipv4Addr>& addrs) {
  stats_ = Stats{};
  stats_.addresses = addrs.size();

  // --- Stage 1: estimation. Sample each address a few times, derive the
  // counter velocity and a projection to a common reference time.
  struct Track {
    Ipv4Addr addr;
    double velocity = 0.0;   // ids per second
    double projected = 0.0;  // projected counter value at reference_time
  };
  std::vector<Track> tracks;
  const double reference_time =
      clock_ + config_.estimation_samples * config_.estimation_gap + 60.0;

  for (Ipv4Addr addr : addrs) {
    std::vector<std::pair<double, std::uint16_t>> samples;
    double t = clock_;
    for (int i = 0; i < config_.estimation_samples; ++i) {
      auto id = services_.ipid_sample(addr, t);
      if (id) samples.emplace_back(t, *id);
      t += config_.estimation_gap;
    }
    if (samples.empty()) continue;
    ++stats_.responsive;
    if (samples.size() < 2) continue;

    // Velocity from first to last, requiring each step monotone-forward
    // and the total advance sane (MIDAR discards erratic counters).
    bool sane = true;
    double total = 0.0;
    bool all_zero = true;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      double step = forward_delta(samples[i - 1].second, samples[i].second);
      if (step > 0x8000) sane = false;  // likely random IDs
      total += step;
      all_zero &= samples[i].second == 0;
    }
    all_zero &= samples[0].second == 0;
    double span = samples.back().first - samples.front().first;
    if (!sane || all_zero || span <= 0.0) continue;
    double velocity = total / span;
    if (velocity > config_.max_velocity) continue;
    ++stats_.monotonic;

    Track track;
    track.addr = addr;
    track.velocity = velocity;
    track.projected = std::fmod(static_cast<double>(samples.back().second) +
                                    velocity *
                                        (reference_time - samples.back().first),
                                65536.0);
    tracks.push_back(track);
  }
  clock_ = reference_time;

  // --- Stage 2: discovery. Sort by projected value; a sliding window
  // pairs addresses whose projections are within tolerance (a shared
  // counter must project to the same value, modulo velocity error).
  std::sort(tracks.begin(), tracks.end(),
            [](const Track& a, const Track& b) {
              return a.projected < b.projected;
            });
  std::vector<std::pair<Ipv4Addr, Ipv4Addr>> candidates;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    std::size_t budget = config_.max_window_pairs;
    for (std::size_t j = i + 1; j < tracks.size() && budget > 0; ++j) {
      double gap = tracks[j].projected - tracks[i].projected;
      if (gap > config_.window_tolerance) {
        // Wrap-around window: the circle's seam needs one extra check.
        if (tracks[i].projected >
            65536.0 - config_.window_tolerance) {
          double wrapped = tracks[j].projected + 65536.0 -
                           tracks[i].projected;
          if (wrapped > 65536.0 + config_.window_tolerance) break;
        } else {
          break;
        }
      }
      candidates.emplace_back(tracks[i].addr, tracks[j].addr);
      --budget;
    }
  }
  stats_.candidate_pairs = candidates.size();

  // --- Stage 3: corroboration. The strict interleaved monotonic test
  // (the shared resolver's Ally+MIDAR machinery), with caching.
  for (const auto& [a, b] : candidates) {
    if (resolver_.test_pair(a, b) == AliasVerdict::kAlias) {
      ++stats_.confirmed;
    }
  }
}

}  // namespace bdrmap::core
