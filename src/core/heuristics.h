// The bdrmap ownership-inference heuristics (§5.4.1 – §5.4.8).
//
// Routers are visited in order of observed hop distance. Step 1 identifies
// the routers operated by the network hosting the VP (the near side of each
// interdomain link); steps 2-6 assign owners to far-side routers in
// decreasing order of available constraints; step 7 collapses analytic
// aliases on the near side; step 8 places neighbors whose routers never
// send time-exceeded messages.
//
// Two dispatchers run the same phase bodies (DESIGN.md §15): the legacy
// hard-coded ladder, and the registry-driven HeuristicEngine
// (core/heuristic_engine.h). With default config they are bit-identical.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asdata/as_relationships.h"
#include "asdata/bgp_origins.h"
#include "asdata/ixp.h"
#include "asdata/rir.h"
#include "asdata/siblings.h"
#include "core/router_graph.h"

namespace bdrmap::core {

class HeuristicEngine;

// The §5.2 input datasets, as the deployed tool receives them: a public
// (collector-derived) origin table, *inferred* relationships, IXP and RIR
// records, the global AS-to-organization table, and the manually curated
// sibling list of the VP's own network.
struct InferenceInputs {
  const asdata::OriginTable* origins = nullptr;
  const asdata::RelationshipStore* rels = nullptr;
  const asdata::IxpDirectory* ixps = nullptr;
  const asdata::RirDelegations* rir = nullptr;
  const asdata::SiblingTable* siblings = nullptr;
  std::vector<AsId> vp_ases;  // VP AS first, then its siblings
};

// Which dispatcher Heuristics::run() uses. Both execute the same phase
// bodies; the registry engine additionally honors rule_order /
// rule_overrides and counts skips per rule.
enum class HeuristicEngineKind : std::uint8_t {
  kLegacy,    // hard-coded §5.4.1→§5.4.8 ladder
  kRegistry,  // HeuristicEngine over HeuristicEngine::registry()
};

// Per-rule config override, keyed by registry slug. Registry engine only —
// the legacy ladder ignores overrides (it predates them and exists as the
// parity baseline).
struct HeuristicRuleOverride {
  // Overrides the rule's enable decision (wins over the legacy enable_*
  // booleans when set).
  std::optional<bool> enabled;
  // Scales every confidence the rule emits (clamped to [0,1]).
  std::optional<double> confidence_scale;
};

// Fire/skip accounting for one registry rule, in registration order.
struct HeuristicRuleStats {
  std::string slug;
  std::uint64_t fires = 0;  // assignments/placements made by the rule
  std::uint64_t skips = 0;  // times the engine skipped it (precondition/config)
};

struct HeuristicsConfig {
  bool enable_third_party = true;    // ablation: §5.4.5 steps 5.1/5.2
  bool enable_relationships = true;  // ablation: §5.4.5 entirely
  bool enable_analytic_alias = true; // ablation: §5.4.7
  // Data-oriented scan compilation (DESIGN.md §14): memoized address
  // classification, a single-pass first-external table shared by §5.4.3
  // and §5.4.5, and a per-organization trace index for §5.4.8. Pure
  // caching of deterministic lookups — inferences are bit-identical
  // either way; `false` restores the per-call scans and exists so
  // benchmarks can measure the pre-§14 baseline.
  bool enable_compiled_scans = true;
  // Addresses confirmed as inbound interfaces by timestamp probing [26]:
  // routers whose external addresses are all confirmed are exempt from
  // third-party reclassification. Not owned; may be null.
  const std::unordered_set<Ipv4Addr>* confirmed_inbound = nullptr;
  // DESIGN.md §15: dispatcher selection plus registry-only knobs.
  HeuristicEngineKind engine = HeuristicEngineKind::kRegistry;
  // Slugs to run first, in the given order; unknown slugs are ignored and
  // every unnamed rule follows in registration order (the deterministic
  // tie-break). Empty means pure paper order.
  std::vector<std::string> rule_order;
  // Per-slug overrides (registry engine only; std::map keeps iteration —
  // and therefore any diagnostics — deterministic).
  std::map<std::string, HeuristicRuleOverride> rule_overrides;
};

// How an address maps through the public BGP view.
enum class AddrClass : std::uint8_t {
  kVp,        // originated by the VP network (or RIR-attributed to it)
  kExternal,  // originated by some other network
  kIxp,       // inside a known IXP peering LAN (IP-AS mapping meaningless)
  kUnrouted,  // no covering announcement
};

struct AddrInfo {
  AddrClass cls = AddrClass::kUnrouted;
  AsId origin;  // valid for kExternal (lowest origin of the longest match)
};

// A §5.4.8 inference: a neighbor with no visible router, attached to a
// specific VP border router.
struct UncooperativeNeighbor {
  std::size_t vp_router;  // index into the router graph
  AsId neighbor;
  Heuristic how;  // kSilent or kOtherIcmp
  // Inference strength in [0,1] (DESIGN.md §15); excluded from
  // eval::same_border_map.
  double confidence = 0.0;
};

class Heuristics {
 public:
  Heuristics(RouterGraph& graph, const InferenceInputs& in,
             HeuristicsConfig config = {});

  // Runs all phases, mutating the graph's ownership annotations, and
  // returns the §5.4.8 placements. Dispatches on config().engine.
  std::vector<UncooperativeNeighbor> run();

  // Classification of an observed address (valid after construction).
  AddrInfo classify(Ipv4Addr addr) const;

  // nextas(r): the most common provider among the destination ASes probed
  // through the router (§5.4 final paragraph).
  AsId nextas(std::size_t router) const;

  const HeuristicsConfig& config() const { return config_; }
  const InferenceInputs& inputs() const { return in_; }

  // Fire/skip counters per registry rule (registration order), valid after
  // run(). The legacy ladder fills fires too (same phase bodies); skips are
  // only counted by the registry engine.
  const std::vector<HeuristicRuleStats>& rule_stats() const {
    return rule_stats_;
  }

 private:
  friend class HeuristicEngine;

  // Sentinel for current_rule_: no rule is firing.
  static constexpr std::size_t kNoRule = static_cast<std::size_t>(-1);

  bool is_vp_as(AsId as) const;
  // Representative AS for sibling-collapsing comparisons.
  AsId org_rep(AsId as) const;
  // The longest-match/IXP/RIR lookup behind classify(); classify() itself
  // memoizes this when enable_compiled_scans is set (the inputs are fixed
  // after construction, so the mapping never changes).
  AddrInfo classify_uncached(Ipv4Addr addr) const;
  // One pass over all traces filling first_external_table_ for every
  // router at once (valid until the first merge; built lazily, and only
  // consulted by the pre-merge phases 3 and 5).
  void build_first_external_table() const;
  bool all_vp(const GraphRouter& r) const;
  // Distinct external origins over the router's time-exceeded addresses.
  std::vector<AsId> external_origins(const GraphRouter& r) const;
  // External origins of the first routed hop after `router` in each trace.
  std::vector<AsId> first_external_after(std::size_t router) const;
  // External origins (with address counts) over adjacent next routers.
  std::unordered_map<AsId, int> adjacent_origin_counts(
      std::size_t router) const;

  // nextas() with the vote tallies behind it, so callers can turn the
  // majority share into a confidence (DESIGN.md §15).
  struct ScoredNextas {
    AsId as;        // kNoAs when no external destinations were seen
    int best = 0;   // votes for the winner
    int total = 0;  // all votes cast
  };
  ScoredNextas nextas_scored(std::size_t router) const;

  void extend_vp_space();            // §5.4.1 RIR delegation extension
  void phase1_vp_network();          // §5.4.1
  void phase2_firewall();            // §5.4.2
  void phase3_unrouted();            // §5.4.3
  void phase4_onenet();              // §5.4.4
  void phase5_relationships();       // §5.4.5
  void phase6_counting();            // §5.4.6
  void phase7_analytic_alias();      // §5.4.7
  std::vector<UncooperativeNeighbor> phase8_uncooperative();  // §5.4.8

  // The hard-coded ladder (HeuristicEngineKind::kLegacy).
  std::vector<UncooperativeNeighbor> run_legacy();

  void assign(std::size_t router, AsId owner, Heuristic how, bool vp_side,
              double confidence);
  // Credits the currently-firing rule's fire counter (no-op between rules).
  void note_fire();

  RouterGraph& graph_;
  const InferenceInputs& in_;
  HeuristicsConfig config_;
  AsId vp_as_;  // primary VP AS
  // Unrouted blocks attributed to the VP network via RIR delegations.
  std::vector<net::Prefix> vp_extra_blocks_;
  // enable_compiled_scans caches (DESIGN.md §14). Mutable: they memoize
  // const lookups without changing observable results.
  mutable std::unordered_map<Ipv4Addr, AddrInfo> classify_cache_;
  mutable std::vector<std::vector<AsId>> first_external_table_;
  mutable bool first_external_built_ = false;
  // Per-rule accounting (registration order; see HeuristicEngine).
  std::vector<HeuristicRuleStats> rule_stats_;
  std::size_t current_rule_ = kNoRule;
  double confidence_scale_ = 1.0;
};

}  // namespace bdrmap::core
