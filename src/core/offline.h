// Offline re-analysis of archived traces.
//
// Researchers re-run inference over warts archives without the original
// vantage point (and thus without any probing): alias resolution must come
// from the traces themselves — the APAR-style analytic inference — and the
// §5.4 heuristics run unchanged. This is the workflow the paper enables by
// releasing the tool: collected once, analyzed many times.
#pragma once

#include <vector>

#include "core/apar.h"
#include "core/bdrmap.h"

namespace bdrmap::core {

struct OfflineConfig {
  bool analytic_aliases = true;  // run APAR over the archive
  HeuristicsConfig heuristics;
};

// Rebuilds the border map from archived traces. `inputs` are the same §5.2
// datasets the original run used (or newer editions of them).
BdrmapResult analyze_offline(std::vector<ObservedTrace> traces,
                             const InferenceInputs& inputs,
                             OfflineConfig config = {});

}  // namespace bdrmap::core
