// Doubletree-style stop set (§5.3, citing Donnet et al. [10]).
//
// For each target AS, bdrmap records the first address originated by an
// external network seen in each trace; later traceroutes toward the same AS
// stop when they reach an address already in the set, so probing does not
// repeatedly cross the same interdomain link. Keyed per target AS because
// the same near-border address can lead to different far networks.
//
// NOT thread-safe, by design: a stop set belongs to exactly one Bdrmap
// instance (one VP). The paper keys stopping on what THIS vantage point
// has already seen — sharing a set across concurrently-running VPs would
// both race and change inference results (a VP would stop on another
// VP's observations). runtime::MultiVpExecutor therefore never shares
// one; Bdrmap::run() additionally contracts against re-entry.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "netbase/ids.h"
#include "netbase/ipv4.h"

namespace bdrmap::core {

class StopSet {
 public:
  void add(net::AsId target_as, net::Ipv4Addr addr) {
    sets_[target_as].insert(addr);
  }

  bool contains(net::AsId target_as, net::Ipv4Addr addr) const {
    auto it = sets_.find(target_as);
    return it != sets_.end() && it->second.count(addr) > 0;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& [as, set] : sets_) n += set.size();
    return n;
  }

 private:
  std::unordered_map<net::AsId, std::unordered_set<net::Ipv4Addr>> sets_;
};

}  // namespace bdrmap::core
