#include "core/bdrmap.h"

#include <algorithm>
#include <cctype>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "core/midar.h"
#include "netbase/contract.h"

namespace bdrmap::core {

namespace {

// "1. VP network" -> "1_vp_network": registry-safe counter suffixes that
// stay recognisably the paper's rule names.
std::string heuristic_slug(Heuristic h) {
  std::string slug;
  for (char c : std::string_view(heuristic_name(h))) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  if (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

// Publishes the finished run to the registry: pipeline stats plus one
// core.heuristic.<slug> fire count per §5.4 rule that placed a router or a
// link. Post-hoc over the result — the counters can never perturb it.
void publish_result(const BdrmapResult& result,
                    obs::MetricsRegistry* registry) {
  if (!registry) return;
  registry->counter("core.blocks").inc(result.stats.blocks);
  registry->counter("core.traces").inc(result.stats.traces);
  registry->counter("core.alias_pair_tests")
      .inc(result.stats.alias_pair_tests);
  registry->counter("core.routers").inc(result.stats.routers);
  registry->counter("core.vp_routers").inc(result.stats.vp_routers);
  registry->counter("core.neighbor_routers")
      .inc(result.stats.neighbor_routers);
  registry->counter("core.stopset_hits").inc(result.stats.stopset_hits);
  registry->counter("core.probe_failures").inc(result.stats.probe_failures);
  registry->counter("core.links").inc(result.links.size());
  // Compiled-view footprint (gauges: last run wins; per-VP engines racing
  // here is fine, the values are diagnostics, not inference inputs).
  registry->gauge("core.arena.bytes_reserved")
      .set(static_cast<std::int64_t>(result.stats.arena_bytes_reserved));
  registry->gauge("core.arena.bytes_used")
      .set(static_cast<std::int64_t>(result.stats.arena_bytes_used));
  registry->gauge("core.arena.allocations")
      .set(static_cast<std::int64_t>(result.stats.arena_allocations));

  // Confidence histograms share their observation sites with the per-tag
  // fire counters below, so for every tag the histogram's total count
  // equals the counter's value (tools/check_obs.py relies on this).
  // Buckets are basis points of the [0,1] confidence.
  const std::vector<std::uint64_t> kConfidenceBounds{2500, 5000, 7500, 9000,
                                                     10000};
  auto observe_confidence = [&](Heuristic how, double confidence) {
    registry
        ->histogram("core.heuristic." + heuristic_slug(how) + ".confidence",
                    kConfidenceBounds)
        .observe(static_cast<std::uint64_t>(confidence * 10000.0 + 0.5));
  };
  const auto& routers = result.graph.routers();
  for (std::size_t n = 0; n < routers.size(); ++n) {
    if (result.graph.merged_away(n)) continue;
    const GraphRouter& router = routers[n];
    if (router.vp_side || router.how == Heuristic::kNone) continue;
    registry->counter("core.heuristic." + heuristic_slug(router.how)).inc();
    observe_confidence(router.how, router.confidence);
  }
  // §5.4.8 placements have no router of their own — count them from the
  // link they produced.
  for (const InferredLink& link : result.links) {
    if (link.neighbor_router == InferredLink::kNoRouter) {
      registry->counter("core.heuristic." + heuristic_slug(link.how)).inc();
      observe_confidence(link.how, link.confidence);
    }
  }
  // Registry-engine accounting (DESIGN.md §15): how often each §5.4 rule
  // family placed something, and how often it was skipped outright.
  for (const HeuristicRuleStats& rule : result.rule_stats) {
    registry->counter("core.heuristic." + rule.slug + ".fires")
        .inc(rule.fires);
    registry->counter("core.heuristic." + rule.slug + ".skips")
        .inc(rule.skips);
  }
}

}  // namespace

std::vector<AsId> BdrmapResult::neighbor_ases() const {
  std::vector<AsId> out;
  out.reserve(links_by_as.size());
  for (const auto& [as, indices] : links_by_as) out.push_back(as);
  return out;
}

Bdrmap::Bdrmap(probe::ProbeServices& services, const InferenceInputs& inputs,
               BdrmapConfig config)
    : services_(services), inputs_(inputs), config_(config) {}

std::vector<ObservedTrace> Bdrmap::collect_traces() {
  std::vector<ObservedTrace> traces;
  obs::Span schedule_span(tracer(), "stage.schedule");
  auto blocks = build_probe_blocks(*inputs_.origins, inputs_.vp_ases);
  if (!config_.target_filter.empty()) {
    const auto& filter = config_.target_filter;
    std::erase_if(blocks, [&](const ProbeBlock& b) {
      return std::find(filter.begin(), filter.end(), b.target_as) ==
             filter.end();
    });
  }
  stats_.blocks = blocks.size();
  schedule_span.note("blocks", static_cast<std::int64_t>(blocks.size()));
  schedule_span.close();

  obs::Span trace_span(tracer(), "stage.trace");

  auto is_vp = [&](AsId as) {
    return std::find(inputs_.vp_ases.begin(), inputs_.vp_ases.end(), as) !=
           inputs_.vp_ases.end();
  };
  // "External" for retry/stop-set purposes: routed and not the VP network.
  auto external_origin = [&](Ipv4Addr addr) -> AsId {
    const auto* set = inputs_.origins->origins(addr);
    if (!set || set->empty()) return AsId{};
    for (AsId o : *set) {
      if (is_vp(o)) return AsId{};
    }
    return set->front();
  };

  // First destination probed in a block (§5.3): skip the network address
  // of real prefixes, probe tiny ones from their first address.
  auto first_dst = [](const ProbeBlock& block) {
    return block.prefix.size() >= 4
               ? Ipv4Addr(block.prefix.first().value() + 1)
               : block.prefix.first();
  };
  std::vector<Ipv4Addr> wave;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    // Announce the next wave of first destinations so a local engine can
    // pre-walk their forward paths in one lockstep batch. Retry probes
    // (attempt > 0) fall back to solo walks inside trace().
    if (config_.probe_wave > 0 && bi % config_.probe_wave == 0) {
      wave.clear();
      const std::size_t end =
          std::min(bi + config_.probe_wave, blocks.size());
      for (std::size_t j = bi; j < end; ++j) {
        wave.push_back(first_dst(blocks[j]));
      }
      services_.prewalk_wave(wave);
    }
    const ProbeBlock& block = blocks[bi];
    int attempts = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(config_.max_addrs_per_block),
        block.prefix.size()));
    Ipv4Addr dst = first_dst(block);
    for (int attempt = 0; attempt < attempts; ++attempt, dst = dst.next()) {
      if (!block.prefix.contains(dst)) break;
      probe::StopFn stop = nullptr;
      if (config_.enable_stop_set) {
        stop = [&](Ipv4Addr a) { return stopset_.contains(block.target_as, a); };
      }
      probe::TraceResult raw = services_.trace(dst, stop);
      if (raw.failed) {
        // The channel abandoned this probe. Record the unmeasured target
        // and fall through to the next address of the block (§5.3's retry
        // discipline) instead of aborting the run.
        ++stats_.probe_failures;
        failures_.push_back({dst, block.target_as});
        continue;
      }
      ObservedTrace trace = observe(raw, block.target_as);
      if (trace.stopped_by_stopset) ++stats_.stopset_hits;

      // Record the first externally-originated address for the stop set,
      // and decide whether this block needs another address (§5.3: retry
      // when nothing external was observed, or when the only external
      // address was the probed address itself).
      bool saw_external = false;
      for (std::size_t i = 0; i < trace.hops.size(); ++i) {
        const auto& hop = trace.hops[i];
        if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
        AsId origin = external_origin(hop.addr);
        if (origin.valid()) {
          // Never stop on the first hop: a gateway answering with
          // provider-assigned space would otherwise blind every
          // subsequent trace toward this AS.
          if (!saw_external && i > 0) {
            stopset_.add(block.target_as, hop.addr);
          }
          saw_external = true;
          break;
        }
      }
      traces.push_back(std::move(trace));
      if (saw_external) break;
    }
  }
  stats_.traces = traces.size();
  trace_span.note("traces", static_cast<std::int64_t>(traces.size()));
  trace_span.note("stopset_hits",
                  static_cast<std::int64_t>(stats_.stopset_hits));
  return traces;
}

std::vector<std::vector<Ipv4Addr>> Bdrmap::resolve_aliases(
    const std::vector<ObservedTrace>& traces) {
  obs::Span alias_span(tracer(), "stage.alias");
  // Every address observed in a time-exceeded reply participates.
  std::vector<Ipv4Addr> ttl_addrs;
  std::unordered_set<Ipv4Addr> seen;
  // Fan-out/fan-in candidate groups: addresses sharing a predecessor may be
  // per-destination reply addresses of one router (Figure 13 / virtual
  // routers); addresses sharing a successor may be parallel interfaces.
  std::unordered_map<Ipv4Addr, std::vector<Ipv4Addr>> successors;
  std::unordered_map<Ipv4Addr, std::vector<Ipv4Addr>> predecessors;
  // Consecutive hop pairs for prefixscan.
  std::vector<std::pair<Ipv4Addr, Ipv4Addr>> adjacent;

  for (const auto& trace : traces) {
    Ipv4Addr prev;
    bool prev_valid = false;
    for (const auto& hop : trace.hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) {
        prev_valid = false;
        continue;
      }
      if (seen.insert(hop.addr).second) ttl_addrs.push_back(hop.addr);
      if (prev_valid && prev != hop.addr) {
        auto& succ = successors[prev];
        if (std::find(succ.begin(), succ.end(), hop.addr) == succ.end()) {
          succ.push_back(hop.addr);
          predecessors[hop.addr].push_back(prev);
          adjacent.emplace_back(prev, hop.addr);
        }
      }
      prev = hop.addr;
      prev_valid = true;
    }
  }

  if (!config_.enable_alias_resolution) {
    std::vector<std::vector<Ipv4Addr>> singletons;
    singletons.reserve(ttl_addrs.size());
    for (Ipv4Addr a : ttl_addrs) singletons.push_back({a});
    stats_.alias_pair_tests = 0;
    return singletons;
  }

  AliasResolver resolver(services_, config_.alias);

  // Prefixscan over observed point-to-point hops (§5.3): confirms inbound
  // interfaces and yields near-side aliases.
  for (const auto& [prev, hop] : adjacent) {
    resolver.prefixscan(prev, hop);
  }

  // Pairwise tests within candidate groups (capped for probe economy).
  auto test_group = [&](const std::vector<Ipv4Addr>& group) {
    std::size_t limit = std::min(group.size(), config_.max_candidate_group);
    for (std::size_t i = 0; i < limit; ++i) {
      for (std::size_t j = i + 1; j < limit; ++j) {
        resolver.test_pair(group[i], group[j]);
      }
    }
  };
  for (const auto& [addr, group] : successors) {
    if (group.size() > 1) test_group(group);
  }
  for (const auto& [addr, group] : predecessors) {
    if (group.size() > 1) test_group(group);
  }

  if (config_.enable_midar_discovery) {
    obs::Span midar_span(tracer(), "stage.midar");
    MidarResolver midar(services_, resolver);
    midar.resolve(ttl_addrs);
  }

  stats_.alias_pair_tests = resolver.pair_tests();
  alias_span.note("pair_tests",
                  static_cast<std::int64_t>(stats_.alias_pair_tests));
  return resolver.groups(ttl_addrs);
}

std::unordered_set<Ipv4Addr> Bdrmap::confirm_inbound(
    const std::vector<ObservedTrace>& traces) {
  std::unordered_set<Ipv4Addr> confirmed;
  if (!config_.enable_timestamp_checks) return confirmed;
  auto is_vp = [&](AsId as) {
    return std::find(inputs_.vp_ases.begin(), inputs_.vp_ases.end(), as) !=
           inputs_.vp_ases.end();
  };
  std::unordered_set<Ipv4Addr> tested;
  for (const auto& trace : traces) {
    // First externally-mapped hop: the address third-party detection would
    // reason about (§5.4.5); one timestamp probe settles it when honored.
    for (const auto& hop : trace.hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
      const auto* set = inputs_.origins->origins(hop.addr);
      if (!set || set->empty()) continue;
      bool vp_originated = false;
      for (AsId o : *set) vp_originated |= is_vp(o);
      if (vp_originated) continue;
      if (tested.insert(hop.addr).second) {
        auto verdict = services_.timestamp_probe(trace.dst, hop.addr);
        if (verdict && *verdict) confirmed.insert(hop.addr);
      }
      break;
    }
  }
  return confirmed;
}

BdrmapResult infer_borders(RouterGraph graph, const InferenceInputs& inputs,
                           const HeuristicsConfig& config,
                           BdrmapStats stats) {
  BdrmapResult result{std::move(graph), {}, {}, {}, {}, {}};
  Heuristics heuristics(result.graph, inputs, config);
  auto uncooperative = heuristics.run();
  result.rule_stats = heuristics.rule_stats();
  const InferenceInputs& inputs_ = inputs;  // keep the body below uniform

  // The graph is final from here on: compile the SoA/CSR view once and
  // run every scan below over its contiguous arrays (DESIGN.md §14).
  net::Arena arena;
  const CompiledGraph cg = result.graph.compile(arena);

  // Routers that are the first non-VP router of some trace (counting only
  // time-exceeded hops): these border the VP network even when the hop
  // before them never answered. Hop addresses were resolved to router
  // indices at compile time, so this is a pure array walk.
  // BDRMAP_HOT_BEGIN(infer_scan)
  std::uint8_t* follows_vp = arena.allocate<std::uint8_t>(cg.router_count);
  for (std::uint32_t t = 0; t < cg.trace_count; ++t) {
    for (std::uint32_t i = cg.trace_offsets[t]; i < cg.trace_offsets[t + 1];
         ++i) {
      const std::uint32_t r = cg.trace_hops[i];
      if (cg.vp_side[r]) continue;
      follows_vp[r] = 1;
      break;
    }
  }

  // Emit router-level interdomain links: every (VP-side router -> inferred
  // neighbor router) adjacency, plus first-after-gap borders, plus the
  // §5.4.8 placements for otherwise-uncovered neighbors.
  auto org_of = [&](AsId as) {
    if (!inputs_.siblings) return as;
    auto sibs = inputs_.siblings->siblings_of(as);
    return sibs.empty() ? as : sibs.front();
  };
  std::unordered_set<AsId> linked_orgs;
  for (std::uint32_t n = 0; n < cg.router_count; ++n) {
    if (!cg.live[n]) continue;
    if (cg.vp_side[n] ||
        cg.how[n] == static_cast<std::uint8_t>(Heuristic::kNone) ||
        !cg.owner[n].valid()) {
      continue;
    }
    const auto how = static_cast<Heuristic>(cg.how[n]);
    bool any_near = false;
    for (std::uint32_t i = cg.prev_offsets[n]; i < cg.prev_offsets[n + 1];
         ++i) {
      const std::uint32_t p = cg.prev[i];
      if (cg.vp_side[p]) {
        result.links.push_back({p, n, cg.owner[n], how, cg.confidence[n]});
        any_near = true;
      }
    }
    if (!any_near && follows_vp[n]) {
      result.links.push_back(
          {InferredLink::kNoRouter, n, cg.owner[n], how, cg.confidence[n]});
      any_near = true;
    }
    if (any_near) linked_orgs.insert(org_of(cg.owner[n]));
  }
  // BDRMAP_HOT_END(infer_scan)
  for (const auto& u : uncooperative) {
    if (linked_orgs.count(org_of(u.neighbor))) continue;
    result.links.push_back(
        {u.vp_router, InferredLink::kNoRouter, u.neighbor, u.how,
         u.confidence});
  }

  for (std::size_t i = 0; i < result.links.size(); ++i) {
    result.links_by_as[result.links[i].neighbor_as].push_back(i);
  }

  stats.routers = 0;
  for (std::uint32_t n = 0; n < cg.router_count; ++n) {
    if (!cg.live[n]) continue;
    ++stats.routers;
    if (cg.vp_side[n]) {
      ++stats.vp_routers;
    } else if (cg.how[n] != static_cast<std::uint8_t>(Heuristic::kNone)) {
      ++stats.neighbor_routers;
    }
  }
  const net::Arena::Stats& arena_stats = arena.stats();
  stats.arena_bytes_reserved = arena_stats.bytes_reserved;
  stats.arena_bytes_used = arena_stats.bytes_used;
  stats.arena_allocations = arena_stats.allocations;
  result.stats = stats;
  return result;
}

BdrmapResult Bdrmap::run() {
  // Each instance is single-threaded INTERNALLY: the stop set, stats and
  // failure log mutate without locks, and services_ is stateful (RNG,
  // probe counters). Multi-VP parallelism (runtime::MultiVpExecutor) gives
  // every VP its own instance + services; a second thread entering the
  // same instance is a bug we fail loudly on rather than corrupt silently.
  const bool reentered = running_.exchange(true, std::memory_order_acq_rel);
  BDRMAP_EXPECTS(!reentered,
                 "core::Bdrmap is single-threaded per instance; run() "
                 "re-entered concurrently");
  struct RunGuard {
    std::atomic<bool>& flag;
    ~RunGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  obs::Span run_span(tracer(), "bdrmap.run");

  std::vector<ObservedTrace> traces = collect_traces();
  auto groups = resolve_aliases(traces);
  auto confirmed = confirm_inbound(traces);

  HeuristicsConfig heuristics_config = config_.heuristics;
  if (config_.enable_timestamp_checks) {
    heuristics_config.confirmed_inbound = &confirmed;
  }
  stats_.probes_sent = services_.probes_sent();

  obs::Span merge_span(tracer(), "stage.merge");
  RouterGraph graph(std::move(traces), groups);
  merge_span.close();

  obs::Span heuristics_span(tracer(), "stage.heuristics");
  BdrmapResult result =
      infer_borders(std::move(graph), inputs_, heuristics_config, stats_);
  heuristics_span.note("links", static_cast<std::int64_t>(result.links.size()));
  heuristics_span.close();

  result.failed_targets = std::move(failures_);
  run_span.note("probes_sent",
                static_cast<std::int64_t>(result.stats.probes_sent));
  publish_result(result, registry());
  return result;
}

CollectedTraces Bdrmap::collect() {
  const bool reentered = running_.exchange(true, std::memory_order_acq_rel);
  BDRMAP_EXPECTS(!reentered,
                 "core::Bdrmap is single-threaded per instance; collect() "
                 "re-entered concurrently");
  struct RunGuard {
    std::atomic<bool>& flag;
    ~RunGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  obs::Span collect_span(tracer(), "bdrmap.collect");
  CollectedTraces out;
  out.traces = collect_traces();
  out.failures = std::move(failures_);
  out.probes_sent = services_.probes_sent();
  out.blocks = stats_.blocks;
  out.stopset_hits = stats_.stopset_hits;
  out.probe_failures = stats_.probe_failures;
  collect_span.note("traces", static_cast<std::int64_t>(out.traces.size()));
  return out;
}

BdrmapResult Bdrmap::run_with(CollectedTraces collected) {
  const bool reentered = running_.exchange(true, std::memory_order_acq_rel);
  BDRMAP_EXPECTS(!reentered,
                 "core::Bdrmap is single-threaded per instance; run_with() "
                 "re-entered concurrently");
  struct RunGuard {
    std::atomic<bool>& flag;
    ~RunGuard() { flag.store(false, std::memory_order_release); }
  } guard{running_};

  obs::Span run_span(tracer(), "bdrmap.run");

  stats_.blocks = collected.blocks;
  stats_.stopset_hits = collected.stopset_hits;
  stats_.probe_failures = collected.probe_failures;
  stats_.traces = collected.traces.size();
  failures_ = std::move(collected.failures);
  std::vector<ObservedTrace> traces = std::move(collected.traces);

  auto groups = resolve_aliases(traces);
  auto confirmed = confirm_inbound(traces);

  HeuristicsConfig heuristics_config = config_.heuristics;
  if (config_.enable_timestamp_checks) {
    heuristics_config.confirmed_inbound = &confirmed;
  }
  // Collection probes were spent by another services object; the tail's
  // own alias/timestamp probes add on top.
  stats_.probes_sent = collected.probes_sent + services_.probes_sent();

  obs::Span merge_span(tracer(), "stage.merge");
  RouterGraph graph(std::move(traces), groups);
  merge_span.close();

  obs::Span heuristics_span(tracer(), "stage.heuristics");
  BdrmapResult result =
      infer_borders(std::move(graph), inputs_, heuristics_config, stats_);
  heuristics_span.note("links", static_cast<std::int64_t>(result.links.size()));
  heuristics_span.close();

  result.failed_targets = std::move(failures_);
  run_span.note("probes_sent",
                static_cast<std::int64_t>(result.stats.probes_sent));
  publish_result(result, registry());
  return result;
}

}  // namespace bdrmap::core
