#include "core/heuristics.h"

#include <algorithm>
#include <map>

#include "core/heuristic_engine.h"

namespace bdrmap::core {

Heuristics::Heuristics(RouterGraph& graph, const InferenceInputs& in,
                       HeuristicsConfig config)
    : graph_(graph), in_(in), config_(config) {
  vp_as_ = in_.vp_ases.empty() ? AsId{} : in_.vp_ases.front();
  for (const HeuristicRule& rule : HeuristicEngine::registry()) {
    rule_stats_.push_back({rule.slug(), 0, 0});
  }
  extend_vp_space();
}

bool Heuristics::is_vp_as(AsId as) const {
  return std::find(in_.vp_ases.begin(), in_.vp_ases.end(), as) !=
         in_.vp_ases.end();
}

AsId Heuristics::org_rep(AsId as) const {
  if (!in_.siblings) return as;
  auto sibs = in_.siblings->siblings_of(as);
  return sibs.empty() ? as : sibs.front();
}

AddrInfo Heuristics::classify(Ipv4Addr addr) const {
  if (!config_.enable_compiled_scans) return classify_uncached(addr);
  auto it = classify_cache_.find(addr);
  if (it != classify_cache_.end()) return it->second;
  AddrInfo info = classify_uncached(addr);
  classify_cache_.emplace(addr, info);
  return info;
}

AddrInfo Heuristics::classify_uncached(Ipv4Addr addr) const {
  if (in_.ixps && in_.ixps->is_ixp_address(addr)) {
    return {AddrClass::kIxp, AsId{}};
  }
  const auto* origin_set = in_.origins->origins(addr);
  if (origin_set && !origin_set->empty()) {
    // If any origin of the longest match is a VP sibling, the address
    // belongs to the hosting network's space.
    for (AsId o : *origin_set) {
      if (is_vp_as(o)) return {AddrClass::kVp, vp_as_};
    }
    return {AddrClass::kExternal, origin_set->front()};
  }
  for (const auto& block : vp_extra_blocks_) {
    if (block.contains(addr)) return {AddrClass::kVp, vp_as_};
  }
  return {AddrClass::kUnrouted, AsId{}};
}

void Heuristics::extend_vp_space() {
  // §5.4.1: when an address originated by a VP AS appears in a trace, all
  // previous unrouted addresses on the path back to the VP are assumed to
  // be delegated to the hosting network; the RIR files name the blocks.
  if (!in_.rir) return;

  // Robustness anchor: the TTL-1 hop of a trace is the VP host's default
  // gateway — hosting-network infrastructure by construction, even when
  // the public BGP view lost the announcement covering its address (stale
  // collector data corrupts exactly this in the adversarial scenarios).
  // When that address is unrouted, the RIR delegation holding it — plus
  // every other block the registry files under the same organization —
  // recovers the VP's infrastructure space; without this, a single missing
  // origin row can erase the whole kVp address class and with it every
  // border inference.
  std::vector<net::OrgId> vp_orgs;
  for (const auto& trace : graph_.traces()) {
    if (trace.hops.empty()) continue;
    const auto& hop = trace.hops.front();
    if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
    if (in_.origins->origins(hop.addr)) continue;  // routed: classify works
    if (in_.ixps && in_.ixps->is_ixp_address(hop.addr)) continue;
    auto delegation = in_.rir->lookup(hop.addr);
    if (!delegation) continue;
    if (std::find(vp_extra_blocks_.begin(), vp_extra_blocks_.end(),
                  delegation->block) == vp_extra_blocks_.end()) {
      vp_extra_blocks_.push_back(delegation->block);
    }
    if (std::find(vp_orgs.begin(), vp_orgs.end(), delegation->org) ==
        vp_orgs.end()) {
      vp_orgs.push_back(delegation->org);
    }
  }
  for (net::OrgId org : vp_orgs) {
    for (const auto& d : in_.rir->all()) {
      if (!(d.org == org)) continue;
      if (std::find(vp_extra_blocks_.begin(), vp_extra_blocks_.end(),
                    d.block) == vp_extra_blocks_.end()) {
        vp_extra_blocks_.push_back(d.block);
      }
    }
  }

  for (const auto& trace : graph_.traces()) {
    // Find the last hop whose address is VP-originated in public BGP.
    std::ptrdiff_t last_vp = -1;
    for (std::size_t i = 0; i < trace.hops.size(); ++i) {
      const auto& hop = trace.hops[i];
      if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
      const auto* origin_set = in_.origins->origins(hop.addr);
      if (!origin_set) continue;
      for (AsId o : *origin_set) {
        if (is_vp_as(o)) {
          last_vp = static_cast<std::ptrdiff_t>(i);
          break;
        }
      }
    }
    if (last_vp < 0) continue;
    for (std::ptrdiff_t i = 0; i < last_vp; ++i) {
      const auto& hop = trace.hops[static_cast<std::size_t>(i)];
      if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
      if (in_.origins->origins(hop.addr)) continue;  // routed: not missing
      if (in_.ixps && in_.ixps->is_ixp_address(hop.addr)) continue;
      auto delegation = in_.rir->lookup(hop.addr);
      if (!delegation) continue;
      if (std::find(vp_extra_blocks_.begin(), vp_extra_blocks_.end(),
                    delegation->block) == vp_extra_blocks_.end()) {
        vp_extra_blocks_.push_back(delegation->block);
      }
    }
  }
}

bool Heuristics::all_vp(const GraphRouter& r) const {
  if (r.ttl_addrs.empty()) return false;
  for (Ipv4Addr a : r.ttl_addrs) {
    if (classify(a).cls != AddrClass::kVp) return false;
  }
  return true;
}

std::vector<AsId> Heuristics::external_origins(const GraphRouter& r) const {
  std::vector<AsId> out;
  for (Ipv4Addr a : r.ttl_addrs) {
    AddrInfo info = classify(a);
    if (info.cls == AddrClass::kExternal &&
        std::find(out.begin(), out.end(), info.origin) == out.end()) {
      out.push_back(info.origin);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<AsId> Heuristics::first_external_after(std::size_t router) const {
  if (config_.enable_compiled_scans) {
    if (!first_external_built_) build_first_external_table();
    return first_external_table_[router];
  }
  std::vector<AsId> out;
  for (const auto& trace : graph_.traces()) {
    bool seen = false;
    for (const auto& hop : trace.hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
      auto r = graph_.router_of(hop.addr);
      if (!r) continue;
      if (!seen) {
        if (*r == router) seen = true;
        continue;
      }
      if (*r == router) continue;
      AddrInfo info = classify(hop.addr);
      if (info.cls == AddrClass::kExternal) {
        out.push_back(info.origin);
        break;  // first routed external interface after the router
      }
    }
  }
  return out;
}

void Heuristics::build_first_external_table() const {
  // Computes first_external_after for every router in one sweep instead of
  // rescanning all traces per candidate. Walking a trace, each router that
  // has appeared is "pending" until the first later routed-external hop on
  // a *different* router supplies its origin; a router's own first hop is
  // consumed before it joins the pending set, so hops strictly after the
  // first occurrence are considered — exactly the per-router scan above.
  const std::size_t count = graph_.routers().size();
  first_external_table_.assign(count, {});
  std::vector<std::uint32_t> seen_epoch(count, 0);
  std::vector<std::uint32_t> pending;
  std::uint32_t epoch = 0;
  // BDRMAP_HOT_BEGIN(first_external_scan)
  for (const auto& trace : graph_.traces()) {
    ++epoch;
    pending.clear();
    for (const auto& hop : trace.hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
      auto r = graph_.router_of(hop.addr);
      if (!r) continue;
      const auto x = static_cast<std::uint32_t>(*r);
      if (!pending.empty()) {
        AddrInfo info = classify(hop.addr);
        if (info.cls == AddrClass::kExternal) {
          std::size_t keep = 0;
          for (std::size_t i = 0; i < pending.size(); ++i) {
            if (pending[i] == x) {  // a router never answers for itself
              pending[keep++] = pending[i];
              continue;
            }
            first_external_table_[pending[i]].push_back(info.origin);
          }
          pending.resize(keep);
        }
      }
      if (seen_epoch[x] != epoch) {
        seen_epoch[x] = epoch;
        pending.push_back(x);
      }
    }
  }
  // BDRMAP_HOT_END(first_external_scan)
  first_external_built_ = true;
}

std::unordered_map<AsId, int> Heuristics::adjacent_origin_counts(
    std::size_t router) const {
  std::unordered_map<AsId, int> counts;
  for (std::size_t n : graph_.routers()[router].next) {
    for (Ipv4Addr a : graph_.routers()[n].ttl_addrs) {
      AddrInfo info = classify(a);
      if (info.cls == AddrClass::kExternal) ++counts[info.origin];
    }
  }
  return counts;
}

Heuristics::ScoredNextas Heuristics::nextas_scored(std::size_t router) const {
  ScoredNextas out;
  const GraphRouter& r = graph_.routers()[router];
  if (r.dest_ases.size() < 2 || !in_.rels) return out;
  std::map<AsId, int> provider_counts;
  for (AsId dest : r.dest_ases) {
    for (AsId p : in_.rels->providers(dest)) ++provider_counts[p];
  }
  for (const auto& [as, count] : provider_counts) {
    out.total += count;
    if (count > out.best) {
      out.as = as;
      out.best = count;
    }
  }
  return out;
}

AsId Heuristics::nextas(std::size_t router) const {
  return nextas_scored(router).as;
}

void Heuristics::assign(std::size_t router, AsId owner, Heuristic how,
                        bool vp_side, double confidence) {
  GraphRouter& r = graph_.routers()[router];
  r.owner = owner;
  r.how = how;
  r.vp_side = vp_side;
  r.confidence = conf::clamp01(confidence * confidence_scale_);
  note_fire();
}

void Heuristics::note_fire() {
  if (current_rule_ != kNoRule) ++rule_stats_[current_rule_].fires;
}

// ---------------------------------------------------------------------------
// §5.4.1
// ---------------------------------------------------------------------------

void Heuristics::phase1_vp_network() {
  // Precompute, per router, whether any VP-originated time-exceeded address
  // appears after it in some trace (step 1.2's condition).
  std::vector<char> vp_after(graph_.routers().size(), 0);
  for (const auto& trace : graph_.traces()) {
    bool vp_seen_later = false;
    for (std::size_t i = trace.hops.size(); i-- > 0;) {
      const auto& hop = trace.hops[i];
      if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
      auto r = graph_.router_of(hop.addr);
      if (r && vp_seen_later) vp_after[*r] = 1;
      if (classify(hop.addr).cls == AddrClass::kVp) vp_seen_later = true;
    }
  }

  for (std::size_t r : graph_.by_hop_distance()) {
    const GraphRouter& router = graph_.routers()[r];
    if (router.how != Heuristic::kNone) continue;
    // Any VP-originated interface suffices here: alias resolution merges a
    // border's neighbor-supplied point-to-point addresses into the same
    // router, and those must not disqualify it (step 1.2 / Figure 13).
    bool any_vp = false;
    for (Ipv4Addr a : router.ttl_addrs) {
      any_vp |= classify(a).cls == AddrClass::kVp;
    }
    if (!any_vp || !vp_after[r]) continue;

    // Step 1.1 exception: A multihomed to the VP network with adjacent
    // border routers. R (VP-addressed) is followed by another VP-addressed
    // router R2, and addresses originated by A appear adjacent to both.
    // Only a router that exclusively carries traffic toward A can be A's
    // border — the VP's own borders forward toward many organizations.
    AsId multihomed_as;
    std::vector<AsId> dest_orgs;
    for (AsId dest : router.dest_ases) {
      AsId rep = org_rep(dest);
      if (std::find(dest_orgs.begin(), dest_orgs.end(), rep) ==
          dest_orgs.end()) {
        dest_orgs.push_back(rep);
      }
    }
    if (dest_orgs.size() == 1) {
      for (std::size_t n : router.next) {
        const GraphRouter& r2 = graph_.routers()[n];
        if (!all_vp(r2)) continue;
        // External AS adjacent to both R and R2, matching the sole
        // destination organization?
        auto counts_r = adjacent_origin_counts(r);
        auto counts_r2 = adjacent_origin_counts(n);
        for (const auto& [as, count] : counts_r) {
          if (counts_r2.count(as) && org_rep(as) == dest_orgs.front()) {
            multihomed_as = as;
            break;
          }
        }
        if (multihomed_as.valid()) break;
      }
    }
    if (multihomed_as.valid() && in_.rels) {
      // Veto: a subsequent router's would-be owner is a customer of the VP
      // network but not a known neighbor of A — then R is really the VP's.
      bool veto = false;
      for (std::size_t n : router.next) {
        for (AsId o : external_origins(graph_.routers()[n])) {
          if (o == multihomed_as) continue;
          bool customer_of_vp = false;
          for (AsId v : in_.vp_ases) {
            if (in_.rels->rel(v, o) == asdata::Relationship::kCustomer) {
              customer_of_vp = true;
            }
          }
          if (customer_of_vp && !in_.rels->are_neighbors(multihomed_as, o)) {
            veto = true;
          }
        }
      }
      if (!veto) {
        assign(r, multihomed_as, Heuristic::kMultihomed, /*vp_side=*/false,
               conf::prior(Heuristic::kMultihomed));
        continue;
      }
    }

    assign(r, vp_as_, Heuristic::kVpNetwork, /*vp_side=*/true,
           conf::prior(Heuristic::kVpNetwork));
  }
}

// ---------------------------------------------------------------------------
// §5.4.2
// ---------------------------------------------------------------------------

void Heuristics::phase2_firewall() {
  for (std::size_t r : graph_.by_hop_distance()) {
    GraphRouter& router = graph_.routers()[r];
    if (router.how != Heuristic::kNone) continue;
    if (!all_vp(router)) continue;
    if (!router.next.empty()) continue;       // something was seen beyond
    if (router.terminal_for.empty()) continue;

    // Collapse sibling target ASes to organizations.
    std::vector<AsId> orgs;
    for (AsId dest : router.terminal_for) {
      AsId rep = org_rep(dest);
      if (std::find(orgs.begin(), orgs.end(), rep) == orgs.end()) {
        orgs.push_back(rep);
      }
    }
    if (orgs.size() == 1) {
      // Each terminating target is an independent observation that the
      // silent space beyond belongs to this one organization.
      assign(r, *router.terminal_for.begin(), Heuristic::kFirewall,
             /*vp_side=*/false,
             conf::both(conf::prior(Heuristic::kFirewall),
                        conf::support(0.5, static_cast<int>(
                                               router.terminal_for.size()))));
    } else {
      ScoredNextas scored = nextas_scored(r);
      double share = conf::vote(static_cast<std::size_t>(scored.best),
                                static_cast<std::size_t>(scored.total));
      if (is_vp_as(scored.as)) {
        // The most common provider of the destinations is the hosting
        // network itself: this is the VP's own border in front of several
        // unresponsive customers, not a neighbor router.
        assign(r, vp_as_, Heuristic::kVpNetwork, /*vp_side=*/true,
               conf::both(conf::prior(Heuristic::kVpNetwork), share));
      } else if (scored.as.valid()) {
        assign(r, scored.as, Heuristic::kFirewall, /*vp_side=*/false,
               conf::both(conf::prior(Heuristic::kFirewall), share));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// §5.4.3
// ---------------------------------------------------------------------------

void Heuristics::phase3_unrouted() {
  auto unrouted_class = [&](Ipv4Addr a) {
    AddrClass c = classify(a).cls;
    return c == AddrClass::kUnrouted || c == AddrClass::kIxp;
  };
  for (std::size_t r : graph_.by_hop_distance()) {
    GraphRouter& router = graph_.routers()[r];
    if (router.how != Heuristic::kNone || router.ttl_addrs.empty()) continue;

    bool all_unrouted = std::all_of(router.ttl_addrs.begin(),
                                    router.ttl_addrs.end(), unrouted_class);
    // Scenario (a): a VP-addressed neighbor border whose network beyond is
    // entirely unrouted — every adjacent subsequent router must be
    // unrouted, else better-constrained heuristics apply (Figure 6).
    bool scenario_a = all_vp(router) && !router.next.empty();
    if (scenario_a) {
      for (std::size_t n : router.next) {
        const GraphRouter& nr = graph_.routers()[n];
        if (nr.ttl_addrs.empty() ||
            !std::all_of(nr.ttl_addrs.begin(), nr.ttl_addrs.end(),
                         unrouted_class)) {
          scenario_a = false;
          break;
        }
      }
    }
    bool scenario_b = false;  // unrouted itself, behind a VP router
    if (all_unrouted) {
      for (std::size_t p : router.prev) {
        const GraphRouter& pr = graph_.routers()[p];
        if (pr.vp_side || all_vp(pr)) scenario_b = true;
      }
    }
    if (!scenario_a && !scenario_b) continue;

    // Routers whose addresses come from a known IXP LAN are inferred the
    // same way, but belong with the paper's onenet accounting: the LAN
    // address plus the member's own subsequent space identify the member.
    bool ixp_addressed =
        !router.ttl_addrs.empty() &&
        std::all_of(router.ttl_addrs.begin(), router.ttl_addrs.end(),
                    [&](Ipv4Addr a) {
                      return classify(a).cls == AddrClass::kIxp;
                    });
    Heuristic tag = ixp_addressed ? Heuristic::kOnenet : Heuristic::kUnrouted;

    auto firsts = first_external_after(r);
    // Every trace contributing a first-external observation supports the
    // conclusion independently (counted before deduplication).
    const int observations = static_cast<int>(firsts.size());
    std::vector<AsId> distinct = firsts;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (distinct.size() == 1) {
      assign(r, distinct.front(), tag, false,  // step 3.1
             conf::both(conf::prior(tag), conf::support(0.35, observations)));
    } else if (distinct.size() > 1 && in_.rels) {
      // Step 3.2: the most frequent provider across the observed set —
      // that AS is likely providing transit to the others.
      std::map<AsId, int> provider_counts;
      for (AsId as : distinct) {
        for (AsId p : in_.rels->providers(as)) ++provider_counts[p];
      }
      AsId best;
      int best_count = 0;
      int total = 0;
      for (const auto& [as, count] : provider_counts) {
        total += count;
        if (count > best_count) {
          best = as;
          best_count = count;
        }
      }
      if (best.valid()) {
        // The provider vote share, weighted by the strongest relationship
        // edge tying an observed AS to the winner.
        double edge = 0.0;
        for (AsId as : distinct) {
          edge = std::max(edge,
                          conf::relationship_prior(*in_.rels, as, best));
        }
        assign(r, best, Heuristic::kUnrouted, false,
               conf::both(conf::prior(Heuristic::kUnrouted),
                          conf::both(conf::vote(
                                         static_cast<std::size_t>(best_count),
                                         static_cast<std::size_t>(total)),
                                     edge)));
      } else {
        assign(r, distinct.front(), Heuristic::kUnrouted, false,
               conf::both(conf::prior(Heuristic::kUnrouted),
                          conf::kWeakEvidence));
      }
    } else {
      ScoredNextas scored = nextas_scored(r);
      double share = conf::vote(static_cast<std::size_t>(scored.best),
                                static_cast<std::size_t>(scored.total));
      if (is_vp_as(scored.as)) {
        assign(r, vp_as_, Heuristic::kVpNetwork, /*vp_side=*/true,
               conf::both(conf::prior(Heuristic::kVpNetwork), share));
      } else if (scored.as.valid()) {
        assign(r, scored.as, tag, false,
               conf::both(conf::prior(tag), share));
      } else {
        // Nothing routed beyond and a single destination organization:
        // a neighbor whose internals are entirely unannounced.
        std::vector<AsId> dest_orgs;
        for (AsId dest : router.dest_ases) {
          AsId rep = org_rep(dest);
          if (std::find(dest_orgs.begin(), dest_orgs.end(), rep) ==
              dest_orgs.end()) {
            dest_orgs.push_back(rep);
          }
        }
        if (dest_orgs.size() == 1 && !is_vp_as(dest_orgs.front())) {
          assign(r, *router.dest_ases.begin(), tag, false,
                 conf::both(conf::prior(tag), conf::kWeakEvidence));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// §5.4.4
// ---------------------------------------------------------------------------

void Heuristics::phase4_onenet() {
  for (std::size_t r : graph_.by_hop_distance()) {
    GraphRouter& router = graph_.routers()[r];
    if (router.how != Heuristic::kNone || router.ttl_addrs.empty()) continue;

    auto externals = external_origins(router);
    // Step 4.1: every interface maps to one external AS, and an adjacent
    // subsequent router also has an address in it: not a third party.
    if (externals.size() == 1 && !all_vp(router)) {
      bool mixed = false;  // any VP/unrouted address alongside?
      for (Ipv4Addr a : router.ttl_addrs) {
        if (classify(a).cls != AddrClass::kExternal) mixed = true;
      }
      if (!mixed) {
        AsId a = externals.front();
        for (std::size_t n : router.next) {
          for (Ipv4Addr addr : graph_.routers()[n].ttl_addrs) {
            AddrInfo info = classify(addr);
            if (info.cls == AddrClass::kExternal && info.origin == a) {
              assign(r, a, Heuristic::kOnenet, false,
                     conf::prior(Heuristic::kOnenet));
              break;
            }
          }
          if (router.how != Heuristic::kNone) break;
        }
      }
    }
    if (router.how != Heuristic::kNone) continue;

    // Step 4.2: VP-addressed border followed by two consecutive routers in
    // the same external AS. The evidence sits one hop beyond the router
    // being assigned, so it carries the indirection discount.
    if (!all_vp(router)) continue;
    for (std::size_t n : router.next) {
      auto n_ext = external_origins(graph_.routers()[n]);
      if (n_ext.size() != 1) continue;
      for (std::size_t m : graph_.routers()[n].next) {
        if (m == r) continue;
        auto m_ext = external_origins(graph_.routers()[m]);
        if (m_ext.size() == 1 && m_ext.front() == n_ext.front()) {
          assign(r, n_ext.front(), Heuristic::kOnenet, false,
                 conf::both(conf::prior(Heuristic::kOnenet),
                            conf::kIndirectEvidence));
          break;
        }
      }
      if (router.how != Heuristic::kNone) break;
    }
  }
}

// ---------------------------------------------------------------------------
// §5.4.5
// ---------------------------------------------------------------------------

void Heuristics::phase5_relationships() {
  if (!config_.enable_relationships || !in_.rels) return;

  // Third-party detection (steps 5.1 / 5.2).
  if (config_.enable_third_party) {
    for (std::size_t r : graph_.by_hop_distance()) {
      GraphRouter& router = graph_.routers()[r];
      if (router.how != Heuristic::kNone) continue;
      auto externals = external_origins(router);
      if (externals.size() != 1) continue;
      AsId a = externals.front();
      // Timestamp-confirmed inbound interfaces are genuinely on the
      // forward path; the reply source is not a third-party address, so
      // the IP-AS mapping stands ([26]).
      if (config_.confirmed_inbound) {
        bool all_confirmed = !router.ttl_addrs.empty();
        for (Ipv4Addr addr : router.ttl_addrs) {
          all_confirmed &= config_.confirmed_inbound->count(addr) > 0;
        }
        if (all_confirmed) continue;
      }
      // Only observed on paths toward a single organization B != A?
      std::vector<AsId> dest_orgs;
      AsId b;
      for (AsId dest : router.dest_ases) {
        AsId rep = org_rep(dest);
        if (std::find(dest_orgs.begin(), dest_orgs.end(), rep) ==
            dest_orgs.end()) {
          dest_orgs.push_back(rep);
          b = dest;
        }
      }
      if (dest_orgs.size() != 1 || org_rep(a) == dest_orgs.front()) continue;
      // A must be a provider of B: the router replied with the address of
      // the interface toward its provider (its route to the VP).
      if (in_.rels->rel(b, a) != asdata::Relationship::kProvider) continue;
      // The inference leans on the inferred B-customer-of-A edge; its
      // consistency in the store prices the whole conclusion.
      double edge = conf::relationship_prior(*in_.rels, b, a);
      assign(r, b, Heuristic::kThirdParty, false,
             conf::both(conf::prior(Heuristic::kThirdParty), edge));
      // Step 5.1: a preceding all-VP router is B's border too — but only
      // when that router likewise appears exclusively on paths toward B;
      // a router carrying traffic to other networks is not B's border.
      for (std::size_t p : router.prev) {
        GraphRouter& pr = graph_.routers()[p];
        if (pr.how != Heuristic::kNone || !all_vp(pr)) continue;
        bool only_b = true;
        for (AsId dest : pr.dest_ases) {
          only_b &= org_rep(dest) == org_rep(b);
        }
        if (only_b) {
          assign(p, b, Heuristic::kThirdParty, false,
                 conf::both(conf::kIndirectEvidence,
                            conf::both(conf::prior(Heuristic::kThirdParty),
                                       edge)));
        }
      }
    }
  }

  // Steps 5.3 / 5.4 / 5.5: VP-addressed borders classified by relationship
  // data about the adjacent and subsequent address space.
  for (std::size_t r : graph_.by_hop_distance()) {
    GraphRouter& router = graph_.routers()[r];
    if (router.how != Heuristic::kNone) continue;
    if (!all_vp(router)) continue;

    auto adjacent = adjacent_origin_counts(r);
    if (adjacent.size() == 1) {
      AsId a = adjacent.begin()->first;
      // Step 5.3: a known peer or customer of the VP network.
      AsId known_vp;
      for (AsId v : in_.vp_ases) {
        auto rel = in_.rels->rel(v, a);
        if ((rel == asdata::Relationship::kCustomer ||
             rel == asdata::Relationship::kPeer) &&
            !known_vp.valid()) {
          known_vp = v;
        }
      }
      if (known_vp.valid()) {
        assign(r, a, Heuristic::kRelationship, false,
               conf::both(conf::prior(Heuristic::kRelationship),
                          conf::relationship_prior(*in_.rels, known_vp, a)));
        continue;
      }
      // Step 5.4: sibling-style indirection — B is a provider of A and the
      // VP network is a provider of B.
      AsId missing;
      AsId missing_vp;
      for (AsId b : in_.rels->providers(a)) {
        for (AsId v : in_.vp_ases) {
          if (in_.rels->rel(v, b) == asdata::Relationship::kCustomer &&
              (!missing.valid() || b < missing)) {
            missing = b;
            missing_vp = v;
          }
        }
      }
      if (missing.valid()) {
        // Two inferred edges must both hold: A-customer-of-B and
        // B-customer-of-VP.
        assign(r, missing, Heuristic::kMissingCust, false,
               conf::both(conf::prior(Heuristic::kMissingCust),
                          conf::both(conf::relationship_prior(*in_.rels, a,
                                                              missing),
                                     conf::relationship_prior(
                                         *in_.rels, missing_vp, missing))));
        continue;
      }
    }

    // Step 5.5: every subsequent routed interface maps to one AS — a
    // neighbor with no BGP-visible relationship (hidden peer).
    auto firsts = first_external_after(r);
    const int observations = static_cast<int>(firsts.size());
    std::sort(firsts.begin(), firsts.end());
    firsts.erase(std::unique(firsts.begin(), firsts.end()), firsts.end());
    if (firsts.size() == 1 && !router.next.empty()) {
      assign(r, firsts.front(), Heuristic::kHiddenPeer, false,
             conf::both(conf::prior(Heuristic::kHiddenPeer),
                        conf::support(0.35, observations)));
    }
  }
}

// ---------------------------------------------------------------------------
// §5.4.6
// ---------------------------------------------------------------------------

void Heuristics::phase6_counting() {
  for (std::size_t r : graph_.by_hop_distance()) {
    GraphRouter& router = graph_.routers()[r];
    if (router.how != Heuristic::kNone || router.ttl_addrs.empty()) continue;

    if (all_vp(router)) {
      // Step 6.1: several adjacent external ASes — majority of adjacent
      // addresses wins; ties go to the first AS with a known relationship.
      auto adjacent = adjacent_origin_counts(r);
      if (adjacent.empty()) continue;
      int best_count = 0;
      int total = 0;
      for (const auto& [as, count] : adjacent) {
        total += count;
        best_count = std::max(best_count, count);
      }
      std::vector<AsId> tied;
      for (const auto& [as, count] : adjacent) {
        if (count == best_count) tied.push_back(as);
      }
      std::sort(tied.begin(), tied.end());
      AsId winner = tied.front();
      if (tied.size() > 1 && in_.rels) {
        for (AsId as : tied) {
          bool known = false;
          for (AsId v : in_.vp_ases) {
            known |= in_.rels->are_neighbors(v, as);
          }
          if (known) {
            winner = as;
            break;
          }
        }
      }
      assign(r, winner, Heuristic::kCount, false,
             conf::both(conf::prior(Heuristic::kCount),
                        conf::vote(static_cast<std::size_t>(best_count),
                                   static_cast<std::size_t>(total))));
      continue;
    }

    // Step 6.2: plain IP-AS mapping — the majority origin of the router's
    // own addresses.
    std::map<AsId, int> votes;
    for (Ipv4Addr a : router.ttl_addrs) {
      AddrInfo info = classify(a);
      if (info.cls == AddrClass::kExternal) ++votes[info.origin];
    }
    if (votes.empty()) continue;
    AsId best;
    int best_count = 0;
    int total = 0;
    for (const auto& [as, count] : votes) {
      total += count;
      if (count > best_count) {
        best = as;
        best_count = count;
      }
    }
    assign(r, best, Heuristic::kIpAs, false,
           conf::both(conf::prior(Heuristic::kIpAs),
                      conf::vote(static_cast<std::size_t>(best_count),
                                 static_cast<std::size_t>(total))));
  }
}

// ---------------------------------------------------------------------------
// §5.4.7
// ---------------------------------------------------------------------------

void Heuristics::phase7_analytic_alias() {
  if (!config_.enable_analytic_alias) return;
  // A neighbor router connected by a point-to-point link attaches to one
  // VP router; several single-interface VP-side predecessors of the same
  // neighbor router are therefore aliases of one border router.
  const std::size_t count = graph_.routers().size();
  for (std::size_t n = 0; n < count; ++n) {
    const GraphRouter& neighbor = graph_.routers()[n];
    if (graph_.merged_away(n)) continue;
    if (neighbor.how == Heuristic::kNone || neighbor.vp_side) continue;
    std::vector<std::size_t> collapsible;
    for (std::size_t p : neighbor.prev) {
      const GraphRouter& pr = graph_.routers()[p];
      if (!pr.vp_side) continue;
      // Single observed interface: likely one physical border router that
      // responded differently per destination (Figure 13).
      if (pr.addrs.size() != 1) continue;
      collapsible.push_back(p);
    }
    if (collapsible.size() < 2) continue;
    std::sort(collapsible.begin(), collapsible.end());
    for (std::size_t i = 1; i < collapsible.size(); ++i) {
      graph_.merge(collapsible.front(), collapsible[i]);
      note_fire();
    }
  }
}

// ---------------------------------------------------------------------------
// §5.4.8
// ---------------------------------------------------------------------------

std::vector<UncooperativeNeighbor> Heuristics::phase8_uncooperative() {
  std::vector<UncooperativeNeighbor> out;
  if (!in_.rels) return out;

  // Which neighbor ASes already have an inferred *border* router (one
  // adjacent to the VP network)? Deep routers after response gaps do not
  // establish a link by themselves.
  std::unordered_set<AsId> covered;
  for (const auto& router : graph_.routers()) {
    if (router.how == Heuristic::kNone || router.vp_side ||
        !router.owner.valid()) {
      continue;
    }
    bool adjacent_to_vp = false;
    for (std::size_t p : router.prev) {
      adjacent_to_vp |= graph_.routers()[p].vp_side;
    }
    if (adjacent_to_vp) covered.insert(org_rep(router.owner));
  }

  std::vector<AsId> bgp_neighbors;
  for (AsId v : in_.vp_ases) {
    for (AsId n : in_.rels->neighbors(v)) {
      if (!is_vp_as(n)) bgp_neighbors.push_back(n);
    }
  }
  std::sort(bgp_neighbors.begin(), bgp_neighbors.end());
  bgp_neighbors.erase(
      std::unique(bgp_neighbors.begin(), bgp_neighbors.end()),
      bgp_neighbors.end());

  // Compiled-scan index: trace indices grouped by target organization, so
  // each neighbor only visits its own traces instead of rescanning all of
  // them. Trace order within a group is preserved, and the per-trace work
  // below is order-independent anyway — results are identical.
  std::unordered_map<AsId, std::vector<std::size_t>> traces_by_org;
  if (config_.enable_compiled_scans) {
    const auto& traces = graph_.traces();
    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
      traces_by_org[org_rep(traces[ti].target_as)].push_back(ti);
    }
  }

  for (AsId neighbor : bgp_neighbors) {
    if (covered.count(org_rep(neighbor))) continue;

    // Process the traces toward this AS as a set (§5.4.8). Rate limiting
    // can hide the true final VP router in a few traces, so we accept the
    // dominant final router rather than demanding strict unanimity.
    std::map<std::size_t, std::size_t> last_counts;
    bool beyond = false;
    bool icmp_from_neighbor = false;
    auto scan_trace = [&](const ObservedTrace& trace) {
      // Last VP-side router, and anything after it?
      std::size_t last_vp = std::numeric_limits<std::size_t>::max();
      for (const auto& hop : trace.hops) {
        if (hop.kind == probe::ReplyKind::kNone) continue;
        if (hop.kind == probe::ReplyKind::kTimeExceeded) {
          auto r = graph_.router_of(hop.addr);
          if (r && graph_.routers()[*r].vp_side) {
            last_vp = *r;
            continue;
          }
          if (last_vp != std::numeric_limits<std::size_t>::max()) {
            beyond = true;  // a non-VP interface after the last VP router
          }
        } else {
          // Echo reply / unreachable: does its source map to the neighbor?
          AddrInfo info = classify(hop.addr);
          if (info.cls == AddrClass::kExternal &&
              org_rep(info.origin) == org_rep(neighbor)) {
            icmp_from_neighbor = true;
          }
        }
      }
      if (last_vp != std::numeric_limits<std::size_t>::max()) {
        ++last_counts[last_vp];
      }
    };
    if (config_.enable_compiled_scans) {
      auto it = traces_by_org.find(org_rep(neighbor));
      if (it != traces_by_org.end()) {
        for (std::size_t ti : it->second) scan_trace(graph_.traces()[ti]);
      }
    } else {
      for (const auto& trace : graph_.traces()) {
        if (org_rep(trace.target_as) != org_rep(neighbor)) continue;
        scan_trace(trace);
      }
    }
    if (beyond || last_counts.empty()) continue;
    std::size_t total = 0, best_count = 0;
    std::size_t common_last = std::numeric_limits<std::size_t>::max();
    for (const auto& [router, count] : last_counts) {
      total += count;
      if (count > best_count) {
        best_count = count;
        common_last = router;
      }
    }
    if (best_count * 10 < total * 7) continue;  // < 70% dominant
    Heuristic tag = icmp_from_neighbor ? Heuristic::kOtherIcmp
                                       : Heuristic::kSilent;
    out.push_back({common_last, neighbor, tag,
                   conf::clamp01(conf::both(conf::prior(tag),
                                            conf::vote(best_count, total)) *
                                 confidence_scale_)});
    note_fire();
  }
  return out;
}

std::vector<UncooperativeNeighbor> Heuristics::run() {
  if (config_.engine == HeuristicEngineKind::kRegistry) {
    return HeuristicEngine(*this).run();
  }
  return run_legacy();
}

std::vector<UncooperativeNeighbor> Heuristics::run_legacy() {
  // The hard-coded paper ladder. current_rule_ indices match the registry's
  // registration order (phases 1..8), so fires land in the same
  // rule_stats_ slots as the registry engine; skips and rule_overrides are
  // registry-engine concepts and never apply here.
  current_rule_ = 0;
  phase1_vp_network();
  current_rule_ = 1;
  phase2_firewall();
  current_rule_ = 2;
  phase3_unrouted();
  current_rule_ = 3;
  phase4_onenet();
  current_rule_ = 4;
  phase5_relationships();
  current_rule_ = 5;
  phase6_counting();
  current_rule_ = 6;
  phase7_analytic_alias();
  current_rule_ = 7;
  std::vector<UncooperativeNeighbor> out = phase8_uncooperative();
  current_rule_ = kNoRule;
  return out;
}

}  // namespace bdrmap::core
