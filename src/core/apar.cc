#include "core/apar.h"

#include <map>
#include <set>

#include "netbase/contract.h"

namespace bdrmap::core {

AparStats run_apar(const std::vector<ObservedTrace>& traces,
                   AliasResolver& resolver) {
  AparStats stats;

  // Observed time-exceeded addresses, their trace memberships, and the
  // adjacency relation.
  std::set<Ipv4Addr> observed;
  std::map<Ipv4Addr, std::set<std::size_t>> traces_of;
  std::set<std::pair<Ipv4Addr, Ipv4Addr>> adjacent;  // ordered (prev, next)
  std::vector<std::pair<Ipv4Addr, Ipv4Addr>> pairs;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    Ipv4Addr prev;
    bool prev_valid = false;
    for (const auto& hop : traces[t].hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) {
        prev_valid = false;
        continue;
      }
      observed.insert(hop.addr);
      traces_of[hop.addr].insert(t);
      if (prev_valid && prev != hop.addr) {
        if (adjacent.emplace(prev, hop.addr).second) {
          pairs.emplace_back(prev, hop.addr);
        }
      }
      prev = hop.addr;
      prev_valid = true;
    }
  }
  stats.adjacencies = pairs.size();

  auto share_trace_nonadjacently = [&](Ipv4Addr a, Ipv4Addr b) {
    // True if some trace contains both a and b (at distinct hops): a
    // loop-free path visits a router once, so a and b cannot alias.
    auto ia = traces_of.find(a);
    auto ib = traces_of.find(b);
    if (ia == traces_of.end() || ib == traces_of.end()) return false;
    for (std::size_t t : ia->second) {
      if (ib->second.count(t)) return true;
    }
    return false;
  };

  for (const auto& [x, y] : pairs) {
    // Candidate mates of y on a /31 then /30 point-to-point subnet.
    std::vector<Ipv4Addr> mates;
    mates.push_back(net::mate31(y));
    if (auto m30 = net::mate30(y)) mates.push_back(*m30);
    for (Ipv4Addr mate : mates) {
      if (mate == x || mate == y) continue;
      if (!observed.count(mate)) continue;
      ++stats.mates_observed;
      // Veto 1: the mate is observed adjacent to x (either direction):
      // then mate and x are two ends of a link, not one router.
      if (adjacent.count({x, mate}) || adjacent.count({mate, x})) {
        ++stats.vetoed_adjacent;
        continue;
      }
      // Veto 2: the mate and x appear in one trace -> distinct routers.
      if (share_trace_nonadjacently(mate, x)) {
        ++stats.vetoed_same_trace;
        continue;
      }
      // Honor existing negative evidence.
      if (resolver.verdict_of(x, mate) == AliasVerdict::kNotAlias) continue;
      resolver.declare(x, mate, AliasVerdict::kAlias);
      ++stats.accepted;
      break;  // one subnet hypothesis per (x, y)
    }
  }
  // Every accepted or vetoed hypothesis started as an observed mate.
  BDRMAP_ENSURES(stats.accepted + stats.vetoed_adjacent +
                     stats.vetoed_same_trace <=
                 stats.mates_observed);
  return stats;
}

}  // namespace bdrmap::core
