// Probe scheduling (§5.3's pacing discipline).
//
// bdrmap "probes each target AS one block at a time to minimize the impact
// on target ASes" while running "multiple target ASes at a time in
// parallel" at a fixed aggregate packet rate (the paper quotes run times
// at 100pps). This module models that discipline: per-AS FIFO queues of
// blocks, a bounded set of concurrently-active ASes, round-robin packet
// slots at the configured rate — and reports the resulting virtual
// timeline, so probing cost converts into wall-clock honestly instead of
// by naive division.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/blocks.h"

namespace bdrmap::core {

struct ScheduleConfig {
  double packets_per_second = 100.0;
  std::size_t parallel_ases = 16;  // target ASes probed concurrently
  // Probes a single traceroute consumes on average (hops + retries); used
  // to convert blocks into packet slots.
  double probes_per_block = 12.0;
};

struct ScheduleReport {
  std::size_t blocks = 0;
  std::size_t target_ases = 0;
  std::uint64_t packets = 0;
  double duration_seconds = 0.0;
  // Peak and mean number of AS queues active at once.
  std::size_t peak_parallel = 0;
  double mean_parallel = 0.0;
  // Virtual completion time (seconds) per target AS.
  std::map<net::AsId, double> as_finish_time;

  double duration_hours() const { return duration_seconds / 3600.0; }
};

// Simulates the §5.3 schedule over `blocks` (as produced by
// build_probe_blocks; must be sorted by target AS).
ScheduleReport simulate_schedule(const std::vector<ProbeBlock>& blocks,
                                 const ScheduleConfig& config = {});

}  // namespace bdrmap::core
