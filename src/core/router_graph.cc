#include "core/router_graph.h"

#include <algorithm>

#include "netbase/contract.h"

namespace bdrmap::core {

const char* heuristic_name(Heuristic h) {
  switch (h) {
    case Heuristic::kNone: return "none";
    case Heuristic::kVpNetwork: return "1. VP network";
    case Heuristic::kMultihomed: return "1. Multihomed to VP";
    case Heuristic::kFirewall: return "2. Firewall";
    case Heuristic::kUnrouted: return "3. Unrouted interface";
    case Heuristic::kOnenet: return "4. IP-AS (onenet)";
    case Heuristic::kThirdParty: return "5. Third party";
    case Heuristic::kRelationship: return "5. AS relationship";
    case Heuristic::kMissingCust: return "5. Missing customer";
    case Heuristic::kHiddenPeer: return "5. Hidden peer";
    case Heuristic::kCount: return "6. Count";
    case Heuristic::kIpAs: return "6. IP-AS";
    case Heuristic::kSilent: return "8. Silent neighbor";
    case Heuristic::kOtherIcmp: return "8. Other ICMP";
  }
  return "?";
}

RouterGraph::RouterGraph(
    std::vector<ObservedTrace> traces,
    const std::vector<std::vector<Ipv4Addr>>& alias_groups)
    : traces_(std::move(traces)) {
  // Seed routers from alias groups.
  for (const auto& group : alias_groups) {
    if (group.empty()) continue;
    std::size_t index = routers_.size();
    GraphRouter r;
    r.addrs = group;
    std::sort(r.addrs.begin(), r.addrs.end());
    for (Ipv4Addr a : r.addrs) addr_to_router_.emplace(a, index);
    routers_.push_back(std::move(r));
  }

  auto router_for = [&](Ipv4Addr a) {
    auto it = addr_to_router_.find(a);
    if (it != addr_to_router_.end()) return it->second;
    std::size_t index = routers_.size();
    GraphRouter r;
    r.addrs = {a};
    routers_.push_back(std::move(r));
    addr_to_router_.emplace(a, index);
    return index;
  };

  for (const auto& trace : traces_) {
    std::size_t prev_router = std::numeric_limits<std::size_t>::max();
    bool prev_was_adjacent = false;
    std::size_t last_ttl_router = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < trace.hops.size(); ++i) {
      const ObservedHop& hop = trace.hops[i];
      // Only time-exceeded replies identify router interfaces (§5.3): an
      // echo reply's source is the probed address, which could be any
      // interface of the destination, so it contributes neither a node
      // nor adjacency.
      if (hop.kind != probe::ReplyKind::kTimeExceeded) {
        prev_was_adjacent = false;
        continue;
      }
      std::size_t r = router_for(hop.addr);
      GraphRouter& router = routers_[r];
      if (std::find(router.ttl_addrs.begin(), router.ttl_addrs.end(),
                    hop.addr) == router.ttl_addrs.end()) {
        router.ttl_addrs.push_back(hop.addr);
      }
      router.min_hop = std::min(router.min_hop, static_cast<int>(i));
      router.dest_ases.insert(trace.target_as);
      last_ttl_router = r;
      // Adjacency only between consecutive responsive hops: a '*' between
      // two replies means the true neighbor was unobserved.
      if (prev_was_adjacent && prev_router != r &&
          prev_router != std::numeric_limits<std::size_t>::max()) {
        routers_[prev_router].next.insert(r);
        routers_[r].prev.insert(prev_router);
      }
      prev_router = r;
      prev_was_adjacent = true;
    }
    if (last_ttl_router != std::numeric_limits<std::size_t>::max()) {
      // Was this router the last thing we saw toward the target?
      GraphRouter& last = routers_[last_ttl_router];
      bool nothing_after = true;
      // Anything after the router's last time-exceeded hop that replied?
      for (std::size_t i = trace.hops.size(); i-- > 0;) {
        const ObservedHop& hop = trace.hops[i];
        if (hop.kind == probe::ReplyKind::kTimeExceeded) {
          auto it = addr_to_router_.find(hop.addr);
          nothing_after = it != addr_to_router_.end() &&
                          it->second == last_ttl_router;
          break;
        }
        if (hop.kind != probe::ReplyKind::kNone) {
          nothing_after = false;  // echo/unreachable beyond it
          break;
        }
      }
      // Stop-set truncation is not evidence of a path terminus: the trace
      // was cut short deliberately, not by the network.
      if (nothing_after && !trace.reached_dst && !trace.stopped_by_stopset) {
        last.terminal_for.insert(trace.target_as);
      }
    }
  }

  // Sort ttl_addrs for deterministic behaviour.
  for (GraphRouter& r : routers_) {
    std::sort(r.ttl_addrs.begin(), r.ttl_addrs.end());
  }
}

std::optional<std::size_t> RouterGraph::router_of(Ipv4Addr addr) const {
  auto it = addr_to_router_.find(addr);
  if (it == addr_to_router_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::size_t> RouterGraph::by_hop_distance() const {
  std::vector<std::size_t> order;
  order.reserve(routers_.size());
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    if (!routers_[i].addrs.empty()) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (routers_[a].min_hop != routers_[b].min_hop) {
      return routers_[a].min_hop < routers_[b].min_hop;
    }
    return a < b;
  });
  return order;
}

void RouterGraph::merge(std::size_t into, std::size_t from) {
  BDRMAP_EXPECTS(into < routers_.size() && from < routers_.size());
  if (into == from) return;
  BDRMAP_EXPECTS(!merged_away(into), "merge target is a tombstone");
  BDRMAP_EXPECTS(!merged_away(from), "merge source is a tombstone");
  GraphRouter& dst = routers_[into];
  GraphRouter& src = routers_[from];
  for (Ipv4Addr a : src.addrs) {
    addr_to_router_[a] = into;
    dst.addrs.push_back(a);
  }
  for (Ipv4Addr a : src.ttl_addrs) dst.ttl_addrs.push_back(a);
  std::sort(dst.addrs.begin(), dst.addrs.end());
  dst.addrs.erase(std::unique(dst.addrs.begin(), dst.addrs.end()),
                  dst.addrs.end());
  std::sort(dst.ttl_addrs.begin(), dst.ttl_addrs.end());
  dst.ttl_addrs.erase(
      std::unique(dst.ttl_addrs.begin(), dst.ttl_addrs.end()),
      dst.ttl_addrs.end());
  dst.min_hop = std::min(dst.min_hop, src.min_hop);
  dst.dest_ases.insert(src.dest_ases.begin(), src.dest_ases.end());
  dst.terminal_for.insert(src.terminal_for.begin(), src.terminal_for.end());

  // Rewire adjacency: everything pointing at `from` now points at `into`.
  for (std::size_t p : src.prev) {
    if (p == into) continue;
    routers_[p].next.erase(from);
    routers_[p].next.insert(into);
    dst.prev.insert(p);
  }
  for (std::size_t n : src.next) {
    if (n == into) continue;
    routers_[n].prev.erase(from);
    routers_[n].prev.insert(into);
    dst.next.insert(n);
  }
  dst.prev.erase(from);
  dst.next.erase(from);
  dst.prev.erase(into);
  dst.next.erase(into);

  src = GraphRouter{};  // tombstone (addrs empty == merged away)
  BDRMAP_ENSURES(merged_away(from) && !merged_away(into));
}

CompiledGraph RouterGraph::compile(net::Arena& arena) const {
  CompiledGraph cg;
  cg.router_count = static_cast<std::uint32_t>(routers_.size());

  std::uint8_t* live = arena.allocate<std::uint8_t>(routers_.size());
  std::uint8_t* vp_side = arena.allocate<std::uint8_t>(routers_.size());
  std::uint8_t* how = arena.allocate<std::uint8_t>(routers_.size());
  AsId* owner = arena.allocate<AsId>(routers_.size());
  double* confidence = arena.allocate<double>(routers_.size());

  std::size_t prev_total = 0;
  for (const GraphRouter& r : routers_) prev_total += r.prev.size();
  std::uint32_t* prev_offsets =
      arena.allocate<std::uint32_t>(routers_.size() + 1);
  std::uint32_t* prev = arena.allocate<std::uint32_t>(prev_total);

  std::uint32_t cursor = 0;
  for (std::size_t n = 0; n < routers_.size(); ++n) {
    const GraphRouter& r = routers_[n];
    live[n] = !r.addrs.empty();
    vp_side[n] = r.vp_side;
    how[n] = static_cast<std::uint8_t>(r.how);
    owner[n] = r.owner;
    confidence[n] = r.confidence;
    prev_offsets[n] = cursor;
    // std::set iterates ascending; the CSR row keeps that order so the
    // link-emission scan visits near-side routers identically.
    for (std::size_t p : r.prev) prev[cursor++] = static_cast<std::uint32_t>(p);
  }
  prev_offsets[routers_.size()] = cursor;

  cg.trace_count = static_cast<std::uint32_t>(traces_.size());
  std::size_t hop_total = 0;
  for (const ObservedTrace& t : traces_) hop_total += t.hops.size();
  std::uint32_t* trace_offsets =
      arena.allocate<std::uint32_t>(traces_.size() + 1);
  std::uint32_t* trace_hops = arena.allocate<std::uint32_t>(hop_total);

  cursor = 0;
  for (std::size_t t = 0; t < traces_.size(); ++t) {
    trace_offsets[t] = cursor;
    for (const ObservedHop& hop : traces_[t].hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
      auto it = addr_to_router_.find(hop.addr);
      if (it == addr_to_router_.end()) continue;
      trace_hops[cursor++] = static_cast<std::uint32_t>(it->second);
    }
  }
  trace_offsets[traces_.size()] = cursor;

  cg.live = live;
  cg.vp_side = vp_side;
  cg.how = how;
  cg.owner = owner;
  cg.confidence = confidence;
  cg.prev_offsets = prev_offsets;
  cg.prev = prev;
  cg.trace_offsets = trace_offsets;
  cg.trace_hops = trace_hops;
  return cg;
}

std::size_t RouterGraph::live_router_count() const {
  std::size_t n = 0;
  for (const auto& r : routers_) n += !r.addrs.empty();
  return n;
}

}  // namespace bdrmap::core
