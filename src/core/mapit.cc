#include "core/mapit.h"

#include <algorithm>
#include <map>
#include <set>

namespace bdrmap::core {

MapItResult run_mapit(const std::vector<ObservedTrace>& traces,
                      const asdata::OriginTable& origins,
                      const std::vector<AsId>& vp_ases,
                      MapItConfig config) {
  MapItResult result;
  (void)vp_ases;  // kept for interface parity with the other baselines

  // Interface graph: successors and predecessors per address.
  std::map<Ipv4Addr, std::set<Ipv4Addr>> successors, predecessors;
  for (const auto& trace : traces) {
    Ipv4Addr prev;
    bool prev_valid = false;
    for (const auto& hop : trace.hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) {
        prev_valid = false;
        continue;
      }
      result.owners.insert_first(hop.addr, origins.origin(hop.addr));
      if (prev_valid && prev != hop.addr) {
        successors[prev].insert(hop.addr);
        predecessors[hop.addr].insert(prev);
      }
      prev = hop.addr;
      prev_valid = true;
    }
  }
  for (const auto& [addr, owner] : result.owners) {
    if (!successors.count(addr)) ++result.terminal_interfaces;
  }

  // Multipass relabeling: an interface is the far side of a border link
  // when the dominant label among its successors differs from its own and
  // its predecessors side with its current (near) mapping.
  for (int pass = 0; pass < config.max_passes; ++pass) {
    ++result.passes_run;
    bool changed = false;
    OwnerTable next = result.owners;
    for (const auto& [addr, label] : result.owners) {
      auto succ_it = successors.find(addr);
      if (succ_it == successors.end()) continue;  // path end: no constraint
      // Dominant successor label.
      std::map<AsId, std::size_t> votes;
      std::size_t total = 0;
      for (Ipv4Addr s : succ_it->second) {
        AsId v = result.owners.at(s);
        if (!v.valid()) continue;
        ++votes[v];
        ++total;
      }
      if (total == 0) continue;
      AsId dominant;
      std::size_t best = 0;
      for (const auto& [as, count] : votes) {
        if (count > best) {
          dominant = as;
          best = count;
        }
      }
      if (!dominant.valid() || dominant == label) continue;
      if (static_cast<double>(best) <
          config.majority * static_cast<double>(total)) {
        continue;
      }
      // The border moves by exactly one interface: an address is the far
      // half of an A-B link only when nothing after it still maps to A in
      // BGP. Without this, relabeling cascades back up the path.
      AsId own_origin = origins.origin(addr);
      bool own_space_follows = false;
      for (Ipv4Addr s : succ_it->second) {
        own_space_follows |= own_origin.valid() &&
                             origins.origin(s) == own_origin;
      }
      if (own_space_follows) continue;
      next.assign(addr, dominant);
      changed = true;
    }
    result.owners = std::move(next);
    if (!changed) break;
  }

  // Count relabels relative to the plain mapping.
  for (const auto& [addr, label] : result.owners) {
    if (label != origins.origin(addr)) ++result.relabeled;
  }
  return result;
}

}  // namespace bdrmap::core
