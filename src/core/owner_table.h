// Sorted flat owner table: address -> owning AS.
//
// The comparison methods (baseline.h, mapit.h) label every observed
// interface address with an AS. They used std::map<Ipv4Addr, AsId> — one
// node allocation plus an O(log n) pointer chase per hop of every trace,
// in loops hot enough to show up in bench_baseline. OwnerTable keeps the
// map interface the consumers use (at/find/count/size, sorted pair
// iteration with structured bindings) but stores entries in one sorted
// flat vector: builds batch-append in O(1) amortized and normalize once
// with a single sort, lookups binary-search a contiguous array.
//
// Insertion semantics mirror the two std::map idioms the builders used:
// insert_first() == map::emplace (first write to a key wins) and
// assign() == map::operator[]= (last write wins). Mixed sequences resolve
// exactly as the equivalent map mutation sequence would, so results are
// bit-identical to the std::map versions, including iteration order.
//
// Not thread-safe: one builder mutates, then readers share the normalized
// table (same single-threaded discipline as the rest of the comparison
// pipeline).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "netbase/contract.h"
#include "netbase/ids.h"
#include "netbase/ipv4.h"

namespace bdrmap::core {

class OwnerTable {
 public:
  using Entry = std::pair<net::Ipv4Addr, net::AsId>;
  using const_iterator = std::vector<Entry>::const_iterator;

  // map::emplace semantics: keeps the existing value if `addr` is present
  // (or was appended earlier in this batch).
  void insert_first(net::Ipv4Addr addr, net::AsId as) {
    pending_.push_back({addr, as, /*overwrite=*/false});
  }

  // map::operator[]= semantics: the last write to `addr` wins.
  void assign(net::Ipv4Addr addr, net::AsId as) {
    pending_.push_back({addr, as, /*overwrite=*/true});
  }

  const net::AsId& at(net::Ipv4Addr addr) const {
    const Entry* e = lookup(addr);
    BDRMAP_EXPECTS(e != nullptr, "OwnerTable::at: address not present");
    return e->second;
  }

  const Entry* find(net::Ipv4Addr addr) const { return lookup(addr); }
  std::size_t count(net::Ipv4Addr addr) const {
    return lookup(addr) ? 1 : 0;
  }

  std::size_t size() const {
    flush();
    return entries_.size();
  }
  bool empty() const { return size() == 0; }

  // Sorted by address, unique keys — the std::map iteration order.
  const_iterator begin() const {
    flush();
    return entries_.begin();
  }
  const_iterator end() const {
    flush();
    return entries_.end();
  }

 private:
  struct Pending {
    net::Ipv4Addr addr;
    net::AsId as;
    bool overwrite;
  };

  const Entry* lookup(net::Ipv4Addr addr) const {
    flush();
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), addr,
        [](const Entry& e, net::Ipv4Addr a) { return e.first < a; });
    if (it == entries_.end() || it->first != addr) return nullptr;
    return &*it;
  }

  // Folds the append batch into the sorted entry vector. Stable sort keeps
  // same-key appends in insertion order, so replaying them left-to-right
  // reproduces the exact value the equivalent map mutations would leave.
  void flush() const {
    if (pending_.empty()) return;
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Pending& a, const Pending& b) {
                       return a.addr < b.addr;
                     });
    std::vector<Entry> merged;
    merged.reserve(entries_.size() + pending_.size());
    auto old = entries_.begin();
    for (auto p = pending_.begin(); p != pending_.end();) {
      const net::Ipv4Addr key = p->addr;
      while (old != entries_.end() && old->first < key) {
        merged.push_back(*old++);
      }
      const bool have = old != entries_.end() && old->first == key;
      net::AsId value = have ? old->second : p->as;
      bool written = have;
      for (; p != pending_.end() && p->addr == key; ++p) {
        if (p->overwrite || !written) {
          value = p->as;
          written = true;
        }
      }
      if (have) ++old;
      merged.push_back({key, value});
    }
    merged.insert(merged.end(), old, entries_.end());
    entries_ = std::move(merged);
    pending_.clear();
  }

  mutable std::vector<Entry> entries_;   // sorted, unique
  mutable std::vector<Pending> pending_;  // unsorted append batch
};

}  // namespace bdrmap::core
