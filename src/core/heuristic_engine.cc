#include "core/heuristic_engine.h"

namespace bdrmap::core {

namespace conf {

double relationship_prior(const asdata::RelationshipStore& rels, AsId a,
                          AsId b) {
  const asdata::Relationship ab = rels.rel(a, b);
  const asdata::Relationship ba = rels.rel(b, a);
  if (ab == asdata::Relationship::kNone &&
      ba == asdata::Relationship::kNone) {
    return 0.0;
  }
  if (ab != asdata::Relationship::kNone && ba == asdata::invert(ab)) {
    return kConsistentEdgePrior;
  }
  return kOneSidedEdgePrior;
}

double prior(Heuristic how) {
  switch (how) {
    case Heuristic::kNone: return 0.0;
    // §5.4.1: the VP's own space followed by more VP space — the most
    // constrained inference the ladder makes.
    case Heuristic::kVpNetwork: return 0.95;
    case Heuristic::kMultihomed: return 0.70;
    // §5.4.2: a terminal VP-addressed router in front of one silent org.
    case Heuristic::kFirewall: return 0.80;
    // §5.4.3: unrouted space — no BGP anchor at all.
    case Heuristic::kUnrouted: return 0.60;
    // §5.4.4: one external AS on the router and the same AS beyond it.
    case Heuristic::kOnenet: return 0.85;
    // §5.4.5: relationship-derived; the edge prior multiplies on top.
    case Heuristic::kThirdParty: return 0.75;
    case Heuristic::kRelationship: return 0.90;
    case Heuristic::kMissingCust: return 0.60;
    case Heuristic::kHiddenPeer: return 0.65;
    // §5.4.6: majority votes — the paper's weakest placements.
    case Heuristic::kCount: return 0.55;
    case Heuristic::kIpAs: return 0.50;
    // §5.4.8: synthetic placements for routers never observed.
    case Heuristic::kSilent: return 0.60;
    case Heuristic::kOtherIcmp: return 0.65;
  }
  return 0.0;
}

}  // namespace conf

const char* HeuristicRule::skip_reason(const Heuristics& h) const {
  const HeuristicsConfig& config = h.config();
  const std::string_view slug(slug_);
  bool enabled = true;
  if (slug == "relationships") enabled = config.enable_relationships;
  if (slug == "analytic_alias") enabled = config.enable_analytic_alias;
  auto it = config.rule_overrides.find(std::string(slug));
  if (it != config.rule_overrides.end() && it->second.enabled.has_value()) {
    enabled = *it->second.enabled;
  }
  if (!enabled) return "disabled by config";
  if (needs_relationships_ && !h.inputs().rels) return "missing inputs.rels";
  return nullptr;
}

void HeuristicEngine::fire_vp_network(
    Heuristics& h, std::vector<UncooperativeNeighbor>&) {
  h.phase1_vp_network();
}

void HeuristicEngine::fire_firewall(Heuristics& h,
                                    std::vector<UncooperativeNeighbor>&) {
  h.phase2_firewall();
}

void HeuristicEngine::fire_unrouted(Heuristics& h,
                                    std::vector<UncooperativeNeighbor>&) {
  h.phase3_unrouted();
}

void HeuristicEngine::fire_onenet(Heuristics& h,
                                  std::vector<UncooperativeNeighbor>&) {
  h.phase4_onenet();
}

void HeuristicEngine::fire_relationships(
    Heuristics& h, std::vector<UncooperativeNeighbor>&) {
  h.phase5_relationships();
}

void HeuristicEngine::fire_counting(Heuristics& h,
                                    std::vector<UncooperativeNeighbor>&) {
  h.phase6_counting();
}

void HeuristicEngine::fire_analytic_alias(
    Heuristics& h, std::vector<UncooperativeNeighbor>&) {
  h.phase7_analytic_alias();
}

void HeuristicEngine::fire_uncooperative(
    Heuristics& h, std::vector<UncooperativeNeighbor>& placements) {
  std::vector<UncooperativeNeighbor> out = h.phase8_uncooperative();
  placements.insert(placements.end(), out.begin(), out.end());
}

const std::vector<HeuristicRule>& HeuristicEngine::registry() {
  static const std::vector<HeuristicRule> rules = {
      {"vp_network", "5.4.1", /*needs_relationships=*/false,
       &HeuristicEngine::fire_vp_network},
      {"firewall", "5.4.2", /*needs_relationships=*/false,
       &HeuristicEngine::fire_firewall},
      {"unrouted", "5.4.3", /*needs_relationships=*/false,
       &HeuristicEngine::fire_unrouted},
      {"onenet", "5.4.4", /*needs_relationships=*/false,
       &HeuristicEngine::fire_onenet},
      {"relationships", "5.4.5", /*needs_relationships=*/true,
       &HeuristicEngine::fire_relationships},
      {"counting", "5.4.6", /*needs_relationships=*/false,
       &HeuristicEngine::fire_counting},
      {"analytic_alias", "5.4.7", /*needs_relationships=*/false,
       &HeuristicEngine::fire_analytic_alias},
      {"uncooperative", "5.4.8", /*needs_relationships=*/true,
       &HeuristicEngine::fire_uncooperative},
  };
  return rules;
}

const HeuristicRule* HeuristicEngine::find(std::string_view slug) {
  for (const HeuristicRule& rule : registry()) {
    if (slug == rule.slug()) return &rule;
  }
  return nullptr;
}

std::vector<std::size_t> HeuristicEngine::resolve_order(
    const HeuristicsConfig& config) {
  const std::vector<HeuristicRule>& rules = registry();
  std::vector<std::size_t> order;
  order.reserve(rules.size());
  std::vector<char> placed(rules.size(), 0);
  for (const std::string& slug : config.rule_order) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (!placed[i] && slug == rules[i].slug()) {
        placed[i] = 1;
        order.push_back(i);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!placed[i]) order.push_back(i);
  }
  return order;
}

std::vector<UncooperativeNeighbor> HeuristicEngine::run() {
  std::vector<UncooperativeNeighbor> placements;
  const std::vector<HeuristicRule>& rules = registry();
  for (std::size_t idx : resolve_order(h_.config_)) {
    const HeuristicRule& rule = rules[idx];
    if (rule.skip_reason(h_) != nullptr) {
      ++h_.rule_stats_[idx].skips;
      continue;
    }
    h_.current_rule_ = idx;
    h_.confidence_scale_ = 1.0;
    auto it = h_.config_.rule_overrides.find(rule.slug());
    if (it != h_.config_.rule_overrides.end() &&
        it->second.confidence_scale.has_value()) {
      h_.confidence_scale_ = conf::clamp01(*it->second.confidence_scale);
    }
    rule.fire(h_, placements);
    h_.current_rule_ = Heuristics::kNoRule;
    h_.confidence_scale_ = 1.0;
  }
  return placements;
}

}  // namespace bdrmap::core
