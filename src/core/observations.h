// What bdrmap observed: the collected traces and per-address annotations.
//
// Everything the inference heuristics consume lives here or in the §5.2
// input datasets — never in topo::Internet. TraceHop's ground-truth router
// annotation is dropped at this boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ids.h"
#include "netbase/ipv4.h"
#include "probe/types.h"

namespace bdrmap::core {

using net::AsId;
using net::Ipv4Addr;

struct ObservedHop {
  Ipv4Addr addr;  // zero for non-replies
  probe::ReplyKind kind = probe::ReplyKind::kNone;
};

struct ObservedTrace {
  Ipv4Addr dst;
  AsId target_as;  // origin AS of the probed block
  std::vector<ObservedHop> hops;
  bool reached_dst = false;
  bool stopped_by_stopset = false;
};

// A probe the measurement channel abandoned (§5.8 degraded deployment):
// the pipeline records the target instead of silently omitting it, so the
// final report can flag which blocks went unmeasured.
struct ProbeFailure {
  Ipv4Addr dst;
  AsId target_as;
};

// Strips the ground-truth annotations from an engine-level trace.
inline ObservedTrace observe(const probe::TraceResult& t, AsId target_as) {
  ObservedTrace out;
  out.dst = t.dst;
  out.target_as = target_as;
  out.reached_dst = t.reached_dst;
  out.stopped_by_stopset = t.stopped_by_stopset;
  out.hops.reserve(t.hops.size());
  for (const auto& h : t.hops) out.hops.push_back({h.addr, h.kind});
  return out;
}

}  // namespace bdrmap::core
