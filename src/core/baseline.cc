#include "core/baseline.h"

#include <algorithm>
#include <set>

namespace bdrmap::core {

BaselineResult naive_ip_as(const std::vector<ObservedTrace>& traces,
                           const asdata::OriginTable& origins,
                           const std::vector<AsId>& vp_ases) {
  BaselineResult result;
  auto is_vp = [&](AsId as) {
    return std::find(vp_ases.begin(), vp_ases.end(), as) != vp_ases.end();
  };

  std::set<std::pair<Ipv4Addr, Ipv4Addr>> seen_links;
  for (const auto& trace : traces) {
    Ipv4Addr prev;
    AsId prev_as;
    bool prev_valid = false;
    for (const auto& hop : trace.hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) {
        prev_valid = false;
        continue;
      }
      AsId as = origins.origin(hop.addr);
      result.owners.assign(hop.addr, as);
      if (prev_valid && prev != hop.addr && prev_as != as &&
          is_vp(prev_as) && as.valid() && !is_vp(as)) {
        if (seen_links.emplace(prev, hop.addr).second) {
          result.links.push_back({prev, hop.addr, prev_as, as});
        }
      }
      prev = hop.addr;
      prev_as = as;
      prev_valid = true;
    }
  }
  return result;
}

}  // namespace bdrmap::core
