// Multi-VP aggregation: one network-wide border map from per-VP runs.
//
// The §6 deployment runs bdrmap from 19 VPs inside one access network; the
// union of their inferences is the network's border map (and the marginal
// utility of each VP — Figure 15 — falls out of the merge order). Router
// identity across VPs comes from shared interface addresses: two per-VP
// routers observed with a common address are the same physical router, so
// alias sets union transitively. Ownership conflicts resolve by majority
// across VPs (ties to the lowest AS), with VP-side status taking priority.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/bdrmap.h"

namespace bdrmap::core {

struct MergedRouter {
  std::vector<Ipv4Addr> addrs;  // union of per-VP alias sets
  AsId owner;                   // majority owner across observing VPs
  Heuristic how = Heuristic::kNone;  // earliest-stage heuristic observed
  bool vp_side = false;
  std::set<std::size_t> seen_by;  // indices into the merged run list
};

struct MergedLink {
  static constexpr std::size_t kNoRouter = static_cast<std::size_t>(-1);
  std::size_t near_router = kNoRouter;  // merged router indices
  std::size_t far_router = kNoRouter;
  AsId neighbor_as;
  Heuristic how = Heuristic::kNone;
  std::size_t first_seen_by = 0;  // VP index that first revealed the link
  std::set<std::size_t> seen_by;
};

struct MergedMap {
  std::vector<MergedRouter> routers;
  std::vector<MergedLink> links;
  std::map<AsId, std::vector<std::size_t>> links_by_as;
  // links[k] counts distinct links known after merging runs 0..k —
  // the Figure 15 marginal-utility curve without ground truth.
  std::vector<std::size_t> cumulative_links;

  std::optional<std::size_t> router_of(Ipv4Addr addr) const;

 private:
  friend MergedMap merge_results(const std::vector<const BdrmapResult*>&);
  std::map<Ipv4Addr, std::size_t> addr_index_;
};

// Merges per-VP results in order (the order defines the marginal-utility
// curve). Runs may come from different VPs of the same hosting network.
MergedMap merge_results(const std::vector<const BdrmapResult*>& runs);

}  // namespace bdrmap::core
