// Pluggable §5.4 heuristic engine (DESIGN.md §15).
//
// The paper's ownership ladder is a fixed sequence of eight rule families
// (§5.4.1 – §5.4.8). This header turns that sequence into data: every rule
// is a registry entry with a stable slug, a precondition (which §5.2
// inputs it needs), per-rule config overrides, and a fire() that runs the
// corresponding phase body. The engine executes the registry in a
// configurable order with a deterministic tie-break (registration order),
// counts fires and skips per rule, and — through the confidence algebra
// below — annotates every assignment with a probability-style confidence
// in [0,1] (PARI-style propagation: relationship-derived evidence carries
// a prior from asdata::RelationshipStore).
//
// Bit-identity contract: both engines (legacy ladder and registry) call
// the SAME phase bodies in core/heuristics.cc, so with the default rule
// order and no overrides the border map — including confidences — is
// bit-identical between them (tests/heuristic_engine_parity_test.cc).
// Confidence never feeds placement decisions and is excluded from
// eval::same_border_map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/heuristics.h"

namespace bdrmap::core {

// ---------------------------------------------------------------------------
// Confidence algebra (unit-tested in tests/heuristic_confidence_test.cc).
//
// Documented properties:
//   * every combinator maps into [0,1];
//   * both() and either() are commutative bitwise-exactly in IEEE double
//     (operand symmetry), and associative up to floating-point rounding;
//   * either(c, e) >= c and support(p, n) is non-decreasing in n — adding
//     supporting evidence never lowers a confidence;
//   * everything is pure rational arithmetic on already-deterministic
//     inputs, so results are identical at any thread count.
// ---------------------------------------------------------------------------
namespace conf {

inline double clamp01(double x) {
  return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
}

// AND-combination: the conclusion needs both pieces of evidence.
inline double both(double a, double b) { return clamp01(a) * clamp01(b); }

// noisy-OR: either observation alone supports the conclusion. The naive
// a + b - a*b can round below max(a, b) (e.g. a=0.9, b=1.0), so the result
// is floored at the larger operand — "adding evidence never lowers a
// confidence" holds exactly, not just up to rounding.
inline double either(double a, double b) {
  a = clamp01(a);
  b = clamp01(b);
  const double noisy_or = clamp01(a + b - a * b);
  const double strongest = a > b ? a : b;
  return noisy_or > strongest ? noisy_or : strongest;
}

// n independent supporting observations of strength p each:
// 1 - (1-p)^n, computed by repeated multiplication (no libm pow, so the
// value is bit-stable across platforms and monotone in n by construction).
inline double support(double p, int n) {
  p = clamp01(p);
  if (n <= 0) return 0.0;
  double miss = 1.0;
  for (int i = 0; i < n && miss > 0.0; ++i) miss *= 1.0 - p;
  return 1.0 - miss;
}

// k-of-n majority share.
inline double vote(std::size_t k, std::size_t n) {
  if (n == 0) return 0.0;
  if (k > n) k = n;
  return static_cast<double>(k) / static_cast<double>(n);
}

// Priors on relationship-store edges (the store holds *inferred*
// relationships, so an edge is evidence, not truth — PARI's premise).
inline constexpr double kConsistentEdgePrior = 0.95;  // both directions agree
inline constexpr double kOneSidedEdgePrior = 0.70;    // asymmetric dump row
// Fallback strength for weakly-constrained steps (single destination org,
// nothing routed beyond).
inline constexpr double kWeakEvidence = 0.4;
// Discount for conclusions propagated one hop from their evidence (the
// §5.4.4 step-4.2 / §5.4.5 step-5.1 "preceding router" inferences).
inline constexpr double kIndirectEvidence = 0.9;

// Prior that the relationship edge between a and b is real:
// kConsistentEdgePrior when rel(a,b) and rel(b,a) are mutually inverse,
// kOneSidedEdgePrior when only one direction (or an inconsistent pair) is
// recorded, 0 when the store has no edge at all.
double relationship_prior(const asdata::RelationshipStore& rels, AsId a,
                          AsId b);

// Base prior of each §5.4 rule tag (Table 1 row), reflecting how
// constrained the paper argues the inference is. prior(kNone) == 0.
double prior(Heuristic how);

}  // namespace conf

// One registry entry: a §5.4 rule family with a stable slug. fire() runs
// the shared phase body through a HeuristicEngine trampoline (the engine
// is a friend of Heuristics; the phase bodies stay private so nothing
// outside the engine can call the ladder directly — lint rule BDR105).
class HeuristicRule {
 public:
  using FireFn = void (*)(Heuristics&, std::vector<UncooperativeNeighbor>&);

  constexpr HeuristicRule(const char* slug, const char* paper_step,
                          bool needs_relationships, FireFn fire_fn)
      : slug_(slug),
        paper_step_(paper_step),
        needs_relationships_(needs_relationships),
        fire_(fire_fn) {}

  const char* slug() const { return slug_; }
  const char* paper_step() const { return paper_step_; }

  // nullptr when the rule can run; otherwise a stable human-readable skip
  // reason (a disabling config knob or a missing InferenceInputs dataset).
  // Overrides in HeuristicsConfig::rule_overrides take precedence over the
  // legacy enable_* booleans; a missing precondition always skips.
  const char* skip_reason(const Heuristics& h) const;

  void fire(Heuristics& h,
            std::vector<UncooperativeNeighbor>& placements) const {
    fire_(h, placements);
  }

 private:
  const char* slug_;
  const char* paper_step_;
  bool needs_relationships_;  // precondition: InferenceInputs::rels
  FireFn fire_;
};

// Runs the rule registry over one Heuristics instance. Constructed and
// driven by Heuristics::run() when HeuristicsConfig::engine == kRegistry.
class HeuristicEngine {
 public:
  explicit HeuristicEngine(Heuristics& h) : h_(h) {}

  // Executes every registered rule in resolve_order(config) — skipped
  // rules are counted in the owning Heuristics' rule_stats() — and
  // returns the §5.4.8 placements.
  std::vector<UncooperativeNeighbor> run();

  // All rules in paper order (§5.4.1 … §5.4.8) — the registration order
  // that doubles as the deterministic tie-break.
  static const std::vector<HeuristicRule>& registry();

  // Registry entry for `slug`; nullptr for unknown slugs.
  static const HeuristicRule* find(std::string_view slug);

  // config.rule_order resolved to registry indices: named slugs first, in
  // the given order (unknown names ignored, duplicates collapsed), then
  // every remaining rule appended in registration order.
  static std::vector<std::size_t> resolve_order(
      const HeuristicsConfig& config);

 private:
  // Phase trampolines: members of this class so the friendship Heuristics
  // grants HeuristicEngine covers them.
  static void fire_vp_network(Heuristics&,
                              std::vector<UncooperativeNeighbor>&);
  static void fire_firewall(Heuristics&, std::vector<UncooperativeNeighbor>&);
  static void fire_unrouted(Heuristics&, std::vector<UncooperativeNeighbor>&);
  static void fire_onenet(Heuristics&, std::vector<UncooperativeNeighbor>&);
  static void fire_relationships(Heuristics&,
                                 std::vector<UncooperativeNeighbor>&);
  static void fire_counting(Heuristics&, std::vector<UncooperativeNeighbor>&);
  static void fire_analytic_alias(Heuristics&,
                                  std::vector<UncooperativeNeighbor>&);
  static void fire_uncooperative(Heuristics&,
                                 std::vector<UncooperativeNeighbor>&);

  Heuristics& h_;
};

}  // namespace bdrmap::core
