// MAP-IT-style interface-ownership inference (Marder & Smith [30]) as a
// comparison method.
//
// MAP-IT works on the interface-level graph: an interface whose IP-AS
// mapping says A but whose *subsequent* interfaces consistently map to B is
// inferred to be the far side of an A-B interdomain link, operated by B
// (B numbered it from A's space). The inference runs in passes until a
// fixed point, each pass using the labels of the previous one. The paper's
// §3 critique — "half the interdomain links in our inferences are at the
// end of paths, with no adjacent addresses in neighbor address space" — is
// directly measurable here: interfaces with no successors keep their
// (frequently wrong) IP-AS label.
#pragma once

#include <vector>

#include "asdata/bgp_origins.h"
#include "core/observations.h"
#include "core/owner_table.h"

namespace bdrmap::core {

struct MapItConfig {
  int max_passes = 8;
  // Fraction of a candidate's neighbor labels that must agree before the
  // interface is relabeled.
  double majority = 0.66;
};

struct MapItResult {
  // Final owner label per observed (time-exceeded) interface address.
  // Sorted flat vector with std::map-identical contents and iteration
  // order (owner_table.h).
  OwnerTable owners;
  // Interfaces whose label changed from the plain IP-AS mapping.
  std::size_t relabeled = 0;
  // Interfaces that were terminal in every trace (no successors): the
  // constraint-free population the paper's critique concerns.
  std::size_t terminal_interfaces = 0;
  std::size_t passes_run = 0;
};

MapItResult run_mapit(const std::vector<ObservedTrace>& traces,
                      const asdata::OriginTable& origins,
                      const std::vector<AsId>& vp_ases,
                      MapItConfig config = {});

}  // namespace bdrmap::core
