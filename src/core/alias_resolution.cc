#include "core/alias_resolution.h"

#include <algorithm>
#include <functional>

namespace bdrmap::core {

AliasVerdict AliasResolver::mercator(Ipv4Addr a, Ipv4Addr b) {
  auto source_of = [&](Ipv4Addr x) -> std::optional<Ipv4Addr> {
    auto it = udp_sources_.find(x);
    if (it != udp_sources_.end()) return it->second;
    auto src = services_.udp_probe(x);
    udp_sources_.emplace(x, src);
    return src;
  };
  auto sa = source_of(a);
  auto sb = source_of(b);
  if (!sa || !sb) return AliasVerdict::kUnknown;
  return (*sa == *sb) ? AliasVerdict::kAlias : AliasVerdict::kNotAlias;
}

namespace {

// MIDAR-style monotonicity over an interleaved sample sequence: strictly
// increasing with at most one 16-bit wrap, and no implausibly large jump.
bool monotone(const std::vector<std::uint16_t>& ids, std::uint16_t max_gap) {
  int wraps = 0;
  for (std::size_t i = 1; i < ids.size(); ++i) {
    std::uint32_t prev = ids[i - 1];
    std::uint32_t cur = ids[i];
    if (cur <= prev) {
      // Candidate wrap: the counter passed 0xffff.
      if (++wraps > 1) return false;
      cur += 0x10000;
    }
    if (cur - prev > max_gap) return false;
  }
  return true;
}

}  // namespace

AliasVerdict AliasResolver::ally(Ipv4Addr a, Ipv4Addr b) {
  bool ever_sampled = false;
  for (int round = 0; round < config_.ally_rounds; ++round) {
    std::vector<std::uint16_t> ids;
    bool missing = false;
    for (int i = 0; i < config_.ally_samples; ++i) {
      Ipv4Addr target = (i % 2 == 0) ? a : b;
      auto id = services_.ipid_sample(target, clock_);
      clock_ += config_.ally_sample_gap;
      if (!id) {
        missing = true;
        break;
      }
      ids.push_back(*id);
    }
    clock_ += config_.ally_round_interval;
    if (missing) {
      // Unresponsive to this probe type: no evidence either way.
      if (!ever_sampled && round == 0) return AliasVerdict::kUnknown;
      continue;
    }
    ever_sampled = true;
    // A zero/constant series means the router does not use a counter.
    bool all_zero = std::all_of(ids.begin(), ids.end(),
                                [](std::uint16_t v) { return v == 0; });
    if (all_zero) return AliasVerdict::kUnknown;
    if (!monotone(ids, config_.ally_max_gap)) {
      // One rejecting round kills the shared-counter hypothesis (§5.3).
      return AliasVerdict::kNotAlias;
    }
  }
  return ever_sampled ? AliasVerdict::kAlias : AliasVerdict::kUnknown;
}

AliasVerdict AliasResolver::test_pair(Ipv4Addr a, Ipv4Addr b) {
  if (a == b) return AliasVerdict::kAlias;
  auto it = cache_.find(key(a, b));
  if (it != cache_.end()) return it->second;

  AliasVerdict v = mercator(a, b);
  if (v == AliasVerdict::kUnknown) {
    v = ally(a, b);
  } else if (v == AliasVerdict::kAlias) {
    // Corroborate with Ally when possible; a rejecting Ally measurement is
    // negative evidence the closure must honor.
    AliasVerdict av = ally(a, b);
    if (av == AliasVerdict::kNotAlias) v = AliasVerdict::kNotAlias;
  }
  cache_.emplace(key(a, b), v);
  return v;
}

std::optional<Ipv4Addr> AliasResolver::prefixscan(Ipv4Addr prev_hop,
                                                  Ipv4Addr hop) {
  // /31 mate first (more specific assumption), then /30.
  Ipv4Addr m31 = net::mate31(hop);
  if (m31 != prev_hop && test_pair(prev_hop, m31) == AliasVerdict::kAlias) {
    return m31;
  }
  if (auto m30 = net::mate30(hop)) {
    if (*m30 != prev_hop && *m30 != m31 &&
        test_pair(prev_hop, *m30) == AliasVerdict::kAlias) {
      return *m30;
    }
  }
  return std::nullopt;
}

void AliasResolver::declare(Ipv4Addr a, Ipv4Addr b, AliasVerdict v) {
  if (a == b) return;
  cache_[key(a, b)] = v;
}

AliasVerdict AliasResolver::verdict_of(Ipv4Addr a, Ipv4Addr b) const {
  if (a == b) return AliasVerdict::kAlias;
  auto it = cache_.find(key(a, b));
  return it == cache_.end() ? AliasVerdict::kUnknown : it->second;
}

std::vector<AliasResolver::PairVerdict> AliasResolver::all_verdicts() const {
  std::vector<PairVerdict> out;
  out.reserve(cache_.size());
  for (const auto& [k, v] : cache_) {
    out.push_back({Ipv4Addr(static_cast<std::uint32_t>(k >> 32)),
                   Ipv4Addr(static_cast<std::uint32_t>(k)), v});
  }
  return out;
}

std::vector<std::vector<Ipv4Addr>> AliasResolver::groups(
    const std::vector<Ipv4Addr>& addrs) const {
  // Union-find over positive verdicts with negative-pair veto.
  std::unordered_map<Ipv4Addr, std::size_t> index;
  std::vector<Ipv4Addr> nodes;
  for (Ipv4Addr a : addrs) {
    if (index.emplace(a, nodes.size()).second) nodes.push_back(a);
  }
  std::vector<std::size_t> parent(nodes.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  // Collect the verdicts that involve known addresses.
  struct Pair {
    std::size_t a, b;
  };
  std::vector<Pair> positives, negatives;
  for (const auto& [k, v] : cache_) {
    Ipv4Addr a(static_cast<std::uint32_t>(k >> 32));
    Ipv4Addr b(static_cast<std::uint32_t>(k & 0xffffffffu));
    auto ia = index.find(a);
    auto ib = index.find(b);
    if (ia == index.end() || ib == index.end()) continue;
    if (v == AliasVerdict::kAlias) {
      positives.push_back({ia->second, ib->second});
    } else if (v == AliasVerdict::kNotAlias) {
      negatives.push_back({ia->second, ib->second});
    }
  }

  // Union positives, but refuse merges that would join components holding
  // a negative pair. Order-dependent, as in the real tool; negatives are
  // re-checked against current components each time.
  auto components_conflict = [&](std::size_t ra, std::size_t rb) {
    for (const Pair& n : negatives) {
      std::size_t na = find(n.a), nb = find(n.b);
      if ((na == ra && nb == rb) || (na == rb && nb == ra)) return true;
    }
    return false;
  };
  for (const Pair& p : positives) {
    std::size_t ra = find(p.a), rb = find(p.b);
    if (ra == rb) continue;
    if (components_conflict(ra, rb)) continue;
    parent[ra] = rb;
  }

  std::unordered_map<std::size_t, std::vector<Ipv4Addr>> by_root;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    by_root[find(i)].push_back(nodes[i]);
  }
  std::vector<std::vector<Ipv4Addr>> out;
  out.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

}  // namespace bdrmap::core
