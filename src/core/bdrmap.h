// bdrmap: the complete border-mapping pipeline (Figure 2 of the paper).
//
// Drives targeted traceroutes toward every routed block (§5.3), resolves
// aliases (Ally / Mercator / MIDAR / prefixscan), builds the router-level
// graph, applies the §5.4 ownership heuristics, and reports the interdomain
// links of the network hosting the vantage point.
//
// The class is written against probe::ProbeServices, so the identical
// inference runs on a local prober or on the §5.8 split deployment.
//
// Threading model: one Bdrmap instance == one VP == one thread. The
// instance mutates its stop set, stats, failure log and (through
// services_) the probe RNG without any locks, and run() contracts against
// concurrent re-entry. Cross-VP parallelism happens one level up:
// runtime::MultiVpExecutor constructs an instance + ProbeServices per VP
// and only shares the read-only InferenceInputs, which must stay
// unmutated (and alive) for the duration of every run that references it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/alias_resolution.h"
#include "core/blocks.h"
#include "core/heuristics.h"
#include "core/observations.h"
#include "core/router_graph.h"
#include "core/stopset.h"
#include "obs/obs.h"
#include "probe/types.h"

namespace bdrmap::core {

struct BdrmapConfig {
  // §5.3: up to five addresses per block when earlier probes see nothing
  // external (guards against third-party misinterpretation).
  int max_addrs_per_block = 5;
  bool enable_stop_set = true;          // ablation: doubletree stop set
  bool enable_alias_resolution = true;  // ablation: Figure 13's failure mode
  // Extension: IP prespecified-timestamp probing ([26]) to confirm that an
  // externally-mapped hop address really is the inbound interface, sparing
  // it from third-party reclassification. Off by default (the paper's
  // bdrmap used prefixscan only; [26] is the follow-on technique).
  bool enable_timestamp_checks = false;
  // Cap on the number of pair tests within one candidate fan-out group.
  std::size_t max_candidate_group = 12;
  // Extension: MIDAR-style estimation/discovery/corroboration scheduling
  // over ALL observed addresses (finds aliases the topology-driven
  // candidate fans miss, at extra probing cost).
  bool enable_midar_discovery = false;
  AliasConfig alias;
  HeuristicsConfig heuristics;
  // Observability bundle (DESIGN.md §11). When set and enabled, run()
  // emits one span per pipeline stage (schedule → trace → alias → merge →
  // heuristics) and publishes stats + per-heuristic fire counts to the
  // registry. Metrics never feed inference: the border map is
  // bit-identical with obs on, off, or null.
  obs::Observability* obs = nullptr;
  // When non-empty, collection probes only the blocks whose target AS is in
  // this list (the §5.3 schedule is otherwise unchanged, including its
  // sorted block order). This is the slice knob the serve engine uses to
  // re-collect only churn-dirtied (VP, target-AS) slices; a filtered
  // collect is bit-identical to the matching slice of an unfiltered one
  // because the stop set is keyed per target AS.
  std::vector<AsId> target_filter;
  // Batched probe-wave width (DESIGN.md §14): collect_traces() announces
  // the first destination of each of the next `probe_wave` blocks via
  // ProbeServices::prewalk_wave before tracing them, so a local engine
  // pre-walks their forward paths in one lockstep pass. Retries within a
  // block stay unbatched. 0 disables waving. Bit-identical either way —
  // the pre-walk is a pure FIB walk; replies, RNG and stop sets are
  // evaluated in trace() itself.
  std::size_t probe_wave = 64;
};

// The output of the collection stage (stage.schedule + stage.trace),
// detached from the inference tail so a scheduler can cache, merge, or
// re-run slices independently (serve::ServeEngine). Produced by
// Bdrmap::collect(), consumed by Bdrmap::run_with(); slices concatenate by
// appending fields in target-AS order.
struct CollectedTraces {
  std::vector<ObservedTrace> traces;
  std::vector<ProbeFailure> failures;
  std::uint64_t probes_sent = 0;  // spent by the collecting services
  std::size_t blocks = 0;
  std::size_t stopset_hits = 0;
  std::size_t probe_failures = 0;

  // Appends `other` (field-wise) onto this slice.
  void append(CollectedTraces other) {
    traces.insert(traces.end(),
                  std::make_move_iterator(other.traces.begin()),
                  std::make_move_iterator(other.traces.end()));
    failures.insert(failures.end(),
                    std::make_move_iterator(other.failures.begin()),
                    std::make_move_iterator(other.failures.end()));
    probes_sent += other.probes_sent;
    blocks += other.blocks;
    stopset_hits += other.stopset_hits;
    probe_failures += other.probe_failures;
  }
};

// One inferred router-level interdomain link.
struct InferredLink {
  static constexpr std::size_t kNoRouter = static_cast<std::size_t>(-1);
  std::size_t vp_router = kNoRouter;        // near side (graph index)
  std::size_t neighbor_router = kNoRouter;  // far side; kNoRouter if silent
  AsId neighbor_as;
  Heuristic how = Heuristic::kNone;
  // Inference strength in [0,1] (DESIGN.md §15); excluded from
  // eval::same_border_map so identity gates keep meaning "same map".
  double confidence = 0.0;
};

struct BdrmapStats {
  std::uint64_t probes_sent = 0;
  std::size_t blocks = 0;
  std::size_t traces = 0;
  std::size_t alias_pair_tests = 0;
  std::size_t routers = 0;
  std::size_t vp_routers = 0;
  std::size_t neighbor_routers = 0;
  std::size_t stopset_hits = 0;
  // Probes the measurement channel abandoned (§5.8 degraded deployment).
  std::size_t probe_failures = 0;
  // Footprint of the compiled SoA/CSR inference view (DESIGN.md §14).
  // Memory accounting only — never part of border-map equality
  // (eval::same_border_map ignores these fields by construction).
  std::size_t arena_bytes_reserved = 0;
  std::size_t arena_bytes_used = 0;
  std::size_t arena_allocations = 0;
};

struct BdrmapResult {
  RouterGraph graph;
  std::vector<InferredLink> links;
  std::map<AsId, std::vector<std::size_t>> links_by_as;  // indices into links
  BdrmapStats stats;
  // Per-rule fire/skip counters from the heuristics pass (registration
  // order; DESIGN.md §15). Excluded from eval::same_border_map.
  std::vector<HeuristicRuleStats> rule_stats;
  // Targets whose probes ultimately failed: the run completed with partial
  // visibility, and these are the blocks it could not observe.
  std::vector<ProbeFailure> failed_targets;

  // Distinct neighbor ASes with at least one inferred link.
  std::vector<AsId> neighbor_ases() const;
};

// Runs the §5.4 heuristics over an already-built router graph and emits
// the final border map (links, per-AS index, stats). Shared by the online
// pipeline (Bdrmap::run) and offline re-analysis of archived traces.
BdrmapResult infer_borders(RouterGraph graph, const InferenceInputs& inputs,
                           const HeuristicsConfig& config, BdrmapStats stats);

class Bdrmap {
 public:
  Bdrmap(probe::ProbeServices& services, const InferenceInputs& inputs,
         BdrmapConfig config = {});

  BdrmapResult run();

  // Split pipeline (serve::ServeEngine): collect() runs only the probing
  // stages and packages their output; run_with() runs the inference tail
  // (alias resolution, inbound confirmation, graph build, §5.4 heuristics)
  // over previously collected traces, using this instance's services for
  // the alias/timestamp probing. run() == run_with(collect()) when both
  // use the same services object.
  CollectedTraces collect();
  BdrmapResult run_with(CollectedTraces collected);

 private:
  std::vector<ObservedTrace> collect_traces();
  std::vector<std::vector<Ipv4Addr>> resolve_aliases(
      const std::vector<ObservedTrace>& traces);
  // [26]: timestamp-confirm the first externally-mapped hop of each trace.
  std::unordered_set<Ipv4Addr> confirm_inbound(
      const std::vector<ObservedTrace>& traces);

  // nullptr when observability is off — Span/handle no-op convention.
  obs::Tracer* tracer() const {
    return config_.obs ? config_.obs->tracer() : nullptr;
  }
  obs::MetricsRegistry* registry() const {
    return config_.obs ? config_.obs->registry() : nullptr;
  }

  probe::ProbeServices& services_;
  const InferenceInputs& inputs_;
  BdrmapConfig config_;
  StopSet stopset_;  // per-instance, never shared across VPs
  BdrmapStats stats_;
  std::vector<ProbeFailure> failures_;
  std::atomic<bool> running_{false};  // concurrent re-entry tripwire
};

}  // namespace bdrmap::core
