#include "core/offline.h"

#include <unordered_set>

namespace bdrmap::core {

namespace {

// A ProbeServices that answers nothing: offline analysis owns no prober.
class NullProbeServices final : public probe::ProbeServices {
 public:
  probe::TraceResult trace(Ipv4Addr dst, const probe::StopFn&) override {
    probe::TraceResult t;
    t.dst = dst;
    return t;
  }
  std::optional<Ipv4Addr> udp_probe(Ipv4Addr) override {
    return std::nullopt;
  }
  std::optional<std::uint16_t> ipid_sample(Ipv4Addr, double) override {
    return std::nullopt;
  }
  std::optional<bool> timestamp_probe(Ipv4Addr, Ipv4Addr) override {
    return std::nullopt;
  }
  std::uint64_t probes_sent() const override { return 0; }
};

}  // namespace

BdrmapResult analyze_offline(std::vector<ObservedTrace> traces,
                             const InferenceInputs& inputs,
                             OfflineConfig config) {
  NullProbeServices null_services;
  AliasResolver resolver(null_services);
  if (config.analytic_aliases) {
    run_apar(traces, resolver);
  }

  // Collect the time-exceeded addresses for the closure.
  std::vector<Ipv4Addr> addrs;
  std::unordered_set<Ipv4Addr> seen;
  for (const auto& trace : traces) {
    for (const auto& hop : trace.hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) continue;
      if (seen.insert(hop.addr).second) addrs.push_back(hop.addr);
    }
  }
  auto groups = resolver.groups(addrs);

  BdrmapStats stats;
  stats.traces = traces.size();
  stats.alias_pair_tests = resolver.pair_tests();
  return infer_borders(RouterGraph(std::move(traces), groups), inputs,
                       config.heuristics, stats);
}

}  // namespace bdrmap::core
