#include "core/merge.h"

#include <algorithm>
#include <numeric>

#include "netbase/contract.h"

namespace bdrmap::core {

std::optional<std::size_t> MergedMap::router_of(Ipv4Addr addr) const {
  auto it = addr_index_.find(addr);
  if (it == addr_index_.end()) return std::nullopt;
  return it->second;
}

namespace {

// Union-find over (run, router) pairs keyed by shared addresses.
class Partition {
 public:
  explicit Partition(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

MergedMap merge_results(const std::vector<const BdrmapResult*>& runs) {
  for (const BdrmapResult* run : runs) {
    BDRMAP_EXPECTS(run != nullptr, "merge_results takes non-null runs");
  }
  MergedMap merged;

  // Flatten per-run routers into a global index space.
  struct Source {
    std::size_t run;
    std::size_t router;  // index into runs[run]->graph.routers()
  };
  std::vector<Source> sources;
  std::vector<std::vector<std::size_t>> run_offsets(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const auto& routers = runs[r]->graph.routers();
    run_offsets[r].resize(routers.size(),
                          std::numeric_limits<std::size_t>::max());
    for (std::size_t i = 0; i < routers.size(); ++i) {
      if (routers[i].addrs.empty()) continue;
      run_offsets[r][i] = sources.size();
      sources.push_back({r, i});
    }
  }

  // Shared address => same physical router.
  Partition partition(sources.size());
  std::map<Ipv4Addr, std::size_t> first_holder;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const auto& router =
        runs[sources[s].run]->graph.routers()[sources[s].router];
    for (Ipv4Addr a : router.addrs) {
      auto [it, inserted] = first_holder.emplace(a, s);
      if (!inserted) partition.unite(s, it->second);
    }
  }

  // Build merged routers per component.
  std::map<std::size_t, std::size_t> component_index;
  std::vector<std::map<AsId, int>> owner_votes;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    std::size_t root = partition.find(s);
    auto [it, inserted] =
        component_index.emplace(root, merged.routers.size());
    if (inserted) {
      merged.routers.emplace_back();
      owner_votes.emplace_back();
    }
    MergedRouter& out = merged.routers[it->second];
    const auto& router =
        runs[sources[s].run]->graph.routers()[sources[s].router];
    out.addrs.insert(out.addrs.end(), router.addrs.begin(),
                     router.addrs.end());
    out.seen_by.insert(sources[s].run);
    out.vp_side |= router.vp_side;
    if (router.how != Heuristic::kNone) {
      if (out.how == Heuristic::kNone ||
          static_cast<int>(router.how) < static_cast<int>(out.how)) {
        out.how = router.how;
      }
      if (router.owner.valid()) {
        ++owner_votes[it->second][router.owner];
      }
    }
  }
  for (std::size_t i = 0; i < merged.routers.size(); ++i) {
    MergedRouter& out = merged.routers[i];
    std::sort(out.addrs.begin(), out.addrs.end());
    out.addrs.erase(std::unique(out.addrs.begin(), out.addrs.end()),
                    out.addrs.end());
    int best = 0;
    for (const auto& [as, votes] : owner_votes[i]) {
      if (votes > best) {
        out.owner = as;
        best = votes;
      }
    }
    if (out.vp_side) out.how = Heuristic::kVpNetwork;
    for (Ipv4Addr a : out.addrs) merged.addr_index_.emplace(a, i);
  }

  // Merge links: identity = (near merged router, far merged router or the
  // neighbor AS for router-less placements).
  auto merged_of = [&](std::size_t run, std::size_t router) {
    if (router == InferredLink::kNoRouter) return MergedLink::kNoRouter;
    std::size_t flat = run_offsets[run][router];
    if (flat == std::numeric_limits<std::size_t>::max()) {
      return MergedLink::kNoRouter;
    }
    return component_index.at(partition.find(flat));
  };

  std::map<std::tuple<std::size_t, std::size_t, std::uint32_t>, std::size_t>
      link_index;
  merged.cumulative_links.resize(runs.size(), 0);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (const auto& link : runs[r]->links) {
      std::size_t near = merged_of(r, link.vp_router);
      std::size_t far = merged_of(r, link.neighbor_router);
      auto key = std::make_tuple(near, far,
                                 far == MergedLink::kNoRouter
                                     ? link.neighbor_as.value
                                     : 0u);
      auto [it, inserted] = link_index.emplace(key, merged.links.size());
      if (inserted) {
        MergedLink out;
        out.near_router = near;
        out.far_router = far;
        out.neighbor_as = link.neighbor_as;
        out.how = link.how;
        out.first_seen_by = r;
        merged.links.push_back(out);
      }
      merged.links[it->second].seen_by.insert(r);
    }
    merged.cumulative_links[r] = merged.links.size();
  }

  for (std::size_t i = 0; i < merged.links.size(); ++i) {
    merged.links_by_as[merged.links[i].neighbor_as].push_back(i);
  }
  // The cumulative curve is monotone and ends at the final link count —
  // Fig. 14's convergence plot is read straight off this vector.
  BDRMAP_ENSURES(runs.empty() ||
                     merged.cumulative_links.back() == merged.links.size(),
                 "cumulative link curve must end at the merged total");
  return merged;
}

}  // namespace bdrmap::core
