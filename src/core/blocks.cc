#include "core/blocks.h"

#include <algorithm>

namespace bdrmap::core {

std::vector<ProbeBlock> build_probe_blocks(
    const asdata::OriginTable& origins,
    const std::vector<net::AsId>& vp_ases) {
  auto is_vp = [&](net::AsId as) {
    return std::find(vp_ases.begin(), vp_ases.end(), as) != vp_ases.end();
  };

  auto all = origins.all_prefixes();  // lexicographic: parents before holes
  std::vector<ProbeBlock> out;

  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& [prefix, origin_set] = all[i];
    // Skip prefixes originated (even partially) by the VP's network.
    bool vp_originated = false;
    for (net::AsId o : origin_set) vp_originated |= is_vp(o);
    if (vp_originated || origin_set.empty()) continue;

    // Direct more-specific holes: announced prefixes nested inside.
    std::vector<net::Prefix> holes;
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      if (!prefix.contains(all[j].first)) break;  // sorted: nesting is a run
      if (all[j].first == prefix) continue;
      holes.push_back(all[j].first);
    }

    net::AsId target = origin_set.front();
    for (const net::Prefix& piece : net::subtract(prefix, holes)) {
      out.push_back({piece, target});
    }
  }

  std::sort(out.begin(), out.end(), [](const ProbeBlock& a,
                                       const ProbeBlock& b) {
    if (a.target_as != b.target_as) return a.target_as < b.target_as;
    return a.prefix < b.prefix;
  });
  return out;
}

}  // namespace bdrmap::core
