#include "core/schedule.h"

#include <algorithm>
#include <deque>

namespace bdrmap::core {

ScheduleReport simulate_schedule(const std::vector<ProbeBlock>& blocks,
                                 const ScheduleConfig& config) {
  ScheduleReport report;
  report.blocks = blocks.size();
  if (blocks.empty() || config.packets_per_second <= 0.0) return report;

  // Group into per-AS FIFO queues (blocks arrive sorted by target AS).
  struct Queue {
    net::AsId as;
    std::size_t blocks_left = 0;
  };
  std::deque<Queue> waiting;
  for (const auto& block : blocks) {
    if (waiting.empty() || waiting.back().as != block.target_as) {
      waiting.push_back({block.target_as, 0});
    }
    ++waiting.back().blocks_left;
  }
  report.target_ases = waiting.size();

  const std::uint64_t probes_per_block = static_cast<std::uint64_t>(
      std::max(1.0, config.probes_per_block));
  const double seconds_per_packet = 1.0 / config.packets_per_second;

  // Active AS slots, each working through one block at a time. One packet
  // slot is granted per tick, round-robin across active ASes.
  struct Active {
    Queue queue;
    std::uint64_t probes_left_in_block = 0;
  };
  std::vector<Active> active;
  double clock = 0.0;
  std::size_t rr = 0;
  double parallel_integral = 0.0;

  auto refill = [&]() {
    while (active.size() < config.parallel_ases && !waiting.empty()) {
      Active a;
      a.queue = waiting.front();
      waiting.pop_front();
      a.probes_left_in_block = probes_per_block;
      active.push_back(a);
    }
  };
  refill();

  while (!active.empty()) {
    report.peak_parallel = std::max(report.peak_parallel, active.size());
    parallel_integral += static_cast<double>(active.size()) *
                         seconds_per_packet;
    // Grant one packet slot.
    rr %= active.size();
    Active& slot = active[rr];
    --slot.probes_left_in_block;
    ++report.packets;
    clock += seconds_per_packet;

    if (slot.probes_left_in_block == 0) {
      // Block finished: next block of the same AS, or retire the AS.
      if (--slot.queue.blocks_left > 0) {
        slot.probes_left_in_block = probes_per_block;
        ++rr;
      } else {
        report.as_finish_time[slot.queue.as] = clock;
        active.erase(active.begin() + static_cast<long>(rr));
        refill();
      }
    } else {
      ++rr;
    }
  }

  report.duration_seconds = clock;
  report.mean_parallel =
      clock > 0.0 ? parallel_integral / clock : 0.0;
  return report;
}

}  // namespace bdrmap::core
