// Probe target list construction (§5.3 "Generate list of address blocks").
//
// For every routed prefix in the public BGP view, bdrmap derives the address
// blocks reachable under each origin: a more-specific announcement punches a
// hole in its covering prefix (the paper's 128.66.0.0/16 vs 128.66.2.0/24
// example). Blocks originated by the VP's own network (or its siblings) are
// excluded — the goal is interdomain connectivity.
#pragma once

#include <vector>

#include "asdata/bgp_origins.h"
#include "netbase/ids.h"
#include "netbase/prefix.h"

namespace bdrmap::core {

struct ProbeBlock {
  net::Prefix prefix;
  net::AsId target_as;  // primary (lowest) origin of the covering prefix
};

// Builds the probe block list: every announced block minus more-specific
// holes, annotated with its origin, excluding `vp_ases`. Sorted by target
// AS then prefix so the driver probes one AS at a time (§5.3).
std::vector<ProbeBlock> build_probe_blocks(
    const asdata::OriginTable& origins, const std::vector<net::AsId>& vp_ases);

}  // namespace bdrmap::core
