// Inferred router-level graph: alias groups + traceroute adjacency.
//
// Nodes are inferred routers (alias sets from core::AliasResolver, plus
// singletons for unresolved addresses). Edges follow consecutive responsive
// hops in traces. Per the paper, ownership heuristics only trust interfaces
// observed in ICMP time-exceeded messages — echo replies carry the probed
// address and say nothing about which router holds it (§5.3) — so the graph
// tracks which observations came from time-exceeded replies.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/observations.h"
#include "netbase/arena.h"
#include "netbase/ids.h"

namespace bdrmap::core {

// Which heuristic produced an ownership inference; names follow the rows of
// Table 1 in the paper.
enum class Heuristic : std::uint8_t {
  kNone,
  kVpNetwork,    // §5.4.1 near side (steps 1.2 / RIR extension)
  kMultihomed,   // §5.4.1 step 1.1 exception ("1. Multihomed to VP")
  kFirewall,     // §5.4.2 ("2. Firewall")
  kUnrouted,     // §5.4.3 ("3. Unrouted interface")
  kOnenet,       // §5.4.4 ("4. IP-AS (onenet)")
  kThirdParty,   // §5.4.5 steps 5.1/5.2 ("5. Third party")
  kRelationship, // §5.4.5 step 5.3 ("5. AS relationship")
  kMissingCust,  // §5.4.5 step 5.4 ("5. Missing customer")
  kHiddenPeer,   // §5.4.5 step 5.5 ("5. Hidden peer")
  kCount,        // §5.4.6 step 6.1 ("6. Count")
  kIpAs,         // §5.4.6 step 6.2 ("6. IP-AS")
  kSilent,       // §5.4.8 step 8.1 ("8. Silent neighbor")
  kOtherIcmp,    // §5.4.8 step 8.2 ("8. Other ICMP")
};

const char* heuristic_name(Heuristic h);

struct GraphRouter {
  std::vector<Ipv4Addr> addrs;      // full alias set (sorted)
  std::vector<Ipv4Addr> ttl_addrs;  // subset seen in time-exceeded replies
  int min_hop = std::numeric_limits<int>::max();  // observed hop distance
  std::set<std::size_t> prev;  // routers observed immediately before
  std::set<std::size_t> next;  // routers observed immediately after
  std::set<AsId> dest_ases;    // target ASes probed through this router
  // Target ASes for which this router was the last responsive hop.
  std::set<AsId> terminal_for;

  // Ownership inference (filled by core::Heuristics).
  AsId owner;
  Heuristic how = Heuristic::kNone;
  bool vp_side = false;  // operated by the network hosting the VP
  // Inference strength in [0,1] (DESIGN.md §15). Annotation only — never
  // feeds placement decisions and excluded from eval::same_border_map.
  double confidence = 0.0;
};

// Data-oriented compiled view of a finished graph (DESIGN.md §14). The
// §5.4 link-emission and first-external-router scans are the inference
// tail's hot loops; against GraphRouter they chase per-router std::set
// nodes and re-hash every hop address. compile() flattens exactly what
// those loops read — per-router annotation columns, CSR predecessor
// adjacency, and per-trace hop records with addresses pre-resolved to
// dense u32 router indices — into one arena, so the scans touch only
// contiguous arrays and the whole view frees in O(1). Rows preserve the
// source iteration order (std::set ascending, traces in collection
// order), so consumers are bit-identical to the pointer-chasing loops.
struct CompiledGraph {
  static constexpr std::uint32_t kNoRouter = 0xffffffffu;

  // Per-router SoA columns, indexed by RouterGraph router index.
  std::uint32_t router_count = 0;
  const std::uint8_t* live = nullptr;     // 1 == not merged away
  const std::uint8_t* vp_side = nullptr;  // 1 == VP-network side
  const std::uint8_t* how = nullptr;      // Heuristic enum value
  const AsId* owner = nullptr;
  const double* confidence = nullptr;     // inference strength (§15)

  // CSR predecessor adjacency: prev rows of every router, concatenated.
  const std::uint32_t* prev_offsets = nullptr;  // router_count + 1 entries
  const std::uint32_t* prev = nullptr;

  // Per-trace time-exceeded hop records, flattened in trace order: each
  // row lists the hops' router indices (post-merge), pre-resolved once.
  std::uint32_t trace_count = 0;
  const std::uint32_t* trace_offsets = nullptr;  // trace_count + 1 entries
  const std::uint32_t* trace_hops = nullptr;
};

class RouterGraph {
 public:
  // Builds the graph from traces and alias groups (taking ownership of the
  // traces). Addresses not covered by any group become singleton routers.
  RouterGraph(std::vector<ObservedTrace> traces,
              const std::vector<std::vector<Ipv4Addr>>& alias_groups);

  std::vector<GraphRouter>& routers() { return routers_; }
  const std::vector<GraphRouter>& routers() const { return routers_; }

  // Router index carrying `addr`, if observed.
  std::optional<std::size_t> router_of(Ipv4Addr addr) const;

  // Routers sorted by observed hop distance (nearest first).
  std::vector<std::size_t> by_hop_distance() const;

  // Merges router `from` into router `into` (the §5.4.7 analytic alias
  // collapse). Adjacency, addresses and annotations are unioned.
  void merge(std::size_t into, std::size_t from);

  const std::vector<ObservedTrace>& traces() const { return traces_; }

  // Compiles the SoA/CSR view into `arena` (DESIGN.md §14). Call after
  // the graph has stopped mutating (heuristics run, merges done); the
  // view is invalidated by any later merge() or by resetting the arena.
  CompiledGraph compile(net::Arena& arena) const;

  std::size_t live_router_count() const;
  bool merged_away(std::size_t i) const { return routers_[i].addrs.empty(); }

 private:
  std::vector<GraphRouter> routers_;
  std::unordered_map<Ipv4Addr, std::size_t> addr_to_router_;
  std::vector<ObservedTrace> traces_;
};

}  // namespace bdrmap::core
