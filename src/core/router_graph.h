// Inferred router-level graph: alias groups + traceroute adjacency.
//
// Nodes are inferred routers (alias sets from core::AliasResolver, plus
// singletons for unresolved addresses). Edges follow consecutive responsive
// hops in traces. Per the paper, ownership heuristics only trust interfaces
// observed in ICMP time-exceeded messages — echo replies carry the probed
// address and say nothing about which router holds it (§5.3) — so the graph
// tracks which observations came from time-exceeded replies.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/observations.h"
#include "netbase/ids.h"

namespace bdrmap::core {

// Which heuristic produced an ownership inference; names follow the rows of
// Table 1 in the paper.
enum class Heuristic : std::uint8_t {
  kNone,
  kVpNetwork,    // §5.4.1 near side (steps 1.2 / RIR extension)
  kMultihomed,   // §5.4.1 step 1.1 exception ("1. Multihomed to VP")
  kFirewall,     // §5.4.2 ("2. Firewall")
  kUnrouted,     // §5.4.3 ("3. Unrouted interface")
  kOnenet,       // §5.4.4 ("4. IP-AS (onenet)")
  kThirdParty,   // §5.4.5 steps 5.1/5.2 ("5. Third party")
  kRelationship, // §5.4.5 step 5.3 ("5. AS relationship")
  kMissingCust,  // §5.4.5 step 5.4 ("5. Missing customer")
  kHiddenPeer,   // §5.4.5 step 5.5 ("5. Hidden peer")
  kCount,        // §5.4.6 step 6.1 ("6. Count")
  kIpAs,         // §5.4.6 step 6.2 ("6. IP-AS")
  kSilent,       // §5.4.8 step 8.1 ("8. Silent neighbor")
  kOtherIcmp,    // §5.4.8 step 8.2 ("8. Other ICMP")
};

const char* heuristic_name(Heuristic h);

struct GraphRouter {
  std::vector<Ipv4Addr> addrs;      // full alias set (sorted)
  std::vector<Ipv4Addr> ttl_addrs;  // subset seen in time-exceeded replies
  int min_hop = std::numeric_limits<int>::max();  // observed hop distance
  std::set<std::size_t> prev;  // routers observed immediately before
  std::set<std::size_t> next;  // routers observed immediately after
  std::set<AsId> dest_ases;    // target ASes probed through this router
  // Target ASes for which this router was the last responsive hop.
  std::set<AsId> terminal_for;

  // Ownership inference (filled by core::Heuristics).
  AsId owner;
  Heuristic how = Heuristic::kNone;
  bool vp_side = false;  // operated by the network hosting the VP
};

class RouterGraph {
 public:
  // Builds the graph from traces and alias groups (taking ownership of the
  // traces). Addresses not covered by any group become singleton routers.
  RouterGraph(std::vector<ObservedTrace> traces,
              const std::vector<std::vector<Ipv4Addr>>& alias_groups);

  std::vector<GraphRouter>& routers() { return routers_; }
  const std::vector<GraphRouter>& routers() const { return routers_; }

  // Router index carrying `addr`, if observed.
  std::optional<std::size_t> router_of(Ipv4Addr addr) const;

  // Routers sorted by observed hop distance (nearest first).
  std::vector<std::size_t> by_hop_distance() const;

  // Merges router `from` into router `into` (the §5.4.7 analytic alias
  // collapse). Adjacency, addresses and annotations are unioned.
  void merge(std::size_t into, std::size_t from);

  const std::vector<ObservedTrace>& traces() const { return traces_; }

  std::size_t live_router_count() const;
  bool merged_away(std::size_t i) const { return routers_[i].addrs.empty(); }

 private:
  std::vector<GraphRouter> routers_;
  std::unordered_map<Ipv4Addr, std::size_t> addr_to_router_;
  std::vector<ObservedTrace> traces_;
};

}  // namespace bdrmap::core
