// APAR/kapar-style analytic alias inference (Gunes & Sarac [16], Keys [19]).
//
// Works from the traces alone — no probing — which matters twice: routers
// that ignore alias probes entirely (the §5.4.7 motivation) and offline
// re-analysis of archived measurements. The core inference mirrors
// prefixscan's assumption analytically: if hop x is immediately followed by
// hop y, and the /31 (or /30) subnet mate of y is itself an address
// observed somewhere in the traces, then that mate is x's interface on the
// x-y point-to-point link — i.e. mate(y) and x alias. Acceptance rules
// guard against false subnets: an inferred alias pair must never appear at
// different positions of one trace (a router does not appear twice on a
// loop-free path), and the mate must not be observed adjacent to y in the
// same direction (two sides of one subnet cannot be consecutive hops).
#pragma once

#include <vector>

#include "core/alias_resolution.h"
#include "core/observations.h"

namespace bdrmap::core {

struct AparStats {
  std::size_t adjacencies = 0;      // consecutive hop pairs examined
  std::size_t mates_observed = 0;   // subnet mates present in the traces
  std::size_t accepted = 0;         // alias pairs declared
  std::size_t vetoed_same_trace = 0;
  std::size_t vetoed_adjacent = 0;
};

// Runs the analysis over `traces` and records accepted pairs in `resolver`
// (as kAlias verdicts) without consuming any probe budget. Existing
// negative verdicts in the resolver are honored (never overwritten).
AparStats run_apar(const std::vector<ObservedTrace>& traces,
                   AliasResolver& resolver);

}  // namespace bdrmap::core
