// MIDAR-style alias discovery: estimation -> discovery -> corroboration.
//
// The paper's alias toolbox (§5.3) builds on MIDAR [21], whose key insight
// is that a shared IP-ID counter makes two interfaces' ID time series one
// interleaved monotonic sequence — and that at Internet scale you cannot
// test all pairs, so you (1) estimate each address's counter velocity,
// (2) project counters to a common reference time and consider only
// addresses whose projections land close together as candidates (a sliding
// window over the 16-bit counter space), and (3) corroborate candidate
// pairs with the strict monotonic test. This module implements that
// pipeline against probe::ProbeServices, feeding its verdicts into the
// shared AliasResolver so the conflict-aware closure sees them alongside
// the topology-driven candidates.
#pragma once

#include <cstddef>
#include <vector>

#include "core/alias_resolution.h"

namespace bdrmap::core {

struct MidarConfig {
  int estimation_samples = 3;        // velocity samples per address
  double estimation_gap = 10.0;      // seconds between estimation samples
  double max_velocity = 1500.0;      // ids/s beyond which projection is noise
  double window_tolerance = 800.0;   // projected-ID proximity for candidacy
  std::size_t max_window_pairs = 64; // corroboration budget per window
};

class MidarResolver {
 public:
  MidarResolver(probe::ProbeServices& services, AliasResolver& resolver,
                MidarConfig config = {})
      : services_(services), resolver_(resolver), config_(config) {}

  // Runs the three stages over `addrs`. Verdicts are recorded in the
  // shared resolver; call resolver.groups(...) afterwards as usual.
  void resolve(const std::vector<Ipv4Addr>& addrs);

  struct Stats {
    std::size_t addresses = 0;       // input size
    std::size_t responsive = 0;      // answered estimation probes
    std::size_t monotonic = 0;       // usable (monotone, sane velocity)
    std::size_t candidate_pairs = 0; // discovery-stage output
    std::size_t confirmed = 0;       // corroborated aliases
  };
  const Stats& stats() const { return stats_; }

 private:
  probe::ProbeServices& services_;
  AliasResolver& resolver_;
  MidarConfig config_;
  Stats stats_;
  double clock_ = 1000.0;  // distinct virtual epoch from the resolver's
};

}  // namespace bdrmap::core
