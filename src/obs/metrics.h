// MetricsRegistry: the system-wide counter/gauge/histogram store
// (DESIGN.md §11).
//
// One registry serves a whole run — every subsystem (probe engines, route
// caches, the work-stealing pool, the remote channel, the inference core)
// registers its instruments against the same registry and increments them
// from whatever thread it runs on. The design splits the cold path from
// the hot path:
//
//   * Registration (cold) takes a mutex, allocates the backing cells in a
//     deque (stable addresses, never invalidated by later registrations)
//     and returns a trivially-copyable handle.
//   * Increments (hot) are a single relaxed atomic RMW through the handle —
//     no locks, no lookups. A default-constructed handle is a no-op, which
//     is how "observability off" costs one predictable branch.
//   * snapshot() (cold) copies every instrument's current value under the
//     registration mutex into plain structs, sorted by name. The copy is
//     isolated: later increments never mutate an existing snapshot.
//
// Naming contract: explicit registration (register_counter & friends)
// contract-fails on a duplicate name — a second owner for the same
// instrument is a wiring bug. Get-or-create (counter & friends) returns
// the existing instrument, which is what per-VP pipeline instances use to
// share one logical counter; a name registered as one kind and requested
// as another always contract-fails.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netbase/sync.h"

namespace bdrmap::obs {

// Monotonic event count. Handle semantics: trivially copyable, no-op when
// default-constructed (the disabled-observability path).
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const {
    if (cell_) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

// Instantaneous signed level (queue depths, open spans, breaker state).
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) const {
    if (cell_) cell_->store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) const {
    if (cell_) cell_->fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

// Fixed-bucket histogram over non-negative integer samples. Bucket i
// counts samples v with bounds[i-1] < v <= bounds[i]; one extra overflow
// bucket counts v > bounds.back(). count/sum ride along so means are
// recoverable from a snapshot.
class Histogram {
 public:
  Histogram() = default;

  void observe(std::uint64_t v) const;
  std::uint64_t count() const;
  explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  struct Cells {
    std::vector<std::uint64_t> bounds;  // ascending, fixed at registration
    std::deque<std::atomic<std::uint64_t>> buckets;  // bounds.size() + 1
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  explicit Histogram(Cells* cells) : cells_(cells) {}
  Cells* cells_ = nullptr;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

// A point-in-time copy of every instrument, each section sorted by name.
// Lookup helpers return 0 / nullptr for unknown names so assertions on
// optional instruments stay one-liners.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  std::uint64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  const HistogramSample* histogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Strict registration: contract-fails when `name` already exists (as any
  // kind). For instruments with exactly one owner.
  Counter register_counter(std::string_view name);
  Gauge register_gauge(std::string_view name);
  Histogram register_histogram(std::string_view name,
                               std::vector<std::uint64_t> bounds);

  // Get-or-create: returns the existing instrument when `name` is already
  // registered with the same kind (and, for histograms, ignores the bounds
  // of later callers); contract-fails on a kind mismatch. For instruments
  // shared by many instances (per-VP pipelines, per-network benches).
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  MetricsSnapshot snapshot() const BDRMAP_EXCLUDES(mu_);

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the matching cell store
  };

  // strict=true contract-fails on any existing entry; strict=false reuses
  // a same-kind entry and contract-fails on a kind mismatch.
  Counter counter_impl(std::string_view name, bool strict)
      BDRMAP_EXCLUDES(mu_);
  Gauge gauge_impl(std::string_view name, bool strict) BDRMAP_EXCLUDES(mu_);
  Histogram histogram_impl(std::string_view name,
                           std::vector<std::uint64_t> bounds, bool strict)
      BDRMAP_EXCLUDES(mu_);
  const Entry* lookup(const std::string& name, Kind want, bool strict)
      BDRMAP_REQUIRES(mu_);

  // mu_ guards registration and snapshot; the handle hot path never takes
  // it — handles hold pointers to cells whose addresses the deques keep
  // stable, and cell access is a relaxed atomic op (see file comment).
  mutable net::Mutex mu_;
  std::unordered_map<std::string, Entry> names_ BDRMAP_GUARDED_BY(mu_);
  // Deques: cell addresses must survive every later registration.
  std::deque<std::atomic<std::uint64_t>> counters_ BDRMAP_GUARDED_BY(mu_);
  std::deque<std::atomic<std::int64_t>> gauges_ BDRMAP_GUARDED_BY(mu_);
  std::deque<Histogram::Cells> histograms_ BDRMAP_GUARDED_BY(mu_);
  std::vector<std::string> counter_names_ BDRMAP_GUARDED_BY(mu_);
  std::vector<std::string> gauge_names_ BDRMAP_GUARDED_BY(mu_);
  std::vector<std::string> histogram_names_ BDRMAP_GUARDED_BY(mu_);
};

}  // namespace bdrmap::obs
