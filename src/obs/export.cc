#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <vector>

namespace bdrmap::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& v) {
  out.push_back('[');
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(v[i]);
  }
  out.push_back(']');
}

}  // namespace

std::string export_json(const Observability& obs, const ExportInfo& info) {
  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;
  if (obs.registry()) metrics = obs.registry()->snapshot();
  if (obs.tracer()) spans = obs.tracer()->snapshot();

  std::string out;
  out.reserve(4096);
  out += "{\n  \"version\": 1,\n  \"run\": {\n    \"tool\": ";
  append_escaped(out, info.tool);
  out += ",\n    \"scenario\": ";
  append_escaped(out, info.scenario);
  out += ",\n    \"label\": ";
  append_escaped(out, obs.options().run_label);
  out += ",\n    \"enabled\": ";
  out += obs.enabled() ? "true" : "false";
  out += ",\n    \"seed\": " + std::to_string(info.seed);
  out += ",\n    \"vps\": " + std::to_string(info.vps);
  out += ",\n    \"threads\": " + std::to_string(info.threads);
  out += "\n  },\n  \"metrics\": {\n    \"counters\": [";
  for (std::size_t i = 0; i < metrics.counters.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    out += "{\"name\": ";
    append_escaped(out, metrics.counters[i].name);
    out += ", \"value\": " + std::to_string(metrics.counters[i].value) + "}";
  }
  out += metrics.counters.empty() ? "]" : "\n    ]";
  out += ",\n    \"gauges\": [";
  for (std::size_t i = 0; i < metrics.gauges.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    out += "{\"name\": ";
    append_escaped(out, metrics.gauges[i].name);
    out += ", \"value\": " + std::to_string(metrics.gauges[i].value) + "}";
  }
  out += metrics.gauges.empty() ? "]" : "\n    ]";
  out += ",\n    \"histograms\": [";
  for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
    const HistogramSample& h = metrics.histograms[i];
    out += i ? ",\n      " : "\n      ";
    out += "{\"name\": ";
    append_escaped(out, h.name);
    out += ", \"bounds\": ";
    append_u64_array(out, h.bounds);
    out += ", \"buckets\": ";
    append_u64_array(out, h.buckets);
    out += ", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum) + "}";
  }
  out += metrics.histograms.empty() ? "]" : "\n    ]";
  out += "\n  },\n  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"id\": " + std::to_string(i);
    out += ", \"name\": ";
    append_escaped(out, s.name);
    out += ", \"parent\": ";
    out += s.parent == SpanRecord::kNoParent
               ? std::string("-1")
               : std::to_string(s.parent);
    out += ", \"start_us\": " + std::to_string(s.start_us);
    out += ", \"duration_us\": " + std::to_string(s.duration_us());
    out += ", \"closed\": ";
    out += s.closed ? "true" : "false";
    out += ", \"notes\": {";
    for (std::size_t k = 0; k < s.notes.size(); ++k) {
      if (k) out += ", ";
      append_escaped(out, s.notes[k].first);
      out += ": ";
      append_escaped(out, s.notes[k].second);
    }
    out += "}}";
  }
  out += spans.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

bool write_json_file(const std::string& path, const Observability& obs,
                     const ExportInfo& info) {
  std::ofstream out(path);
  if (!out) return false;
  out << export_json(obs, info);
  return static_cast<bool>(out);
}

}  // namespace bdrmap::obs
