#include "obs/trace.h"

#include <algorithm>

#include "netbase/contract.h"

namespace bdrmap::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::size_t Tracer::begin_span(std::string_view name) {
  const std::uint64_t t = now_us();
  net::MutexLock lk(mu_);
  std::size_t id = spans_.size();
  SpanRecord rec;
  rec.name = std::string(name);
  rec.start_us = t;
  auto& stack = stacks_[std::this_thread::get_id()];
  if (!stack.empty()) rec.parent = stack.back();
  stack.push_back(id);
  spans_.push_back(std::move(rec));
  ++open_;
  return id;
}

void Tracer::end_span(std::size_t id) {
  const std::uint64_t t = now_us();
  net::MutexLock lk(mu_);
  BDRMAP_EXPECTS(id < spans_.size(), "end_span: unknown span id");
  if (id >= spans_.size()) return;
  SpanRecord& rec = spans_[id];
  if (rec.closed) return;  // idempotent (close() then destructor)
  rec.end_us = t;
  rec.closed = true;
  --open_;
  auto it = stacks_.find(std::this_thread::get_id());
  if (it != stacks_.end()) {
    auto& stack = it->second;
    stack.erase(std::remove(stack.begin(), stack.end(), id), stack.end());
    if (stack.empty()) stacks_.erase(it);
  }
}

void Tracer::annotate(std::size_t id, std::string_view key,
                      std::string_view value) {
  net::MutexLock lk(mu_);
  BDRMAP_EXPECTS(id < spans_.size(), "annotate: unknown span id");
  if (id >= spans_.size()) return;
  spans_[id].notes.emplace_back(std::string(key), std::string(value));
}

void Tracer::annotate(std::size_t id, std::string_view key,
                      std::int64_t value) {
  annotate(id, key, std::to_string(value));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  net::MutexLock lk(mu_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  net::MutexLock lk(mu_);
  return spans_.size();
}

std::size_t Tracer::open_span_count() const {
  net::MutexLock lk(mu_);
  return open_;
}

Span::Span(Tracer* tracer, std::string_view name) : tracer_(tracer) {
  if (tracer_) id_ = tracer_->begin_span(name);
}

Span::Span(Span&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    close();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
  }
  return *this;
}

Span::~Span() { close(); }

void Span::note(std::string_view key, std::string_view value) {
  if (tracer_) tracer_->annotate(id_, key, value);
}

void Span::note(std::string_view key, std::int64_t value) {
  if (tracer_) tracer_->annotate(id_, key, value);
}

void Span::close() {
  if (tracer_) {
    tracer_->end_span(id_);
    tracer_ = nullptr;
  }
}

}  // namespace bdrmap::obs
