#include "obs/obs.h"

#include <utility>

namespace bdrmap::obs {

Observability::Observability(ObsOptions options)
    : options_(std::move(options)) {
  if (options_.enabled) {
    registry_ = std::make_unique<MetricsRegistry>();
    tracer_ = std::make_unique<Tracer>();
  }
}

}  // namespace bdrmap::obs
