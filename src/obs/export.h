// JSON exporter for one observability run (DESIGN.md §11).
//
// Renders a single stable document — run metadata, every metric sorted by
// name, every span in id order — whose shape is pinned by
// docs/obs_schema.json (validated by tests/obs_trace_test.cc and the
// tools/check.sh --obs smoke gate via tools/check_obs.py). Numbers are
// integers, escaping is RFC 8259, key order is fixed, so diffs between two
// exports are semantic, not formatting noise.
#pragma once

#include <cstdint>
#include <string>

#include "obs/obs.h"

namespace bdrmap::obs {

// Run metadata echoed into the document's "run" object.
struct ExportInfo {
  std::string tool;      // producing binary, e.g. "bdrmap_sim"
  std::string scenario;  // scenario name, e.g. "small"
  std::uint64_t seed = 0;
  std::uint64_t vps = 0;      // vantage points covered by the run
  std::uint64_t threads = 1;  // worker threads
};

// Renders the registry + tracer contents. Works on a disabled bundle too
// (empty metric arrays, no spans) so callers need not special-case.
std::string export_json(const Observability& obs, const ExportInfo& info);

// export_json to a file; returns false when the file cannot be written.
bool write_json_file(const std::string& path, const Observability& obs,
                     const ExportInfo& info);

}  // namespace bdrmap::obs
