#include "obs/metrics.h"

#include <algorithm>

#include "netbase/contract.h"

namespace bdrmap::obs {

void Histogram::observe(std::uint64_t v) const {
  if (!cells_) return;
  std::size_t i = 0;
  while (i < cells_->bounds.size() && v > cells_->bounds[i]) ++i;
  cells_->buckets[i].fetch_add(1, std::memory_order_relaxed);
  cells_->count.fetch_add(1, std::memory_order_relaxed);
  cells_->sum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return cells_ ? cells_->count.load(std::memory_order_relaxed) : 0;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const HistogramSample* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const MetricsRegistry::Entry* MetricsRegistry::lookup(const std::string& name,
                                                      Kind want, bool strict) {
  auto it = names_.find(name);
  if (it == names_.end()) return nullptr;
  BDRMAP_EXPECTS(!strict,
                 "metric name registered twice (one owner per instrument)");
  BDRMAP_EXPECTS(it->second.kind == want,
                 "metric name reused with a different instrument kind");
  return &it->second;
}

Counter MetricsRegistry::counter_impl(std::string_view name, bool strict) {
  std::string key(name);
  net::MutexLock lk(mu_);
  if (const Entry* e = lookup(key, Kind::kCounter, strict)) {
    // Under kLog contract mode lookup() can return a mismatched entry;
    // hand back a no-op handle rather than aliasing the wrong cell.
    if (e->kind != Kind::kCounter) return Counter{};
    return Counter(&counters_[e->index]);
  }
  std::size_t index = counters_.size();
  counters_.emplace_back(0);
  counter_names_.push_back(key);
  names_.emplace(std::move(key), Entry{Kind::kCounter, index});
  return Counter(&counters_[index]);
}

Gauge MetricsRegistry::gauge_impl(std::string_view name, bool strict) {
  std::string key(name);
  net::MutexLock lk(mu_);
  if (const Entry* e = lookup(key, Kind::kGauge, strict)) {
    if (e->kind != Kind::kGauge) return Gauge{};
    return Gauge(&gauges_[e->index]);
  }
  std::size_t index = gauges_.size();
  gauges_.emplace_back(0);
  gauge_names_.push_back(key);
  names_.emplace(std::move(key), Entry{Kind::kGauge, index});
  return Gauge(&gauges_[index]);
}

Histogram MetricsRegistry::histogram_impl(std::string_view name,
                                          std::vector<std::uint64_t> bounds,
                                          bool strict) {
  BDRMAP_EXPECTS(!bounds.empty(), "histogram needs at least one bucket bound");
  BDRMAP_EXPECTS(std::is_sorted(bounds.begin(), bounds.end()),
                 "histogram bucket bounds must ascend");
  std::string key(name);
  net::MutexLock lk(mu_);
  if (const Entry* e = lookup(key, Kind::kHistogram, strict)) {
    if (e->kind != Kind::kHistogram) return Histogram{};
    return Histogram(&histograms_[e->index]);
  }
  std::size_t index = histograms_.size();
  auto& cells = histograms_.emplace_back();
  cells.bounds = std::move(bounds);
  for (std::size_t i = 0; i < cells.bounds.size() + 1; ++i) {
    cells.buckets.emplace_back(0);
  }
  histogram_names_.push_back(key);
  names_.emplace(std::move(key), Entry{Kind::kHistogram, index});
  return Histogram(&histograms_[index]);
}

Counter MetricsRegistry::register_counter(std::string_view name) {
  return counter_impl(name, /*strict=*/true);
}
Gauge MetricsRegistry::register_gauge(std::string_view name) {
  return gauge_impl(name, /*strict=*/true);
}
Histogram MetricsRegistry::register_histogram(
    std::string_view name, std::vector<std::uint64_t> bounds) {
  return histogram_impl(name, std::move(bounds), /*strict=*/true);
}

Counter MetricsRegistry::counter(std::string_view name) {
  return counter_impl(name, /*strict=*/false);
}
Gauge MetricsRegistry::gauge(std::string_view name) {
  return gauge_impl(name, /*strict=*/false);
}
Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<std::uint64_t> bounds) {
  return histogram_impl(name, std::move(bounds), /*strict=*/false);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  net::MutexLock lk(mu_);
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters.push_back(
        {counter_names_[i], counters_[i].load(std::memory_order_relaxed)});
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.push_back(
        {gauge_names_[i], gauges_[i].load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    const auto& cells = histograms_[i];
    HistogramSample h;
    h.name = histogram_names_[i];
    h.bounds = cells.bounds;
    h.buckets.reserve(cells.buckets.size());
    for (const auto& b : cells.buckets) {
      h.buckets.push_back(b.load(std::memory_order_relaxed));
    }
    h.count = cells.count.load(std::memory_order_relaxed);
    h.sum = cells.sum.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(h));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

}  // namespace bdrmap::obs
