// Minimal JSON document model, parser and subset-schema validator.
//
// The observability exporter writes JSON; the golden-schema tests and the
// --obs smoke gate need to read it back and check its *shape* without
// pulling in a dependency. This is a small, strict RFC-8259 parser (no
// comments, no trailing commas) plus a validator for the subset of JSON
// Schema the checked-in docs/obs_schema.json uses:
//
//   type (string), properties, required, items, enum (strings),
//   minimum, minItems, additionalProperties (boolean form)
//
// tools/check_obs.py implements the same subset in Python so CI can
// validate exporter output without building the test suite.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bdrmap::obs::json {

struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> items;                              // kArray
  std::vector<std::pair<std::string, Value>> members;    // kObject, ordered

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  // Integral number (within double's exact range; all exported values are).
  bool is_integer() const;

  // Object member by key; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

// Parses one JSON document (rejects trailing garbage). On failure returns
// nullopt and, when `error` is non-null, a message with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

// Validates `doc` against the schema subset described above. On failure
// returns false and, when `error` is non-null, the JSON-pointer-ish path
// of the first violation.
bool validate(const Value& schema, const Value& doc,
              std::string* error = nullptr);

}  // namespace bdrmap::obs::json
