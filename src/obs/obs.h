// Observability bundle: one MetricsRegistry + one Tracer per run
// (DESIGN.md §11).
//
// The bundle is the single handle the pipeline threads through its
// subsystems. Disabled (the default — ObsOptions::enabled = false),
// registry() and tracer() return nullptr and every instrument handle built
// from them is a no-op: border maps and hop sequences are bit-identical to
// an uninstrumented build, and the hot-path cost is one predictable branch
// per would-be increment. Enabled, all instruments are live and
// export_json (export.h) renders one stable document per run.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bdrmap::obs {

struct ObsOptions {
  bool enabled = false;
  std::string run_label;  // free-form tag echoed into the export
};

class Observability {
 public:
  explicit Observability(ObsOptions options = {});

  bool enabled() const { return options_.enabled; }
  const ObsOptions& options() const { return options_; }

  // nullptr when disabled — the convention every consumer follows for
  // "no instrumentation", mirroring runtime::make_pool's null contract.
  MetricsRegistry* registry() const { return registry_.get(); }
  Tracer* tracer() const { return tracer_.get(); }

 private:
  ObsOptions options_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<Tracer> tracer_;
};

}  // namespace bdrmap::obs
