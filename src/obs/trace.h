// Tracer / Span: hierarchical timed spans with key-value annotations
// (DESIGN.md §11).
//
// A span brackets one pipeline stage ("stage.trace", "vp.run", …); nesting
// is tracked per thread, so a span opened on a pool worker parents under
// whatever span that worker currently has open — each VP's stage spans
// hang off its own "vp.run" even when eight VPs run concurrently.
//
// Span is RAII: construction opens, destruction closes, so stack
// unwinding on an exception closes every span opened in the failed scope
// in LIFO order and the exported tree never contains dangling opens for
// completed scopes. A Span built from a null Tracer (observability off)
// is a complete no-op.
//
// Times are steady-clock microseconds relative to the tracer's epoch —
// wall-clock telemetry only. Nothing downstream of inference reads them,
// which is how tracing preserves the bit-identity contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netbase/sync.h"

namespace bdrmap::obs {

struct SpanRecord {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::string name;
  std::size_t parent = kNoParent;  // index of the parent span
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;  // meaningful once closed
  bool closed = false;
  // Annotations in insertion order (duplicate keys keep every entry).
  std::vector<std::pair<std::string, std::string>> notes;

  std::uint64_t duration_us() const {
    return closed && end_us >= start_us ? end_us - start_us : 0;
  }
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Opens a span whose parent is the calling thread's innermost open span
  // (kNoParent when the thread has none). Returns the span's id.
  std::size_t begin_span(std::string_view name) BDRMAP_EXCLUDES(mu_);
  // Closes `id` and pops it from the calling thread's open stack. Closing
  // out of LIFO order is tolerated (the span is removed wherever it sits).
  void end_span(std::size_t id) BDRMAP_EXCLUDES(mu_);
  void annotate(std::size_t id, std::string_view key, std::string_view value)
      BDRMAP_EXCLUDES(mu_);
  void annotate(std::size_t id, std::string_view key, std::int64_t value);

  // Point-in-time copy of every span recorded so far, in id order.
  std::vector<SpanRecord> snapshot() const BDRMAP_EXCLUDES(mu_);
  std::size_t span_count() const;
  std::size_t open_span_count() const;

 private:
  std::uint64_t now_us() const;

  mutable net::Mutex mu_;
  std::vector<SpanRecord> spans_ BDRMAP_GUARDED_BY(mu_);
  std::unordered_map<std::thread::id, std::vector<std::size_t>> stacks_
      BDRMAP_GUARDED_BY(mu_);
  std::size_t open_ BDRMAP_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII handle over one Tracer span. Movable, not copyable.
class Span {
 public:
  Span() = default;  // no-op span
  Span(Tracer* tracer, std::string_view name);
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void note(std::string_view key, std::string_view value);
  void note(std::string_view key, std::int64_t value);
  // Closes early (idempotent; the destructor then does nothing).
  void close();

 private:
  Tracer* tracer_ = nullptr;
  std::size_t id_ = 0;
};

}  // namespace bdrmap::obs
