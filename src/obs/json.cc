#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace bdrmap::obs::json {

bool Value::is_integer() const {
  return kind == Kind::kNumber && std::floor(number) == number &&
         std::abs(number) <= 9007199254740992.0;  // 2^53
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* what) {
    if (error_ && error_->empty()) {
      *error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("unexpected token");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // \uXXXX: decode the code unit as UTF-8 (no surrogate pairing;
            // exporter output never needs it).
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
        continue;
      }
      out.push_back(c);
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(Value& v) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      return false;
    }
    std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      fail("malformed number");
      return false;
    }
    return true;
  }

  bool parse_value(Value& v) {
    if (depth_ > 64) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      ++depth_;
      v.kind = Value::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          fail("expected ':'");
          return false;
        }
        ++pos_;
        Value member;
        if (!parse_value(member)) return false;
        v.members.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          --depth_;
          return true;
        }
        fail("expected ',' or '}'");
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      ++depth_;
      v.kind = Value::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      for (;;) {
        Value item;
        if (!parse_value(item)) return false;
        v.items.push_back(std::move(item));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          --depth_;
          return true;
        }
        fail("expected ',' or ']'");
        return false;
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::kString;
      return parse_string(v.string);
    }
    if (c == 't') {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      v.kind = Value::Kind::kBool;
      v.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      v.kind = Value::Kind::kNull;
      return literal("null");
    }
    return parse_number(v);
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

bool type_matches(const std::string& type, const Value& doc) {
  if (type == "object") return doc.is_object();
  if (type == "array") return doc.is_array();
  if (type == "string") return doc.is_string();
  if (type == "number") return doc.is_number();
  if (type == "integer") return doc.is_integer();
  if (type == "boolean") return doc.kind == Value::Kind::kBool;
  if (type == "null") return doc.kind == Value::Kind::kNull;
  return false;  // unknown type name never matches (schema bug surfaces)
}

bool validate_at(const Value& schema, const Value& doc, const std::string& path,
                 std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error && error->empty()) {
      *error = (path.empty() ? "/" : path) + ": " + what;
    }
    return false;
  };
  if (!schema.is_object()) return fail("schema node must be an object");

  if (const Value* type = schema.find("type")) {
    if (!type->is_string() || !type_matches(type->string, doc)) {
      return fail("expected type '" +
                  (type->is_string() ? type->string : "?") + "'");
    }
  }
  if (const Value* en = schema.find("enum")) {
    bool hit = false;
    for (const Value& option : en->items) {
      hit = hit || (option.kind == doc.kind && option.string == doc.string &&
                    option.number == doc.number &&
                    option.boolean == doc.boolean);
    }
    if (!hit) return fail("value not in enum");
  }
  if (const Value* minimum = schema.find("minimum")) {
    if (doc.is_number() && doc.number < minimum->number) {
      return fail("below minimum");
    }
  }
  if (const Value* min_items = schema.find("minItems")) {
    if (doc.is_array() &&
        doc.items.size() < static_cast<std::size_t>(min_items->number)) {
      return fail("fewer than minItems entries");
    }
  }
  if (doc.is_object()) {
    if (const Value* required = schema.find("required")) {
      for (const Value& key : required->items) {
        if (!doc.find(key.string)) {
          return fail("missing required member '" + key.string + "'");
        }
      }
    }
    const Value* props = schema.find("properties");
    if (props) {
      for (const auto& [key, sub] : props->members) {
        if (const Value* member = doc.find(key)) {
          if (!validate_at(sub, *member, path + "/" + key, error)) return false;
        }
      }
    }
    const Value* extra = schema.find("additionalProperties");
    if (extra && extra->kind == Value::Kind::kBool && !extra->boolean) {
      for (const auto& [key, member] : doc.members) {
        (void)member;
        if (!props || !props->find(key)) {
          return fail("unexpected member '" + key + "'");
        }
      }
    }
  }
  if (doc.is_array()) {
    if (const Value* items = schema.find("items")) {
      for (std::size_t i = 0; i < doc.items.size(); ++i) {
        if (!validate_at(*items, doc.items[i], path + "/" + std::to_string(i),
                         error)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).run();
}

bool validate(const Value& schema, const Value& doc, std::string* error) {
  if (error) error->clear();
  return validate_at(schema, doc, "", error);
}

}  // namespace bdrmap::obs::json
