// IXP directory: peering-LAN prefixes and membership records.
//
// §5.2 "List of IXP prefixes": bdrmap merges PeeringDB and PCH snapshots to
// learn which subnets are shared IXP peering fabrics, plus (where operators
// filled the records in) which member AS uses which fabric address. §4
// challenge 6 explains why: addresses from an IXP LAN appear in paths but
// IP-AS mapping on them is meaningless, and records can be stale or wrong,
// which our generator reproduces with noise knobs.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/ids.h"
#include "netbase/prefix.h"
#include "netbase/radix_trie.h"

namespace bdrmap::asdata {

using net::AsId;
using net::Ipv4Addr;
using net::Prefix;

struct IxpRecord {
  std::string name;      // e.g. "IXP-7"
  Prefix peering_lan;    // shared subnet members number interfaces from
  AsId ixp_as;           // the IXP's own ASN; may be kNoAs (not all IXPs
                         // originate their LAN, §4 challenge 6)
};

// A member's self-reported fabric address (PeeringDB netixlan-style row).
struct IxpMembership {
  std::size_t ixp_index = 0;  // index into IxpDirectory::ixps()
  AsId member;
  Ipv4Addr address;  // the member's address on the peering LAN
};

class IxpDirectory {
 public:
  // Registers an IXP; returns its index.
  std::size_t add_ixp(IxpRecord record);

  // Registers a membership record (may be wrong/stale; consumers must treat
  // it as validation-grade data, not ground truth).
  void add_membership(IxpMembership m);

  // True iff `a` falls inside any known IXP peering LAN.
  bool is_ixp_address(Ipv4Addr a) const;

  // The IXP whose peering LAN covers `a`, if any.
  std::optional<std::size_t> ixp_of(Ipv4Addr a) const;

  // The member AS that recorded `a` as its fabric address, if any.
  std::optional<AsId> member_at(Ipv4Addr a) const;

  const std::vector<IxpRecord>& ixps() const { return ixps_; }
  const std::vector<IxpMembership>& memberships() const {
    return memberships_;
  }

 private:
  std::vector<IxpRecord> ixps_;
  std::vector<IxpMembership> memberships_;
  net::RadixTrie<std::size_t> lan_trie_;  // peering LAN -> ixp index
  std::unordered_map<Ipv4Addr, AsId> member_by_addr_;
};

}  // namespace bdrmap::asdata
