#include "asdata/siblings.h"

#include <algorithm>

namespace bdrmap::asdata {

void SiblingTable::assign(AsId as, OrgId org) {
  auto it = as_to_org_.find(as);
  if (it != as_to_org_.end()) {
    if (it->second == org) return;
    auto& old_members = org_to_as_[it->second];
    old_members.erase(std::remove(old_members.begin(), old_members.end(), as),
                      old_members.end());
    it->second = org;
  } else {
    as_to_org_.emplace(as, org);
  }
  auto& members = org_to_as_[org];
  members.push_back(as);
  std::sort(members.begin(), members.end());
}

OrgId SiblingTable::org_of(AsId as) const {
  auto it = as_to_org_.find(as);
  return it == as_to_org_.end() ? OrgId{} : it->second;
}

bool SiblingTable::are_siblings(AsId a, AsId b) const {
  if (a == b) return true;
  OrgId oa = org_of(a);
  return oa.valid() && oa == org_of(b);
}

std::vector<AsId> SiblingTable::members(OrgId org) const {
  auto it = org_to_as_.find(org);
  return it == org_to_as_.end() ? std::vector<AsId>{} : it->second;
}

std::vector<AsId> SiblingTable::siblings_of(AsId as) const {
  OrgId org = org_of(as);
  if (!org.valid()) return {as};
  return members(org);
}

}  // namespace bdrmap::asdata
