#include "asdata/ixp.h"

namespace bdrmap::asdata {

std::size_t IxpDirectory::add_ixp(IxpRecord record) {
  std::size_t index = ixps_.size();
  lan_trie_.insert(record.peering_lan, index);
  ixps_.push_back(std::move(record));
  return index;
}

void IxpDirectory::add_membership(IxpMembership m) {
  member_by_addr_[m.address] = m.member;
  memberships_.push_back(m);
}

bool IxpDirectory::is_ixp_address(Ipv4Addr a) const {
  return lan_trie_.match(a) != nullptr;
}

std::optional<std::size_t> IxpDirectory::ixp_of(Ipv4Addr a) const {
  const std::size_t* idx = lan_trie_.match(a);
  if (!idx) return std::nullopt;
  return *idx;
}

std::optional<AsId> IxpDirectory::member_at(Ipv4Addr a) const {
  auto it = member_by_addr_.find(a);
  if (it == member_by_addr_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bdrmap::asdata
