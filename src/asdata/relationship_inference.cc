#include "asdata/relationship_inference.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace bdrmap::asdata {

using net::AsId;

namespace {

std::uint64_t link_key(AsId a, AsId b) {
  // Unordered link key: smaller AS first.
  AsId lo = std::min(a, b);
  AsId hi = std::max(a, b);
  return (std::uint64_t{lo.value} << 32) | hi.value;
}

struct Votes {
  // Votes that the link, read as (lower-AS, higher-AS), points uphill
  // (lower is customer of higher), downhill, or flat (peer).
  int c2p = 0;
  int p2c = 0;
  int p2p = 0;
};

bool has_loop(const std::vector<AsId>& path) {
  std::unordered_set<AsId> seen;
  for (AsId as : path) {
    if (!seen.insert(as).second) return true;
  }
  return false;
}

}  // namespace

void RelationshipInferrer::add_path(const std::vector<AsId>& path) {
  if (path.size() < 2 || has_loop(path)) return;
  paths_.push_back(path);
}

RelationshipStore RelationshipInferrer::infer() const {
  // 1. Transit degree: number of distinct neighbors an AS appears adjacent
  //    to while in the *middle* of a path (i.e. while providing transit).
  std::unordered_map<AsId, std::unordered_set<AsId>> transit_neighbors;
  std::unordered_map<AsId, std::unordered_set<AsId>> all_neighbors;
  for (const auto& path : paths_) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      all_neighbors[path[i]].insert(path[i + 1]);
      all_neighbors[path[i + 1]].insert(path[i]);
      if (i > 0) {
        transit_neighbors[path[i]].insert(path[i - 1]);
        transit_neighbors[path[i]].insert(path[i + 1]);
      }
    }
  }
  auto transit_degree = [&](AsId as) -> std::size_t {
    auto it = transit_neighbors.find(as);
    return it == transit_neighbors.end() ? 0 : it->second.size();
  };

  // 2. Clique seed: the ASes with the highest transit degree. Links among
  //    them are p2p (the Tier-1 clique has no providers by definition).
  std::vector<AsId> by_degree;
  by_degree.reserve(all_neighbors.size());
  for (const auto& [as, neigh] : all_neighbors) by_degree.push_back(as);
  std::sort(by_degree.begin(), by_degree.end(), [&](AsId a, AsId b) {
    auto da = transit_degree(a), db = transit_degree(b);
    return da != db ? da > db : a < b;
  });
  std::unordered_set<AsId> clique;
  for (std::size_t i = 0; i < by_degree.size() && i < config_.clique_seed_size;
       ++i) {
    clique.insert(by_degree[i]);
  }

  // 3. Gao-style voting. For each path, locate the "top" AS (highest transit
  //    degree, preferring clique members); edges before it vote uphill
  //    (c2p), edges after vote downhill, and an edge between two similarly
  //    sized ASes at the top votes p2p.
  std::unordered_map<std::uint64_t, Votes> votes;
  for (const auto& path : paths_) {
    std::size_t top = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      bool i_clique = clique.count(path[i]) > 0;
      bool top_clique = clique.count(path[top]) > 0;
      if (i_clique != top_clique) {
        if (i_clique) top = i;
        continue;
      }
      if (transit_degree(path[i]) > transit_degree(path[top])) top = i;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      AsId a = path[i], b = path[i + 1];
      Votes& v = votes[link_key(a, b)];
      bool a_is_lo = a < b;
      // Peer vote: the link spans the top and both ends are comparable.
      std::size_t da = transit_degree(a), db = transit_degree(b);
      bool comparable =
          (clique.count(a) && clique.count(b)) ||
          (static_cast<double>(std::min(da, db)) >=
           config_.peer_degree_ratio * static_cast<double>(std::max(da, db)));
      bool spans_top = (i == top) || (i + 1 == top);
      if (spans_top && comparable && i + 1 >= top) {
        ++v.p2p;
      } else if (i + 1 <= top) {
        // uphill: a is customer of b
        if (a_is_lo)
          ++v.c2p;
        else
          ++v.p2c;
      } else {
        // downhill: b is customer of a
        if (a_is_lo)
          ++v.p2c;
        else
          ++v.c2p;
      }
    }
  }

  // 4. Majority per link -> provisional labels.
  RelationshipStore provisional;
  for (const auto& [key, v] : votes) {
    AsId lo(static_cast<std::uint32_t>(key >> 32));
    AsId hi(static_cast<std::uint32_t>(key & 0xffffffffu));
    if (clique.count(lo) && clique.count(hi)) {
      provisional.add_p2p(lo, hi);
    } else if (v.p2p >= v.c2p && v.p2p >= v.p2c) {
      provisional.add_p2p(lo, hi);
    } else if (v.c2p >= v.p2c) {
      provisional.add_c2p(lo, hi);  // lo is customer of hi
    } else {
      provisional.add_c2p(hi, lo);
    }
  }

  // 5. Valley-free export test. In a triple x->a->b where a learned the
  //    route from b's side and exported it to x, a non-customer x proves
  //    b is a's customer (peer/provider routes are never exported upward
  //    or sideways). Links with such evidence are definitely c2p; links
  //    without it, between comparably-sized networks, are peerings the
  //    first pass mistook for transit (e.g. access networks peering with
  //    much larger Tier-1s).
  std::unordered_set<std::uint64_t> transited;  // link carries b as customer
  for (const auto& path : paths_) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      AsId x = path[i - 1], a = path[i], b = path[i + 1];
      Relationship xa = provisional.rel(a, x);  // x from a's viewpoint
      if (xa == Relationship::kPeer || xa == Relationship::kProvider) {
        transited.insert(link_key(a, b));
      }
    }
  }

  RelationshipStore store;
  for (const auto& [key, v] : votes) {
    AsId lo(static_cast<std::uint32_t>(key >> 32));
    AsId hi(static_cast<std::uint32_t>(key & 0xffffffffu));
    Relationship provisional_rel = provisional.rel(lo, hi);
    if (provisional_rel == Relationship::kPeer) {
      store.add_p2p(lo, hi);
      continue;
    }
    AsId customer = provisional_rel == Relationship::kCustomer ? hi : lo;
    AsId provider = provisional_rel == Relationship::kCustomer ? lo : hi;
    bool carried = transited.count(key) > 0;
    auto all_degree = [&](AsId as) -> std::size_t {
      auto it = all_neighbors.find(as);
      return it == all_neighbors.end() ? 0 : it->second.size();
    };
    // Comparability by transit degree, falling back to total degree for
    // networks that never transit (access/content networks peer widely but
    // appear only at path ends, so their transit degree is zero).
    std::size_t dc = transit_degree(customer), dp = transit_degree(provider);
    bool comparable =
        dc > 0 &&
        static_cast<double>(std::min(dc, dp)) >=
            config_.peer_rescue_ratio * static_cast<double>(std::max(dc, dp));
    if (!comparable && all_degree(customer) >= 3) {
      std::size_t ac = all_degree(customer), ap = all_degree(provider);
      comparable = static_cast<double>(std::min(ac, ap)) >=
                   config_.peer_rescue_ratio *
                       static_cast<double>(std::max(ac, ap));
    }
    if (!carried && comparable) {
      store.add_p2p(lo, hi);
    } else {
      store.add_c2p(customer, provider);
    }
  }
  return store;
}

}  // namespace bdrmap::asdata
