// AS business-relationship store.
//
// bdrmap consumes relationship annotations (customer-provider "c2p" and
// peer-peer "p2p", per CAIDA's inference [25]) to run the §5.4.5 heuristics:
// third-party address detection, known-peer/customer adjacency, and the
// provider-of-adjacent sibling case. The same structure is used (a) with
// ground-truth labels inside the topology generator, and (b) with *inferred*
// labels produced by asdata::RelationshipInferrer, which is what the
// inference core actually receives.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/ids.h"

namespace bdrmap::asdata {

using net::AsId;

enum class Relationship : std::uint8_t {
  kNone,      // no known link between the two ASes
  kCustomer,  // rel(a,b): b is a customer of a
  kProvider,  // rel(a,b): b is a provider of a
  kPeer,      // settlement-free peers
};

// Flips the perspective: rel(a,b) -> rel(b,a).
constexpr Relationship invert(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return Relationship::kProvider;
    case Relationship::kProvider:
      return Relationship::kCustomer;
    default:
      return r;
  }
}

class RelationshipStore {
 public:
  // Records that `provider` sells transit to `customer`.
  void add_c2p(AsId customer, AsId provider);
  // Records a settlement-free peering between a and b.
  void add_p2p(AsId a, AsId b);

  // Records ONE direction exactly as an external dump states it:
  // rel(a, b) becomes `rel_of_b_from_a` without synthesizing the inverse
  // direction. Real relationship files are routinely inconsistent, so a
  // loader built on this can ingest them verbatim — and the
  // check::pass_id::kAsGraphSymmetry invariant pass exists to flag the
  // asymmetries afterwards. kNone is ignored.
  void add_raw(AsId a, AsId b, Relationship rel_of_b_from_a);

  // Overwrites the relationship between `a` and `b` in BOTH directions:
  // rel(a, b) becomes `rel_of_b_from_a` and rel(b, a) its inverse, replacing
  // any existing edge. kNone removes the edge entirely. This is the churn
  // hook (serve::ChurnEvent relationship changes, e.g. depeering a c2p edge
  // to p2p); batch loading should keep using add_c2p/add_p2p/add_raw.
  void set_rel(AsId a, AsId b, Relationship rel_of_b_from_a);

  // The relationship of `b` from `a`'s point of view.
  Relationship rel(AsId a, AsId b) const;

  bool are_neighbors(AsId a, AsId b) const {
    return rel(a, b) != Relationship::kNone;
  }

  const std::vector<AsId>& providers(AsId a) const;
  const std::vector<AsId>& customers(AsId a) const;
  const std::vector<AsId>& peers(AsId a) const;

  // All neighbors regardless of relationship type.
  std::vector<AsId> neighbors(AsId a) const;

  // Transitive customers of `a` including `a` itself (CAIDA "customer cone").
  std::unordered_set<AsId> customer_cone(AsId a) const;

  // Every AS mentioned in any edge.
  std::vector<AsId> all_ases() const;

  std::size_t edge_count() const { return edges_.size(); }

 private:
  struct AdjLists {
    std::vector<AsId> providers;
    std::vector<AsId> customers;
    std::vector<AsId> peers;
  };

  static std::uint64_t key(AsId a, AsId b) {
    return (std::uint64_t{a.value} << 32) | b.value;
  }

  // Detaches the directed edge rel(a, b), dropping b from a's adjacency
  // list for the edge's current label. No-op when the edge is absent.
  void erase_directed(AsId a, AsId b);

  std::unordered_map<std::uint64_t, Relationship> edges_;  // rel(a,b) by key
  std::unordered_map<AsId, AdjLists> adj_;
  static const std::vector<AsId> kEmpty;
};

}  // namespace bdrmap::asdata
