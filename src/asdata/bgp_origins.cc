#include "asdata/bgp_origins.h"

#include <algorithm>

namespace bdrmap::asdata {

void OriginTable::add(const Prefix& p, AsId origin) {
  auto& set = trie_.insert_if_absent(p, {});
  if (std::find(set.begin(), set.end(), origin) != set.end()) return;
  set.push_back(origin);
  std::sort(set.begin(), set.end());
  by_as_[origin].push_back(p);
}

const std::vector<AsId>* OriginTable::origins(Ipv4Addr a,
                                              Prefix* matched) const {
  return trie_.match(a, matched);
}

AsId OriginTable::origin(Ipv4Addr a) const {
  const auto* set = trie_.match(a);
  if (!set || set->empty()) return net::kNoAs;
  return set->front();  // sets are kept sorted; lowest AS wins
}

std::vector<std::pair<Prefix, std::vector<AsId>>> OriginTable::all_prefixes()
    const {
  std::vector<std::pair<Prefix, std::vector<AsId>>> out;
  out.reserve(trie_.size());
  trie_.for_each([&](const Prefix& p, const std::vector<AsId>& set) {
    out.emplace_back(p, set);
  });
  return out;
}

std::vector<Prefix> OriginTable::prefixes_of(AsId as) const {
  auto it = by_as_.find(as);
  if (it == by_as_.end()) return {};
  std::vector<Prefix> out = it->second;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace bdrmap::asdata
