#include "asdata/rir.h"

namespace bdrmap::asdata {

void RirDelegations::add(const Delegation& d) {
  trie_.insert(d.block, d);
  all_.push_back(d);
}

std::optional<Delegation> RirDelegations::lookup(Ipv4Addr a) const {
  const Delegation* d = trie_.match(a);
  if (!d) return std::nullopt;
  return *d;
}

bool RirDelegations::same_org(Ipv4Addr a, Ipv4Addr b) const {
  auto da = lookup(a);
  auto db = lookup(b);
  return da && db && da->org == db->org;
}

}  // namespace bdrmap::asdata
