#include "asdata/as_relationships.h"

#include <algorithm>

namespace bdrmap::asdata {

const std::vector<AsId> RelationshipStore::kEmpty;

void RelationshipStore::add_c2p(AsId customer, AsId provider) {
  auto [it, inserted] =
      edges_.try_emplace(key(customer, provider), Relationship::kProvider);
  if (!inserted) return;  // keep the first label for a duplicate edge
  edges_[key(provider, customer)] = Relationship::kCustomer;
  adj_[customer].providers.push_back(provider);
  adj_[provider].customers.push_back(customer);
}

void RelationshipStore::add_p2p(AsId a, AsId b) {
  auto [it, inserted] = edges_.try_emplace(key(a, b), Relationship::kPeer);
  if (!inserted) return;
  edges_[key(b, a)] = Relationship::kPeer;
  adj_[a].peers.push_back(b);
  adj_[b].peers.push_back(a);
}

void RelationshipStore::add_raw(AsId a, AsId b, Relationship rel_of_b_from_a) {
  if (rel_of_b_from_a == Relationship::kNone) return;
  auto [it, inserted] = edges_.try_emplace(key(a, b), rel_of_b_from_a);
  if (!inserted) return;
  switch (rel_of_b_from_a) {
    case Relationship::kProvider:
      adj_[a].providers.push_back(b);
      break;
    case Relationship::kCustomer:
      adj_[a].customers.push_back(b);
      break;
    case Relationship::kPeer:
      adj_[a].peers.push_back(b);
      break;
    case Relationship::kNone:
      break;
  }
}

void RelationshipStore::erase_directed(AsId a, AsId b) {
  auto it = edges_.find(key(a, b));
  if (it == edges_.end()) return;
  auto adj = adj_.find(a);
  if (adj != adj_.end()) {
    std::vector<AsId>* list = nullptr;
    switch (it->second) {
      case Relationship::kProvider:
        list = &adj->second.providers;
        break;
      case Relationship::kCustomer:
        list = &adj->second.customers;
        break;
      case Relationship::kPeer:
        list = &adj->second.peers;
        break;
      case Relationship::kNone:
        break;
    }
    if (list != nullptr) {
      list->erase(std::remove(list->begin(), list->end(), b), list->end());
    }
  }
  edges_.erase(it);
}

void RelationshipStore::set_rel(AsId a, AsId b, Relationship rel_of_b_from_a) {
  erase_directed(a, b);
  erase_directed(b, a);
  if (rel_of_b_from_a == Relationship::kNone) return;
  add_raw(a, b, rel_of_b_from_a);
  add_raw(b, a, invert(rel_of_b_from_a));
}

Relationship RelationshipStore::rel(AsId a, AsId b) const {
  auto it = edges_.find(key(a, b));
  return it == edges_.end() ? Relationship::kNone : it->second;
}

const std::vector<AsId>& RelationshipStore::providers(AsId a) const {
  auto it = adj_.find(a);
  return it == adj_.end() ? kEmpty : it->second.providers;
}

const std::vector<AsId>& RelationshipStore::customers(AsId a) const {
  auto it = adj_.find(a);
  return it == adj_.end() ? kEmpty : it->second.customers;
}

const std::vector<AsId>& RelationshipStore::peers(AsId a) const {
  auto it = adj_.find(a);
  return it == adj_.end() ? kEmpty : it->second.peers;
}

std::vector<AsId> RelationshipStore::neighbors(AsId a) const {
  std::vector<AsId> out;
  auto it = adj_.find(a);
  if (it == adj_.end()) return out;
  out.reserve(it->second.providers.size() + it->second.customers.size() +
              it->second.peers.size());
  out.insert(out.end(), it->second.providers.begin(),
             it->second.providers.end());
  out.insert(out.end(), it->second.customers.begin(),
             it->second.customers.end());
  out.insert(out.end(), it->second.peers.begin(), it->second.peers.end());
  return out;
}

std::unordered_set<AsId> RelationshipStore::customer_cone(AsId a) const {
  std::unordered_set<AsId> cone{a};
  std::vector<AsId> stack{a};
  while (!stack.empty()) {
    AsId cur = stack.back();
    stack.pop_back();
    for (AsId c : customers(cur)) {
      if (cone.insert(c).second) stack.push_back(c);
    }
  }
  return cone;
}

std::vector<AsId> RelationshipStore::all_ases() const {
  std::vector<AsId> out;
  out.reserve(adj_.size());
  for (const auto& [as, lists] : adj_) out.push_back(as);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bdrmap::asdata
