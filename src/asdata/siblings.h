// Sibling ASes: different AS numbers under one administrative organization.
//
// §4 challenge 5: siblings confuse connectivity inference. bdrmap takes a
// manually-curated sibling list for the VP's network (§5.2 "VP ASes") and an
// AS-to-organization mapping for everything else. Both are represented here.
#pragma once

#include <unordered_map>
#include <vector>

#include "netbase/ids.h"

namespace bdrmap::asdata {

using net::AsId;
using net::OrgId;

class SiblingTable {
 public:
  // Assigns `as` to organization `org`. An AS belongs to at most one org;
  // re-assignment overwrites (mirrors stale WHOIS updates).
  void assign(AsId as, OrgId org);

  // Organization of `as`; invalid OrgId when unknown.
  OrgId org_of(AsId as) const;

  // True iff both ASes are known and share an organization. An AS is always
  // its own sibling.
  bool are_siblings(AsId a, AsId b) const;

  // All ASes recorded for `org` (sorted).
  std::vector<AsId> members(OrgId org) const;

  // The sibling set of `as` including itself; just {as} when unknown.
  std::vector<AsId> siblings_of(AsId as) const;

  std::size_t size() const { return as_to_org_.size(); }

 private:
  std::unordered_map<AsId, OrgId> as_to_org_;
  std::unordered_map<OrgId, std::vector<AsId>> org_to_as_;
};

}  // namespace bdrmap::asdata
