#include "asdata/dns.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <vector>

namespace bdrmap::asdata {

void ReverseDns::add(net::Ipv4Addr addr, std::string hostname) {
  records_[addr] = std::move(hostname);
}

std::optional<std::string> ReverseDns::lookup(net::Ipv4Addr addr) const {
  auto it = records_.find(addr);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::string city_code_of(std::string_view city) {
  std::string code;
  for (char c : city) {
    if (code.size() == 3) break;
    code.push_back(static_cast<char>(std::tolower(
        static_cast<unsigned char>(c))));
  }
  return code;
}

std::string make_hostname(std::string_view role, unsigned unit,
                          std::string_view city_code, net::AsId as,
                          std::string_view org) {
  std::string out;
  out += role;
  out += '-';
  out += std::to_string(unit);
  out += '.';
  out += city_code;
  out += ".as";
  out += std::to_string(as.value);
  out += '.';
  out += org;
  out += ".net";
  return out;
}

namespace {

std::vector<std::string_view> split_labels(std::string_view name) {
  std::vector<std::string_view> labels;
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string_view::npos) {
      labels.push_back(name.substr(start));
      break;
    }
    labels.push_back(name.substr(start, dot - start));
    start = dot + 1;
  }
  return labels;
}

bool all_alpha(std::string_view s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(), [](char c) {
           return std::isalpha(static_cast<unsigned char>(c));
         });
}

}  // namespace

HostnameHints parse_hostname(std::string_view hostname) {
  HostnameHints hints;
  auto labels = split_labels(hostname);
  if (labels.size() < 2) return hints;

  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::string_view label = labels[i];
    // "asNNNN" -> AS hint.
    if (label.size() > 2 && (label[0] == 'a' || label[0] == 'A') &&
        (label[1] == 's' || label[1] == 'S')) {
      std::uint32_t value = 0;
      auto digits = label.substr(2);
      auto [end, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), value);
      if (ec == std::errc() && end == digits.data() + digits.size() &&
          value > 0) {
        hints.as_hint = net::AsId(value);
        continue;
      }
    }
    // A bare 3-letter alphabetic label that is not the TLD: city code.
    if (label.size() == 3 && all_alpha(label) && i + 1 < labels.size() &&
        !hints.city_code) {
      hints.city_code = std::string(label);
      continue;
    }
    // The second-level label is the organization.
    if (i + 1 == labels.size() - 1 && all_alpha(label)) {
      hints.org_label = std::string(label);
    }
  }
  return hints;
}

}  // namespace bdrmap::asdata
