// Reverse DNS for router interfaces.
//
// The paper leans on rDNS twice: during development, interface hostnames
// were the only sanity check available before operator ground truth
// (§5.1 — with the caveat that names are often missing, stale, or carry
// organization names rather than AS numbers); and §6 geolocates the access
// network's border routers from the location codes operators embed in
// names. This module stores per-address hostnames and parses the common
// "role-N.cityNN.asNNNN.example.net" convention back into hints, with all
// the real-world failure modes representable: absent names, stale city
// codes, and org-label-only names.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "netbase/ids.h"
#include "netbase/ipv4.h"

namespace bdrmap::asdata {

// What a hostname reveals when parsed. Any field may be missing: operators
// owe nobody a naming convention.
struct HostnameHints {
  std::optional<std::string> city_code;   // e.g. "sea", "nyc"
  std::optional<net::AsId> as_hint;       // from an "asNNNN" label
  std::optional<std::string> org_label;   // free-form organization label
};

class ReverseDns {
 public:
  // Registers (or overwrites) the PTR record for `addr`.
  void add(net::Ipv4Addr addr, std::string hostname);

  // The hostname for `addr`, if a PTR record exists.
  std::optional<std::string> lookup(net::Ipv4Addr addr) const;

  std::size_t size() const { return records_.size(); }

 private:
  std::unordered_map<net::Ipv4Addr, std::string> records_;
};

// Builds a conventional router interface name:
//   <role>-<unit>.<city_code>.as<asn>.<org>.net
std::string make_hostname(std::string_view role, unsigned unit,
                          std::string_view city_code, net::AsId as,
                          std::string_view org);

// Parses dot-separated labels looking for a 3-letter city code, an
// "asNNNN" label and an organization label. Tolerant of arbitrary shapes;
// returns empty hints for names it cannot interpret.
HostnameHints parse_hostname(std::string_view hostname);

// Lower-cases and truncates a city name to its conventional 3-letter code
// ("Seattle" -> "sea").
std::string city_code_of(std::string_view city);

}  // namespace bdrmap::asdata
