// AS relationship inference from route-collector AS paths.
//
// bdrmap does not get ground-truth business relationships; it uses CAIDA's
// inferences [25], which are derived from public BGP paths. We reproduce the
// core of that algorithm (clique detection + Gao-style uphill/downhill
// annotation with voting) so the inference core consumes *imperfect*
// relationship labels exactly as the deployed system does: links invisible
// to the collectors are missing entirely (the "hidden peer" phenomenon in
// Table 1), and some labels can be wrong.
#pragma once

#include <cstddef>
#include <vector>

#include "asdata/as_relationships.h"
#include "netbase/ids.h"

namespace bdrmap::asdata {

struct RelationshipInferenceConfig {
  // Number of top transit-degree ASes seeded as the Tier-1 clique.
  std::size_t clique_seed_size = 8;
  // Minimum transit-degree ratio (smaller/larger) for the top link of a
  // path to be eligible for a p2p vote: settlement-free peers are of
  // comparable size, while a transit customer of a much larger network is
  // annotated c2p.
  double peer_degree_ratio = 0.5;
  // Second pass (valley-free export test): a provisionally-c2p link with
  // no evidence of being exported to a non-customer is re-labeled p2p when
  // the endpoints' degree ratio is at least this. Peer routes are only
  // exported to customers, so a genuine c2p link almost always shows such
  // evidence while a peering between mid-size networks does not.
  double peer_rescue_ratio = 0.15;
};

class RelationshipInferrer {
 public:
  explicit RelationshipInferrer(RelationshipInferenceConfig config = {})
      : config_(config) {}

  // Consumes one AS path (origin last, collector peer first). Paths with
  // loops or fewer than two hops are ignored.
  void add_path(const std::vector<net::AsId>& path);

  // Runs the annotation and returns the inferred relationship store.
  RelationshipStore infer() const;

  std::size_t path_count() const { return paths_.size(); }

 private:
  RelationshipInferenceConfig config_;
  std::vector<std::vector<net::AsId>> paths_;
};

}  // namespace bdrmap::asdata
