// BGP origin table: which AS(es) originate each routed prefix.
//
// This is bdrmap's primary IP-to-AS mapping input (§5.2 "Public BGP data").
// Multiple-origin (MOAS) prefixes are first-class: challenge 7 in §4 is that
// several ASes may originate the same prefix, so lookups return the full
// origin set of the longest matching prefix.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netbase/ids.h"
#include "netbase/prefix.h"
#include "netbase/radix_trie.h"

namespace bdrmap::asdata {

using net::AsId;
using net::Ipv4Addr;
using net::Prefix;

class OriginTable {
 public:
  // Records that `origin` originates `p`. Idempotent per (p, origin).
  void add(const Prefix& p, AsId origin);

  // Origin set of the longest matching prefix covering `a`; empty if `a` is
  // unrouted. `matched` (optional) receives the matching prefix.
  const std::vector<AsId>* origins(Ipv4Addr a, Prefix* matched = nullptr) const;

  // Single-origin convenience: the lowest origin AS of the longest matching
  // prefix, or kNoAs when unrouted. This is the "naive IP-AS mapping" the
  // paper's baseline uses.
  AsId origin(Ipv4Addr a) const;

  // True iff exactly one AS originates the longest match and it is `as`.
  bool is_routed(Ipv4Addr a) const { return origins(a) != nullptr; }

  // Every (prefix, origin set), lexicographic by prefix.
  std::vector<std::pair<Prefix, std::vector<AsId>>> all_prefixes() const;

  // All prefixes originated by `as` (including MOAS prefixes it shares).
  std::vector<Prefix> prefixes_of(AsId as) const;

  std::size_t prefix_count() const { return trie_.size(); }

 private:
  net::RadixTrie<std::vector<AsId>> trie_;
  std::unordered_map<AsId, std::vector<Prefix>> by_as_;
};

}  // namespace bdrmap::asdata
