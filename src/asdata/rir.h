// RIR delegation records: address blocks delegated to organizations.
//
// §5.2 "RIR delegation files": some networks never announce the prefixes
// used to number their infrastructure, so origin-based IP-AS mapping fails
// on them. The RIRs publish which blocks were delegated to which (opaque)
// organization; bdrmap uses these in §5.4.1 to attribute unannounced VP-side
// address space to the hosting network.
#pragma once

#include <optional>
#include <vector>

#include "netbase/ids.h"
#include "netbase/prefix.h"
#include "netbase/radix_trie.h"

namespace bdrmap::asdata {

using net::Ipv4Addr;
using net::OrgId;
using net::Prefix;

struct Delegation {
  Prefix block;
  OrgId org;  // opaque registry id; NOT an AS number (per §5.2)
};

class RirDelegations {
 public:
  void add(const Delegation& d);

  // The organization holding the longest delegated block covering `a`, and
  // the block itself.
  std::optional<Delegation> lookup(Ipv4Addr a) const;

  // True iff `a` and `b` fall in blocks delegated to the same organization.
  bool same_org(Ipv4Addr a, Ipv4Addr b) const;

  const std::vector<Delegation>& all() const { return all_; }

 private:
  net::RadixTrie<Delegation> trie_;
  std::vector<Delegation> all_;
};

}  // namespace bdrmap::asdata
