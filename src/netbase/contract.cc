#include "netbase/contract.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bdrmap::net {

namespace {
std::atomic<ContractMode> g_mode{ContractMode::kAbort};
std::atomic<std::uint64_t> g_log_count{0};
}  // namespace

ContractMode contract_mode() { return g_mode.load(std::memory_order_relaxed); }

void set_contract_mode(ContractMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

std::uint64_t contract_violation_count() {
  return g_log_count.load(std::memory_order_relaxed);
}

namespace detail {

void contract_fail(const char* kind, const char* expr, const char* note,
                   const char* file, int line, const char* func) {
  std::string msg = std::string(kind) + " failed: " + expr;
  if (note != nullptr) msg += std::string(" (") + note + ")";
  msg += std::string(" at ") + file + ":" + std::to_string(line) + " in " +
         func;
  switch (contract_mode()) {
    case ContractMode::kThrow:
      throw ContractViolation(msg);
    case ContractMode::kLog:
      g_log_count.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "bdrmap contract (logged): %s\n", msg.c_str());
      return;
    case ContractMode::kAbort:
      break;
  }
  std::fprintf(stderr, "bdrmap contract: %s\n", msg.c_str());
  std::abort();
}

}  // namespace detail

}  // namespace bdrmap::net
