#pragma once

// Chunked bump allocator backing the data-oriented core (DESIGN.md §14).
//
// An Arena owns a list of geometrically growing chunks and hands out
// pointers by bumping an offset; individual allocations are never freed.
// reset() recycles every chunk for the next epoch, which is only legal
// under the serve layer's between-epoch quiescence contract (no reader
// may hold a pointer into the arena across a reset). Because nothing
// ever runs destructors, only trivially destructible types may live
// here — enforced at compile time.
//
// The arena is single-owner: one thread builds, many threads may read
// the finished arrays afterwards (publication via the owning structure's
// synchronization). There is no internal locking.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "netbase/contract.h"

namespace bdrmap::net {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 16;

  struct Stats {
    std::size_t bytes_reserved = 0;  // sum of chunk capacities
    std::size_t bytes_used = 0;      // bumped bytes incl. alignment padding
    std::size_t allocations = 0;     // allocate<T>() calls since reset()
    std::size_t chunks = 0;          // chunks currently owned
  };

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                  : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Value-initialized array of `count` Ts. Returns nullptr for count == 0.
  // Pointers stay valid until reset() or destruction.
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (count == 0) return nullptr;
    BDRMAP_EXPECTS(count <= (SIZE_MAX - alignof(T)) / sizeof(T),
                   "Arena::allocate size overflow");
    void* raw = allocate_raw(count * sizeof(T), alignof(T));
    T* first = static_cast<T*>(raw);
    for (std::size_t i = 0; i < count; ++i) {
      ::new (static_cast<void*>(first + i)) T{};
    }
    ++stats_.allocations;
    return first;
  }

  // Recycle every chunk for the next epoch: capacity is retained, offsets
  // rewind, and subsequent allocations revisit the same addresses in the
  // same order — the reuse-across-epochs determinism the batch tests pin.
  void reset() {
    for (Chunk& chunk : chunks_) chunk.offset = 0;
    current_ = 0;
    stats_.bytes_used = 0;
    stats_.allocations = 0;
  }

  const Stats& stats() const { return stats_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t offset = 0;
  };

  void* allocate_raw(std::size_t bytes, std::size_t align) {
    while (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      const std::size_t aligned = align_up(chunk.offset, align);
      if (aligned + bytes <= chunk.capacity) {
        stats_.bytes_used += (aligned - chunk.offset) + bytes;
        chunk.offset = aligned + bytes;
        return chunk.data.get() + aligned;
      }
      ++current_;
    }
    std::size_t capacity =
        chunks_.empty() ? first_chunk_bytes_ : chunks_.back().capacity * 2;
    if (capacity < bytes + align) capacity = bytes + align;
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(capacity);
    chunk.capacity = capacity;
    chunks_.push_back(std::move(chunk));
    stats_.bytes_reserved += capacity;
    stats_.chunks = chunks_.size();
    current_ = chunks_.size() - 1;
    return allocate_raw(bytes, align);
  }

  static std::size_t align_up(std::size_t value, std::size_t align) {
    return (value + align - 1) & ~(align - 1);
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  Stats stats_;
};

}  // namespace bdrmap::net
