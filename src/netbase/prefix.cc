#include "netbase/prefix.h"

#include <algorithm>
#include <charconv>

namespace bdrmap::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  unsigned len = 0;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc() || next != len_text.data() + len_text.size() ||
      len > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, static_cast<std::uint8_t>(len));
}

std::string Prefix::str() const {
  return addr_.str() + "/" + std::to_string(len_);
}

namespace {

void subtract_into(const Prefix& whole, const std::vector<Prefix>& holes,
                   std::vector<Prefix>& out) {
  // If no hole intersects `whole`, keep it intact; if a hole covers it fully,
  // drop it; otherwise split and recurse. Holes are guaranteed more specific
  // than (or equal to) whole when they intersect, because CIDR blocks nest.
  bool intersecting = false;
  for (const Prefix& h : holes) {
    if (h.contains(whole)) return;  // fully removed
    if (whole.contains(h)) intersecting = true;
  }
  if (!intersecting) {
    out.push_back(whole);
    return;
  }
  subtract_into(whole.lower_half(), holes, out);
  subtract_into(whole.upper_half(), holes, out);
}

}  // namespace

std::vector<Prefix> subtract(const Prefix& whole,
                             const std::vector<Prefix>& holes) {
  std::vector<Prefix> out;
  subtract_into(whole, holes, out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bdrmap::net
