// IPv4 prefix (CIDR block) value type and subnet arithmetic.
//
// Interdomain point-to-point links commonly use /30 or /31 subnets; the
// prefixscan alias-resolution heuristic (§5.3 of the paper) depends on
// computing the "subnet mate" of an address within such a subnet, which this
// header provides.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ipv4.h"

namespace bdrmap::net {

// An IPv4 CIDR prefix. The network address is stored canonically (host bits
// zeroed), so two Prefix objects compare equal iff they denote the same block.
class Prefix {
 public:
  constexpr Prefix() = default;

  // Canonicalizes: host bits of `addr` below `len` are cleared.
  constexpr Prefix(Ipv4Addr addr, std::uint8_t len)
      : addr_(Ipv4Addr(addr.value() & mask_for(len))), len_(len) {}

  // Parses "a.b.c.d/len". Returns nullopt on malformed input or len > 32.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr Ipv4Addr network() const { return addr_; }
  constexpr std::uint8_t length() const { return len_; }

  // First/last address covered by the prefix.
  constexpr Ipv4Addr first() const { return addr_; }
  constexpr Ipv4Addr last() const {
    return Ipv4Addr(addr_.value() | ~mask_for(len_));
  }

  // Number of addresses covered (2^(32-len)); /0 reports 2^32 via uint64.
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - len_);
  }

  constexpr bool contains(Ipv4Addr a) const {
    return (a.value() & mask_for(len_)) == addr_.value();
  }
  // True iff `other` is equal to or nested inside this prefix.
  constexpr bool contains(const Prefix& other) const {
    return other.len_ >= len_ && contains(other.addr_);
  }

  // The two halves of this prefix (len+1). Precondition: len < 32.
  constexpr Prefix lower_half() const { return Prefix(addr_, len_ + 1); }
  constexpr Prefix upper_half() const {
    return Prefix(Ipv4Addr(addr_.value() | (1u << (31 - len_))),
                  static_cast<std::uint8_t>(len_ + 1));
  }

  std::string str() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

  static constexpr std::uint32_t mask_for(std::uint8_t len) {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  }

 private:
  Ipv4Addr addr_;
  std::uint8_t len_ = 0;
};

// The other usable address of the /31 subnet containing `a`.
constexpr Ipv4Addr mate31(Ipv4Addr a) { return Ipv4Addr(a.value() ^ 1u); }

// The other usable address of the /30 subnet containing `a`, or nullopt if
// `a` is the network or broadcast address of its /30 (not a host address).
constexpr std::optional<Ipv4Addr> mate30(Ipv4Addr a) {
  switch (a.value() & 0x3u) {
    case 1:
      return Ipv4Addr(a.value() + 1);
    case 2:
      return Ipv4Addr(a.value() - 1);
    default:
      return std::nullopt;  // .0 network / .3 broadcast of the /30
  }
}

// Subtracts every prefix in `holes` from `whole`, returning the maximal
// CIDR blocks that cover whole minus the holes. Used when building the list
// of address blocks to probe (§5.3): if X originates 128.66.0.0/16 and Y
// originates the more-specific 128.66.2.0/24, X's probe blocks exclude Y's.
std::vector<Prefix> subtract(const Prefix& whole,
                             const std::vector<Prefix>& holes);

}  // namespace bdrmap::net

template <>
struct std::hash<bdrmap::net::Prefix> {
  std::size_t operator()(const bdrmap::net::Prefix& p) const noexcept {
    std::uint64_t x =
        (std::uint64_t{p.network().value()} << 8) | p.length();
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};
