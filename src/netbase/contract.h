// Contract macros: machine-checked pre/postconditions and invariants.
//
// bdrmap's inference correctness rests on structural invariants (valley-free
// routing, alias-set consistency, heuristic precondition discipline) that
// used to live in comments. These macros make them executable. Three forms:
//
//   BDRMAP_EXPECTS(cond)  — precondition at a function boundary
//   BDRMAP_ENSURES(cond)  — postcondition / result invariant
//   BDRMAP_ASSERT(cond)   — internal consistency mid-algorithm
//
// Each form takes an optional second argument with a human-readable note:
//   BDRMAP_EXPECTS(r.valid(), "router id must be generator-assigned");
//
// What happens on violation is a process-wide policy (ContractMode):
//   kAbort — print diagnostics to stderr and std::abort() (default: a broken
//            invariant means every downstream inference is suspect)
//   kThrow — throw ContractViolation (tests; recoverable embedders)
//   kLog   — print diagnostics and continue (production telemetry mode)
//
// Raw assert() is banned in src/ by tools/lint.py in favour of these.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace bdrmap::net {

enum class ContractMode : std::uint8_t { kAbort, kThrow, kLog };

// Thrown under ContractMode::kThrow.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

// Process-wide failure policy. Thread-safe: the mode lives in a
// std::atomic, so contracts firing on runtime worker threads (multi-VP
// runs) race neither with each other nor with a concurrent setter — a
// check sees either the old or the new mode, never a torn value. Policy
// CHANGES are still best made while no checks are in flight (a check that
// already read kThrow will throw even if the mode just became kLog);
// ScopedContractMode in tests therefore brackets single-threaded phases.
ContractMode contract_mode();
void set_contract_mode(ContractMode mode);

// RAII guard for tests: switches the mode and restores it on scope exit.
class ScopedContractMode {
 public:
  explicit ScopedContractMode(ContractMode mode)
      : saved_(contract_mode()) {
    set_contract_mode(mode);
  }
  ~ScopedContractMode() { set_contract_mode(saved_); }
  ScopedContractMode(const ScopedContractMode&) = delete;
  ScopedContractMode& operator=(const ScopedContractMode&) = delete;

 private:
  ContractMode saved_;
};

// Number of violations seen under kLog mode since process start
// (telemetry). Atomic: worker threads increment it concurrently and every
// increment is counted exactly once.
std::uint64_t contract_violation_count();

namespace detail {
// Reports a failed contract according to the current mode. `note` may be
// null. Returns only under kLog.
void contract_fail(const char* kind, const char* expr, const char* note,
                   const char* file, int line, const char* func);
}  // namespace detail

}  // namespace bdrmap::net

// Macro plumbing: each check accepts (cond) or (cond, "note").
#define BDRMAP_CONTRACT_CHECK_(kind, cond, note)                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::bdrmap::net::detail::contract_fail(kind, #cond, note, __FILE__,  \
                                           __LINE__, __func__);          \
    }                                                                    \
  } while (0)

#define BDRMAP_CONTRACT_SELECT_(_1, _2, name, ...) name
#define BDRMAP_CONTRACT_1_(kind, cond) BDRMAP_CONTRACT_CHECK_(kind, cond, nullptr)
#define BDRMAP_CONTRACT_2_(kind, cond, note) BDRMAP_CONTRACT_CHECK_(kind, cond, note)

#define BDRMAP_EXPECTS(...)                                             \
  BDRMAP_CONTRACT_SELECT_(__VA_ARGS__, BDRMAP_CONTRACT_2_,              \
                          BDRMAP_CONTRACT_1_)("precondition", __VA_ARGS__)
#define BDRMAP_ENSURES(...)                                             \
  BDRMAP_CONTRACT_SELECT_(__VA_ARGS__, BDRMAP_CONTRACT_2_,              \
                          BDRMAP_CONTRACT_1_)("postcondition", __VA_ARGS__)
#define BDRMAP_ASSERT(...)                                              \
  BDRMAP_CONTRACT_SELECT_(__VA_ARGS__, BDRMAP_CONTRACT_2_,              \
                          BDRMAP_CONTRACT_1_)("assertion", __VA_ARGS__)
