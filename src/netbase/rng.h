// Deterministic random number generation for the synthetic Internet.
//
// Everything in the generator and the probe engine is seeded, so a given
// (seed, config) pair reproduces the same Internet, the same traceroute
// idiosyncrasies, and the same inference results — required for the tests
// and for regenerating the paper's tables bit-for-bit across runs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace bdrmap::net {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  std::uint32_t uniform(std::uint32_t lo, std::uint32_t hi) {
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(engine_);
  }

  std::uint64_t uniform64(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  // True with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Power-law-ish heavy-tailed integer in [lo, hi]: used for degree
  // distributions (a few huge transit networks, many small stubs).
  std::uint32_t pareto(std::uint32_t lo, std::uint32_t hi, double alpha) {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    double x = static_cast<double>(lo) / std::pow(1.0 - u, 1.0 / alpha);
    if (x > static_cast<double>(hi)) x = static_cast<double>(hi);
    return static_cast<std::uint32_t>(x);
  }

  // Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Picks one element of a non-empty vector uniformly.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[uniform(0, static_cast<std::uint32_t>(v.size() - 1))];
  }

  // Derives an independent child generator; streams stay decoupled so adding
  // draws in one subsystem does not perturb another.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bdrmap::net
