// IPv4 address value type.
//
// A thin, strongly-typed wrapper around a host-byte-order 32-bit value.
// All bdrmap data structures key on this type rather than raw integers so
// that addresses, AS numbers, and router identifiers cannot be confused.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace bdrmap::net {

// An IPv4 address in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}

  // Builds an address from dotted-quad octets, e.g. Ipv4Addr::of(192,0,2,1).
  static constexpr Ipv4Addr of(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                               std::uint8_t d) {
    return Ipv4Addr((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  // Parses dotted-quad text ("192.0.2.1"). Returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  // Renders as dotted-quad text.
  std::string str() const;

  constexpr bool is_zero() const { return value_ == 0; }

  // Successor address; wraps at 255.255.255.255.
  constexpr Ipv4Addr next() const { return Ipv4Addr(value_ + 1); }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace bdrmap::net

template <>
struct std::hash<bdrmap::net::Ipv4Addr> {
  std::size_t operator()(bdrmap::net::Ipv4Addr a) const noexcept {
    // Finalizer from MurmurHash3: cheap and well distributed for dense
    // generator-assigned address ranges.
    std::uint64_t x = a.value();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};
