// Binary radix (Patricia-style) trie keyed by IPv4 prefix, supporting
// longest-prefix-match lookup. This is the central data structure behind
// IP-to-AS mapping: every traceroute hop address is resolved to the origin
// AS of the longest matching BGP prefix (§4 of the paper).
//
// The trie stores one optional value per node; match(addr) walks from /0
// toward /32 remembering the deepest node with a value. Insertion is
// idempotent per prefix (last writer wins unless insert_if_absent is used).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "netbase/prefix.h"

namespace bdrmap::net {

template <typename T>
class RadixTrie {
 public:
  RadixTrie() : root_(std::make_unique<Node>()) {}

  // Inserts (or overwrites) the value for `p`.
  void insert(const Prefix& p, T value) {
    Node* n = descend(p, /*create=*/true);
    n->value = std::move(value);
    if (!n->has_value) {
      n->has_value = true;
      ++size_;
    }
  }

  // Inserts only if `p` has no value yet; returns a reference to the stored
  // value either way (useful for accumulating sets, e.g. MOAS origin sets).
  T& insert_if_absent(const Prefix& p, T value) {
    Node* n = descend(p, /*create=*/true);
    if (!n->has_value) {
      n->value = std::move(value);
      n->has_value = true;
      ++size_;
    }
    return n->value;
  }

  // Exact-match lookup for prefix `p`.
  const T* exact(const Prefix& p) const {
    const Node* n = const_cast<RadixTrie*>(this)->descend(p, /*create=*/false);
    return (n && n->has_value) ? &n->value : nullptr;
  }
  T* exact_mutable(const Prefix& p) {
    Node* n = descend(p, /*create=*/false);
    return (n && n->has_value) ? &n->value : nullptr;
  }

  // Longest-prefix match for a single address. Returns nullptr if nothing
  // covers `a`. If `matched` is non-null, receives the matching prefix.
  const T* match(Ipv4Addr a, Prefix* matched = nullptr) const {
    const Node* n = root_.get();
    const T* best = nullptr;
    std::uint8_t depth = 0;
    std::uint8_t best_depth = 0;
    std::uint32_t v = a.value();
    for (;;) {
      if (n->has_value) {
        best = &n->value;
        best_depth = depth;
      }
      if (depth == 32) break;
      const auto& child = (v >> (31 - depth)) & 1u ? n->one : n->zero;
      if (!child) break;
      n = child.get();
      ++depth;
    }
    if (best && matched) {
      *matched = Prefix(a, best_depth);
    }
    return best;
  }

  // All values on the path from /0 to /32 covering `a`, shortest first.
  // Used to find every BGP prefix covering an address (less- and
  // more-specific announcements).
  std::vector<std::pair<Prefix, const T*>> all_matches(Ipv4Addr a) const {
    std::vector<std::pair<Prefix, const T*>> out;
    const Node* n = root_.get();
    std::uint8_t depth = 0;
    std::uint32_t v = a.value();
    for (;;) {
      if (n->has_value) out.emplace_back(Prefix(a, depth), &n->value);
      if (depth == 32) break;
      const auto& child = (v >> (31 - depth)) & 1u ? n->one : n->zero;
      if (!child) break;
      n = child.get();
      ++depth;
    }
    return out;
  }

  // Visits every (prefix, value) pair in lexicographic prefix order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_.get(), Prefix(Ipv4Addr(0), 0), fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
    T value{};
    bool has_value = false;
  };

  Node* descend(const Prefix& p, bool create) {
    Node* n = root_.get();
    std::uint32_t v = p.network().value();
    for (std::uint8_t depth = 0; depth < p.length(); ++depth) {
      auto& child = (v >> (31 - depth)) & 1u ? n->one : n->zero;
      if (!child) {
        if (!create) return nullptr;
        child = std::make_unique<Node>();
      }
      n = child.get();
    }
    return n;
  }

  template <typename Fn>
  static void walk(const Node* n, Prefix at, Fn&& fn) {
    if (n->has_value) fn(at, n->value);
    if (at.length() == 32) return;
    if (n->zero) walk(n->zero.get(), at.lower_half(), fn);
    if (n->one) walk(n->one.get(), at.upper_half(), fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace bdrmap::net
