#include "netbase/ipv4.h"

#include <array>
#include <charconv>

namespace bdrmap::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    auto [next, ec] = std::from_chars(p, end, octets[static_cast<size_t>(i)]);
    if (ec != std::errc() || next == p) return std::nullopt;
    if (octets[static_cast<size_t>(i)] > 255) return std::nullopt;
    p = next;
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                  octets[3]);
}

std::string Ipv4Addr::str() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xff);
  }
  return out;
}

}  // namespace bdrmap::net
