// Strong identifier types shared across the bdrmap libraries.
//
// The generator, routing simulator, probe engine and inference core all talk
// about ASes, routers and interfaces; strong types keep those id spaces from
// being mixed up at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace bdrmap::net {

// An autonomous system number.
struct AsId {
  std::uint32_t value = 0;

  constexpr AsId() = default;
  constexpr explicit AsId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != 0; }
  std::string str() const { return "AS" + std::to_string(value); }

  friend constexpr auto operator<=>(AsId, AsId) = default;
};

inline constexpr AsId kNoAs{};

// Index of a router within topo::Internet. Dense, generator-assigned.
struct RouterId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

  constexpr RouterId() = default;
  constexpr explicit RouterId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }
  std::string str() const { return "R" + std::to_string(value); }

  friend constexpr auto operator<=>(RouterId, RouterId) = default;
};

// Index of an interface within topo::Internet. Dense, generator-assigned.
struct IfaceId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

  constexpr IfaceId() = default;
  constexpr explicit IfaceId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }

  friend constexpr auto operator<=>(IfaceId, IfaceId) = default;
};

// Identifier of an organization (for sibling ASes / RIR delegations).
struct OrgId {
  std::uint32_t value = 0;

  constexpr OrgId() = default;
  constexpr explicit OrgId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != 0; }
  std::string str() const { return "ORG" + std::to_string(value); }

  friend constexpr auto operator<=>(OrgId, OrgId) = default;
};

}  // namespace bdrmap::net

namespace bdrmap::detail {
inline std::size_t hash_u32(std::uint32_t v) noexcept {
  std::uint64_t x = v;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x);
}
}  // namespace bdrmap::detail

template <>
struct std::hash<bdrmap::net::AsId> {
  std::size_t operator()(bdrmap::net::AsId a) const noexcept {
    return bdrmap::detail::hash_u32(a.value);
  }
};
template <>
struct std::hash<bdrmap::net::RouterId> {
  std::size_t operator()(bdrmap::net::RouterId r) const noexcept {
    return bdrmap::detail::hash_u32(r.value);
  }
};
template <>
struct std::hash<bdrmap::net::IfaceId> {
  std::size_t operator()(bdrmap::net::IfaceId i) const noexcept {
    return bdrmap::detail::hash_u32(i.value);
  }
};
template <>
struct std::hash<bdrmap::net::OrgId> {
  std::size_t operator()(bdrmap::net::OrgId o) const noexcept {
    return bdrmap::detail::hash_u32(o.value);
  }
};
