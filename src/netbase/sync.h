// Concurrency capabilities: Clang Thread Safety Analysis (TSA) attribute
// macros plus the only lock types the repository is allowed to use
// (docs/static_analysis.md §4; lint rule BDR103 bans raw std primitives
// everywhere in src/ outside this header).
//
// Why: the road to bdrmapd (ROADMAP item 2) is concurrent incremental
// re-inference under millions of lookups/sec. Until now the lock
// discipline around every shared structure — worker deques, the park
// protocol, the FIB/BGP double-checked caches, the metrics registry —
// lived in comments, enforced only by whichever interleavings tsan
// happened to witness. With these wrappers the discipline is part of the
// type system: a member annotated BDRMAP_GUARDED_BY(mu_) cannot be read
// without holding mu_, a helper annotated BDRMAP_REQUIRES(mu_) cannot be
// called without it, and a Clang build with -Wthread-safety
// -Werror=thread-safety-analysis (CMake option BDRMAP_THREAD_SAFETY, CI
// job clang-threadsafety) fails to compile on violation — at every call
// site, including the interleavings no test exercises.
//
// On non-Clang compilers every macro expands to nothing and the wrappers
// are zero-cost veneers over the std primitives, so GCC builds and
// sanitizer presets are unaffected.
//
// Usage conventions (mirrored in docs/static_analysis.md):
//
//   net::Mutex mu_;
//   std::deque<Task> tasks_ BDRMAP_GUARDED_BY(mu_);
//
//   void drain() BDRMAP_EXCLUDES(mu_);            // takes mu_ itself
//   void drain_locked() BDRMAP_REQUIRES(mu_);     // caller holds mu_
//
//   { net::MutexLock lk(mu_); ... }               // exclusive section
//   { net::SharedLock lk(cache_mu_); ... }        // shared (reader) section
//
// Condition variables pair with Mutex through net::CondVar, whose wait
// functions atomically release and re-acquire the capability; from the
// analysis' (and the caller's) point of view the mutex is held across the
// wait. Predicates are deliberately not part of the wait API: TSA analyzes
// a lambda body as a separate function that does not hold the caller's
// capabilities, so waiters loop around a plain wait instead.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only; empty elsewhere.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define BDRMAP_TSA_ATTR(x) __attribute__((x))
#else
#define BDRMAP_TSA_ATTR(x)  // non-Clang: annotations compile away
#endif

// Type of a lockable resource ("capability") / of a RAII lock over one.
#define BDRMAP_CAPABILITY(x) BDRMAP_TSA_ATTR(capability(x))
#define BDRMAP_SCOPED_CAPABILITY BDRMAP_TSA_ATTR(scoped_lockable)

// Data members protected by a capability (pointee variant for pointers).
#define BDRMAP_GUARDED_BY(x) BDRMAP_TSA_ATTR(guarded_by(x))
#define BDRMAP_PT_GUARDED_BY(x) BDRMAP_TSA_ATTR(pt_guarded_by(x))

// Function contracts: caller must hold / must not hold the capability.
#define BDRMAP_REQUIRES(...) BDRMAP_TSA_ATTR(requires_capability(__VA_ARGS__))
#define BDRMAP_REQUIRES_SHARED(...) \
  BDRMAP_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define BDRMAP_EXCLUDES(...) BDRMAP_TSA_ATTR(locks_excluded(__VA_ARGS__))

// Functions that acquire / release capabilities themselves.
#define BDRMAP_ACQUIRE(...) BDRMAP_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define BDRMAP_ACQUIRE_SHARED(...) \
  BDRMAP_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define BDRMAP_RELEASE(...) BDRMAP_TSA_ATTR(release_capability(__VA_ARGS__))
#define BDRMAP_RELEASE_SHARED(...) \
  BDRMAP_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define BDRMAP_TRY_ACQUIRE(...) \
  BDRMAP_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

// Lock ordering and escape hatches.
#define BDRMAP_ACQUIRED_BEFORE(...) \
  BDRMAP_TSA_ATTR(acquired_before(__VA_ARGS__))
#define BDRMAP_ACQUIRED_AFTER(...) BDRMAP_TSA_ATTR(acquired_after(__VA_ARGS__))
#define BDRMAP_RETURN_CAPABILITY(x) BDRMAP_TSA_ATTR(lock_returned(x))
#define BDRMAP_NO_THREAD_SAFETY_ANALYSIS \
  BDRMAP_TSA_ATTR(no_thread_safety_analysis)

namespace bdrmap::net {

// Exclusive capability over std::mutex.
class BDRMAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BDRMAP_ACQUIRE() { mu_.lock(); }
  void unlock() BDRMAP_RELEASE() { mu_.unlock(); }
  bool try_lock() BDRMAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Reader/writer capability over std::shared_mutex.
class BDRMAP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BDRMAP_ACQUIRE() { mu_.lock(); }
  void unlock() BDRMAP_RELEASE() { mu_.unlock(); }
  bool try_lock() BDRMAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() BDRMAP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() BDRMAP_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() BDRMAP_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive section over a Mutex or (write path) a SharedMutex.
class BDRMAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BDRMAP_ACQUIRE(mu) : mu_(&mu) { mu.lock(); }
  explicit MutexLock(SharedMutex& mu) BDRMAP_ACQUIRE(mu) : smu_(&mu) {
    mu.lock();
  }
  ~MutexLock() BDRMAP_RELEASE() {
    if (mu_ != nullptr) {
      mu_->unlock();
    } else {
      smu_->unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_ = nullptr;
  SharedMutex* smu_ = nullptr;
};

// RAII shared (reader) section over a SharedMutex.
class BDRMAP_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) BDRMAP_ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu.lock_shared();
  }
  ~SharedLock() BDRMAP_RELEASE() { mu_->unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex* mu_;
};

// Condition variable paired with net::Mutex. Waits release and re-acquire
// the capability internally (std::condition_variable_any drives the Mutex
// through its BasicLockable surface), so callers keep reasoning — and the
// analysis keeps checking — as if the mutex were held throughout. Waiters
// must loop: plain waits return on notify, timeout, or spuriously.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) BDRMAP_REQUIRES(mu) { cv_.wait(mu); }

  template <class Rep, class Period>
  void wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur)
      BDRMAP_REQUIRES(mu) {
    cv_.wait_for(mu, dur);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace bdrmap::net
