#include "route/fib.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "netbase/contract.h"

namespace bdrmap::route {

const std::vector<Session> Fib::kNoSessions;

namespace {

constexpr double kInfDist = std::numeric_limits<double>::infinity();

// Flow-stable tie break for equal-cost egresses (per-destination ECMP).
inline std::uint64_t flow_rank(Ipv4Addr dst, LinkId link) {
  std::uint64_t x = (std::uint64_t{dst.value()} << 32) | link.value;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x;
}

}  // namespace

std::size_t Fib::EgressKeyHash::operator()(const EgressKey& k) const noexcept {
  std::uint64_t h = (std::uint64_t{k.router} << 32) ^ k.dst_as;
  h ^= reinterpret_cast<std::uintptr_t>(k.pinned) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return static_cast<std::size_t>(h);
}

Fib::Fib(const topo::Internet& net, const BgpSimulator& bgp,
         FibOptions options)
    : net_(net), bgp_(bgp), options_(options) {
  if (options_.metrics) {
    egress_hits_ = options_.metrics->counter("route.fib.egress_cache_hits");
    egress_misses_ =
        options_.metrics->counter("route.fib.egress_cache_misses");
    routing_fills_ = options_.metrics->counter("route.fib.routing_fills");
    egress_tied_ = options_.metrics->histogram(
        "route.fib.egress_tied_sessions", {0, 1, 2, 4, 8});
  }
  const auto& ases = net.ases();
  as_dense_.reserve(ases.size());
  router_as_dense_.assign(net.routers().size(), kNoIndex);
  router_local_.assign(net.routers().size(), kNoIndex);
  for (std::uint32_t d = 0; d < ases.size(); ++d) {
    as_dense_.emplace(ases[d].id, d);
    const auto& routers = ases[d].routers;
    for (std::uint32_t i = 0; i < routers.size(); ++i) {
      router_as_dense_[routers[i].value] = d;
      router_local_[routers[i].value] = i;
    }
  }
  routing_.resize(ases.size());
  sessions_.resize(ases.size());
  sessions_by_far_.resize(ases.size());
  // Row pointers start null; rows are allocated on the first egress
  // decision a router makes (vector of atomics is fixed-size by design).
  egress_rows_ = std::vector<std::atomic<std::atomic<const EgressEntry*>*>>(
      net.routers().size());

  for (const auto& info : net.interdomain_links()) {
    const auto& link = net.link(info.link);
    auto iface_of = [&](RouterId r) {
      for (IfaceId i : link.ifaces) {
        if (net.iface(i).router == r) return i;
      }
      return IfaceId{};
    };
    IfaceId ia = iface_of(info.router_a);
    IfaceId ib = iface_of(info.router_b);
    BDRMAP_EXPECTS(ia.valid() && ib.valid(),
                   "interdomain link must terminate on both end routers");
    std::uint32_t da = as_dense_.at(info.as_a);
    std::uint32_t db = as_dense_.at(info.as_b);
    sessions_[da].push_back({info.link, info.router_a, info.router_b,
                             ia, ib, info.as_a, info.as_b, info.via_ixp});
    sessions_[db].push_back({info.link, info.router_b, info.router_a,
                             ib, ia, info.as_b, info.as_a, info.via_ixp});
  }
  for (std::uint32_t d = 0; d < sessions_.size(); ++d) {
    const auto& list = sessions_[d];
    for (std::uint32_t i = 0; i < list.size(); ++i) {
      sessions_by_far_[d][list[i].far_as].push_back(i);
    }
  }
}

void Fib::set_link_state(LinkId link, bool up) {
  {
    net::MutexLock lk(overlay_mu_);
    if (up) {
      down_links_.erase(link.value);
    } else {
      down_links_.insert(link.value);
    }
    overlay_active_.store(!down_links_.empty() || !withdrawn_.empty(),
                          std::memory_order_release);
  }
  // Cached egress decisions were computed against the previous down set.
  invalidate_egress();
}

void Fib::set_prefix_withdrawn(const net::Prefix& p, bool withdrawn) {
  net::MutexLock lk(overlay_mu_);
  for (const auto& ap : net_.announced()) {
    if (ap.prefix != p) continue;
    if (withdrawn) {
      withdrawn_.insert(&ap);
    } else {
      withdrawn_.erase(&ap);
    }
  }
  overlay_active_.store(!down_links_.empty() || !withdrawn_.empty(),
                        std::memory_order_release);
}

void Fib::invalidate_egress() {
  // Mutators run under the serve layer's quiescence contract (no
  // concurrent forwarding), so relaxed stores suffice to null the rows.
  net::MutexLock lk(egress_mu_);
  egress_.clear();
  const std::size_t n_ases = sessions_.size();
  for (auto& storage : egress_row_storage_) {
    for (std::size_t j = 0; j < n_ases; ++j) {
      storage[j].store(nullptr, std::memory_order_relaxed);
    }
  }
  egress_pool_.clear();
}

bool Fib::link_is_down(LinkId link) const {
  if (!overlay_active_.load(std::memory_order_acquire)) return false;
  net::SharedLock lk(overlay_mu_);
  return down_links_.count(link.value) > 0;
}

bool Fib::prefix_withdrawn(const topo::AnnouncedPrefix* ap) const {
  if (!overlay_active_.load(std::memory_order_acquire)) return false;
  net::SharedLock lk(overlay_mu_);
  return withdrawn_.count(ap) > 0;
}

const std::vector<Session>& Fib::sessions_of(AsId as) const {
  auto it = as_dense_.find(as);
  return it == as_dense_.end() ? kNoSessions : sessions_[it->second];
}

AsId Fib::owner_of(RouterId r) const {
  if (r.value < router_as_dense_.size() &&
      router_as_dense_[r.value] != kNoIndex) {
    return net_.ases()[router_as_dense_[r.value]].id;
  }
  return net_.router(r).owner;
}

Fib::RouteQuery::Resolved Fib::resolve(Ipv4Addr dst) const {
  // Dense index of the routing target AS, kNoIndex for ASes outside the
  // construction snapshot (corrupted-truth audits) — those fall back to
  // the keyed egress map instead of the flat rows.
  auto dense_as = [this](AsId as) {
    auto it = as_dense_.find(as);
    return it == as_dense_.end() ? kNoIndex : it->second;
  };
  RouteQuery::Resolved r;
  if (auto iface_id = net_.iface_at(dst)) {
    const auto& iface = net_.iface(*iface_id);
    const auto& link = net_.link(iface.link);
    RouterId t = iface.router;
    AsId owner = owner_of(t);
    r.ok = true;
    r.is_iface_addr = true;
    r.final_router = t;
    if (link.kind == topo::LinkKind::kInterdomain &&
        link.addr_space_owner != owner) {
      // Provider-assigned p2p address on the far side: packets route toward
      // the supplier's AS, whose router on the subnet delivers across the
      // link (this is why far-side link addresses are reachable at all).
      for (net::IfaceId other : link.ifaces) {
        const auto& oi = net_.iface(other);
        if (owner_of(oi.router) == link.addr_space_owner) {
          r.dst_as = link.addr_space_owner;
          r.dst_as_dense = dense_as(r.dst_as);
          r.target = oi.router;
          r.cross_link = link.id;
          r.cross_egress = other;
          return r;
        }
      }
    }
    r.dst_as = owner;
    r.dst_as_dense = dense_as(owner);
    r.target = t;
    return r;
  }
  if (const auto* ap = net_.announced_match(dst)) {
    // A withdrawn prefix has no route; there is deliberately no
    // less-specific fallback (matching announced_match's exact-trie
    // semantics — see docs/serving.md).
    if (prefix_withdrawn(ap)) return r;
    r.ok = true;
    r.dst_as = ap->origin;
    r.dst_as_dense = dense_as(ap->origin);
    r.target = ap->host_router;
    r.final_router = ap->host_router;
    r.ap = ap;
    if (!ap->only_via_links.empty()) r.pinned = &ap->only_via_links;
    return r;
  }
  return r;
}

Fib::RouteQuery Fib::query(Ipv4Addr dst) const {
  RouteQuery q;
  q.dst_ = dst;
  if (options_.enable_caches) {
    q.res_ = resolve(dst);
    q.pre_resolved_ = true;
  }
  return q;
}

const Fib::AsRouting& Fib::routing_for(std::uint32_t as_dense) const {
  {
    net::SharedLock lk(routing_mu_);
    if (routing_[as_dense]) return *routing_[as_dense];
  }
  routing_fills_.inc();

  const AsId as = net_.ases()[as_dense].id;
  auto r = std::make_unique<AsRouting>();
  r->routers = net_.as_info(as).routers;
  const std::size_t n = r->routers.size();
  r->dist.assign(n * n, kInfDist);
  r->next_iface.assign(n * n, IfaceId{});
  r->alt_iface.assign(n * n, IfaceId{});

  // Adjacency from internal links between two routers of this AS.
  struct Edge {
    std::size_t to;
    double cost;
    IfaceId from_iface;
    IfaceId to_iface;
  };
  std::vector<std::vector<Edge>> adj(n);
  for (const auto& link : net_.links()) {
    if (link.kind != topo::LinkKind::kInternal || link.ifaces.size() != 2) {
      continue;
    }
    const auto& i0 = net_.iface(link.ifaces[0]);
    const auto& i1 = net_.iface(link.ifaces[1]);
    if (router_as_dense_[i0.router.value] != as_dense ||
        router_as_dense_[i1.router.value] != as_dense) {
      continue;
    }
    std::uint32_t a = router_local_[i0.router.value];
    std::uint32_t b = router_local_[i1.router.value];
    adj[a].push_back({b, link.igp_cost, i0.id, i1.id});
    adj[b].push_back({a, link.igp_cost, i1.id, i0.id});
  }

  // Dijkstra from every router (intra-AS topologies are small).
  for (std::size_t s = 0; s < n; ++s) {
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    r->dist[s * n + s] = 0.0;
    pq.emplace(0.0, s);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > r->dist[s * n + u]) continue;
      for (const Edge& e : adj[u]) {
        double nd = d + e.cost;
        IfaceId first_hop =
            (u == s) ? e.from_iface : r->next_iface[s * n + u];
        if (nd < r->dist[s * n + e.to]) {
          r->dist[s * n + e.to] = nd;
          // First hop out of s toward e.to: inherit s's first hop toward u,
          // unless u == s, in which case the edge itself is the first hop.
          r->next_iface[s * n + e.to] = first_hop;
          r->alt_iface[s * n + e.to] = IfaceId{};
          pq.emplace(nd, e.to);
        } else if (nd == r->dist[s * n + e.to] &&
                   first_hop != r->next_iface[s * n + e.to] &&
                   first_hop.valid()) {
          // Equal-cost alternative first hop (ECMP).
          r->alt_iface[s * n + e.to] = first_hop;
        }
      }
    }
  }

  // Pure computation: racing fills for the same AS produced identical
  // tables, so first writer wins and the duplicate is discarded. The
  // returned reference survives because the slot vector never resizes.
  net::MutexLock lk(routing_mu_);
  if (!routing_[as_dense]) routing_[as_dense] = std::move(r);
  return *routing_[as_dense];
}

double Fib::igp_distance(RouterId a, RouterId b) const {
  if (a == b) return 0.0;
  if (a.value >= router_as_dense_.size() ||
      b.value >= router_as_dense_.size()) {
    return kInfDist;
  }
  std::uint32_t da = router_as_dense_[a.value];
  if (da == kNoIndex || da != router_as_dense_[b.value]) return kInfDist;
  std::uint32_t ia = router_local_[a.value];
  std::uint32_t ib = router_local_[b.value];
  const AsRouting& rt = routing_for(da);
  return rt.dist[ia * rt.routers.size() + ib];
}

// BDRMAP_HOT_BEGIN(fib_internal_step) — BDR104: the intra-AS hop. Dense
// table loads and one flow hash; nothing may allocate here.
std::optional<Fib::Hop> Fib::internal_step(RouterId r, RouterId target,
                                           Ipv4Addr dst,
                                           std::uint32_t flow_salt) const {
  std::uint32_t as_dense = router_as_dense_[r.value];
  if (as_dense == kNoIndex ||
      router_as_dense_[target.value] != as_dense) {
    return std::nullopt;
  }
  const AsRouting& rt = routing_for(as_dense);
  std::uint32_t ir = router_local_[r.value];
  std::uint32_t it = router_local_[target.value];
  std::size_t n = rt.routers.size();
  IfaceId out = rt.next_iface[ir * n + it];
  IfaceId alt = rt.alt_iface[ir * n + it];
  if (alt.valid()) {
    // ECMP: hash the flow (destination + salt). Salt 0 == Paris (stable
    // per destination); per-probe salts flap between the two paths.
    std::uint64_t h = (std::uint64_t{dst.value()} << 32) |
                      (std::uint64_t{flow_salt} ^ r.value);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    if (h & 1) out = alt;
  }
  if (!out.valid()) return std::nullopt;  // disconnected
  const auto& iface = net_.iface(out);
  IfaceId in = net_.p2p_other_end(out);
  if (!in.valid()) return std::nullopt;
  return Hop{net_.iface(in).router, in, out, iface.link, false};
}
// BDRMAP_HOT_END(fib_internal_step)

const Session* Fib::choose_egress_uncached(
    RouterId r, AsId as, AsId dst_as, Ipv4Addr dst,
    const std::vector<LinkId>* pinned) const {
  const auto& sessions = sessions_of(as);
  if (sessions.empty()) return nullptr;
  auto tiers = bgp_.candidate_tiers(as, dst_as);
  for (const auto& tier : tiers) {
    const Session* best = nullptr;
    double best_dist = kInfDist;
    std::uint64_t best_rank = 0;
    for (const Session& s : sessions) {
      // Tiers come out of candidate_tiers sorted ascending.
      if (!std::binary_search(tier.begin(), tier.end(), s.far_as)) {
        continue;
      }
      // Selective-announcement filter at sessions adjacent to the origin.
      if (pinned && s.far_as == dst_as &&
          std::find(pinned->begin(), pinned->end(), s.link) == pinned->end()) {
        continue;
      }
      if (link_is_down(s.link)) continue;  // churn overlay
      double d = igp_distance(r, s.near_router);
      if (d == kInfDist) continue;
      std::uint64_t rank = flow_rank(dst, s.link);
      if (!best || d < best_dist || (d == best_dist && rank < best_rank)) {
        best = &s;
        best_dist = d;
        best_rank = rank;
      }
    }
    if (best) return best;
  }
  return nullptr;
}

Fib::EgressEntry Fib::compute_egress_entry(
    RouterId r, AsId dst_as, const std::vector<LinkId>* pinned) const {
  // Fill: first satisfiable tier, sessions tied at minimal IGP distance
  // from r, in session order — the same winners the uncached scan finds,
  // minus the per-destination rank that next_hop applies at lookup time.
  EgressEntry entry;
  const AsId as = owner_of(r);
  const std::uint32_t as_dense = as_dense_.at(as);
  const auto& sessions = sessions_[as_dense];
  const auto& by_far = sessions_by_far_[as_dense];
  if (!sessions.empty()) {
    std::vector<std::uint32_t> candidates;
    for (const auto& tier : bgp_.tiers(as, dst_as).tiers) {
      candidates.clear();
      for (AsId far : tier) {
        auto it = by_far.find(far);
        if (it == by_far.end()) continue;
        candidates.insert(candidates.end(), it->second.begin(),
                          it->second.end());
      }
      std::sort(candidates.begin(), candidates.end());
      double best_dist = kInfDist;
      for (std::uint32_t idx : candidates) {
        const Session& s = sessions[idx];
        if (pinned && s.far_as == dst_as &&
            std::find(pinned->begin(), pinned->end(), s.link) ==
                pinned->end()) {
          continue;
        }
        if (link_is_down(s.link)) continue;  // churn overlay
        double d = igp_distance(r, s.near_router);
        if (d == kInfDist) continue;
        if (d < best_dist) {
          best_dist = d;
          entry.tied.clear();
        }
        if (d == best_dist) entry.tied.push_back(&s);
      }
      if (!entry.tied.empty()) break;  // tier satisfied
    }
  }
  egress_tied_.observe(entry.tied.size());
  return entry;
}

const Fib::EgressEntry& Fib::egress_entry(
    RouterId r, AsId dst_as, const std::vector<LinkId>* pinned) const {
  const EgressKey key{r.value, dst_as.value,
                      static_cast<const void*>(pinned)};
  {
    net::SharedLock lk(egress_mu_);
    auto it = egress_.find(key);
    if (it != egress_.end()) {
      egress_hits_.inc();
      return *it->second;
    }
  }
  egress_misses_.inc();

  auto entry = std::make_unique<EgressEntry>(
      compute_egress_entry(r, dst_as, pinned));

  // Pure function of the immutable topology: first writer wins.
  net::MutexLock lk(egress_mu_);
  auto it = egress_.emplace(key, std::move(entry)).first;
  return *it->second;
}

const Fib::EgressEntry* Fib::egress_fill_flat(RouterId r,
                                              std::uint32_t dst_as_dense,
                                              AsId dst_as) const {
  egress_misses_.inc();
  EgressEntry filled = compute_egress_entry(r, dst_as, nullptr);

  net::MutexLock lk(egress_mu_);
  std::atomic<const EgressEntry*>* row =
      egress_rows_[r.value].load(std::memory_order_relaxed);
  if (!row) {
    auto storage = std::make_unique<std::atomic<const EgressEntry*>[]>(
        sessions_.size());  // value-initialized: every slot starts null
    row = storage.get();
    egress_row_storage_.push_back(std::move(storage));
    egress_rows_[r.value].store(row, std::memory_order_release);
  }
  // First writer wins; a racing fill computed the identical entry.
  if (const EgressEntry* e = row[dst_as_dense].load(std::memory_order_relaxed)) {
    return e;
  }
  egress_pool_.push_back(std::move(filled));
  const EgressEntry* e = &egress_pool_.back();
  row[dst_as_dense].store(e, std::memory_order_release);
  return e;
}

// BDRMAP_HOT_BEGIN(fib_walk) — BDR104: the per-hop forwarding decision.
// Array loads, published-pointer acquire loads and pure hashes only; no
// node containers, no heap allocation (cold fills live outside the region).

const Fib::EgressEntry* Fib::egress_entry_flat(RouterId r,
                                               std::uint32_t dst_as_dense,
                                               AsId dst_as) const {
  std::atomic<const EgressEntry*>* row =
      egress_rows_[r.value].load(std::memory_order_acquire);
  if (row) {
    if (const EgressEntry* e =
            row[dst_as_dense].load(std::memory_order_acquire)) {
      egress_hits_.inc();
      return e;
    }
  }
  return egress_fill_flat(r, dst_as_dense, dst_as);
}

std::optional<Fib::Hop> Fib::next_hop_resolved(
    RouterId r, const RouteQuery::Resolved& res, Ipv4Addr dst,
    std::uint32_t flow_salt) const {
  if (!res.ok) return std::nullopt;
  AsId x = owner_of(r);

  // Already inside the AS that ultimately owns the address.
  if (res.final_router.valid() && owner_of(res.final_router) == x) {
    if (r == res.final_router) return std::nullopt;  // delivered
    return internal_step(r, res.final_router, dst, flow_salt);
  }

  if (x == res.dst_as) {
    if (r == res.target) {
      if (res.cross_link.valid()) {
        // Deliver across the p2p subnet to the far-side router — unless
        // churn took the link down, which strands the far-side address.
        if (link_is_down(res.cross_link)) return std::nullopt;
        const auto& link = net_.link(res.cross_link);
        for (IfaceId i : link.ifaces) {
          const auto& iface = net_.iface(i);
          if (iface.router == res.final_router) {
            return Hop{iface.router, i, res.cross_egress, link.id, true};
          }
        }
        return std::nullopt;
      }
      return std::nullopt;  // delivered (host prefix attachment point)
    }
    return internal_step(r, res.target, dst, flow_salt);
  }

  // Interdomain: pick an egress session by preference tier + hot potato.
  const Session* egress = nullptr;
  if (options_.enable_caches) {
    const EgressEntry* e =
        (options_.enable_flat_egress && !res.pinned &&
         res.dst_as_dense != kNoIndex)
            ? egress_entry_flat(r, res.dst_as_dense, res.dst_as)
            : &egress_entry(r, res.dst_as, res.pinned);
    if (!e->tied.empty()) {
      egress = e->tied.front();
      if (e->tied.size() > 1) {
        std::uint64_t best_rank = flow_rank(dst, egress->link);
        for (std::size_t i = 1; i < e->tied.size(); ++i) {
          std::uint64_t rank = flow_rank(dst, e->tied[i]->link);
          if (rank < best_rank) {
            egress = e->tied[i];
            best_rank = rank;
          }
        }
      }
    }
  } else {
    egress = choose_egress_uncached(r, x, res.dst_as, dst, res.pinned);
  }
  if (!egress) return std::nullopt;
  BDRMAP_ASSERT(egress->near_as == x,
                "chosen egress session must belong to the forwarding AS");
  if (egress->near_router == r) {
    return Hop{egress->far_router, egress->far_iface, egress->near_iface,
               egress->link, true};
  }
  return internal_step(r, egress->near_router, dst, flow_salt);
}

std::optional<Fib::Hop> Fib::next_hop(RouterId r, const RouteQuery& q,
                                      std::uint32_t flow_salt) const {
  if (q.pre_resolved_) {
    return next_hop_resolved(r, q.res_, q.dst_, flow_salt);
  }
  return next_hop_resolved(r, resolve(q.dst_), q.dst_, flow_salt);
}

std::optional<Fib::Hop> Fib::next_hop(RouterId r, Ipv4Addr dst,
                                      std::uint32_t flow_salt) const {
  return next_hop_resolved(r, resolve(dst), dst, flow_salt);
}

bool Fib::delivered_at(RouterId r, const RouteQuery& q) const {
  if (!q.pre_resolved_) return delivered_at(r, q.dst_);
  const RouteQuery::Resolved& res = q.res_;
  if (!res.ok) return false;
  if (res.is_iface_addr) return r == res.final_router;
  return r == res.target && res.ap && res.ap->prefix.contains(q.dst_);
}

// BDRMAP_HOT_END(fib_walk)

bool Fib::delivered_at(RouterId r, Ipv4Addr dst) const {
  RouteQuery::Resolved res = resolve(dst);
  if (!res.ok) return false;
  if (res.is_iface_addr) return r == res.final_router;
  return r == res.target && res.ap && res.ap->prefix.contains(dst);
}

bool Fib::addr_owned_by(RouterId r, const RouteQuery& q) const {
  if (q.pre_resolved_) {
    return q.res_.is_iface_addr && q.res_.final_router == r;
  }
  auto iface = net_.iface_at(q.dst_);
  return iface && net_.iface(*iface).router == r;
}

std::optional<IfaceId> Fib::egress_iface(RouterId r,
                                         const RouteQuery& q) const {
  auto hop = next_hop(r, q);
  if (!hop || !hop->egress.valid()) return std::nullopt;
  return hop->egress;
}

std::optional<IfaceId> Fib::egress_iface(RouterId r, Ipv4Addr dst) const {
  return egress_iface(r, query(dst));
}

}  // namespace bdrmap::route
