#include "route/fib.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <queue>

#include "netbase/contract.h"

namespace bdrmap::route {

const std::vector<Session> Fib::kNoSessions;

namespace {

constexpr double kInfDist = std::numeric_limits<double>::infinity();

// How a destination address is delivered.
struct Resolved {
  bool ok = false;
  AsId dst_as;                 // AS-level routing target
  RouterId target;             // delivery router inside dst_as
  RouterId final_router;       // router that ultimately owns the address
  LinkId cross_link;           // link to cross from target to final_router
  const topo::AnnouncedPrefix* ap = nullptr;
  const std::vector<LinkId>* pinned = nullptr;
};

Resolved resolve(const topo::Internet& net, Ipv4Addr dst) {
  Resolved r;
  if (auto iface_id = net.iface_at(dst)) {
    const auto& iface = net.iface(*iface_id);
    const auto& link = net.link(iface.link);
    RouterId t = iface.router;
    AsId owner = net.router(t).owner;
    r.ok = true;
    r.final_router = t;
    if (link.kind == topo::LinkKind::kInterdomain &&
        link.addr_space_owner != owner) {
      // Provider-assigned p2p address on the far side: packets route toward
      // the supplier's AS, whose router on the subnet delivers across the
      // link (this is why far-side link addresses are reachable at all).
      for (net::IfaceId other : link.ifaces) {
        const auto& oi = net.iface(other);
        if (net.router(oi.router).owner == link.addr_space_owner) {
          r.dst_as = link.addr_space_owner;
          r.target = oi.router;
          r.cross_link = link.id;
          return r;
        }
      }
    }
    r.dst_as = owner;
    r.target = t;
    return r;
  }
  if (const auto* ap = net.announced_match(dst)) {
    r.ok = true;
    r.dst_as = ap->origin;
    r.target = ap->host_router;
    r.final_router = ap->host_router;
    r.ap = ap;
    if (!ap->only_via_links.empty()) r.pinned = &ap->only_via_links;
    return r;
  }
  return r;
}

}  // namespace

Fib::Fib(const topo::Internet& net, const BgpSimulator& bgp)
    : net_(net), bgp_(bgp) {
  for (const auto& info : net.interdomain_links()) {
    const auto& link = net.link(info.link);
    auto iface_of = [&](RouterId r) {
      for (IfaceId i : link.ifaces) {
        if (net.iface(i).router == r) return i;
      }
      return IfaceId{};
    };
    IfaceId ia = iface_of(info.router_a);
    IfaceId ib = iface_of(info.router_b);
    BDRMAP_EXPECTS(ia.valid() && ib.valid(),
                   "interdomain link must terminate on both end routers");
    sessions_[info.as_a].push_back({info.link, info.router_a, info.router_b,
                                    ia, ib, info.as_a, info.as_b,
                                    info.via_ixp});
    sessions_[info.as_b].push_back({info.link, info.router_b, info.router_a,
                                    ib, ia, info.as_b, info.as_a,
                                    info.via_ixp});
  }
}

const std::vector<Session>& Fib::sessions_of(AsId as) const {
  auto it = sessions_.find(as);
  return it == sessions_.end() ? kNoSessions : it->second;
}

const Fib::AsRouting& Fib::routing_for(AsId as) const {
  {
    std::shared_lock<std::shared_mutex> lk(routing_mu_);
    auto it = routing_.find(as);
    if (it != routing_.end()) return *it->second;
  }

  auto r = std::make_unique<AsRouting>();
  r->routers = net_.as_info(as).routers;
  const std::size_t n = r->routers.size();
  for (std::size_t i = 0; i < n; ++i) {
    r->router_index.emplace(r->routers[i].value, i);
  }
  r->dist.assign(n * n, kInfDist);
  r->next_iface.assign(n * n, IfaceId{});
  r->alt_iface.assign(n * n, IfaceId{});

  // Adjacency from internal links between two routers of this AS.
  struct Edge {
    std::size_t to;
    double cost;
    IfaceId from_iface;
    IfaceId to_iface;
  };
  std::vector<std::vector<Edge>> adj(n);
  for (const auto& link : net_.links()) {
    if (link.kind != topo::LinkKind::kInternal || link.ifaces.size() != 2) {
      continue;
    }
    const auto& i0 = net_.iface(link.ifaces[0]);
    const auto& i1 = net_.iface(link.ifaces[1]);
    auto a = r->router_index.find(i0.router.value);
    auto b = r->router_index.find(i1.router.value);
    if (a == r->router_index.end() || b == r->router_index.end()) continue;
    adj[a->second].push_back({b->second, link.igp_cost, i0.id, i1.id});
    adj[b->second].push_back({a->second, link.igp_cost, i1.id, i0.id});
  }

  // Dijkstra from every router (intra-AS topologies are small).
  for (std::size_t s = 0; s < n; ++s) {
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    r->dist[s * n + s] = 0.0;
    pq.emplace(0.0, s);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > r->dist[s * n + u]) continue;
      for (const Edge& e : adj[u]) {
        double nd = d + e.cost;
        IfaceId first_hop =
            (u == s) ? e.from_iface : r->next_iface[s * n + u];
        if (nd < r->dist[s * n + e.to]) {
          r->dist[s * n + e.to] = nd;
          // First hop out of s toward e.to: inherit s's first hop toward u,
          // unless u == s, in which case the edge itself is the first hop.
          r->next_iface[s * n + e.to] = first_hop;
          r->alt_iface[s * n + e.to] = IfaceId{};
          pq.emplace(nd, e.to);
        } else if (nd == r->dist[s * n + e.to] &&
                   first_hop != r->next_iface[s * n + e.to] &&
                   first_hop.valid()) {
          // Equal-cost alternative first hop (ECMP).
          r->alt_iface[s * n + e.to] = first_hop;
        }
      }
    }
  }

  // Pure computation: racing fills for the same AS produced identical
  // tables, so first writer wins and the duplicate is discarded. The
  // returned reference survives rehashes (unique_ptr indirection).
  std::unique_lock<std::shared_mutex> lk(routing_mu_);
  auto it = routing_.emplace(as, std::move(r)).first;
  return *it->second;
}

double Fib::igp_distance(RouterId a, RouterId b) const {
  if (a == b) return 0.0;
  AsId as_a = net_.router(a).owner;
  if (as_a != net_.router(b).owner) return kInfDist;
  const AsRouting& r = routing_for(as_a);
  auto ia = r.router_index.find(a.value);
  auto ib = r.router_index.find(b.value);
  if (ia == r.router_index.end() || ib == r.router_index.end()) {
    return kInfDist;
  }
  return r.dist[ia->second * r.routers.size() + ib->second];
}

std::optional<Fib::Hop> Fib::internal_step(RouterId r, RouterId target,
                                           Ipv4Addr dst,
                                           std::uint32_t flow_salt) const {
  AsId as = net_.router(r).owner;
  const AsRouting& rt = routing_for(as);
  auto ir = rt.router_index.find(r.value);
  auto it = rt.router_index.find(target.value);
  if (ir == rt.router_index.end() || it == rt.router_index.end()) {
    return std::nullopt;
  }
  std::size_t n = rt.routers.size();
  IfaceId out = rt.next_iface[ir->second * n + it->second];
  IfaceId alt = rt.alt_iface[ir->second * n + it->second];
  if (alt.valid()) {
    // ECMP: hash the flow (destination + salt). Salt 0 == Paris (stable
    // per destination); per-probe salts flap between the two paths.
    std::uint64_t h = (std::uint64_t{dst.value()} << 32) |
                      (std::uint64_t{flow_salt} ^ r.value);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    if (h & 1) out = alt;
  }
  if (!out.valid()) return std::nullopt;  // disconnected
  const auto& iface = net_.iface(out);
  IfaceId in = net_.p2p_other_end(out);
  if (!in.valid()) return std::nullopt;
  return Hop{net_.iface(in).router, in, iface.link, false};
}

const Session* Fib::choose_egress(RouterId r, AsId as, AsId dst_as,
                                  Ipv4Addr dst,
                                  const std::vector<LinkId>* pinned) const {
  const auto& sessions = sessions_of(as);
  if (sessions.empty()) return nullptr;
  // Flow-stable tie break for equal-cost egresses (per-destination ECMP).
  auto flow_rank = [&](const Session& s) {
    std::uint64_t x = (std::uint64_t{dst.value()} << 32) | s.link.value;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return x;
  };
  auto tiers = bgp_.candidate_tiers(as, dst_as);
  for (const auto& tier : tiers) {
    const Session* best = nullptr;
    double best_dist = kInfDist;
    std::uint64_t best_rank = 0;
    for (const Session& s : sessions) {
      if (std::find(tier.begin(), tier.end(), s.far_as) == tier.end()) {
        continue;
      }
      // Selective-announcement filter at sessions adjacent to the origin.
      if (pinned && s.far_as == dst_as &&
          std::find(pinned->begin(), pinned->end(), s.link) == pinned->end()) {
        continue;
      }
      double d = igp_distance(r, s.near_router);
      if (d == kInfDist) continue;
      std::uint64_t rank = flow_rank(s);
      if (!best || d < best_dist || (d == best_dist && rank < best_rank)) {
        best = &s;
        best_dist = d;
        best_rank = rank;
      }
    }
    if (best) return best;
  }
  return nullptr;
}

std::optional<Fib::Hop> Fib::next_hop(RouterId r, Ipv4Addr dst,
                                      std::uint32_t flow_salt) const {
  Resolved res = resolve(net_, dst);
  if (!res.ok) return std::nullopt;
  AsId x = net_.router(r).owner;

  // Already inside the AS that ultimately owns the address.
  if (res.final_router.valid() &&
      net_.router(res.final_router).owner == x) {
    if (r == res.final_router) return std::nullopt;  // delivered
    return internal_step(r, res.final_router, dst, flow_salt);
  }

  if (x == res.dst_as) {
    if (r == res.target) {
      if (res.cross_link.valid()) {
        // Deliver across the p2p subnet to the far-side router.
        const auto& link = net_.link(res.cross_link);
        for (IfaceId i : link.ifaces) {
          const auto& iface = net_.iface(i);
          if (iface.router == res.final_router) {
            return Hop{iface.router, i, link.id, true};
          }
        }
        return std::nullopt;
      }
      return std::nullopt;  // delivered (host prefix attachment point)
    }
    return internal_step(r, res.target, dst, flow_salt);
  }

  // Interdomain: pick an egress session by preference tier + hot potato.
  const Session* egress = choose_egress(r, x, res.dst_as, dst, res.pinned);
  if (!egress) return std::nullopt;
  BDRMAP_ASSERT(egress->near_as == x,
                "chosen egress session must belong to the forwarding AS");
  if (egress->near_router == r) {
    return Hop{egress->far_router, egress->far_iface, egress->link, true};
  }
  return internal_step(r, egress->near_router, dst, flow_salt);
}

bool Fib::delivered_at(RouterId r, Ipv4Addr dst) const {
  Resolved res = resolve(net_, dst);
  if (!res.ok) return false;
  if (net_.iface_at(dst)) return r == res.final_router;
  return r == res.target && res.ap && res.ap->prefix.contains(dst);
}

std::optional<IfaceId> Fib::egress_iface(RouterId r, Ipv4Addr dst) const {
  auto hop = next_hop(r, dst);
  if (!hop) return std::nullopt;
  const auto& link = net_.link(hop->link);
  for (IfaceId i : link.ifaces) {
    if (net_.iface(i).router == r) return i;
  }
  return std::nullopt;
}

}  // namespace bdrmap::route
