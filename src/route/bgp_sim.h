// AS-level BGP route computation over the ground-truth relationship graph.
//
// Implements the standard Gao-Rexford model: an AS prefers routes learned
// from customers over peers over providers (economics), uses path length
// within a preference class, and exports customer-learned routes to
// everyone but peer/provider-learned routes only to customers (valley-free
// export). The router-level FIB (fib.h) consumes the per-destination
// candidate tiers to make hot-potato egress choices, and the collector view
// (collectors.h) extracts the deterministic best AS paths a route collector
// would record.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/ids.h"
#include "netbase/sync.h"
#include "obs/metrics.h"
#include "topo/internet.h"

namespace bdrmap::route {

using net::AsId;

// Export-policy overrides for adversarial scenarios. The relationship graph
// stays Gao-Rexford-consistent; a policy only changes what an AS *exports*.
struct BgpPolicy {
  // ASes committing a classic type-1 route leak: each re-exports its best
  // route of ANY class to all of its providers and peers, which accept it
  // as a customer-/peer-learned route respectively. A neighbor whose own
  // best route is already at least as short rejects the leak (AS-path loop
  // detection: the circular announcement carries the neighbor's own ASN),
  // which keeps the leaked forwarding plane loop-free.
  std::vector<AsId> leakers;

  bool has_leaks() const { return !leakers.empty(); }
};

enum class RouteClass : std::uint8_t {
  kNone,      // unreachable
  kSelf,      // destination is the AS itself
  kCustomer,  // learned from a customer (most preferred)
  kPeer,      // learned from a settlement-free peer
  kProvider,  // learned from a provider (least preferred)
};

struct RouteInfo {
  RouteClass cls = RouteClass::kNone;
  std::uint16_t dist = 0;  // AS hops to the destination
};

class BgpSimulator {
 public:
  // `metrics` (optional) receives the route.bgp.* cache counters; nullptr
  // keeps every instrument a no-op.
  explicit BgpSimulator(const topo::Internet& net,
                        obs::MetricsRegistry* metrics = nullptr);

  // Same, with an adversarial export policy (route leaks). The default
  // policy is empty, making this constructor equivalent to the one above.
  BgpSimulator(const topo::Internet& net, BgpPolicy policy,
               obs::MetricsRegistry* metrics = nullptr);

  const BgpPolicy& policy() const { return policy_; }

  // Best route class/length from `src` toward `dst` (an AS).
  RouteInfo route(AsId src, AsId dst) const;

  // Next-hop AS candidates grouped into preference tiers: tier 0 is the
  // most preferred non-empty class (all neighbors tied at the best path
  // length within that class), followed by the remaining classes in
  // preference order. Routers fall back to a later tier only when
  // per-prefix announcement filtering empties an earlier one.
  //
  // Computes fresh on every call (the pre-fast-path behaviour, kept as
  // the cache-disabled baseline); hot paths use tiers() below.
  std::vector<std::vector<AsId>> candidate_tiers(AsId src, AsId dst) const;

  // Memoized candidate tiers for one (src, dst) AS pair. Each tier is
  // sorted ascending (membership checks can binary-search). The returned
  // reference is stable for the simulator's lifetime; fills are pure
  // functions of the immutable relationship graph, so first-writer-wins
  // insertion under tiers_mu_ is value-deterministic at any thread count.
  struct TierSet {
    std::vector<std::vector<AsId>> tiers;
  };
  const TierSet& tiers(AsId src, AsId dst) const BDRMAP_EXCLUDES(tiers_mu_);

  // The deterministic best AS path from `src` to `dst` using lowest-AS
  // tie-breaking — what a route collector peering with `src` records.
  // Empty when unreachable; otherwise starts with `src`, ends with `dst`.
  std::vector<AsId> as_path(AsId src, AsId dst) const;

  bool reachable(AsId src, AsId dst) const {
    return route(src, dst).cls != RouteClass::kNone;
  }

  // -- Churn hooks (serve::ServeEngine) -------------------------------------
  //
  // A long-lived daemon replays relationship churn into the simulator
  // without rebuilding the topology. The first override copies the truth
  // graph into a private store (copy-on-write); later route/tier fills read
  // the overridden store. Overrides and invalidation REQUIRE external
  // quiescence: no concurrent route()/tiers()/as_path() callers (the serve
  // engine applies churn strictly between inference epochs, and the thread
  // pool's task hand-off provides the happens-before edge).

  // Rewrites the relationship between `a` and `b` in both directions
  // (kNone removes the edge) and invalidates every cached table/tier.
  void set_relationship(AsId a, AsId b, asdata::Relationship rel_of_b_from_a)
      BDRMAP_EXCLUDES(cache_mu_, tiers_mu_);

  // Drops all memoized per-destination tables and candidate-tier sets.
  // References previously returned by tiers() become dangling.
  void invalidate_all() BDRMAP_EXCLUDES(cache_mu_, tiers_mu_);

  // The relationship graph routes are currently computed over: the truth
  // graph until the first set_relationship, the private overlay after.
  const asdata::RelationshipStore& relationships() const { return rels(); }

 private:
  static constexpr std::uint16_t kInf = 0xffff;

  struct PerDst {
    // All indexed by dense AS index. cust[x]: length of the shortest
    // customer-chain from x down to dst (x's customer cone contains dst);
    // peer[x]: via one peer edge then a customer chain; prov[x]: via one or
    // more provider edges first (valley-free "up then down").
    std::vector<std::uint16_t> cust, peer, prov;
  };

  const PerDst& table(AsId dst) const BDRMAP_EXCLUDES(cache_mu_);
  TierSet compute_tiers(AsId src, AsId dst) const;
  std::size_t index(AsId as) const { return as_index_.at(as); }
  bool is_leaker(AsId as) const { return leaker_set_.count(as) > 0; }

  // Relax-only derivations shared by the base fill and the leak overlay:
  // peer[] from cust[] across peer edges, prov[] via Dijkstra down p2c
  // edges. Both only ever lower values, so re-running after a leak
  // relaxation is safe.
  void derive_peer(PerDst& t) const;
  void derive_prov(PerDst& t) const;
  // Applies the BgpPolicy route leaks to a freshly computed table, iterated
  // to a fixed point (all relaxations strictly decrease bounded values).
  void apply_leaks(PerDst& t) const;

  // Effective relationship graph: the overlay if churn installed one, the
  // topology's truth graph otherwise. Read from fill paths only; the
  // overlay pointer is written exclusively under the quiescence contract
  // of set_relationship above.
  const asdata::RelationshipStore& rels() const {
    return rels_override_ ? *rels_override_ : net_.truth_relationships();
  }

  const topo::Internet& net_;
  BgpPolicy policy_;
  std::unique_ptr<asdata::RelationshipStore> rels_override_;
  std::unordered_set<AsId> leaker_set_;
  std::unordered_map<AsId, std::size_t> as_index_;
  std::vector<AsId> as_ids_;
  // No-op handles unless a registry was supplied at construction.
  obs::Counter table_fills_;
  obs::Counter tier_hits_;
  obs::Counter tier_fills_;
  // Lazily computed per-destination tables (most workloads touch every
  // destination exactly once, so we cache forever). Guarded by cache_mu_:
  // concurrent multi-VP runs share one simulator, and the fill is
  // value-deterministic (a pure function of the immutable truth graph),
  // so first-writer-wins insertion keeps results independent of thread
  // interleaving.
  mutable net::SharedMutex cache_mu_;
  mutable std::unordered_map<AsId, std::unique_ptr<PerDst>> cache_
      BDRMAP_GUARDED_BY(cache_mu_);
  // Candidate-tier cache keyed by packed dense (src, dst) indices. Same
  // locking and purity discipline as cache_ above; referenced entries live
  // behind unique_ptr so they survive rehashes.
  mutable net::SharedMutex tiers_mu_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<TierSet>> tiers_
      BDRMAP_GUARDED_BY(tiers_mu_);
  static const TierSet kNoTiers;
};

}  // namespace bdrmap::route
