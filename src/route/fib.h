// Router-level forwarding over the synthetic Internet.
//
// Combines AS-level BGP decisions (bgp_sim.h) with intra-AS shortest-path
// routing and hot-potato egress selection: when several border sessions can
// carry traffic toward a destination, each router exits via the session
// closest to it in IGP distance (Teixeira et al.'s hot-potato routing [42]),
// which is what makes the Figures 14-16 phenomena appear — VPs in different
// PoPs of the access network leave via different border routers.
//
// Per-prefix selective announcement (AnnouncedPrefix::only_via_links) is
// honored at sessions adjacent to the origin AS, modelling the Akamai-style
// policy of announcing certain prefixes only at specific interconnects.
//
// Fast path (DESIGN.md §9): next_hop is the system's inner loop — every
// hop of every simulated probe goes through it. Three mechanisms keep it
// cheap while staying bit-identical to the naive per-hop recomputation:
//  * RouteQuery — the destination is resolved (interface lookup, announced
//    prefix match, delivery target) once per trace, not once per hop;
//  * memoized decision caches — per-(router, dst_as, pinned) egress
//    session sets and per-(src, dst) candidate tiers (bgp_sim.h), filled
//    lazily under shared_mutex with first-writer-wins discipline (fills
//    are pure functions of the immutable topology, so results are
//    independent of thread interleaving — the MultiVpExecutor contract);
//  * dense indexing — routers and ASes are addressed by flat arrays
//    instead of hash probes on the IGP path.
// FibOptions::enable_caches turns all of it off, restoring the per-hop
// recomputation as the measured baseline for bench_hotpath and the golden
// bit-identity suite (tests/route_fastpath_test.cc).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/ids.h"
#include "netbase/sync.h"
#include "obs/metrics.h"
#include "route/bgp_sim.h"
#include "topo/internet.h"

namespace bdrmap::route {

using net::AsId;
using net::IfaceId;
using net::Ipv4Addr;
using net::RouterId;
using topo::LinkId;

// One usable interdomain attachment: a direction over an interdomain or
// IXP link from `near` (in near_as) to `far` (in far_as).
struct Session {
  LinkId link;
  RouterId near_router;
  RouterId far_router;
  IfaceId near_iface;
  IfaceId far_iface;
  AsId near_as;
  AsId far_as;
  bool via_ixp = false;
};

// Fast-path tuning. enable_caches is the master switch for the memoized
// decision caches and the resolve-once RouteQuery path; disabling it
// restores hop-by-hop recomputation (the pre-fast-path behaviour) for
// baseline measurement and bit-identity auditing.
struct FibOptions {
  bool enable_caches = true;
  // Flat per-router egress rows indexed by dense destination AS
  // (DESIGN.md §14) — the data-oriented fast path for interdomain
  // next_hop decisions. false falls back to the keyed hash-map cache on
  // every lookup (the pre-§14 cached baseline bench_scale measures
  // against). Value-identical either way.
  bool enable_flat_egress = true;
  // When set, the FIB reports cache behaviour (route.fib.* counters and
  // the egress tie-width histogram) to this registry. nullptr (default)
  // leaves every handle a no-op — the zero-overhead path the hot-path
  // bench measures.
  obs::MetricsRegistry* metrics = nullptr;
};

class Fib {
 public:
  explicit Fib(const topo::Internet& net, const BgpSimulator& bgp,
               FibOptions options = {});

  struct Hop {
    RouterId router;  // the next router the packet arrives at
    IfaceId ingress;  // the interface it arrives on
    IfaceId egress;   // the interface the current router transmits from
    LinkId link;
    bool crossed_interdomain = false;
  };

  // A destination resolved once per trace. Obtain one from query() and
  // pass it to the per-hop calls below; with caches disabled it carries
  // only the address and every call re-resolves (the measured baseline).
  class RouteQuery {
   public:
    RouteQuery() = default;
    Ipv4Addr dst() const { return dst_; }

   private:
    friend class Fib;
    struct Resolved {
      bool ok = false;
      bool is_iface_addr = false;  // dst is some router's interface address
      AsId dst_as;                 // AS-level routing target
      RouterId target;             // delivery router inside dst_as
      RouterId final_router;       // router that ultimately owns the address
      LinkId cross_link;           // link to cross from target to final_router
      IfaceId cross_egress;        // target's interface on cross_link
      const topo::AnnouncedPrefix* ap = nullptr;
      const std::vector<LinkId>* pinned = nullptr;
      // Dense index of dst_as (kNoIndex when the AS is outside the
      // construction snapshot): routes the hot walk onto the flat egress
      // rows instead of the keyed hash map.
      std::uint32_t dst_as_dense = 0xffffffffu;
    };
    Ipv4Addr dst_;
    bool pre_resolved_ = false;
    Resolved res_;
  };

  // Resolves `dst` once (when caches are enabled) for reuse across a trace.
  RouteQuery query(Ipv4Addr dst) const;

  // Where the packet at router `r` goes next on its way to `dst`.
  // nullopt means: either `r` is the delivery point for `dst` (use
  // `delivered_at` to distinguish) or there is no route.
  //
  // `flow_salt` selects among equal-cost internal paths (ECMP): real
  // routers hash the flow tuple, so Paris traceroute (constant tuple,
  // salt 0) sees one stable path while classic traceroute (varying probe
  // headers) flaps between them — the [2] artifact the paper's collection
  // avoids.
  std::optional<Hop> next_hop(RouterId r, const RouteQuery& q,
                              std::uint32_t flow_salt = 0) const;
  std::optional<Hop> next_hop(RouterId r, Ipv4Addr dst,
                              std::uint32_t flow_salt = 0) const;

  // True iff a packet for `dst` terminates at router `r`: `dst` is one of
  // r's interface addresses, or r hosts the announced prefix covering dst.
  bool delivered_at(RouterId r, const RouteQuery& q) const;
  bool delivered_at(RouterId r, Ipv4Addr dst) const;

  // True iff the query's destination is one of r's own interface addresses
  // (the firewall-exemption test the tracer and congestion model repeat).
  bool addr_owned_by(RouterId r, const RouteQuery& q) const;

  // The interface router `r` would transmit a packet to `dst` from
  // (drives the kEgressToSrc / kVirtualRouter reply-address policies).
  std::optional<IfaceId> egress_iface(RouterId r, const RouteQuery& q) const;
  std::optional<IfaceId> egress_iface(RouterId r, Ipv4Addr dst) const;

  // IGP distance between two routers of the same AS (infinity if
  // disconnected or in different ASes).
  double igp_distance(RouterId a, RouterId b) const;

  // All sessions whose near side is in `as`.
  const std::vector<Session>& sessions_of(AsId as) const;

  bool caches_enabled() const { return options_.enable_caches; }

  // -- Churn overlays (serve::ServeEngine) ----------------------------------
  //
  // Data-plane churn applied on top of the immutable topology: interdomain
  // links can be marked down (their sessions drop out of egress selection
  // and cross-link delivery) and announced prefixes can be withdrawn
  // (resolve() reports no route). Mutators REQUIRE external quiescence —
  // no concurrent forwarding calls — which the serve engine guarantees by
  // applying churn strictly between inference epochs; concurrent readers
  // of an unchanging overlay are safe (overlay_mu_). With no churn ever
  // applied the hot path pays one relaxed atomic load.

  // Marks an interdomain link down (up=false) or restores it. Invalidates
  // the egress-decision cache; references previously returned by
  // egress_entry become dangling.
  void set_link_state(LinkId link, bool up)
      BDRMAP_EXCLUDES(overlay_mu_, egress_mu_);

  // Withdraws (or re-announces) every announced prefix equal to `p`.
  void set_prefix_withdrawn(const net::Prefix& p, bool withdrawn)
      BDRMAP_EXCLUDES(overlay_mu_);

  // Drops all memoized egress decisions (e.g. after the BGP simulator's
  // relationship overlay changed candidate tiers).
  void invalidate_egress() BDRMAP_EXCLUDES(egress_mu_);

  bool link_is_down(LinkId link) const BDRMAP_EXCLUDES(overlay_mu_);

 private:
  struct AsRouting {
    std::vector<RouterId> routers;  // of this AS (== AsInfo::routers)
    // dist[i*n + j], next_iface[i*n + j]: first-hop interface from router i
    // on its shortest path to router j. alt_iface holds a second
    // equal-cost first hop where one exists (ECMP), invalid otherwise.
    // Local indices come from the Fib-wide router_local_ table.
    std::vector<double> dist;
    std::vector<IfaceId> next_iface;
    std::vector<IfaceId> alt_iface;
  };

  // Egress decision memo: the sessions of the first satisfiable preference
  // tier tied at minimal IGP distance from the router, in session order.
  // The per-destination flow rank (a pure hash) picks among them, so the
  // destination address itself need not be part of the key.
  struct EgressEntry {
    std::vector<const Session*> tied;
  };
  struct EgressKey {
    std::uint32_t router;
    std::uint32_t dst_as;
    const void* pinned;  // identity of AnnouncedPrefix::only_via_links
    bool operator==(const EgressKey&) const = default;
  };
  struct EgressKeyHash {
    std::size_t operator()(const EgressKey& k) const noexcept;
  };

  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  // Router ownership as of Fib construction. The dense tables snapshot the
  // topology when the Fib is built; reading ownership from the same
  // snapshot keeps every forwarding decision internally consistent even if
  // ground truth is mutated afterwards (the invariant checker's corruption
  // tests do exactly that — the FIB then consistently disagrees with the
  // mutated truth instead of crashing halfway between two views).
  AsId owner_of(RouterId r) const;
  RouteQuery::Resolved resolve(Ipv4Addr dst) const;
  std::optional<Hop> next_hop_resolved(RouterId r,
                                       const RouteQuery::Resolved& res,
                                       Ipv4Addr dst,
                                       std::uint32_t flow_salt) const;
  const AsRouting& routing_for(std::uint32_t as_dense) const
      BDRMAP_EXCLUDES(routing_mu_);
  // Cache-disabled egress selection: the original per-hop tier scan.
  const Session* choose_egress_uncached(
      RouterId r, AsId as, AsId dst_as, Ipv4Addr dst,
      const std::vector<LinkId>* pinned) const;
  // The shared fill: first satisfiable tier, sessions tied at minimal IGP
  // distance from r, in session order. Pure function of the immutable
  // topology (+ a quiescent churn overlay), so racing fills are identical.
  EgressEntry compute_egress_entry(RouterId r, AsId dst_as,
                                   const std::vector<LinkId>* pinned) const;
  const EgressEntry& egress_entry(RouterId r, AsId dst_as,
                                  const std::vector<LinkId>* pinned) const
      BDRMAP_EXCLUDES(egress_mu_);
  // Flat-row lookup for the unpinned common case (DESIGN.md §14): two
  // acquire-loads on the hot walk, no lock, no hashing.
  const EgressEntry* egress_entry_flat(RouterId r, std::uint32_t dst_as_dense,
                                       AsId dst_as) const
      BDRMAP_EXCLUDES(egress_mu_);
  const EgressEntry* egress_fill_flat(RouterId r, std::uint32_t dst_as_dense,
                                      AsId dst_as) const
      BDRMAP_EXCLUDES(egress_mu_);
  std::optional<Hop> internal_step(RouterId r, RouterId target, Ipv4Addr dst,
                                   std::uint32_t flow_salt) const;

  const topo::Internet& net_;
  const BgpSimulator& bgp_;
  FibOptions options_;

  // No-op handles unless FibOptions::metrics was set. Get-or-create: the
  // cached and uncached planes of one run share the same instruments.
  obs::Counter egress_hits_;
  obs::Counter egress_misses_;
  obs::Counter routing_fills_;
  obs::Histogram egress_tied_;

  // Dense layouts, built once at construction: AS ids to dense indices,
  // router id to its owner's dense AS index, router id to its position in
  // the owner's router list. The IGP hot path does array loads only.
  std::unordered_map<AsId, std::uint32_t> as_dense_;
  std::vector<std::uint32_t> router_as_dense_;
  std::vector<std::uint32_t> router_local_;

  std::vector<std::vector<Session>> sessions_;  // by dense AS index
  // Per-AS sessions grouped by far AS: turns the O(sessions × tier)
  // membership scan in the egress fill into direct lookups.
  std::vector<std::unordered_map<AsId, std::vector<std::uint32_t>>>
      sessions_by_far_;

  // Lazily computed per-AS IGP tables, guarded by routing_mu_: one Fib is
  // shared by every concurrent VP run, and the Dijkstra fill is a pure
  // function of the immutable topology, so first-writer-wins insertion is
  // value-deterministic regardless of thread interleaving.
  mutable net::SharedMutex routing_mu_;
  mutable std::vector<std::unique_ptr<AsRouting>> routing_
      BDRMAP_GUARDED_BY(routing_mu_);

  // Egress decision cache, same locking and purity discipline. Entries
  // live behind unique_ptr so references survive rehashes. Since the
  // flat rows below took over the unpinned case this map only ever holds
  // pinned (selective-announcement) decisions and snapshot-foreign ASes.
  mutable net::SharedMutex egress_mu_;
  mutable std::unordered_map<EgressKey, std::unique_ptr<EgressEntry>,
                             EgressKeyHash>
      egress_ BDRMAP_GUARDED_BY(egress_mu_);

  // Flat egress rows (DESIGN.md §14): per-router arrays of published
  // entry pointers indexed by the destination's dense AS index. Rows are
  // allocated lazily (only routers that actually make interdomain
  // decisions pay), published with release stores and read with acquire
  // loads; entries live in a deque so published pointers stay stable.
  mutable std::vector<std::atomic<std::atomic<const EgressEntry*>*>>
      egress_rows_;
  mutable std::vector<std::unique_ptr<std::atomic<const EgressEntry*>[]>>
      egress_row_storage_ BDRMAP_GUARDED_BY(egress_mu_);
  mutable std::deque<EgressEntry> egress_pool_ BDRMAP_GUARDED_BY(egress_mu_);

  // Churn overlay state (see the public churn section). overlay_active_
  // fast-gates the overlay_mu_ acquisitions out of the zero-churn hot path.
  bool prefix_withdrawn(const topo::AnnouncedPrefix* ap) const
      BDRMAP_EXCLUDES(overlay_mu_);
  std::atomic<bool> overlay_active_{false};
  mutable net::SharedMutex overlay_mu_;
  std::unordered_set<std::uint32_t> down_links_ BDRMAP_GUARDED_BY(overlay_mu_);
  std::unordered_set<const topo::AnnouncedPrefix*> withdrawn_
      BDRMAP_GUARDED_BY(overlay_mu_);

  static const std::vector<Session> kNoSessions;
};

}  // namespace bdrmap::route
