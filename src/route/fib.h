// Router-level forwarding over the synthetic Internet.
//
// Combines AS-level BGP decisions (bgp_sim.h) with intra-AS shortest-path
// routing and hot-potato egress selection: when several border sessions can
// carry traffic toward a destination, each router exits via the session
// closest to it in IGP distance (Teixeira et al.'s hot-potato routing [42]),
// which is what makes the Figures 14-16 phenomena appear — VPs in different
// PoPs of the access network leave via different border routers.
//
// Per-prefix selective announcement (AnnouncedPrefix::only_via_links) is
// honored at sessions adjacent to the origin AS, modelling the Akamai-style
// policy of announcing certain prefixes only at specific interconnects.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "netbase/ids.h"
#include "route/bgp_sim.h"
#include "topo/internet.h"

namespace bdrmap::route {

using net::AsId;
using net::IfaceId;
using net::Ipv4Addr;
using net::RouterId;
using topo::LinkId;

// One usable interdomain attachment: a direction over an interdomain or
// IXP link from `near` (in near_as) to `far` (in far_as).
struct Session {
  LinkId link;
  RouterId near_router;
  RouterId far_router;
  IfaceId near_iface;
  IfaceId far_iface;
  AsId near_as;
  AsId far_as;
  bool via_ixp = false;
};

class Fib {
 public:
  Fib(const topo::Internet& net, const BgpSimulator& bgp);

  struct Hop {
    RouterId router;  // the next router the packet arrives at
    IfaceId ingress;  // the interface it arrives on
    LinkId link;
    bool crossed_interdomain = false;
  };

  // Where the packet at router `r` goes next on its way to `dst`.
  // nullopt means: either `r` is the delivery point for `dst` (use
  // `delivered_at` to distinguish) or there is no route.
  //
  // `flow_salt` selects among equal-cost internal paths (ECMP): real
  // routers hash the flow tuple, so Paris traceroute (constant tuple,
  // salt 0) sees one stable path while classic traceroute (varying probe
  // headers) flaps between them — the [2] artifact the paper's collection
  // avoids.
  std::optional<Hop> next_hop(RouterId r, Ipv4Addr dst,
                              std::uint32_t flow_salt = 0) const;

  // True iff a packet for `dst` terminates at router `r`: `dst` is one of
  // r's interface addresses, or r hosts the announced prefix covering dst.
  bool delivered_at(RouterId r, Ipv4Addr dst) const;

  // The interface router `r` would transmit a packet to `dst` from
  // (drives the kEgressToSrc / kVirtualRouter reply-address policies).
  std::optional<IfaceId> egress_iface(RouterId r, Ipv4Addr dst) const;

  // IGP distance between two routers of the same AS (infinity if
  // disconnected or in different ASes).
  double igp_distance(RouterId a, RouterId b) const;

  // All sessions whose near side is in `as`.
  const std::vector<Session>& sessions_of(AsId as) const;

 private:
  struct AsRouting {
    std::vector<RouterId> routers;                    // of this AS
    std::unordered_map<std::uint32_t, std::size_t> router_index;
    // dist[i*n + j], next_iface[i*n + j]: first-hop interface from router i
    // on its shortest path to router j. alt_iface holds a second
    // equal-cost first hop where one exists (ECMP), invalid otherwise.
    std::vector<double> dist;
    std::vector<IfaceId> next_iface;
    std::vector<IfaceId> alt_iface;
  };

  const AsRouting& routing_for(AsId as) const;
  // Chooses the egress session for traffic from `r` (in `as`) toward the
  // destination resolved as (dst_as, pinned links if any). Ties in IGP
  // distance (parallel links at one PoP) are broken per destination, the
  // ECMP-style load sharing that makes every parallel interconnect carry
  // some traffic.
  const Session* choose_egress(RouterId r, AsId as, AsId dst_as,
                               Ipv4Addr dst,
                               const std::vector<LinkId>* pinned) const;
  std::optional<Hop> internal_step(RouterId r, RouterId target, Ipv4Addr dst,
                                   std::uint32_t flow_salt) const;

  const topo::Internet& net_;
  const BgpSimulator& bgp_;
  std::unordered_map<AsId, std::vector<Session>> sessions_;
  // Lazily computed per-AS IGP tables, guarded by routing_mu_: one Fib is
  // shared by every concurrent VP run, and the Dijkstra fill is a pure
  // function of the immutable topology, so first-writer-wins insertion is
  // value-deterministic regardless of thread interleaving.
  mutable std::shared_mutex routing_mu_;
  mutable std::unordered_map<AsId, std::unique_ptr<AsRouting>> routing_;
  static const std::vector<Session> kNoSessions;
};

}  // namespace bdrmap::route
