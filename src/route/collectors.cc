#include "route/collectors.h"

#include <algorithm>
#include <unordered_set>

namespace bdrmap::route {

namespace {
std::uint64_t link_key(net::AsId a, net::AsId b) {
  net::AsId lo = std::min(a, b), hi = std::max(a, b);
  return (std::uint64_t{lo.value} << 32) | hi.value;
}
}  // namespace

CollectorView::CollectorView(const topo::Internet& net,
                             const BgpSimulator& bgp,
                             const CollectorConfig& config) {
  net::Rng rng(config.seed);

  // Collector peers: every Tier-1, a fraction of transit and access
  // networks, and one R&E network (research networks feed collectors).
  bool picked_ren = false;
  bool first_access = true;
  for (const auto& info : net.ases()) {
    if (info.kind == topo::AsKind::kAccess && first_access) {
      first_access = false;
      if (config.exclude_featured_access) continue;
    }
    switch (info.kind) {
      case topo::AsKind::kTier1:
        peers_.push_back(info.id);
        break;
      case topo::AsKind::kTransit:
        if (rng.chance(config.transit_peer_fraction)) {
          peers_.push_back(info.id);
        }
        break;
      case topo::AsKind::kAccess:
        if (rng.chance(config.access_peer_fraction)) {
          peers_.push_back(info.id);
        }
        break;
      case topo::AsKind::kResearchEdu:
        if (!picked_ren) {
          peers_.push_back(info.id);
          picked_ren = true;
        }
        break;
      default:
        break;
    }
  }

  // Each collector peer contributes its best path to every origin AS, and
  // the origins of every announced prefix it can reach.
  std::unordered_set<net::AsId> origin_ases;
  for (const auto& ap : net.announced()) origin_ases.insert(ap.origin);
  // MOAS co-origins appear in the truth origin table as additional origins.
  for (const auto& [prefix, origin_set] : net.truth_origins().all_prefixes()) {
    for (net::AsId o : origin_set) origin_ases.insert(o);
  }

  std::unordered_set<net::AsId> reachable_origins;
  for (net::AsId cp : peers_) {
    for (net::AsId origin : origin_ases) {
      auto path = bgp.as_path(cp, origin);
      if (path.size() < 2) {
        if (path.size() == 1) reachable_origins.insert(origin);
        continue;
      }
      reachable_origins.insert(origin);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        visible_links_.insert(link_key(path[i], path[i + 1]));
      }
      paths_.push_back(std::move(path));
    }
  }

  // The public origin table: every (prefix, origin) whose origin some
  // collector reaches.
  for (const auto& [prefix, origin_set] : net.truth_origins().all_prefixes()) {
    for (net::AsId o : origin_set) {
      if (reachable_origins.count(o)) origins_.add(prefix, o);
    }
  }
}

asdata::RelationshipStore CollectorView::infer_relationships(
    asdata::RelationshipInferenceConfig config) const {
  asdata::RelationshipInferrer inferrer(config);
  for (const auto& path : paths_) inferrer.add_path(path);
  return inferrer.infer();
}

bool CollectorView::link_visible(net::AsId a, net::AsId b) const {
  return visible_links_.count(link_key(a, b)) > 0;
}

}  // namespace bdrmap::route
