// Simulated public BGP view (Route Views / RIPE RIS analogue, §5.2).
//
// A set of collector-peer ASes export their best AS path to every announced
// prefix. The union of those paths is what the public sees: origin tables
// for IP-AS mapping, and the input to relationship inference. Crucially the
// view is *incomplete* exactly the way the real one is: a peer-peer link is
// visible only when it lies on some collector peer's best path, so peerings
// of networks the collectors don't peer with (route-server peerings of
// content networks, regional peerings of access networks) stay hidden —
// the "hidden peer" phenomenon bdrmap's Table 1 quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "asdata/bgp_origins.h"
#include "asdata/relationship_inference.h"
#include "netbase/rng.h"
#include "route/bgp_sim.h"
#include "topo/internet.h"

namespace bdrmap::route {

struct CollectorConfig {
  // Fraction of transit networks that peer with the collectors.
  double transit_peer_fraction = 0.4;
  // Fraction of access networks that peer with the collectors. Real
  // eyeball networks rarely feed Route Views, which is what hides their
  // route-server peerings from the public view.
  double access_peer_fraction = 0.15;
  // The featured (first) access network — the §6 measurement target —
  // never feeds the collectors: its content peerings must be discoverable
  // only by traceroute (the Table 1 "trace" column).
  bool exclude_featured_access = true;
  std::uint64_t seed = 7;
};

class CollectorView {
 public:
  CollectorView(const topo::Internet& net, const BgpSimulator& bgp,
                const CollectorConfig& config = {});

  // Prefix -> origin table derived from the collected paths (§5.2 "Public
  // BGP data"). Unannounced infrastructure space is absent by construction.
  const asdata::OriginTable& public_origins() const { return origins_; }

  // Every AS path collected (first element: collector peer; last: origin).
  const std::vector<std::vector<net::AsId>>& paths() const { return paths_; }

  // Collector peer ASes.
  const std::vector<net::AsId>& peer_ases() const { return peers_; }

  // Runs CAIDA-style relationship inference over the collected paths.
  asdata::RelationshipStore infer_relationships(
      asdata::RelationshipInferenceConfig config = {}) const;

  // True iff the AS-level link a-b appears in any collected path.
  bool link_visible(net::AsId a, net::AsId b) const;

 private:
  std::vector<net::AsId> peers_;
  std::vector<std::vector<net::AsId>> paths_;
  asdata::OriginTable origins_;
  std::unordered_set<std::uint64_t> visible_links_;
};

}  // namespace bdrmap::route
