#include "route/bgp_sim.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "netbase/contract.h"

namespace bdrmap::route {

const BgpSimulator::TierSet BgpSimulator::kNoTiers;

BgpSimulator::BgpSimulator(const topo::Internet& net,
                           obs::MetricsRegistry* metrics)
    : BgpSimulator(net, BgpPolicy{}, metrics) {}

BgpSimulator::BgpSimulator(const topo::Internet& net, BgpPolicy policy,
                           obs::MetricsRegistry* metrics)
    : net_(net), policy_(std::move(policy)) {
  if (metrics) {
    table_fills_ = metrics->counter("route.bgp.table_fills");
    tier_hits_ = metrics->counter("route.bgp.tier_cache_hits");
    tier_fills_ = metrics->counter("route.bgp.tier_cache_fills");
  }
  leaker_set_.insert(policy_.leakers.begin(), policy_.leakers.end());
  for (const auto& info : net.ases()) {
    as_index_.emplace(info.id, as_ids_.size());
    as_ids_.push_back(info.id);
  }
}

const BgpSimulator::PerDst& BgpSimulator::table(AsId dst) const {
  {
    net::SharedLock lk(cache_mu_);
    auto it = cache_.find(dst);
    if (it != cache_.end()) return *it->second;
  }
  table_fills_.inc();

  const auto& rels = this->rels();
  auto t = std::make_unique<PerDst>();
  const std::size_t n = as_ids_.size();
  t->cust.assign(n, kInf);
  t->peer.assign(n, kInf);
  t->prov.assign(n, kInf);

  // 1. Customer-cone distances: BFS from dst upward along customer->provider
  //    edges. cust[x] = hops of the p2c chain from x down to dst.
  std::deque<AsId> queue;
  t->cust[index(dst)] = 0;
  queue.push_back(dst);
  while (!queue.empty()) {
    AsId cur = queue.front();
    queue.pop_front();
    std::uint16_t d = t->cust[index(cur)];
    for (AsId provider : rels.providers(cur)) {
      auto& slot = t->cust[index(provider)];
      if (slot == kInf) {
        slot = static_cast<std::uint16_t>(d + 1);
        queue.push_back(provider);
      }
    }
  }

  // 2. Peer routes: one peer edge into a customer cone.
  derive_peer(*t);

  // 3. Provider routes: propagate down provider->customer edges; a provider
  //    exports its best route (of any class) to customers.
  derive_prov(*t);

  // 4. Adversarial export overrides (route leaks).
  if (policy_.has_leaks()) apply_leaks(*t);

  BDRMAP_ENSURES(t->cust[index(dst)] == 0,
                 "destination must sit at distance zero in its own cone");
  // The computation above is pure, so two threads racing to fill the same
  // destination produced identical tables: first writer wins, the loser's
  // copy is discarded. References stay valid across rehashes because the
  // table lives behind a unique_ptr.
  net::MutexLock lk(cache_mu_);
  auto it = cache_.emplace(dst, std::move(t)).first;
  return *it->second;
}

void BgpSimulator::derive_peer(PerDst& t) const {
  const auto& rels = this->rels();
  const std::size_t n = as_ids_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (AsId p : rels.peers(as_ids_[i])) {
      std::uint16_t via = t.cust[index(p)];
      if (via != kInf && via + 1 < t.peer[i]) {
        t.peer[i] = static_cast<std::uint16_t>(via + 1);
      }
    }
  }
}

void BgpSimulator::derive_prov(PerDst& t) const {
  // Dijkstra with unit weights over base values; relax-only, so it can be
  // re-run after leak relaxations lowered cust/peer entries.
  const auto& rels = this->rels();
  const std::size_t n = as_ids_.size();
  using Entry = std::pair<std::uint16_t, std::uint32_t>;  // (dist, index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  auto base = [&](std::size_t i) {
    return std::min(t.cust[i], t.peer[i]);
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (base(i) != kInf) {
      pq.emplace(base(i), static_cast<std::uint32_t>(i));
    }
  }
  while (!pq.empty()) {
    auto [d, i] = pq.top();
    pq.pop();
    std::uint16_t best_i = std::min(base(i), t.prov[i]);
    if (d > best_i) continue;  // stale entry
    for (AsId customer : rels.customers(as_ids_[i])) {
      std::size_t c = index(customer);
      std::uint16_t nd = static_cast<std::uint16_t>(d + 1);
      if (nd < t.prov[c] && nd < base(c)) {
        t.prov[c] = nd;
        pq.emplace(nd, static_cast<std::uint32_t>(c));
      }
    }
  }
}

void BgpSimulator::apply_leaks(PerDst& t) const {
  const auto& rels = this->rels();
  auto min3 = [&](std::size_t i) {
    return std::min({t.cust[i], t.peer[i], t.prov[i]});
  };
  // Iterate to a fixed point: one leaker's leaked route can shorten another
  // leaker's best route. Every relaxation strictly decreases a bounded
  // value, so the loop terminates; the computation is a pure function of
  // (graph, policy), preserving the cache's value-determinism.
  bool changed = true;
  while (changed) {
    changed = false;
    std::deque<std::size_t> up;  // cone re-propagation frontier
    for (AsId leaker : policy_.leakers) {
      auto it = as_index_.find(leaker);
      if (it == as_index_.end()) continue;
      const std::size_t li = it->second;
      const std::uint16_t d = min3(li);
      if (d >= kInf) continue;
      const std::uint16_t nd = static_cast<std::uint16_t>(d + 1);
      // Providers accept the leak as a customer route, peers as a peer
      // route — unless their own best route is already at least as short
      // (loop detection rejects the circular announcement).
      for (AsId p : rels.providers(leaker)) {
        const std::size_t pi = index(p);
        if (nd < min3(pi) && nd < t.cust[pi]) {
          t.cust[pi] = nd;
          up.push_back(pi);
          changed = true;
        }
      }
      for (AsId q : rels.peers(leaker)) {
        const std::size_t qi = index(q);
        if (nd < min3(qi) && nd < t.peer[qi]) {
          t.peer[qi] = nd;
          changed = true;
        }
      }
    }
    // A leaked customer route propagates up the cone like a real one, with
    // the same loop-detection guard.
    while (!up.empty()) {
      const std::size_t ci = up.front();
      up.pop_front();
      const std::uint16_t nd = static_cast<std::uint16_t>(t.cust[ci] + 1);
      for (AsId p : rels.providers(as_ids_[ci])) {
        const std::size_t pi = index(p);
        if (nd < min3(pi) && nd < t.cust[pi]) {
          t.cust[pi] = nd;
          up.push_back(pi);
        }
      }
    }
    if (!changed) break;
    // Re-derive peer and provider routes from the relaxed customer table.
    derive_peer(t);
    derive_prov(t);
  }
}

void BgpSimulator::set_relationship(AsId a, AsId b,
                                    asdata::Relationship rel_of_b_from_a) {
  if (!rels_override_) {
    rels_override_ = std::make_unique<asdata::RelationshipStore>(
        net_.truth_relationships());
  }
  rels_override_->set_rel(a, b, rel_of_b_from_a);
  invalidate_all();
}

void BgpSimulator::invalidate_all() {
  {
    net::MutexLock lk(cache_mu_);
    cache_.clear();
  }
  net::MutexLock lk(tiers_mu_);
  tiers_.clear();
}

RouteInfo BgpSimulator::route(AsId src, AsId dst) const {
  if (!as_index_.count(src) || !as_index_.count(dst)) return {};
  if (src == dst) return {RouteClass::kSelf, 0};
  const PerDst& t = table(dst);
  std::size_t i = index(src);
  if (t.cust[i] != kInf) return {RouteClass::kCustomer, t.cust[i]};
  if (t.peer[i] != kInf) return {RouteClass::kPeer, t.peer[i]};
  if (t.prov[i] != kInf) return {RouteClass::kProvider, t.prov[i]};
  return {};
}

std::vector<std::vector<AsId>> BgpSimulator::candidate_tiers(AsId src,
                                                             AsId dst) const {
  return compute_tiers(src, dst).tiers;
}

const BgpSimulator::TierSet& BgpSimulator::tiers(AsId src, AsId dst) const {
  if (!as_index_.count(src) || !as_index_.count(dst)) return kNoTiers;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(index(src)) << 32) |
      static_cast<std::uint64_t>(index(dst));
  {
    net::SharedLock lk(tiers_mu_);
    auto it = tiers_.find(key);
    if (it != tiers_.end()) {
      tier_hits_.inc();
      return *it->second;
    }
  }
  tier_fills_.inc();
  auto t = std::make_unique<TierSet>(compute_tiers(src, dst));
  net::MutexLock lk(tiers_mu_);
  auto it = tiers_.emplace(key, std::move(t)).first;
  return *it->second;
}

BgpSimulator::TierSet BgpSimulator::compute_tiers(AsId src, AsId dst) const {
  TierSet set;
  auto& tiers = set.tiers;
  if (!as_index_.count(src) || !as_index_.count(dst) || src == dst) {
    return set;
  }
  const auto& rels = this->rels();
  const PerDst& t = table(dst);
  std::size_t i = index(src);
  // The distance a neighbor advertises toward us: its customer-cone
  // distance normally, or — when it leaks — its best route of any class.
  auto advertised = [&](AsId n) {
    std::size_t ni = index(n);
    std::uint16_t via = t.cust[ni];
    if (is_leaker(n)) {
      via = std::min({via, t.peer[ni], t.prov[ni]});
    }
    return via;
  };

  if (t.cust[i] != kInf) {
    std::vector<AsId> tier;
    for (AsId c : rels.customers(src)) {
      std::uint16_t via = advertised(c);
      if (via != kInf && via + 1 == t.cust[i]) tier.push_back(c);
    }
    std::sort(tier.begin(), tier.end());
    if (!tier.empty()) tiers.push_back(std::move(tier));
  }
  if (t.peer[i] != kInf) {
    std::vector<AsId> tier;
    for (AsId p : rels.peers(src)) {
      std::uint16_t via = advertised(p);
      if (via != kInf && via + 1 == t.peer[i]) tier.push_back(p);
    }
    std::sort(tier.begin(), tier.end());
    if (!tier.empty()) tiers.push_back(std::move(tier));
  }
  if (t.prov[i] != kInf || t.cust[i] != kInf || t.peer[i] != kInf) {
    // Provider fallback tier: providers that have any route, best first.
    std::vector<AsId> tier;
    std::uint16_t best = kInf;
    for (AsId y : rels.providers(src)) {
      std::size_t yi = index(y);
      std::uint16_t via =
          std::min({t.cust[yi], t.peer[yi], t.prov[yi]});
      if (via != kInf) best = std::min<std::uint16_t>(best, via);
    }
    for (AsId y : rels.providers(src)) {
      std::size_t yi = index(y);
      std::uint16_t via =
          std::min({t.cust[yi], t.peer[yi], t.prov[yi]});
      if (via == best && via != kInf) tier.push_back(y);
    }
    std::sort(tier.begin(), tier.end());
    if (!tier.empty()) tiers.push_back(std::move(tier));
  }
  return set;
}

std::vector<AsId> BgpSimulator::as_path(AsId src, AsId dst) const {
  std::vector<AsId> path;
  if (!as_index_.count(src) || !as_index_.count(dst)) return path;
  path.push_back(src);
  if (src == dst) return path;
  const auto& rels = this->rels();
  const PerDst& t = table(dst);

  auto min3 = [&](std::size_t i) {
    return std::min({t.cust[i], t.peer[i], t.prov[i]});
  };
  AsId cur = src;
  bool downhill = false;  // after crossing a peer or p2c edge, only descend
  // Leaked routes can revisit an AS in pathological policies; treat a
  // revisit as BGP loop detection dropping the path.
  std::unordered_set<std::uint32_t> seen;
  seen.insert(cur.value);
  for (int guard = 0; guard < 48 && cur != dst; ++guard) {
    AsId next;
    if (downhill && is_leaker(cur) && min3(index(cur)) < t.cust[index(cur)]) {
      // A leaked announcement brought the path here: the leaker forwards
      // along its own best (possibly uphill) route — the valley.
      downhill = false;
      continue;
    }
    if (downhill) {
      // Follow the customer chain toward dst, lowest-AS tie break. A
      // leaking customer advertises its best route of any class.
      std::uint16_t want = static_cast<std::uint16_t>(t.cust[index(cur)] - 1);
      bool found = false;
      for (AsId c : rels.customers(cur)) {
        std::uint16_t via = t.cust[index(c)];
        if (is_leaker(c)) via = std::min(via, min3(index(c)));
        if (via == want && (!found || c < next)) {
          next = c;
          found = true;
        }
      }
      if (!found && rels.rel(cur, dst) != asdata::Relationship::kNone &&
          want == 0) {
        next = dst;
        found = true;
      }
      if (!found) return {};
    } else {
      const auto& cand = tiers(cur, dst).tiers;
      if (cand.empty()) return {};
      next = cand.front().front();
      // Crossing into a peer or customer flips us to descend-only mode.
      auto rel = rels.rel(cur, next);
      if (rel != asdata::Relationship::kProvider) downhill = true;
    }
    if (!seen.insert(next.value).second) return {};
    path.push_back(next);
    cur = next;
  }
  if (cur != dst) return {};
  BDRMAP_ENSURES(path.front() == src && path.back() == dst,
                 "as_path endpoints must match the query");
  return path;
}

}  // namespace bdrmap::route
