// Time-series latency probing (TSLP) over inferred interdomain links.
//
// Implements the measurement the border map exists to enable [24]: for
// each inferred link, probe the near side (the VP network's border) and
// the far side (the neighbor router) across the day. A congested link
// shows a diurnal *far-minus-near* RTT elevation — queueing on the
// interdomain link itself — while elevated RTT on both sides implicates
// something closer to the VP. The detector applies a level-shift test.
#pragma once

#include <optional>
#include <vector>

#include "congestion/model.h"
#include "core/bdrmap.h"

namespace bdrmap::congestion {

struct TslpConfig {
  double interval_hours = 0.25;  // probe every 15 minutes
  double duration_hours = 24.0;  // one diurnal cycle
  // Level-shift detection: minimum sustained far-minus-near elevation.
  double elevation_threshold_ms = 8.0;
  int min_consecutive_samples = 4;
};

// One probed link: addresses chosen from the inference, with ground-truth
// link identity (for scoring only).
struct TslpTarget {
  net::Ipv4Addr near_addr;
  net::Ipv4Addr far_addr;
  topo::LinkId truth_link;  // eval-only annotation
  net::AsId neighbor_as;
};

struct TslpSeries {
  TslpTarget target;
  std::vector<double> hours;
  std::vector<std::optional<double>> near_rtt_ms;
  std::vector<std::optional<double>> far_rtt_ms;
  bool congested = false;       // detector verdict
  double max_elevation_ms = 0;  // peak sustained far-minus-near delta
};

// Builds probe targets from a bdrmap result: for every inferred link with
// both sides observed, the near-side router's address and the far-side
// router's address (preferring the far router's address on the shared
// interconnect subnet). Truth link ids come from eval resolution and are
// only used for scoring.
std::vector<TslpTarget> make_targets(const core::BdrmapResult& result,
                                     const topo::Internet& net);

// Runs the probing and the level-shift detector.
std::vector<TslpSeries> run_tslp(const std::vector<TslpTarget>& targets,
                                 CongestionModel& model, const topo::Vp& vp,
                                 TslpConfig config = {});

// Precision/recall of the verdicts against the model's truth.
struct TslpScore {
  std::size_t targets = 0;
  std::size_t truth_congested = 0;
  std::size_t detected = 0;
  std::size_t true_positive = 0;

  double precision() const {
    return detected == 0 ? 0.0
                         : static_cast<double>(true_positive) /
                               static_cast<double>(detected);
  }
  double recall() const {
    return truth_congested == 0
               ? 0.0
               : static_cast<double>(true_positive) /
                     static_cast<double>(truth_congested);
  }
};

TslpScore score_tslp(const std::vector<TslpSeries>& series,
                     const CongestionModel& model);

}  // namespace bdrmap::congestion
