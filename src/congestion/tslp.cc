#include "congestion/tslp.h"

#include <algorithm>

namespace bdrmap::congestion {

std::vector<TslpTarget> make_targets(const core::BdrmapResult& result,
                                     const topo::Internet& net) {
  std::vector<TslpTarget> targets;
  const auto& routers = result.graph.routers();
  for (const auto& link : result.links) {
    if (link.vp_router == core::InferredLink::kNoRouter ||
        link.neighbor_router == core::InferredLink::kNoRouter) {
      continue;
    }
    const auto& near = routers[link.vp_router];
    const auto& far = routers[link.neighbor_router];
    if (near.addrs.empty() || far.addrs.empty()) continue;

    TslpTarget t;
    t.near_addr = near.addrs.front();
    t.neighbor_as = link.neighbor_as;
    // Prefer a far-side address whose point-to-point subnet mate sits on
    // the near router: probes to it are guaranteed to cross exactly this
    // interconnect. A far address supplied by the neighbor can otherwise
    // be routed over a parallel link, corrupting the time series — the
    // kind of artifact [24] wrestles with.
    t.far_addr = far.addrs.front();
    bool mated = false;
    for (net::Ipv4Addr a : far.addrs) {
      auto iface = net.iface_at(a);
      if (!iface) continue;
      const auto& l = net.link(net.iface(*iface).link);
      if (l.kind == topo::LinkKind::kInternal) continue;
      auto on_near = [&](net::Ipv4Addr m) {
        return std::find(near.addrs.begin(), near.addrs.end(), m) !=
               near.addrs.end();
      };
      bool mate_on_near = on_near(net::mate31(a));
      if (auto m30 = net::mate30(a)) mate_on_near |= on_near(*m30);
      if (mate_on_near || !mated) {
        t.far_addr = a;
        t.truth_link = l.id;
      }
      if (mate_on_near) {
        mated = true;
        break;
      }
    }
    targets.push_back(t);
  }
  return targets;
}

std::vector<TslpSeries> run_tslp(const std::vector<TslpTarget>& targets,
                                 CongestionModel& model, const topo::Vp& vp,
                                 TslpConfig config) {
  std::vector<TslpSeries> out;
  out.reserve(targets.size());
  for (const auto& target : targets) {
    TslpSeries series;
    series.target = target;
    for (double h = 0.0; h < config.duration_hours;
         h += config.interval_hours) {
      double hour = std::fmod(h, 24.0);
      series.hours.push_back(hour);
      series.near_rtt_ms.push_back(model.rtt_ms(vp, target.near_addr, hour));
      series.far_rtt_ms.push_back(model.rtt_ms(vp, target.far_addr, hour));
    }

    // Baseline far-minus-near: the minimum observed delta (off-peak).
    double baseline = 1e18;
    std::vector<std::optional<double>> delta(series.hours.size());
    for (std::size_t i = 0; i < series.hours.size(); ++i) {
      if (series.near_rtt_ms[i] && series.far_rtt_ms[i]) {
        double d = *series.far_rtt_ms[i] - *series.near_rtt_ms[i];
        delta[i] = d;
        baseline = std::min(baseline, d);
      }
    }
    if (baseline > 1e17) {
      out.push_back(std::move(series));
      continue;  // never got a paired sample
    }

    // Level shift: enough consecutive samples elevated above baseline.
    int streak = 0;
    for (std::size_t i = 0; i < delta.size(); ++i) {
      if (!delta[i]) {
        streak = 0;
        continue;
      }
      double elevation = *delta[i] - baseline;
      if (elevation >= config.elevation_threshold_ms) {
        ++streak;
        if (streak >= config.min_consecutive_samples) {
          series.congested = true;
          series.max_elevation_ms =
              std::max(series.max_elevation_ms, elevation);
        }
      } else {
        streak = 0;
      }
    }
    out.push_back(std::move(series));
  }
  return out;
}

TslpScore score_tslp(const std::vector<TslpSeries>& series,
                     const CongestionModel& model) {
  TslpScore score;
  for (const auto& s : series) {
    ++score.targets;
    bool truth = s.target.truth_link.valid() &&
                 model.link_congested(s.target.truth_link);
    score.truth_congested += truth;
    score.detected += s.congested;
    score.true_positive += truth && s.congested;
  }
  return score;
}

}  // namespace bdrmap::congestion
