// Interdomain congestion model (the §2 motivation).
//
// The paper's raison d'être is the CAIDA/MIT congestion project: find the
// interdomain links, then probe them for evidence of persistent congestion
// (time-series latency probing to the near and far side of each link,
// Luckie et al. [24]). This module supplies the phenomenon: a diurnal
// utilization profile per interdomain link, a configurable fraction of
// links whose peak demand exceeds capacity (growing queues), and a latency
// oracle that answers timed RTT probes along forwarding paths.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/rng.h"
#include "route/fib.h"
#include "topo/generator.h"
#include "topo/internet.h"

namespace bdrmap::congestion {

struct CongestionConfig {
  std::uint64_t seed = 1;
  double congested_fraction = 0.15;  // interdomain links in peak overload
  double peak_hour = 20.0;           // local peak (traffic engineering time)
  double peak_width_hours = 4.0;     // congestion episode half-width
  double max_queue_ms = 40.0;        // queueing delay at full overload
  double base_hop_ms = 0.25;         // propagation/processing per hop
  double noise_ms = 0.4;             // measurement noise amplitude
};

class CongestionModel {
 public:
  CongestionModel(const topo::Internet& net, const route::Fib& fib,
                  CongestionConfig config = {});

  // Ground truth: is this interdomain link congested during peak hours?
  bool link_congested(topo::LinkId link) const {
    return congested_.count(link.value) > 0;
  }
  std::vector<topo::LinkId> congested_links() const;

  // Queueing delay (ms) this link adds at time-of-day `hour` in [0, 24).
  double queue_delay_ms(topo::LinkId link, double hour) const;

  // RTT (ms) of a probe from `vp` to `addr` launched at time-of-day
  // `hour`; nullopt when the address is unreachable. Walks the forwarding
  // path, accumulating per-hop base delay and the congested-link queues
  // crossed, doubled for the return (symmetric approximation), plus noise.
  std::optional<double> rtt_ms(const topo::Vp& vp, net::Ipv4Addr addr,
                               double hour);

 private:
  const topo::Internet& net_;
  const route::Fib& fib_;
  CongestionConfig config_;
  net::Rng rng_;
  std::unordered_set<std::uint32_t> congested_;
};

}  // namespace bdrmap::congestion
