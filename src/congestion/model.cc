#include "congestion/model.h"

#include <cmath>

namespace bdrmap::congestion {

CongestionModel::CongestionModel(const topo::Internet& net,
                                 const route::Fib& fib,
                                 CongestionConfig config)
    : net_(net), fib_(fib), config_(config), rng_(config.seed) {
  for (const auto& info : net.interdomain_links()) {
    if (rng_.chance(config_.congested_fraction)) {
      congested_.insert(info.link.value);
    }
  }
}

std::vector<topo::LinkId> CongestionModel::congested_links() const {
  std::vector<topo::LinkId> out;
  out.reserve(congested_.size());
  for (std::uint32_t v : congested_) out.push_back(topo::LinkId(v));
  std::sort(out.begin(), out.end());
  return out;
}

double CongestionModel::queue_delay_ms(topo::LinkId link, double hour) const {
  if (!congested_.count(link.value)) return 0.0;
  // Distance from the peak, wrapped on the 24h clock.
  double d = std::fabs(hour - config_.peak_hour);
  d = std::min(d, 24.0 - d);
  if (d >= config_.peak_width_hours) return 0.0;
  // Queue builds smoothly toward the peak (raised-cosine shoulder).
  double x = d / config_.peak_width_hours;
  return config_.max_queue_ms * 0.5 * (1.0 + std::cos(x * 3.14159265358979));
}

std::optional<double> CongestionModel::rtt_ms(const topo::Vp& vp,
                                              net::Ipv4Addr addr,
                                              double hour) {
  // Forward-path walk (same rules as the tracer's reachability check);
  // the destination is resolved once for the whole walk.
  const route::Fib::RouteQuery q = fib_.query(addr);
  net::RouterId cur = vp.attach_router;
  double one_way = 0.0;
  bool entered_interdomain = false;
  for (int i = 0; i < 64; ++i) {
    if (fib_.delivered_at(cur, q)) {
      double noise = rng_.uniform_real(0.0, config_.noise_ms);
      return 2.0 * one_way + noise;
    }
    if (entered_interdomain &&
        net_.router(cur).behavior.firewall_edge) {
      if (!fib_.addr_owned_by(cur, q)) return std::nullopt;
    }
    auto hop = fib_.next_hop(cur, q);
    if (!hop) return std::nullopt;
    one_way += config_.base_hop_ms;
    if (hop->crossed_interdomain) {
      one_way += queue_delay_ms(hop->link, hour);
      entered_interdomain = true;
    }
    cur = hop->router;
  }
  return std::nullopt;
}

}  // namespace bdrmap::congestion
