#include "remote/protocol.h"

namespace bdrmap::remote {

std::vector<std::uint8_t> encode_trace_req(net::Ipv4Addr dst) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceReq));
  w.addr(dst);
  return w.take();
}

std::vector<std::uint8_t> encode_trace_resp(const probe::TraceResult& t) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceResp));
  w.addr(t.dst);
  w.u8(t.reached_dst ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(t.hops.size()));
  for (const auto& hop : t.hops) {
    w.addr(hop.addr);
    w.u8(static_cast<std::uint8_t>(hop.kind));
  }
  return w.take();
}

probe::TraceResult decode_trace_resp(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  if (r.u8() != static_cast<std::uint8_t>(MsgType::kTraceResp)) {
    throw std::runtime_error("unexpected message type");
  }
  probe::TraceResult t;
  t.dst = r.addr();
  t.reached_dst = r.u8() != 0;
  std::uint16_t count = r.u16();
  t.hops.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    probe::TraceHop hop;
    hop.addr = r.addr();
    hop.kind = static_cast<probe::ReplyKind>(r.u8());
    t.hops.push_back(hop);
  }
  return t;
}

std::vector<std::uint8_t> encode_udp_req(net::Ipv4Addr a) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kUdpReq));
  w.addr(a);
  return w.take();
}

std::vector<std::uint8_t> encode_udp_resp(std::optional<net::Ipv4Addr> src) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kUdpResp));
  w.u8(src ? 1 : 0);
  w.addr(src.value_or(net::Ipv4Addr{}));
  return w.take();
}

std::optional<net::Ipv4Addr> decode_udp_resp(
    const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  if (r.u8() != static_cast<std::uint8_t>(MsgType::kUdpResp)) {
    throw std::runtime_error("unexpected message type");
  }
  bool has = r.u8() != 0;
  net::Ipv4Addr a = r.addr();
  if (!has) return std::nullopt;
  return a;
}

std::vector<std::uint8_t> encode_ipid_req(net::Ipv4Addr a, double t) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kIpidReq));
  w.addr(a);
  w.f64(t);
  return w.take();
}

std::vector<std::uint8_t> encode_ipid_resp(std::optional<std::uint16_t> id) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kIpidResp));
  w.u8(id ? 1 : 0);
  w.u16(id.value_or(0));
  return w.take();
}

std::optional<std::uint16_t> decode_ipid_resp(
    const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  if (r.u8() != static_cast<std::uint8_t>(MsgType::kIpidResp)) {
    throw std::runtime_error("unexpected message type");
  }
  bool has = r.u8() != 0;
  std::uint16_t id = r.u16();
  if (!has) return std::nullopt;
  return id;
}

std::vector<std::uint8_t> encode_ts_req(net::Ipv4Addr path_dst,
                                        net::Ipv4Addr candidate) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTsReq));
  w.addr(path_dst);
  w.addr(candidate);
  return w.take();
}

std::vector<std::uint8_t> encode_ts_resp(std::optional<bool> stamped) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTsResp));
  w.u8(stamped ? 1 : 0);
  w.u8(stamped.value_or(false) ? 1 : 0);
  return w.take();
}

std::optional<bool> decode_ts_resp(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  if (r.u8() != static_cast<std::uint8_t>(MsgType::kTsResp)) {
    throw std::runtime_error("unexpected message type");
  }
  bool has = r.u8() != 0;
  bool stamped = r.u8() != 0;
  if (!has) return std::nullopt;
  return stamped;
}

}  // namespace bdrmap::remote
