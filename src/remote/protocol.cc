#include "remote/protocol.h"

#include <array>

namespace bdrmap::remote {

const char* proto_err_name(ProtoErr e) {
  switch (e) {
    case ProtoErr::kTruncated:
      return "truncated message";
    case ProtoErr::kBadMagic:
      return "bad frame magic";
    case ProtoErr::kBadCrc:
      return "frame checksum mismatch";
    case ProtoErr::kBadType:
      return "unexpected message type";
    case ProtoErr::kUnknownType:
      return "unknown message type";
    case ProtoErr::kTrailingBytes:
      return "trailing bytes after message";
  }
  return "protocol error";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

MsgType Frame::type() const {
  if (payload.empty()) throw ProtocolError(ProtoErr::kTruncated);
  std::uint8_t t = payload.front();
  if (t < static_cast<std::uint8_t>(MsgType::kTraceReq) ||
      t > static_cast<std::uint8_t>(MsgType::kError)) {
    throw ProtocolError(ProtoErr::kUnknownType);
  }
  return static_cast<MsgType>(t);
}

std::vector<std::uint8_t> seal_frame(std::uint32_t session, std::uint32_t seq,
                                     const std::vector<std::uint8_t>& payload) {
  Writer w;
  w.u8(kFrameMagic);
  w.u32(session);
  w.u32(seq);
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  std::uint32_t crc = crc32(out.data(), out.size());
  Writer tail;
  tail.u32(crc);
  auto tail_bytes = tail.take();
  out.insert(out.end(), tail_bytes.begin(), tail_bytes.end());
  return out;
}

Frame open_frame(const std::vector<std::uint8_t>& wire) {
  if (wire.size() < kFrameOverhead) throw ProtocolError(ProtoErr::kTruncated);
  if (wire.front() != kFrameMagic) throw ProtocolError(ProtoErr::kBadMagic);
  std::size_t body = wire.size() - 4;
  std::uint32_t want = (static_cast<std::uint32_t>(wire[body]) << 24) |
                       (static_cast<std::uint32_t>(wire[body + 1]) << 16) |
                       (static_cast<std::uint32_t>(wire[body + 2]) << 8) |
                       static_cast<std::uint32_t>(wire[body + 3]);
  if (crc32(wire.data(), body) != want) {
    throw ProtocolError(ProtoErr::kBadCrc);
  }
  Frame f;
  f.session = (static_cast<std::uint32_t>(wire[1]) << 24) |
              (static_cast<std::uint32_t>(wire[2]) << 16) |
              (static_cast<std::uint32_t>(wire[3]) << 8) |
              static_cast<std::uint32_t>(wire[4]);
  f.seq = (static_cast<std::uint32_t>(wire[5]) << 24) |
          (static_cast<std::uint32_t>(wire[6]) << 16) |
          (static_cast<std::uint32_t>(wire[7]) << 8) |
          static_cast<std::uint32_t>(wire[8]);
  f.payload.assign(wire.begin() + 9, wire.begin() + body);
  return f;
}

namespace {

void expect_type(Reader& r, MsgType want) {
  if (r.u8() != static_cast<std::uint8_t>(want)) {
    throw ProtocolError(ProtoErr::kBadType);
  }
}

}  // namespace

std::vector<std::uint8_t> encode_trace_req(net::Ipv4Addr dst) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceReq));
  w.addr(dst);
  return w.take();
}

net::Ipv4Addr decode_trace_req(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  expect_type(r, MsgType::kTraceReq);
  net::Ipv4Addr dst = r.addr();
  r.expect_done();
  return dst;
}

std::vector<std::uint8_t> encode_trace_resp(const probe::TraceResult& t) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceResp));
  w.addr(t.dst);
  w.u8(t.reached_dst ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(t.hops.size()));
  for (const auto& hop : t.hops) {
    w.addr(hop.addr);
    w.u8(static_cast<std::uint8_t>(hop.kind));
  }
  return w.take();
}

probe::TraceResult decode_trace_resp(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  expect_type(r, MsgType::kTraceResp);
  probe::TraceResult t;
  t.dst = r.addr();
  t.reached_dst = r.u8() != 0;
  std::uint16_t count = r.u16();
  t.hops.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    probe::TraceHop hop;
    hop.addr = r.addr();
    hop.kind = static_cast<probe::ReplyKind>(r.u8());
    t.hops.push_back(hop);
  }
  r.expect_done();
  return t;
}

std::vector<std::uint8_t> encode_udp_req(net::Ipv4Addr a) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kUdpReq));
  w.addr(a);
  return w.take();
}

std::vector<std::uint8_t> encode_udp_resp(std::optional<net::Ipv4Addr> src) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kUdpResp));
  w.u8(src ? 1 : 0);
  w.addr(src.value_or(net::Ipv4Addr{}));
  return w.take();
}

std::optional<net::Ipv4Addr> decode_udp_resp(
    const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  expect_type(r, MsgType::kUdpResp);
  bool has = r.u8() != 0;
  net::Ipv4Addr a = r.addr();
  r.expect_done();
  if (!has) return std::nullopt;
  return a;
}

std::vector<std::uint8_t> encode_ipid_req(net::Ipv4Addr a, double t) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kIpidReq));
  w.addr(a);
  w.f64(t);
  return w.take();
}

std::vector<std::uint8_t> encode_ipid_resp(std::optional<std::uint16_t> id) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kIpidResp));
  w.u8(id ? 1 : 0);
  w.u16(id.value_or(0));
  return w.take();
}

std::optional<std::uint16_t> decode_ipid_resp(
    const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  expect_type(r, MsgType::kIpidResp);
  bool has = r.u8() != 0;
  std::uint16_t id = r.u16();
  r.expect_done();
  if (!has) return std::nullopt;
  return id;
}

std::vector<std::uint8_t> encode_ts_req(net::Ipv4Addr path_dst,
                                        net::Ipv4Addr candidate) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTsReq));
  w.addr(path_dst);
  w.addr(candidate);
  return w.take();
}

std::vector<std::uint8_t> encode_ts_resp(std::optional<bool> stamped) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTsResp));
  w.u8(stamped ? 1 : 0);
  w.u8(stamped.value_or(false) ? 1 : 0);
  return w.take();
}

std::optional<bool> decode_ts_resp(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  expect_type(r, MsgType::kTsResp);
  bool has = r.u8() != 0;
  bool stamped = r.u8() != 0;
  r.expect_done();
  if (!has) return std::nullopt;
  return stamped;
}

std::vector<std::uint8_t> encode_hello_req() {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kHelloReq));
  return w.take();
}

std::vector<std::uint8_t> encode_hello_resp(std::uint32_t session) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kHelloResp));
  w.u32(session);
  return w.take();
}

std::uint32_t decode_hello_resp(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  expect_type(r, MsgType::kHelloResp);
  std::uint32_t session = r.u32();
  r.expect_done();
  return session;
}

std::vector<std::uint8_t> encode_error(ErrCode code) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kError));
  w.u8(static_cast<std::uint8_t>(code));
  return w.take();
}

ErrCode decode_error(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  expect_type(r, MsgType::kError);
  std::uint8_t code = r.u8();
  r.expect_done();
  if (code < static_cast<std::uint8_t>(ErrCode::kMalformedRequest) ||
      code > static_cast<std::uint8_t>(ErrCode::kStaleSeq)) {
    throw ProtocolError(ProtoErr::kUnknownType);
  }
  return static_cast<ErrCode>(code);
}

}  // namespace bdrmap::remote
