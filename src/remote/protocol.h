// Wire protocol between the low-resource prober and the central controller
// (§5.8 "Supporting resource-limited devices").
//
// The paper's deployment runs scamper on 400MHz/32MB devices and keeps all
// bdrmap state (origin tables, stop sets, alias candidates) on a central
// system; the device only executes individual measurement commands. The
// protocol here is a compact length-prefixed binary encoding so the bench
// can report bytes-on-the-wire and peak device state.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "netbase/ipv4.h"
#include "probe/types.h"

namespace bdrmap::remote {

enum class MsgType : std::uint8_t {
  kTraceReq = 1,
  kTraceResp = 2,
  kUdpReq = 3,
  kUdpResp = 4,
  kIpidReq = 5,
  kIpidResp = 6,
  kTsReq = 7,
  kTsResp = 8,
};

// Append-only byte writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u32(static_cast<std::uint32_t>(bits >> 32));
    u32(static_cast<std::uint32_t>(bits));
  }
  void addr(net::Ipv4Addr a) { u32(a.value()); }

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Sequential byte reader; throws on truncation (malformed peer).
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    if (pos_ >= buf_.size()) throw std::runtime_error("short message");
    return buf_[pos_++];
  }
  std::uint16_t u16() {
    std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  double f64() {
    std::uint64_t bits = (static_cast<std::uint64_t>(u32()) << 32) | u32();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  net::Ipv4Addr addr() { return net::Ipv4Addr(u32()); }
  bool done() const { return pos_ == buf_.size(); }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

// --- message encodings ---

std::vector<std::uint8_t> encode_trace_req(net::Ipv4Addr dst);
std::vector<std::uint8_t> encode_trace_resp(const probe::TraceResult& t);
probe::TraceResult decode_trace_resp(const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode_udp_req(net::Ipv4Addr a);
std::vector<std::uint8_t> encode_udp_resp(std::optional<net::Ipv4Addr> src);
std::optional<net::Ipv4Addr> decode_udp_resp(
    const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode_ipid_req(net::Ipv4Addr a, double t);
std::vector<std::uint8_t> encode_ipid_resp(std::optional<std::uint16_t> id);
std::optional<std::uint16_t> decode_ipid_resp(
    const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode_ts_req(net::Ipv4Addr path_dst,
                                        net::Ipv4Addr candidate);
std::vector<std::uint8_t> encode_ts_resp(std::optional<bool> stamped);
std::optional<bool> decode_ts_resp(const std::vector<std::uint8_t>& buf);

}  // namespace bdrmap::remote
