// Wire protocol between the low-resource prober and the central controller
// (§5.8 "Supporting resource-limited devices").
//
// The paper's deployment runs scamper on 400MHz/32MB devices and keeps all
// bdrmap state (origin tables, stop sets, alias candidates) on a central
// system; the device only executes individual measurement commands. The
// protocol here is a compact length-prefixed binary encoding so the bench
// can report bytes-on-the-wire and peak device state.
//
// Two layers:
//  - message payloads (encode_*/decode_*): one measurement command or
//    response each, starting with a MsgType byte;
//  - frames (seal_frame/open_frame): payload wrapped with a magic byte,
//    session id, sequence number and a trailing CRC32, so a real (lossy,
//    corrupting) channel can carry it. Corruption is *detected* — a frame
//    that fails to open raises a typed ProtocolError instead of being
//    trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "netbase/ipv4.h"
#include "probe/types.h"

namespace bdrmap::remote {

enum class MsgType : std::uint8_t {
  kTraceReq = 1,
  kTraceResp = 2,
  kUdpReq = 3,
  kUdpResp = 4,
  kIpidReq = 5,
  kIpidResp = 6,
  kTsReq = 7,
  kTsResp = 8,
  kHelloReq = 9,    // (re-)establish a device session
  kHelloResp = 10,  // carries the granted session id
  kError = 11,      // negative acknowledgement, carries an ErrCode
};

// Why a frame or payload could not be accepted.
enum class ProtoErr : std::uint8_t {
  kTruncated,      // ran out of bytes mid-field
  kBadMagic,       // frame does not start with kFrameMagic
  kBadCrc,         // frame checksum mismatch (corruption detected)
  kBadType,        // payload type is not the one the decoder expected
  kUnknownType,    // payload type is outside the MsgType range
  kTrailingBytes,  // payload longer than its message
};

const char* proto_err_name(ProtoErr e);

// Typed protocol failure. Derives from std::runtime_error so pre-existing
// catch sites keep working; new code should catch ProtocolError and branch
// on code().
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(ProtoErr code)
      : std::runtime_error(proto_err_name(code)), code_(code) {}
  ProtoErr code() const { return code_; }

 private:
  ProtoErr code_;
};

// Application-level negative acknowledgement carried by a kError message.
enum class ErrCode : std::uint8_t {
  kMalformedRequest = 1,  // device could not parse the request payload
  kUnknownRequest = 2,    // request type the device does not implement
  kBadSession = 3,        // stale/unknown session id (device restarted)
  kStaleSeq = 4,          // duplicate of a request older than the cache
};

// Append-only byte writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u32(static_cast<std::uint32_t>(bits >> 32));
    u32(static_cast<std::uint32_t>(bits));
  }
  void addr(net::Ipv4Addr a) { u32(a.value()); }

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Sequential byte reader; throws ProtocolError(kTruncated) on a short
// buffer (malformed or corrupted peer).
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    if (pos_ >= buf_.size()) throw ProtocolError(ProtoErr::kTruncated);
    return buf_[pos_++];
  }
  std::uint16_t u16() {
    std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  double f64() {
    std::uint64_t bits = (static_cast<std::uint64_t>(u32()) << 32) | u32();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  net::Ipv4Addr addr() { return net::Ipv4Addr(u32()); }
  bool done() const { return pos_ == buf_.size(); }
  // Decoders call this last: leftover bytes mean the message was damaged
  // in a way the field reads did not catch.
  void expect_done() const {
    if (!done()) throw ProtocolError(ProtoErr::kTrailingBytes);
  }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

// --- framing ---

inline constexpr std::uint8_t kFrameMagic = 0xB5;
// magic(1) + session(4) + seq(4) + crc(4)
inline constexpr std::size_t kFrameOverhead = 13;

// IEEE CRC32 (the scamper warts polynomial).
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

struct Frame {
  std::uint32_t session = 0;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;

  // First payload byte; throws kTruncated on an empty payload and
  // kUnknownType when outside the MsgType range.
  MsgType type() const;
};

std::vector<std::uint8_t> seal_frame(std::uint32_t session, std::uint32_t seq,
                                     const std::vector<std::uint8_t>& payload);
// Throws ProtocolError (kTruncated / kBadMagic / kBadCrc) when the frame
// cannot be trusted.
Frame open_frame(const std::vector<std::uint8_t>& wire);

// --- message encodings ---

std::vector<std::uint8_t> encode_trace_req(net::Ipv4Addr dst);
net::Ipv4Addr decode_trace_req(const std::vector<std::uint8_t>& buf);
std::vector<std::uint8_t> encode_trace_resp(const probe::TraceResult& t);
probe::TraceResult decode_trace_resp(const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode_udp_req(net::Ipv4Addr a);
std::vector<std::uint8_t> encode_udp_resp(std::optional<net::Ipv4Addr> src);
std::optional<net::Ipv4Addr> decode_udp_resp(
    const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode_ipid_req(net::Ipv4Addr a, double t);
std::vector<std::uint8_t> encode_ipid_resp(std::optional<std::uint16_t> id);
std::optional<std::uint16_t> decode_ipid_resp(
    const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode_ts_req(net::Ipv4Addr path_dst,
                                        net::Ipv4Addr candidate);
std::vector<std::uint8_t> encode_ts_resp(std::optional<bool> stamped);
std::optional<bool> decode_ts_resp(const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode_hello_req();
std::vector<std::uint8_t> encode_hello_resp(std::uint32_t session);
std::uint32_t decode_hello_resp(const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode_error(ErrCode code);
ErrCode decode_error(const std::vector<std::uint8_t>& buf);

}  // namespace bdrmap::remote
