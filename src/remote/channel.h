// Measurement-channel abstraction between the controller and the prober
// device, with deterministic fault injection.
//
// The seed repo modelled the §5.8 split deployment as a perfect in-process
// function call. Real deployments run the prober on home-router-class
// hardware behind lossy access links: messages are dropped, duplicated,
// reordered, corrupted and delayed, and the device itself reboots. Channel
// is the seam where those behaviours live; FaultyChannel injects each fault
// class from a seeded RNG so every degraded run is exactly reproducible.
//
// Time is virtual: the channel advances a VirtualClock by sampled latency
// and the controller advances it while backing off, so timeout and
// circuit-breaker logic is deterministic and benches run at full speed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/rng.h"
#include "remote/protocol.h"

namespace bdrmap::remote {

class ProberDevice;

// Deterministic simulated wall clock, in seconds.
struct VirtualClock {
  double now = 0.0;
  void advance(double seconds) {
    if (seconds > 0.0) now += seconds;
  }
};

// Accounting shared by the channel (wire-level + injected faults) and the
// controller-side resilience layer (recovery actions).
struct ChannelStats {
  // Wire level.
  std::uint64_t messages = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_from_device = 0;
  std::size_t peak_message_bytes = 0;  // proxy for device buffer footprint

  // Faults injected by the channel.
  std::uint64_t drops_injected = 0;
  std::uint64_t duplicates_injected = 0;
  std::uint64_t reorders_injected = 0;
  std::uint64_t corruptions_injected = 0;
  std::uint64_t crashes_injected = 0;

  // Recovery actions taken by the controller.
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t corrupt_frames_detected = 0;
  std::uint64_t stale_frames_discarded = 0;
  std::uint64_t device_restarts = 0;   // sessions re-established
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t probe_failures = 0;    // requests abandoned after retries
};

// One request/response exchange with the device. The transport may lose
// either direction (nullopt), or hand back bytes that are corrupted, stale
// or an error frame — callers must open and verify the frame themselves.
class Channel {
 public:
  virtual ~Channel() = default;

  // Sends `wire` and waits up to `deadline_s` virtual seconds for a reply.
  virtual std::optional<std::vector<std::uint8_t>> roundtrip(
      const std::vector<std::uint8_t>& wire, double deadline_s) = 0;

  virtual ProberDevice& device() = 0;
  virtual VirtualClock& clock() = 0;
  virtual ChannelStats& stats() = 0;
  const ChannelStats& stats() const {
    return const_cast<Channel*>(this)->stats();
  }
};

// Perfect in-process channel: zero latency, no loss — the seed behaviour.
class DirectChannel final : public Channel {
 public:
  explicit DirectChannel(ProberDevice& device) : device_(device) {}

  std::optional<std::vector<std::uint8_t>> roundtrip(
      const std::vector<std::uint8_t>& wire, double deadline_s) override;
  ProberDevice& device() override { return device_; }
  VirtualClock& clock() override { return clock_; }
  ChannelStats& stats() override { return stats_; }

 private:
  ProberDevice& device_;
  VirtualClock clock_;
  ChannelStats stats_;
};

// Fault model for one simulated channel. All probabilities are evaluated
// independently from the channel's seeded RNG; identical (seed, traffic)
// pairs replay the identical fault sequence.
struct FaultConfig {
  double drop_rate = 0.0;       // each direction, per frame
  double duplicate_rate = 0.0;  // request delivered twice back-to-back
  double reorder_rate = 0.0;    // response delayed behind the next exchange
  double corrupt_rate = 0.0;    // one byte flipped, each direction
  double truncate_rate = 0.0;   // frame loses a random-length tail
  double crash_rate = 0.0;      // device reboots before handling a request

  // Deterministic reboot when the Nth request is delivered (1-based;
  // 0 = disabled). Used for reproducible mid-run restart scenarios on top
  // of the random crash_rate.
  std::uint64_t crash_at_message = 0;

  // Latency model: base + uniform jitter, with occasional long spikes that
  // overrun the controller's request timeout.
  double latency_base_s = 0.005;
  double latency_jitter_s = 0.01;
  double latency_spike_rate = 0.0;
  double latency_spike_s = 2.0;

  std::uint64_t seed = 1;
};

// Applies FaultConfig to every exchange with the wrapped device.
class FaultyChannel final : public Channel {
 public:
  FaultyChannel(ProberDevice& device, FaultConfig config)
      : device_(device), config_(config), rng_(config.seed) {}

  std::optional<std::vector<std::uint8_t>> roundtrip(
      const std::vector<std::uint8_t>& wire, double deadline_s) override;
  ProberDevice& device() override { return device_; }
  VirtualClock& clock() override { return clock_; }
  ChannelStats& stats() override { return stats_; }

  // Mutable so tests can heal/degrade the link mid-run (e.g. to exercise
  // the circuit breaker's half-open recovery).
  FaultConfig& config() { return config_; }

 private:
  // Applies per-direction damage (corruption / truncation) in place.
  void damage(std::vector<std::uint8_t>& frame);
  double sample_latency();

  ProberDevice& device_;
  FaultConfig config_;
  net::Rng rng_;
  VirtualClock clock_;
  ChannelStats stats_;
  std::uint64_t requests_delivered_ = 0;
  // A response the network is holding back; delivered in place of the next
  // exchange's response (the delayed frame wins the race, the fresh one is
  // dropped as still-in-flight).
  std::optional<std::vector<std::uint8_t>> delayed_;
};

}  // namespace bdrmap::remote
