#include "remote/split.h"

#include <algorithm>

namespace bdrmap::remote {

// --- ProberDevice ---

std::vector<std::uint8_t> ProberDevice::handle_frame(
    const std::vector<std::uint8_t>& wire) {
  Frame f;
  try {
    f = open_frame(wire);
  } catch (const ProtocolError&) {
    // The session/seq of a damaged frame cannot be trusted; NACK with seq 0
    // and let the controller retransmit.
    return seal_frame(session_, 0, encode_error(ErrCode::kMalformedRequest));
  }
  MsgType type;
  try {
    type = f.type();
  } catch (const ProtocolError&) {
    return seal_frame(session_, f.seq,
                      encode_error(ErrCode::kMalformedRequest));
  }
  if (type == MsgType::kHelloReq) {
    session_ = next_session_++;
    cache_valid_ = false;
    cached_response_.clear();
    return seal_frame(session_, f.seq, encode_hello_resp(session_));
  }
  if (session_ == 0 || f.session != session_) {
    return seal_frame(session_, f.seq, encode_error(ErrCode::kBadSession));
  }
  if (cache_valid_ && f.seq == cached_seq_) {
    // Retransmit of the request we just answered: replay the cached frame
    // without re-probing (idempotency).
    return cached_response_;
  }
  if (cache_valid_ && f.seq < cached_seq_) {
    return seal_frame(session_, f.seq, encode_error(ErrCode::kStaleSeq));
  }
  cached_response_ = seal_frame(session_, f.seq, handle(f.payload));
  cached_seq_ = f.seq;
  cache_valid_ = true;
  return cached_response_;
}

std::vector<std::uint8_t> ProberDevice::handle(
    const std::vector<std::uint8_t>& request) {
  try {
    Reader r(request);
    switch (static_cast<MsgType>(r.u8())) {
      case MsgType::kTraceReq: {
        net::Ipv4Addr dst = r.addr();
        r.expect_done();
        // The device runs the plain trace; stop-set state lives with the
        // controller, which truncates the result.
        probe::TraceResult t = services_.trace(dst, nullptr);
        return encode_trace_resp(t);
      }
      case MsgType::kUdpReq: {
        net::Ipv4Addr a = r.addr();
        r.expect_done();
        return encode_udp_resp(services_.udp_probe(a));
      }
      case MsgType::kIpidReq: {
        net::Ipv4Addr a = r.addr();
        double t = r.f64();
        r.expect_done();
        return encode_ipid_resp(services_.ipid_sample(a, t));
      }
      case MsgType::kTsReq: {
        net::Ipv4Addr path_dst = r.addr();
        net::Ipv4Addr candidate = r.addr();
        r.expect_done();
        return encode_ts_resp(services_.timestamp_probe(path_dst, candidate));
      }
      default:
        return encode_error(ErrCode::kUnknownRequest);
    }
  } catch (const ProtocolError&) {
    return encode_error(ErrCode::kMalformedRequest);
  }
}

void ProberDevice::crash() {
  session_ = 0;
  cache_valid_ = false;
  cached_response_.clear();
  ++restarts_;
}

// --- RemoteProbeServices ---

RemoteProbeServices::RemoteProbeServices(ProberDevice& device)
    : owned_(std::make_unique<DirectChannel>(device)),
      channel_(owned_.get()),
      rng_(cfg_.seed) {}

RemoteProbeServices::RemoteProbeServices(Channel& channel,
                                         ResilienceConfig config)
    : channel_(&channel), cfg_(config), rng_(config.seed) {
  if (cfg_.metrics) {
    retransmits_ = cfg_.metrics->counter("remote.retransmits");
    timeouts_ = cfg_.metrics->counter("remote.timeouts");
    corrupt_frames_ = cfg_.metrics->counter("remote.corrupt_frames");
    stale_frames_ = cfg_.metrics->counter("remote.stale_frames");
    breaker_fast_fails_ = cfg_.metrics->counter("remote.breaker_fast_fails");
    probe_failures_ = cfg_.metrics->counter("remote.probe_failures");
    device_restarts_ = cfg_.metrics->counter("remote.device_restarts");
  }
}

void RemoteProbeServices::backoff(int attempt) {
  double base =
      cfg_.backoff_base_s *
      static_cast<double>(1ull << std::min(attempt - 1, 16));
  base = std::min(base, cfg_.backoff_max_s);
  double jitter = base * cfg_.backoff_jitter;
  channel_->clock().advance(base + rng_.uniform_real(-jitter, jitter));
}

bool RemoteProbeServices::handshake() {
  ChannelStats& st = channel_->stats();
  std::uint32_t seq = next_seq_++;
  auto hello = encode_hello_req();
  for (int attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++st.retransmits;
      retransmits_.inc();
      backoff(attempt);
    }
    auto raw = channel_->roundtrip(seal_frame(0, seq, hello),
                                   cfg_.request_timeout_s);
    if (!raw) {
      ++st.timeouts;
      timeouts_.inc();
      continue;
    }
    try {
      Frame f = open_frame(*raw);
      if (f.seq != seq || f.type() != MsgType::kHelloResp) {
        ++st.stale_frames_discarded;
        stale_frames_.inc();
        continue;
      }
      session_ = decode_hello_resp(f.payload);
    } catch (const ProtocolError&) {
      ++st.corrupt_frames_detected;
      corrupt_frames_.inc();
      continue;
    }
    if (had_session_) {
      ++st.device_restarts;
      device_restarts_.inc();
    }
    had_session_ = true;
    return true;
  }
  return false;
}

std::optional<std::vector<std::uint8_t>> RemoteProbeServices::request(
    const std::vector<std::uint8_t>& payload) {
  ChannelStats& st = channel_->stats();
  VirtualClock& clock = channel_->clock();
  if (breaker_open_ && clock.now < breaker_open_until_) {
    ++st.breaker_fast_fails;
    breaker_fast_fails_.inc();
    ++st.probe_failures;
    probe_failures_.inc();
    return std::nullopt;
  }
  // Either closed or half-open (cooldown elapsed): attempt the request.
  std::uint32_t seq = next_seq_++;
  for (int attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++st.retransmits;
      retransmits_.inc();
      backoff(attempt);
    }
    if (session_ == 0 && !handshake()) continue;
    auto raw = channel_->roundtrip(seal_frame(session_, seq, payload),
                                   cfg_.request_timeout_s);
    if (!raw) {
      ++st.timeouts;
      timeouts_.inc();
      continue;
    }
    Frame f;
    MsgType type;
    try {
      f = open_frame(*raw);
      type = f.type();
    } catch (const ProtocolError&) {
      ++st.corrupt_frames_detected;
      corrupt_frames_.inc();
      continue;
    }
    if (type == MsgType::kError) {
      ErrCode code;
      try {
        code = decode_error(f.payload);
      } catch (const ProtocolError&) {
        ++st.corrupt_frames_detected;
        corrupt_frames_.inc();
        continue;
      }
      if (code == ErrCode::kBadSession) {
        // Device restarted and lost the session; re-handshake on the next
        // attempt and replay the request under the new session.
        session_ = 0;
      } else if (code == ErrCode::kMalformedRequest) {
        // Our request was damaged in flight; the device detected it.
        ++st.corrupt_frames_detected;
        corrupt_frames_.inc();
      }
      continue;
    }
    if (f.session != session_ || f.seq != seq) {
      // Reordered/stale frame from an earlier exchange.
      ++st.stale_frames_discarded;
      stale_frames_.inc();
      continue;
    }
    consecutive_failures_ = 0;
    breaker_open_ = false;
    return std::move(f.payload);
  }
  ++st.probe_failures;
  probe_failures_.inc();
  if (++consecutive_failures_ >= cfg_.breaker_threshold) {
    breaker_open_ = true;
    breaker_open_until_ = clock.now + cfg_.breaker_cooldown_s;
  }
  return std::nullopt;
}

probe::TraceResult RemoteProbeServices::trace(net::Ipv4Addr dst,
                                              const probe::StopFn& stop) {
  probe::TraceResult t;
  auto payload = request(encode_trace_req(dst));
  bool decoded = false;
  if (payload) {
    try {
      t = decode_trace_resp(*payload);
      decoded = true;
    } catch (const ProtocolError&) {
      ++channel_->stats().corrupt_frames_detected;
      corrupt_frames_.inc();
    corrupt_frames_.inc();
    }
  }
  if (!decoded) {
    t.dst = dst;
    t.failed = true;
    return t;
  }
  if (!stop) return t;
  // Controller-side doubletree: truncate at the first hop the stop set
  // covers, as the monolithic prober would have stopped there.
  for (std::size_t i = 0; i < t.hops.size(); ++i) {
    if (t.hops[i].kind != probe::ReplyKind::kNone && stop(t.hops[i].addr)) {
      t.hops.resize(i + 1);
      t.reached_dst = false;
      t.stopped_by_stopset = true;
      break;
    }
  }
  return t;
}

std::optional<net::Ipv4Addr> RemoteProbeServices::udp_probe(
    net::Ipv4Addr addr) {
  auto payload = request(encode_udp_req(addr));
  if (!payload) return std::nullopt;
  try {
    return decode_udp_resp(*payload);
  } catch (const ProtocolError&) {
    ++channel_->stats().corrupt_frames_detected;
    corrupt_frames_.inc();
    return std::nullopt;
  }
}

std::optional<std::uint16_t> RemoteProbeServices::ipid_sample(
    net::Ipv4Addr addr, double t) {
  auto payload = request(encode_ipid_req(addr, t));
  if (!payload) return std::nullopt;
  try {
    return decode_ipid_resp(*payload);
  } catch (const ProtocolError&) {
    ++channel_->stats().corrupt_frames_detected;
    corrupt_frames_.inc();
    return std::nullopt;
  }
}

std::optional<bool> RemoteProbeServices::timestamp_probe(
    net::Ipv4Addr path_dst, net::Ipv4Addr candidate) {
  auto payload = request(encode_ts_req(path_dst, candidate));
  if (!payload) return std::nullopt;
  try {
    return decode_ts_resp(*payload);
  } catch (const ProtocolError&) {
    ++channel_->stats().corrupt_frames_detected;
    corrupt_frames_.inc();
    return std::nullopt;
  }
}

}  // namespace bdrmap::remote
