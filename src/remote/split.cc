#include "remote/split.h"

#include <algorithm>

namespace bdrmap::remote {

std::vector<std::uint8_t> ProberDevice::handle(
    const std::vector<std::uint8_t>& request) {
  Reader r(request);
  switch (static_cast<MsgType>(r.u8())) {
    case MsgType::kTraceReq: {
      net::Ipv4Addr dst = r.addr();
      // The device runs the plain trace; stop-set state lives with the
      // controller, which truncates the result.
      probe::TraceResult t = services_.trace(dst, nullptr);
      return encode_trace_resp(t);
    }
    case MsgType::kUdpReq:
      return encode_udp_resp(services_.udp_probe(r.addr()));
    case MsgType::kIpidReq: {
      net::Ipv4Addr a = r.addr();
      double t = r.f64();
      return encode_ipid_resp(services_.ipid_sample(a, t));
    }
    case MsgType::kTsReq: {
      net::Ipv4Addr path_dst = r.addr();
      net::Ipv4Addr candidate = r.addr();
      return encode_ts_resp(services_.timestamp_probe(path_dst, candidate));
    }
    default:
      throw std::runtime_error("unknown request");
  }
}

std::vector<std::uint8_t> RemoteProbeServices::roundtrip(
    std::vector<std::uint8_t> request) {
  stats_.messages += 2;
  stats_.bytes_to_device += request.size();
  stats_.peak_message_bytes =
      std::max(stats_.peak_message_bytes, request.size());
  std::vector<std::uint8_t> response = device_.handle(request);
  stats_.bytes_from_device += response.size();
  stats_.peak_message_bytes =
      std::max(stats_.peak_message_bytes, response.size());
  return response;
}

probe::TraceResult RemoteProbeServices::trace(net::Ipv4Addr dst,
                                              const probe::StopFn& stop) {
  probe::TraceResult t = decode_trace_resp(roundtrip(encode_trace_req(dst)));
  if (!stop) return t;
  // Controller-side doubletree: truncate at the first hop the stop set
  // covers, as the monolithic prober would have stopped there.
  for (std::size_t i = 0; i < t.hops.size(); ++i) {
    if (t.hops[i].kind != probe::ReplyKind::kNone && stop(t.hops[i].addr)) {
      t.hops.resize(i + 1);
      t.reached_dst = false;
      t.stopped_by_stopset = true;
      break;
    }
  }
  return t;
}

std::optional<net::Ipv4Addr> RemoteProbeServices::udp_probe(
    net::Ipv4Addr addr) {
  return decode_udp_resp(roundtrip(encode_udp_req(addr)));
}

std::optional<std::uint16_t> RemoteProbeServices::ipid_sample(
    net::Ipv4Addr addr, double t) {
  return decode_ipid_resp(roundtrip(encode_ipid_req(addr, t)));
}

std::optional<bool> RemoteProbeServices::timestamp_probe(
    net::Ipv4Addr path_dst, net::Ipv4Addr candidate) {
  return decode_ts_resp(roundtrip(encode_ts_req(path_dst, candidate)));
}

}  // namespace bdrmap::remote
