#include "remote/channel.h"

#include <algorithm>

#include "netbase/contract.h"
#include "remote/split.h"

namespace bdrmap::remote {

namespace {

void account_to_device(ChannelStats& stats, std::size_t bytes) {
  ++stats.messages;
  stats.bytes_to_device += bytes;
  stats.peak_message_bytes = std::max(stats.peak_message_bytes, bytes);
}

void account_from_device(ChannelStats& stats, std::size_t bytes) {
  ++stats.messages;
  stats.bytes_from_device += bytes;
  stats.peak_message_bytes = std::max(stats.peak_message_bytes, bytes);
}

}  // namespace

std::optional<std::vector<std::uint8_t>> DirectChannel::roundtrip(
    const std::vector<std::uint8_t>& wire, double /*deadline_s*/) {
  BDRMAP_EXPECTS(!wire.empty(), "cannot send an empty frame");
  account_to_device(stats_, wire.size());
  std::vector<std::uint8_t> response = device_.handle_frame(wire);
  account_from_device(stats_, response.size());
  return response;
}

void FaultyChannel::damage(std::vector<std::uint8_t>& frame) {
  if (!frame.empty() && rng_.chance(config_.corrupt_rate)) {
    std::size_t pos =
        rng_.uniform(0, static_cast<std::uint32_t>(frame.size() - 1));
    frame[pos] ^= static_cast<std::uint8_t>(rng_.uniform(1, 255));
    ++stats_.corruptions_injected;
  }
  if (frame.size() > 1 && rng_.chance(config_.truncate_rate)) {
    frame.resize(rng_.uniform(1, static_cast<std::uint32_t>(frame.size() - 1)));
    ++stats_.corruptions_injected;
  }
}

double FaultyChannel::sample_latency() {
  double l = config_.latency_base_s;
  if (config_.latency_jitter_s > 0.0) {
    l += rng_.uniform_real(0.0, config_.latency_jitter_s);
  }
  if (rng_.chance(config_.latency_spike_rate)) l += config_.latency_spike_s;
  return l;
}

std::optional<std::vector<std::uint8_t>> FaultyChannel::roundtrip(
    const std::vector<std::uint8_t>& wire, double deadline_s) {
  BDRMAP_EXPECTS(!wire.empty(), "cannot send an empty frame");
  BDRMAP_EXPECTS(deadline_s > 0.0, "roundtrip needs a positive deadline");
  account_to_device(stats_, wire.size());
  double elapsed = sample_latency();  // request leg

  // Device power-cycle, before the request would be handled.
  ++requests_delivered_;
  bool scheduled_crash = config_.crash_at_message != 0 &&
                         requests_delivered_ == config_.crash_at_message;
  if (scheduled_crash || rng_.chance(config_.crash_rate)) {
    device_.crash();
    ++stats_.crashes_injected;
  }

  // Request leg loss: the device never sees it.
  if (rng_.chance(config_.drop_rate)) {
    ++stats_.drops_injected;
    clock_.advance(deadline_s);
    return std::nullopt;
  }

  std::vector<std::uint8_t> req = wire;
  damage(req);

  std::vector<std::uint8_t> response = device_.handle_frame(req);
  if (rng_.chance(config_.duplicate_rate)) {
    // A second copy of the request arrives back-to-back; the device's
    // replay cache answers it idempotently without re-probing.
    ++stats_.duplicates_injected;
    response = device_.handle_frame(req);
  }
  account_from_device(stats_, response.size());
  elapsed += sample_latency();  // response leg

  // Response leg loss: the device did the work but the controller never
  // hears back (the retransmit will be served from the replay cache).
  if (rng_.chance(config_.drop_rate)) {
    ++stats_.drops_injected;
    clock_.advance(deadline_s);
    return std::nullopt;
  }

  damage(response);

  // Reordering: hold this response back. Whatever the network was already
  // holding arrives instead; if nothing was, the controller hears silence
  // this exchange and the held frame races a later one.
  if (rng_.chance(config_.reorder_rate)) {
    ++stats_.reorders_injected;
    std::optional<std::vector<std::uint8_t>> earlier = std::move(delayed_);
    delayed_ = std::move(response);
    if (!earlier) {
      clock_.advance(deadline_s);
      return std::nullopt;
    }
    clock_.advance(std::min(elapsed, deadline_s));
    return earlier;
  }
  if (delayed_) {
    // The held-back frame wins the race; the fresh response is overtaken
    // and evaporates in flight.
    std::vector<std::uint8_t> out = std::move(*delayed_);
    delayed_.reset();
    clock_.advance(std::min(elapsed, deadline_s));
    return out;
  }

  if (elapsed > deadline_s) {
    // The reply exists but arrives after the controller gave up.
    clock_.advance(deadline_s);
    return std::nullopt;
  }
  clock_.advance(elapsed);
  return response;
}

}  // namespace bdrmap::remote
