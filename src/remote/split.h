// Split prober/controller deployment (§5.8).
//
// ProberDevice is what runs on the resource-limited box: it executes one
// measurement command at a time and holds almost no bdrmap state (the
// paper's scamper used 3.5MB of RAM on BISmark devices vs ~150MB for full
// bdrmap). The only state it keeps is per-session: the current session id
// and a one-deep replay cache keyed by sequence number, so a retransmitted
// request is answered idempotently without re-probing. A crash (power
// cycle) loses exactly that state; the controller re-establishes the
// session with a hello handshake.
//
// RemoteProbeServices is the controller-side adapter: it implements
// probe::ProbeServices by marshalling each command over a Channel, so the
// unmodified core::Bdrmap pipeline drives a remote device. Because the
// channel may be lossy (remote::FaultyChannel), the controller is
// resilient: per-request timeouts, bounded retries with exponential
// backoff + jitter on a virtual clock, CRC/sequence verification of every
// frame, session re-establishment after a device restart, and a circuit
// breaker that fails probes fast while the device is unreachable. A probe
// that still fails after all of that surfaces as TraceResult::failed /
// nullopt — core::Bdrmap degrades gracefully instead of aborting.
//
// The doubletree stop set stays controller-side: the device traces, the
// controller truncates — trading some extra device probes for near-zero
// device state, the same trade the paper makes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netbase/rng.h"
#include "obs/metrics.h"
#include "probe/alias.h"
#include "probe/types.h"
#include "remote/channel.h"
#include "remote/protocol.h"

namespace bdrmap::remote {

// The measurement device: wraps the actual prober and answers one framed
// command per call. Nothing a peer sends may crash it — malformed input
// yields a kError frame, never an exception across the "wire".
class ProberDevice {
 public:
  explicit ProberDevice(probe::LocalProbeServices& services)
      : services_(services) {}

  // Framed endpoint: verifies CRC, session and sequence number, answers
  // retransmits from the replay cache, and dispatches fresh requests.
  std::vector<std::uint8_t> handle_frame(
      const std::vector<std::uint8_t>& wire);

  // Payload-level dispatch (no session handling). Malformed or unknown
  // requests return an encoded kError message.
  std::vector<std::uint8_t> handle(const std::vector<std::uint8_t>& request);

  // Simulated power cycle: the session id and replay cache are lost and
  // every in-flight session is invalidated; the probe engines themselves
  // (the "scamper process") come back up unchanged.
  void crash();

  std::uint64_t probes_sent() const { return services_.probes_sent(); }
  std::uint32_t restarts() const { return restarts_; }
  std::uint32_t session() const { return session_; }  // 0 = none

 private:
  probe::LocalProbeServices& services_;
  std::uint32_t session_ = 0;
  std::uint32_t next_session_ = 1;
  std::uint32_t restarts_ = 0;
  // One-deep idempotent replay cache: last handled sequence number and the
  // full response frame that answered it.
  bool cache_valid_ = false;
  std::uint32_t cached_seq_ = 0;
  std::vector<std::uint8_t> cached_response_;
};

// Controller-side retry/timeout/breaker policy. All time is virtual
// (VirtualClock), so degraded runs stay deterministic and fast.
struct ResilienceConfig {
  double request_timeout_s = 0.25;  // per attempt
  int max_attempts = 6;             // per request (1 initial + retries)
  double backoff_base_s = 0.05;     // doubles per retry ...
  double backoff_max_s = 2.0;       // ... up to this cap
  double backoff_jitter = 0.25;     // +/- fraction of the backoff, seeded
  // Circuit breaker: after this many *consecutive* abandoned requests the
  // device is declared dead and probes fail fast until the cooldown
  // elapses; the next request then half-opens the breaker with a trial.
  int breaker_threshold = 8;
  double breaker_cooldown_s = 30.0;
  std::uint64_t seed = 0x51C2;  // backoff jitter stream
  // When set, the controller mirrors its resilience counters (remote.*)
  // into this registry alongside ChannelStats — the stats struct stays the
  // protocol-test interface, the registry feeds the run-wide export.
  obs::MetricsRegistry* metrics = nullptr;
};

// Controller-side ProbeServices speaking the wire protocol over a Channel.
class RemoteProbeServices final : public probe::ProbeServices {
 public:
  // Perfect in-process channel (the seed behaviour).
  explicit RemoteProbeServices(ProberDevice& device);
  // Caller-supplied channel, e.g. a FaultyChannel.
  explicit RemoteProbeServices(Channel& channel, ResilienceConfig config = {});

  probe::TraceResult trace(net::Ipv4Addr dst,
                           const probe::StopFn& stop) override;
  std::optional<net::Ipv4Addr> udp_probe(net::Ipv4Addr addr) override;
  std::optional<std::uint16_t> ipid_sample(net::Ipv4Addr addr,
                                           double t) override;
  std::optional<bool> timestamp_probe(net::Ipv4Addr path_dst,
                                      net::Ipv4Addr candidate) override;
  std::uint64_t probes_sent() const override {
    return channel_->device().probes_sent();
  }

  const ChannelStats& channel_stats() const { return channel_->stats(); }
  bool breaker_open() const { return breaker_open_; }

 private:
  // One reliable request: frame, send, verify, retry. nullopt when the
  // request was abandoned (timeout budget exhausted or breaker open).
  std::optional<std::vector<std::uint8_t>> request(
      const std::vector<std::uint8_t>& payload);
  bool handshake();
  void backoff(int attempt);

  std::unique_ptr<DirectChannel> owned_;  // when constructed from a device
  Channel* channel_;
  ResilienceConfig cfg_;
  net::Rng rng_;
  std::uint32_t session_ = 0;
  bool had_session_ = false;
  std::uint32_t next_seq_ = 1;
  int consecutive_failures_ = 0;
  bool breaker_open_ = false;
  double breaker_open_until_ = 0.0;
  // Registry mirrors of the ChannelStats counters; no-ops unless
  // ResilienceConfig::metrics was set.
  obs::Counter retransmits_;
  obs::Counter timeouts_;
  obs::Counter corrupt_frames_;
  obs::Counter stale_frames_;
  obs::Counter breaker_fast_fails_;
  obs::Counter probe_failures_;
  obs::Counter device_restarts_;
};

}  // namespace bdrmap::remote
