// Split prober/controller deployment (§5.8).
//
// ProberDevice is what runs on the resource-limited box: it executes one
// measurement command at a time and holds no bdrmap state (the paper's
// scamper used 3.5MB of RAM on BISmark devices vs ~150MB for full bdrmap).
// RemoteProbeServices is the controller-side adapter: it implements
// probe::ProbeServices by marshalling each command over the channel, so the
// unmodified core::Bdrmap pipeline drives a remote device. The doubletree
// stop set stays controller-side: the device traces, the controller
// truncates — trading some extra device probes for near-zero device state,
// the same trade the paper makes.
#pragma once

#include <cstdint>
#include <vector>

#include "probe/alias.h"
#include "probe/types.h"
#include "remote/protocol.h"

namespace bdrmap::remote {

struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t bytes_from_device = 0;
  std::size_t peak_message_bytes = 0;  // proxy for device buffer footprint
};

// The measurement device: wraps the actual prober and answers one encoded
// command per call. Stateless between commands by design.
class ProberDevice {
 public:
  explicit ProberDevice(probe::LocalProbeServices& services)
      : services_(services) {}

  std::vector<std::uint8_t> handle(const std::vector<std::uint8_t>& request);

  std::uint64_t probes_sent() const { return services_.probes_sent(); }

 private:
  probe::LocalProbeServices& services_;
};

// Controller-side ProbeServices speaking the wire protocol.
class RemoteProbeServices final : public probe::ProbeServices {
 public:
  explicit RemoteProbeServices(ProberDevice& device) : device_(device) {}

  probe::TraceResult trace(net::Ipv4Addr dst,
                           const probe::StopFn& stop) override;
  std::optional<net::Ipv4Addr> udp_probe(net::Ipv4Addr addr) override;
  std::optional<std::uint16_t> ipid_sample(net::Ipv4Addr addr,
                                           double t) override;
  std::optional<bool> timestamp_probe(net::Ipv4Addr path_dst,
                                      net::Ipv4Addr candidate) override;
  std::uint64_t probes_sent() const override { return device_.probes_sent(); }

  const ChannelStats& channel_stats() const { return stats_; }

 private:
  std::vector<std::uint8_t> roundtrip(std::vector<std::uint8_t> request);

  ProberDevice& device_;
  ChannelStats stats_;
};

}  // namespace bdrmap::remote
