// Multi-VP execution: N independent bdrmap runs, one deterministic answer.
//
// The paper's evaluation is embarrassingly parallel — bdrmap runs per
// vantage point (§5.6 validates 10 VPs across 4 networks; Figures 14-16
// sweep VP counts) and no state flows between VPs. MultiVpExecutor
// exploits exactly that: each VP job carries its OWN ProbeServices (its
// own traceroute engine and RNG, seeded from the scenario seed and the VP
// index by the caller), runs a private core::Bdrmap on a pool worker, and
// the per-VP results land in VP order.
//
// Determinism strategy (DESIGN.md §8): parallelism never reorders any
// observable. Per-VP runs are bit-identical to their sequential
// counterparts because nothing a run mutates is shared (the substrate's
// lazy route caches are value-deterministic and internally locked), and
// the reduction — concatenating InferredLinks, rebuilding the per-AS
// index, summing stats — walks VPs in index order on the joining thread
// after every run has finished. Byte-identical output at 1 or 64 workers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/bdrmap.h"
#include "probe/types.h"
#include "runtime/thread_pool.h"

namespace bdrmap::runtime {

// One vantage point's run: a factory for its private probe stack (invoked
// on the executing worker), the shared read-only inference inputs, and
// the pipeline configuration.
struct VpJob {
  std::function<std::unique_ptr<probe::ProbeServices>()> make_services;
  core::InferenceInputs inputs;
  core::BdrmapConfig config;
};

// Wall-clock of the two stages, for the runtime's telemetry contract.
struct MultiVpTimes {
  double run_seconds = 0.0;     // fork/join over the per-VP pipelines
  double reduce_seconds = 0.0;  // ordered merge on the joining thread
};

struct MultiVpResult {
  // Per-VP results, in job order (index i == job i).
  std::vector<core::BdrmapResult> per_vp;
  // Ordered reduction: every inferred link tagged with its VP index,
  // concatenated in VP order, plus the rebuilt per-AS index into it and
  // the summed stats.
  std::vector<std::pair<std::size_t, core::InferredLink>> merged_links;
  std::map<net::AsId, std::vector<std::size_t>> merged_links_by_as;
  core::BdrmapStats total;
  MultiVpTimes times;
};

class MultiVpExecutor {
 public:
  // pool may be null: run every VP sequentially on the calling thread
  // (the determinism baseline). The pool must outlive the executor.
  explicit MultiVpExecutor(ThreadPool* pool) : pool_(pool) {}

  MultiVpResult run(const std::vector<VpJob>& jobs) const;

  // Split-pipeline execution (serve::ServeEngine): collect() fans the
  // jobs' collection stages out over the pool — for slice jobs each
  // VpJob carries a config.target_filter narrowing it to one (VP, target
  // AS) slice — and infer() runs the inference tails over previously
  // collected (possibly cached) traces. collected[i] feeds jobs[i]; both
  // results land in job order, same determinism contract as run().
  std::vector<core::CollectedTraces> collect(
      const std::vector<VpJob>& jobs) const;
  std::vector<core::BdrmapResult> infer(
      const std::vector<VpJob>& jobs,
      std::vector<core::CollectedTraces> collected) const;

 private:
  ThreadPool* pool_;
};

}  // namespace bdrmap::runtime
