// Multi-VP execution: N independent bdrmap runs, one deterministic answer.
//
// The paper's evaluation is embarrassingly parallel — bdrmap runs per
// vantage point (§5.6 validates 10 VPs across 4 networks; Figures 14-16
// sweep VP counts) and no state flows between VPs. MultiVpExecutor
// exploits exactly that: each VP job carries its OWN ProbeServices (its
// own traceroute engine and RNG, seeded from the scenario seed and the VP
// index by the caller), runs a private core::Bdrmap on a pool worker, and
// the per-VP results land in VP order.
//
// Determinism strategy (DESIGN.md §8): parallelism never reorders any
// observable. Per-VP runs are bit-identical to their sequential
// counterparts because nothing a run mutates is shared (the substrate's
// lazy route caches are value-deterministic and internally locked), and
// the reduction — concatenating InferredLinks, rebuilding the per-AS
// index, summing stats — walks VPs in index order on the joining thread
// after every run has finished. Byte-identical output at 1 or 64 workers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/bdrmap.h"
#include "probe/types.h"
#include "runtime/thread_pool.h"

namespace bdrmap::runtime {

// One vantage point's run: a factory for its private probe stack (invoked
// on the executing worker), the shared read-only inference inputs, and
// the pipeline configuration.
struct VpJob {
  std::function<std::unique_ptr<probe::ProbeServices>()> make_services;
  core::InferenceInputs inputs;
  core::BdrmapConfig config;
};

// One vantage point of a sharded run (run_sharded): like VpJob, but the
// factory is invoked once per slice task (and once for the inference
// tail) with an executor-mixed seed, so the schedule — never the worker —
// decides every RNG stream.
struct ShardedVpJob {
  std::function<std::unique_ptr<probe::ProbeServices>(std::uint64_t seed)>
      make_services;
  core::InferenceInputs inputs;
  // config.target_filter must be empty: the shard plan owns the filter.
  core::BdrmapConfig config;
};

// How run_sharded slices the work (DESIGN.md §14).
struct ShardPlan {
  std::uint64_t base_seed = 0;
  // Target ASes per collection slice. Smaller batches make more (and
  // better balanced) tasks at the cost of per-slice setup. The output is
  // a pure function of (jobs, plan): changing the batch width re-keys
  // the per-slice RNG streams, changing the worker count never does.
  std::size_t ases_per_shard = 8;
};

// Wall-clock of the two stages, for the runtime's telemetry contract.
struct MultiVpTimes {
  double run_seconds = 0.0;     // fork/join over the per-VP pipelines
  double reduce_seconds = 0.0;  // ordered merge on the joining thread
};

struct MultiVpResult {
  // Per-VP results, in job order (index i == job i).
  std::vector<core::BdrmapResult> per_vp;
  // Ordered reduction: every inferred link tagged with its VP index,
  // concatenated in VP order, plus the rebuilt per-AS index into it and
  // the summed stats.
  std::vector<std::pair<std::size_t, core::InferredLink>> merged_links;
  std::map<net::AsId, std::vector<std::size_t>> merged_links_by_as;
  core::BdrmapStats total;
  MultiVpTimes times;
};

class MultiVpExecutor {
 public:
  // pool may be null: run every VP sequentially on the calling thread
  // (the determinism baseline). The pool must outlive the executor.
  explicit MultiVpExecutor(ThreadPool* pool) : pool_(pool) {}

  MultiVpResult run(const std::vector<VpJob>& jobs) const;

  // Sharded execution (DESIGN.md §14): repartitions every VP's collection
  // stage into (VP × target-AS-batch) slice tasks — each a filtered
  // collect with its own deterministically seeded probe stack — so the
  // pool sees hundreds of balanced tasks instead of one lump per VP.
  // Collected slices are stitched back per VP in plan order (the §5.3
  // schedule order), the inference tails run per VP, and the final merge
  // is the same ordered reduction as run(): byte-identical output at 1
  // or 64 workers for a fixed (jobs, plan). Differs from run() only in
  // RNG-stream keying (per slice instead of per VP), exactly like the
  // serve engine's slice decomposition.
  MultiVpResult run_sharded(const std::vector<ShardedVpJob>& jobs,
                            const ShardPlan& plan) const;

  // Split-pipeline execution (serve::ServeEngine): collect() fans the
  // jobs' collection stages out over the pool — for slice jobs each
  // VpJob carries a config.target_filter narrowing it to one (VP, target
  // AS) slice — and infer() runs the inference tails over previously
  // collected (possibly cached) traces. collected[i] feeds jobs[i]; both
  // results land in job order, same determinism contract as run().
  std::vector<core::CollectedTraces> collect(
      const std::vector<VpJob>& jobs) const;
  std::vector<core::BdrmapResult> infer(
      const std::vector<VpJob>& jobs,
      std::vector<core::CollectedTraces> collected) const;

 private:
  ThreadPool* pool_;
};

}  // namespace bdrmap::runtime
