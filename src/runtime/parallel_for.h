// Chunked data-parallel loops over [0, n) with deterministic results.
//
// parallel_for(pool, n, fn)       — fn(i) for every i, any order
// parallel_map<R>(pool, n, fn)    — returns {fn(0), ..., fn(n-1)} IN INDEX
//                                   ORDER regardless of execution order:
//                                   each task writes its own slot of a
//                                   pre-sized vector, so the reduction a
//                                   caller performs over the result is
//                                   identical at any thread count.
//
// Scheduling: indices are split into contiguous chunks (default: enough
// chunks for ~4 per worker, a balance between stealable slack and
// per-task overhead) and spawned on a TaskGroup; the calling thread helps
// until the group drains. Exceptions propagate per TaskGroup semantics —
// first one rethrown, remaining chunks cancelled.
//
// A null pool means sequential: plain loop, zero scheduling overhead —
// this is the "--threads 1" path everywhere, and the baseline the
// determinism tests compare against.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "runtime/task_group.h"
#include "runtime/thread_pool.h"

namespace bdrmap::runtime {

// Number of indices per chunk for n items on this pool (>= 1).
inline std::size_t default_chunk(const ThreadPool* pool, std::size_t n) {
  if (pool == nullptr || n == 0) return n > 0 ? n : 1;
  std::size_t target_chunks = static_cast<std::size_t>(pool->size()) * 4;
  std::size_t chunk = (n + target_chunks - 1) / target_chunks;
  return chunk > 0 ? chunk : 1;
}

template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn,
                  std::size_t chunk = 0) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (chunk == 0) chunk = default_chunk(pool, n);
  TaskGroup group(pool);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = (n - begin > chunk) ? begin + chunk : n;
    group.spawn([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  group.wait();
}

template <typename R, typename Fn>
std::vector<R> parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn,
                            std::size_t chunk = 0) {
  // Buffer through optionals so R need not be default-constructible
  // (core::BdrmapResult is not); each slot is emplaced exactly once.
  std::vector<std::optional<R>> slots(n);
  parallel_for(
      pool, n, [&slots, &fn](std::size_t i) { slots[i].emplace(fn(i)); },
      chunk);
  std::vector<R> out;
  out.reserve(n);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace bdrmap::runtime
