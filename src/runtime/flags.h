// Shared "--threads N" handling for the bench harnesses and tools.
//
// Every multi-VP consumer takes the same flag with the same default
// (hardware_concurrency), so the parsing lives here once. threads_flag
// scans argv non-destructively; callers that do their own argument
// parsing just recognise "--threads" and call make_pool themselves.
#pragma once

#include <cstdlib>
#include <cstring>
#include <thread>

#include "runtime/thread_pool.h"

namespace bdrmap::runtime {

// The worker count requested on the command line: "--threads N", default
// hardware_concurrency (min 1) when absent or malformed.
inline unsigned threads_flag(int argc, char** argv) {
  unsigned threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      long v = std::strtol(argv[i + 1], nullptr, 10);
      if (v >= 1) threads = static_cast<unsigned>(v);
    }
  }
  return threads;
}

}  // namespace bdrmap::runtime
