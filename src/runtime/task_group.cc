#include "runtime/task_group.h"

#include <chrono>
#include <utility>

#include "netbase/contract.h"

namespace bdrmap::runtime {

TaskGroup::~TaskGroup() {
  BDRMAP_EXPECTS(unfinished_.load(std::memory_order_acquire) == 0,
                 "TaskGroup destroyed with unjoined tasks; call wait()");
}

void TaskGroup::record_exception() noexcept {
  {
    net::MutexLock lk(mu_);
    if (!eptr_) eptr_ = std::current_exception();
  }
  cancel();  // no point running the siblings of a failed task
}

void TaskGroup::finish_one() noexcept {
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Notify while HOLDING mu_. wait() re-acquires mu_ on its exit path,
    // so the group cannot be destroyed until this critical section ends;
    // notifying after unlocking would let a helping joiner observe
    // unfinished_ == 0, return, and destroy cv_ under our feet.
    net::MutexLock lk(mu_);
    cv_.notify_all();
  }
}

void TaskGroup::spawn(std::function<void()> fn) {
  BDRMAP_EXPECTS(static_cast<bool>(fn), "spawned task must be callable");
  unfinished_.fetch_add(1, std::memory_order_acq_rel);
  auto body = [this, fn = std::move(fn)]() {
    if (!cancelled()) {
      try {
        fn();
      } catch (...) {
        record_exception();
      }
    }
    finish_one();
  };
  if (pool_ == nullptr) {
    body();
  } else {
    pool_->submit(std::move(body));
  }
}

void TaskGroup::wait() {
  while (unfinished_.load(std::memory_order_acquire) > 0) {
    // Help: run pending pool tasks (our own children first — workers pop
    // their deque LIFO) instead of blocking a thread the children need.
    if (pool_ != nullptr && pool_->try_run_one()) continue;
    net::MutexLock lk(mu_);
    // Re-check under the lock, then sleep briefly rather than forever:
    // our remaining children may be RUNNING on workers that are
    // themselves parked in a nested wait, in which case new helpable
    // tasks can appear without any completion signal on cv_. The outer
    // loop re-checks unfinished_ after every wakeup (timeout, notify, or
    // spurious), so no predicate is needed on the wait itself.
    if (unfinished_.load(std::memory_order_acquire) == 0) break;
    cv_.wait_for(mu_, std::chrono::milliseconds(1));
  }
  net::MutexLock lk(mu_);
  if (eptr_) {
    std::exception_ptr e = eptr_;
    eptr_ = nullptr;  // rethrow once; later wait() calls return clean
    std::rethrow_exception(e);
  }
}

}  // namespace bdrmap::runtime
