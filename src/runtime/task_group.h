// Structured fork/join on top of ThreadPool.
//
// A TaskGroup owns a set of spawned tasks and joins them all in wait().
// Three guarantees the raw pool does not give:
//
//   exception propagation — the FIRST exception thrown by any task is
//     captured and rethrown from wait() on the joining thread; later
//     exceptions are swallowed (there is only one joiner to tell). An
//     exception also cancels the group, so queued-but-unstarted siblings
//     are skipped rather than run to no purpose.
//
//   cancellation — cancel() marks the group; tasks that have not started
//     are skipped (they still count as joined), and running tasks can
//     poll cancelled() at their own safe points.
//
//   deadlock-free nesting — wait() HELPS: while the group is unfinished
//     the joining thread executes pending pool tasks (its own children
//     first, since workers pop LIFO). A task may therefore create and
//     wait on a nested TaskGroup even when every pool worker is blocked
//     in a wait of its own — someone always makes progress, including on
//     a one-worker pool.
//
// With a null pool the group degenerates to sequential: spawn() runs the
// task inline (same exception/cancellation semantics), wait() just
// rethrows. Groups must be joined: the destructor contracts that wait()
// was called after the last spawn.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>

#include "netbase/sync.h"
#include "runtime/thread_pool.h"

namespace bdrmap::runtime {

class TaskGroup {
 public:
  // pool may be null (sequential mode) and must outlive the group.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Schedules `fn` (or runs it inline without a pool). Must not race with
  // wait(): spawn from the owning thread or from inside a member task.
  void spawn(std::function<void()> fn);

  // Requests cancellation: unstarted tasks are skipped, running tasks see
  // cancelled() == true. Idempotent; safe from any thread.
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  // Joins every spawned task, helping the pool while it waits, then
  // rethrows the first captured exception (if any). May be called more
  // than once; later calls only rethrow.
  void wait() BDRMAP_EXCLUDES(mu_);

 private:
  void record_exception() noexcept BDRMAP_EXCLUDES(mu_);
  void finish_one() noexcept BDRMAP_EXCLUDES(mu_);

  ThreadPool* pool_;
  std::atomic<bool> cancelled_{false};
  std::atomic<std::size_t> unfinished_{0};

  net::Mutex mu_;                 // pairs with cv_
  net::CondVar cv_;               // signalled when unfinished_ hits zero
  std::exception_ptr eptr_ BDRMAP_GUARDED_BY(mu_);
};

}  // namespace bdrmap::runtime
