// Work-stealing thread pool: the execution substrate for multi-VP inference
// and evaluation sweeps (DESIGN.md §8).
//
// Layout: one deque per worker. A worker pushes and pops its own deque at
// the back (LIFO — newest task first, keeps working sets hot and nested
// fork/join depth-first); idle workers steal from other deques at the
// front (FIFO — oldest task first, which hands thieves the largest
// remaining subtrees). External threads submit round-robin across the
// deques. Workers with nothing to run or steal park on a condition
// variable; every submission unparks one.
//
// Determinism contract: the pool schedules, it never sequences. Tasks must
// be independent (no ordering between tasks in flight) and every ordered
// reduction happens outside the pool, in submission order — parallel_map
// writes slot i of a pre-sized vector and MultiVpExecutor merges in VP
// order, so results are bit-identical at any worker count.
//
// Scheduling telemetry flows through an obs::MetricsRegistry (DESIGN.md
// §11): counters runtime.tasks_submitted / tasks_executed / steals /
// parks / unparks, gauge runtime.queue_depth, and histogram
// runtime.queue_depth_at_submit. Pass a shared registry to fold the pool
// into a run-wide export; with none the pool owns a private registry, so
// the instruments are always live and readable via metrics(). Note
// queued_ stays a separate atomic — it gates parking (control state), the
// gauge is telemetry only.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "netbase/sync.h"
#include "obs/metrics.h"

namespace bdrmap::runtime {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  // registry == nullptr makes the pool own a private registry.
  explicit ThreadPool(unsigned threads = 0,
                      obs::MetricsRegistry* registry = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues one task. Safe from any thread, including pool workers
  // (a worker submits to its own deque; others round-robin).
  void submit(std::function<void()> fn) BDRMAP_EXCLUDES(park_mu_);

  // Runs one pending task on the calling thread if any is available.
  // Returns false when every deque is empty. This is the "help" primitive:
  // TaskGroup::wait() and parallel_for use it so a thread blocked on a
  // join keeps executing work instead of idling (required for nested
  // fork/join to make progress even on a single worker).
  bool try_run_one();

  // The registry the pool's instruments live in (shared or owned).
  // Snapshot it to read consistent counter values; see obs/metrics.h.
  obs::MetricsRegistry& metrics() const { return *registry_; }

  // The pool the calling thread is a worker of, or nullptr.
  static ThreadPool* current();

 private:
  struct Worker {
    net::Mutex mu;
    std::deque<std::function<void()>> tasks BDRMAP_GUARDED_BY(mu);
  };

  void worker_loop(std::size_t index) BDRMAP_EXCLUDES(park_mu_);
  // Pops a task for the thread at `self` (self == size() means an external
  // thread: steal only). Sets *stolen when it came from a foreign deque.
  bool pop_task(std::size_t self, std::function<void()>& out, bool* stolen);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  net::Mutex park_mu_;
  net::CondVar park_cv_;
  bool stopping_ BDRMAP_GUARDED_BY(park_mu_) = false;

  std::atomic<std::uint64_t> next_slot_{0};  // external round-robin cursor
  std::atomic<std::uint64_t> queued_{0};     // tasks enqueued, not yet popped

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter submitted_;
  obs::Counter executed_;
  obs::Counter steals_;
  obs::Counter parks_;
  obs::Counter unparks_;
  obs::Gauge queue_depth_;
  obs::Histogram queue_depth_at_submit_;
};

// Builds a pool for `threads` workers, or nullptr when threads <= 1 —
// the convention every consumer follows for "run sequentially, no pool".
// `registry` is forwarded to the pool (nullptr => pool-private registry).
std::unique_ptr<ThreadPool> make_pool(unsigned threads,
                                      obs::MetricsRegistry* registry = nullptr);

}  // namespace bdrmap::runtime
