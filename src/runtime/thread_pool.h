// Work-stealing thread pool: the execution substrate for multi-VP inference
// and evaluation sweeps (DESIGN.md §8).
//
// Layout: one deque per worker. A worker pushes and pops its own deque at
// the back (LIFO — newest task first, keeps working sets hot and nested
// fork/join depth-first); idle workers steal from other deques at the
// front (FIFO — oldest task first, which hands thieves the largest
// remaining subtrees). External threads submit round-robin across the
// deques. Workers with nothing to run or steal park on a condition
// variable; every submission unparks one.
//
// Determinism contract: the pool schedules, it never sequences. Tasks must
// be independent (no ordering between tasks in flight) and every ordered
// reduction happens outside the pool, in submission order — parallel_map
// writes slot i of a pre-sized vector and MultiVpExecutor merges in VP
// order, so results are bit-identical at any worker count.
//
// Counters (RuntimeStats) are exposed so speedups and scheduling behavior
// are measurable rather than anecdotal (bench_runtime, docs/parallelism.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bdrmap::runtime {

// Scheduling telemetry, cumulative since pool construction.
struct RuntimeStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;    // tasks taken from another worker's deque
  std::uint64_t parks = 0;     // times a worker went to sleep
  std::uint64_t unparks = 0;   // times a sleeping worker was woken
};

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues one task. Safe from any thread, including pool workers
  // (a worker submits to its own deque; others round-robin).
  void submit(std::function<void()> fn);

  // Runs one pending task on the calling thread if any is available.
  // Returns false when every deque is empty. This is the "help" primitive:
  // TaskGroup::wait() and parallel_for use it so a thread blocked on a
  // join keeps executing work instead of idling (required for nested
  // fork/join to make progress even on a single worker).
  bool try_run_one();

  RuntimeStats stats() const;

  // The pool the calling thread is a worker of, or nullptr.
  static ThreadPool* current();

 private:
  struct Worker {
    std::deque<std::function<void()>> tasks;
    std::mutex mu;
  };

  void worker_loop(std::size_t index);
  // Pops a task for the thread at `self` (self == size() means an external
  // thread: steal only). Sets *stolen when it came from a foreign deque.
  bool pop_task(std::size_t self, std::function<void()>& out, bool* stolen);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> next_slot_{0};  // external round-robin cursor
  std::atomic<std::uint64_t> queued_{0};     // tasks enqueued, not yet popped

  mutable std::atomic<std::uint64_t> submitted_{0};
  mutable std::atomic<std::uint64_t> executed_{0};
  mutable std::atomic<std::uint64_t> steals_{0};
  mutable std::atomic<std::uint64_t> parks_{0};
  mutable std::atomic<std::uint64_t> unparks_{0};
};

// Builds a pool for `threads` workers, or nullptr when threads <= 1 —
// the convention every consumer follows for "run sequentially, no pool".
std::unique_ptr<ThreadPool> make_pool(unsigned threads);

}  // namespace bdrmap::runtime
