#include "runtime/multi_vp.h"

#include <chrono>
#include <unordered_set>

#include "core/blocks.h"
#include "netbase/contract.h"
#include "runtime/parallel_for.h"

namespace bdrmap::runtime {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Seed mixer (splitmix64 finalizer over a keyed combination), the same
// idiom as serve::ServeEngine: slice seeds depend only on (base, vp,
// slice index), so the shard schedule — not worker timing — fixes every
// RNG stream.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                    ((c + 1) * 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kInferSalt = 0x1f3a9;

// Ordered reduction over out.per_vp, VP by VP on the joining thread: the
// merged output is a pure function of the per-VP results, independent of
// which worker finished first. Shared by run() and run_sharded().
void reduce_ordered(MultiVpResult& out) {
  for (std::size_t vp = 0; vp < out.per_vp.size(); ++vp) {
    const core::BdrmapResult& r = out.per_vp[vp];
    for (const core::InferredLink& link : r.links) {
      out.merged_links_by_as[link.neighbor_as].push_back(
          out.merged_links.size());
      out.merged_links.emplace_back(vp, link);
    }
    out.total.probes_sent += r.stats.probes_sent;
    out.total.blocks += r.stats.blocks;
    out.total.traces += r.stats.traces;
    out.total.alias_pair_tests += r.stats.alias_pair_tests;
    out.total.routers += r.stats.routers;
    out.total.vp_routers += r.stats.vp_routers;
    out.total.neighbor_routers += r.stats.neighbor_routers;
    out.total.stopset_hits += r.stats.stopset_hits;
    out.total.probe_failures += r.stats.probe_failures;
    out.total.arena_bytes_reserved += r.stats.arena_bytes_reserved;
    out.total.arena_bytes_used += r.stats.arena_bytes_used;
    out.total.arena_allocations += r.stats.arena_allocations;
  }
}
}  // namespace

MultiVpResult MultiVpExecutor::run(const std::vector<VpJob>& jobs) const {
  MultiVpResult out;
  // One tracer serves every job of a run; each VP's stage spans nest under
  // its own vp.run span via the per-thread stacks.
  obs::Tracer* tracer =
      !jobs.empty() && jobs.front().config.obs
          ? jobs.front().config.obs->tracer()
          : nullptr;
  auto t0 = std::chrono::steady_clock::now();
  obs::Span run_span(tracer, "multi_vp.run");
  run_span.note("vps", static_cast<std::int64_t>(jobs.size()));
  // One chunk per VP: a bdrmap run is far coarser than any scheduling
  // overhead, and per-VP granularity gives thieves the most slack.
  out.per_vp = parallel_map<core::BdrmapResult>(
      pool_, jobs.size(),
      [&jobs](std::size_t i) {
        const VpJob& job = jobs[i];
        BDRMAP_EXPECTS(static_cast<bool>(job.make_services),
                       "VpJob needs a probe-services factory");
        obs::Span vp_span(
            job.config.obs ? job.config.obs->tracer() : nullptr, "vp.run");
        vp_span.note("vp", static_cast<std::int64_t>(i));
        auto services = job.make_services();
        core::Bdrmap pipeline(*services, job.inputs, job.config);
        return pipeline.run();
      },
      /*chunk=*/1);
  run_span.close();
  out.times.run_seconds = seconds_since(t0);

  // Ordered reduction, VP by VP on this thread: output is a pure function
  // of the per-VP results, independent of which worker finished first.
  auto r0 = std::chrono::steady_clock::now();
  obs::Span reduce_span(tracer, "multi_vp.reduce");
  reduce_ordered(out);
  reduce_span.close();
  out.times.reduce_seconds = seconds_since(r0);
  return out;
}

MultiVpResult MultiVpExecutor::run_sharded(
    const std::vector<ShardedVpJob>& jobs, const ShardPlan& plan) const {
  MultiVpResult out;
  obs::Tracer* tracer =
      !jobs.empty() && jobs.front().config.obs
          ? jobs.front().config.obs->tracer()
          : nullptr;
  auto t0 = std::chrono::steady_clock::now();
  obs::Span run_span(tracer, "multi_vp.run_sharded");
  run_span.note("vps", static_cast<std::int64_t>(jobs.size()));

  const std::size_t batch =
      plan.ases_per_shard == 0 ? 1 : plan.ases_per_shard;

  // Build the flat shard list on the calling thread: for each VP, the
  // distinct target ASes in §5.3 schedule order (the order
  // build_probe_blocks emits), grouped into batches. The plan is pure
  // input — no worker touches it concurrently.
  struct Shard {
    std::size_t vp;
    std::size_t index_in_vp;  // keys the slice seed
    std::vector<net::AsId> targets;
  };
  std::vector<Shard> shards;
  for (std::size_t vp = 0; vp < jobs.size(); ++vp) {
    const ShardedVpJob& job = jobs[vp];
    BDRMAP_EXPECTS(job.config.target_filter.empty(),
                   "run_sharded owns the target filter; pass it via the "
                   "plan, not the job config");
    auto blocks = core::build_probe_blocks(*job.inputs.origins,
                                           job.inputs.vp_ases);
    std::vector<net::AsId> targets;
    std::unordered_set<net::AsId> seen;
    for (const core::ProbeBlock& b : blocks) {
      if (seen.insert(b.target_as).second) targets.push_back(b.target_as);
    }
    for (std::size_t start = 0; start < targets.size(); start += batch) {
      Shard shard;
      shard.vp = vp;
      shard.index_in_vp = start / batch;
      const std::size_t end = std::min(start + batch, targets.size());
      shard.targets.assign(targets.begin() + static_cast<std::ptrdiff_t>(start),
                           targets.begin() + static_cast<std::ptrdiff_t>(end));
      shards.push_back(std::move(shard));
    }
  }
  run_span.note("shards", static_cast<std::int64_t>(shards.size()));

  // Collect every shard in parallel: each task is a filtered collect with
  // its own probe stack seeded from (base, vp, shard index).
  auto slices = parallel_map<core::CollectedTraces>(
      pool_, shards.size(),
      [&jobs, &shards, &plan](std::size_t i) {
        const Shard& shard = shards[i];
        const ShardedVpJob& job = jobs[shard.vp];
        BDRMAP_EXPECTS(static_cast<bool>(job.make_services),
                       "ShardedVpJob needs a probe-services factory");
        core::BdrmapConfig config = job.config;
        config.target_filter = shard.targets;
        auto services = job.make_services(
            mix(plan.base_seed, shard.vp, shard.index_in_vp));
        core::Bdrmap pipeline(*services, job.inputs, config);
        return pipeline.collect();
      },
      /*chunk=*/1);

  // Stitch the slices back per VP in plan order — shards were emitted in
  // (vp, batch) order, so this append IS the §5.3 schedule order.
  std::vector<core::CollectedTraces> per_vp(jobs.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    per_vp[shards[i].vp].append(std::move(slices[i]));
  }

  // Inference tails, one per VP, seeded off the collection streams.
  out.per_vp = parallel_map<core::BdrmapResult>(
      pool_, jobs.size(),
      [&jobs, &per_vp, &plan](std::size_t vp) {
        const ShardedVpJob& job = jobs[vp];
        obs::Span vp_span(
            job.config.obs ? job.config.obs->tracer() : nullptr, "vp.run");
        vp_span.note("vp", static_cast<std::int64_t>(vp));
        auto services =
            job.make_services(mix(plan.base_seed, vp, kInferSalt));
        core::Bdrmap pipeline(*services, job.inputs, job.config);
        // Exclusive per index: no two workers touch the same slot.
        return pipeline.run_with(std::move(per_vp[vp]));
      },
      /*chunk=*/1);
  run_span.close();
  out.times.run_seconds = seconds_since(t0);

  auto r0 = std::chrono::steady_clock::now();
  obs::Span reduce_span(tracer, "multi_vp.reduce");
  reduce_ordered(out);
  reduce_span.close();
  out.times.reduce_seconds = seconds_since(r0);
  return out;
}

std::vector<core::CollectedTraces> MultiVpExecutor::collect(
    const std::vector<VpJob>& jobs) const {
  obs::Tracer* tracer =
      !jobs.empty() && jobs.front().config.obs
          ? jobs.front().config.obs->tracer()
          : nullptr;
  obs::Span span(tracer, "multi_vp.collect");
  span.note("slices", static_cast<std::int64_t>(jobs.size()));
  return parallel_map<core::CollectedTraces>(
      pool_, jobs.size(),
      [&jobs](std::size_t i) {
        const VpJob& job = jobs[i];
        BDRMAP_EXPECTS(static_cast<bool>(job.make_services),
                       "VpJob needs a probe-services factory");
        auto services = job.make_services();
        core::Bdrmap pipeline(*services, job.inputs, job.config);
        return pipeline.collect();
      },
      /*chunk=*/1);
}

std::vector<core::BdrmapResult> MultiVpExecutor::infer(
    const std::vector<VpJob>& jobs,
    std::vector<core::CollectedTraces> collected) const {
  BDRMAP_EXPECTS(jobs.size() == collected.size(),
                 "one collected bundle per infer job");
  obs::Tracer* tracer =
      !jobs.empty() && jobs.front().config.obs
          ? jobs.front().config.obs->tracer()
          : nullptr;
  obs::Span span(tracer, "multi_vp.infer");
  span.note("vps", static_cast<std::int64_t>(jobs.size()));
  return parallel_map<core::BdrmapResult>(
      pool_, jobs.size(),
      [&jobs, &collected](std::size_t i) {
        const VpJob& job = jobs[i];
        BDRMAP_EXPECTS(static_cast<bool>(job.make_services),
                       "VpJob needs a probe-services factory");
        obs::Span vp_span(
            job.config.obs ? job.config.obs->tracer() : nullptr, "vp.run");
        vp_span.note("vp", static_cast<std::int64_t>(i));
        auto services = job.make_services();
        core::Bdrmap pipeline(*services, job.inputs, job.config);
        // Exclusive per index: no two workers touch the same slot.
        return pipeline.run_with(std::move(collected[i]));
      },
      /*chunk=*/1);
}

}  // namespace bdrmap::runtime
