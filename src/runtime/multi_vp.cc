#include "runtime/multi_vp.h"

#include <chrono>

#include "netbase/contract.h"
#include "runtime/parallel_for.h"

namespace bdrmap::runtime {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

MultiVpResult MultiVpExecutor::run(const std::vector<VpJob>& jobs) const {
  MultiVpResult out;
  // One tracer serves every job of a run; each VP's stage spans nest under
  // its own vp.run span via the per-thread stacks.
  obs::Tracer* tracer =
      !jobs.empty() && jobs.front().config.obs
          ? jobs.front().config.obs->tracer()
          : nullptr;
  auto t0 = std::chrono::steady_clock::now();
  obs::Span run_span(tracer, "multi_vp.run");
  run_span.note("vps", static_cast<std::int64_t>(jobs.size()));
  // One chunk per VP: a bdrmap run is far coarser than any scheduling
  // overhead, and per-VP granularity gives thieves the most slack.
  out.per_vp = parallel_map<core::BdrmapResult>(
      pool_, jobs.size(),
      [&jobs](std::size_t i) {
        const VpJob& job = jobs[i];
        BDRMAP_EXPECTS(static_cast<bool>(job.make_services),
                       "VpJob needs a probe-services factory");
        obs::Span vp_span(
            job.config.obs ? job.config.obs->tracer() : nullptr, "vp.run");
        vp_span.note("vp", static_cast<std::int64_t>(i));
        auto services = job.make_services();
        core::Bdrmap pipeline(*services, job.inputs, job.config);
        return pipeline.run();
      },
      /*chunk=*/1);
  run_span.close();
  out.times.run_seconds = seconds_since(t0);

  // Ordered reduction, VP by VP on this thread: output is a pure function
  // of the per-VP results, independent of which worker finished first.
  auto r0 = std::chrono::steady_clock::now();
  obs::Span reduce_span(tracer, "multi_vp.reduce");
  for (std::size_t vp = 0; vp < out.per_vp.size(); ++vp) {
    const core::BdrmapResult& r = out.per_vp[vp];
    for (const core::InferredLink& link : r.links) {
      out.merged_links_by_as[link.neighbor_as].push_back(
          out.merged_links.size());
      out.merged_links.emplace_back(vp, link);
    }
    out.total.probes_sent += r.stats.probes_sent;
    out.total.blocks += r.stats.blocks;
    out.total.traces += r.stats.traces;
    out.total.alias_pair_tests += r.stats.alias_pair_tests;
    out.total.routers += r.stats.routers;
    out.total.vp_routers += r.stats.vp_routers;
    out.total.neighbor_routers += r.stats.neighbor_routers;
    out.total.stopset_hits += r.stats.stopset_hits;
    out.total.probe_failures += r.stats.probe_failures;
  }
  reduce_span.close();
  out.times.reduce_seconds = seconds_since(r0);
  return out;
}

std::vector<core::CollectedTraces> MultiVpExecutor::collect(
    const std::vector<VpJob>& jobs) const {
  obs::Tracer* tracer =
      !jobs.empty() && jobs.front().config.obs
          ? jobs.front().config.obs->tracer()
          : nullptr;
  obs::Span span(tracer, "multi_vp.collect");
  span.note("slices", static_cast<std::int64_t>(jobs.size()));
  return parallel_map<core::CollectedTraces>(
      pool_, jobs.size(),
      [&jobs](std::size_t i) {
        const VpJob& job = jobs[i];
        BDRMAP_EXPECTS(static_cast<bool>(job.make_services),
                       "VpJob needs a probe-services factory");
        auto services = job.make_services();
        core::Bdrmap pipeline(*services, job.inputs, job.config);
        return pipeline.collect();
      },
      /*chunk=*/1);
}

std::vector<core::BdrmapResult> MultiVpExecutor::infer(
    const std::vector<VpJob>& jobs,
    std::vector<core::CollectedTraces> collected) const {
  BDRMAP_EXPECTS(jobs.size() == collected.size(),
                 "one collected bundle per infer job");
  obs::Tracer* tracer =
      !jobs.empty() && jobs.front().config.obs
          ? jobs.front().config.obs->tracer()
          : nullptr;
  obs::Span span(tracer, "multi_vp.infer");
  span.note("vps", static_cast<std::int64_t>(jobs.size()));
  return parallel_map<core::BdrmapResult>(
      pool_, jobs.size(),
      [&jobs, &collected](std::size_t i) {
        const VpJob& job = jobs[i];
        BDRMAP_EXPECTS(static_cast<bool>(job.make_services),
                       "VpJob needs a probe-services factory");
        obs::Span vp_span(
            job.config.obs ? job.config.obs->tracer() : nullptr, "vp.run");
        vp_span.note("vp", static_cast<std::int64_t>(i));
        auto services = job.make_services();
        core::Bdrmap pipeline(*services, job.inputs, job.config);
        // Exclusive per index: no two workers touch the same slot.
        return pipeline.run_with(std::move(collected[i]));
      },
      /*chunk=*/1);
}

}  // namespace bdrmap::runtime
