#include "runtime/thread_pool.h"

#include "netbase/contract.h"

namespace bdrmap::runtime {

namespace {
// Worker identity for the calling thread: which pool it belongs to and its
// deque index. External threads have pool == nullptr.
thread_local ThreadPool* t_pool = nullptr;
thread_local std::size_t t_index = 0;
}  // namespace

ThreadPool* ThreadPool::current() { return t_pool; }

ThreadPool::ThreadPool(unsigned threads, obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  // Get-or-create: several pools in one process (multi-VP run + nested
  // bench pools) share the run-wide instruments when handed one registry.
  submitted_ = registry_->counter("runtime.tasks_submitted");
  executed_ = registry_->counter("runtime.tasks_executed");
  steals_ = registry_->counter("runtime.steals");
  parks_ = registry_->counter("runtime.parks");
  unparks_ = registry_->counter("runtime.unparks");
  queue_depth_ = registry_->gauge("runtime.queue_depth");
  queue_depth_at_submit_ = registry_->histogram(
      "runtime.queue_depth_at_submit", {0, 1, 2, 4, 8, 16, 32, 64, 128, 256});

  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    net::MutexLock lk(park_mu_);
    stopping_ = true;
  }
  park_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  BDRMAP_EXPECTS(static_cast<bool>(fn), "submitted task must be callable");
  std::size_t slot;
  if (t_pool == this) {
    slot = t_index;  // worker: own deque, LIFO end
  } else {
    slot = static_cast<std::size_t>(
               next_slot_.fetch_add(1, std::memory_order_relaxed)) %
           workers_.size();
  }
  {
    net::MutexLock lk(workers_[slot]->mu);
    workers_[slot]->tasks.push_back(std::move(fn));
  }
  submitted_.inc();
  const std::uint64_t depth =
      queued_.fetch_add(1, std::memory_order_release) + 1;
  queue_depth_.set(static_cast<std::int64_t>(depth));
  queue_depth_at_submit_.observe(depth);
  // Bridge the park mutex so a worker between its predicate check and its
  // sleep cannot miss this submission (classic lost-wakeup window: the
  // queue counter is not updated under park_mu_).
  { net::MutexLock lk(park_mu_); }
  park_cv_.notify_one();
}

bool ThreadPool::pop_task(std::size_t self, std::function<void()>& out,
                          bool* stolen) {
  const std::size_t n = workers_.size();
  // Own deque first, from the back: depth-first on nested fork/join.
  if (self < n) {
    Worker& w = *workers_[self];
    net::MutexLock lk(w.mu);
    if (!w.tasks.empty()) {
      out = std::move(w.tasks.back());
      w.tasks.pop_back();
      queue_depth_.set(static_cast<std::int64_t>(
          queued_.fetch_sub(1, std::memory_order_release) - 1));
      *stolen = false;
      return true;
    }
  }
  // Steal from the front of the other deques, scanning from the slot after
  // ours so thieves spread out instead of hammering worker 0.
  for (std::size_t k = 1; k <= n; ++k) {
    std::size_t victim = (self + k) % n;
    if (victim == self) continue;
    Worker& w = *workers_[victim];
    net::MutexLock lk(w.mu);
    if (!w.tasks.empty()) {
      out = std::move(w.tasks.front());
      w.tasks.pop_front();
      queue_depth_.set(static_cast<std::int64_t>(
          queued_.fetch_sub(1, std::memory_order_release) - 1));
      *stolen = true;
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  bool stolen = false;
  std::size_t self = (t_pool == this) ? t_index : workers_.size();
  if (!pop_task(self, task, &stolen)) return false;
  if (stolen) steals_.inc();
  task();
  executed_.inc();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_pool = this;
  t_index = index;
  for (;;) {
    if (try_run_one()) continue;
    net::MutexLock lk(park_mu_);
    if (stopping_) return;
    if (queued_.load(std::memory_order_acquire) > 0) continue;  // recheck
    parks_.inc();
    // Loop around a plain wait: a CondVar wait can return spuriously, and
    // a predicate lambda would be analyzed as a function that does not
    // hold park_mu_ (see netbase/sync.h).
    while (!stopping_ && queued_.load(std::memory_order_acquire) == 0) {
      park_cv_.wait(park_mu_);
    }
    unparks_.inc();
    if (stopping_) return;
  }
}

std::unique_ptr<ThreadPool> make_pool(unsigned threads,
                                      obs::MetricsRegistry* registry) {
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads, registry);
}

}  // namespace bdrmap::runtime
