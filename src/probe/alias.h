// Alias-resolution probe primitives: IP-ID sampling and Mercator UDP.
//
// §5.3 of the paper resolves aliases with Ally (shared IP-ID counter),
// Mercator (common source on ICMP port unreachable) and MIDAR-style
// monotonicity tests. This module simulates what those probes would
// observe: each router evolves an IP-ID counter per its behaviour model
// (shared / per-interface / random / zero), advanced by a background
// traffic velocity plus one per reply it sends.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "netbase/rng.h"
#include "probe/tracer.h"
#include "probe/types.h"
#include "route/fib.h"
#include "topo/internet.h"

namespace bdrmap::probe {

class AliasProber {
 public:
  AliasProber(const topo::Internet& net, const route::Fib& fib,
              TracerouteEngine& tracer, std::uint64_t seed,
              obs::MetricsRegistry* metrics = nullptr)
      : net_(net), fib_(fib), tracer_(tracer), rng_(seed) {
    if (metrics) {
      udp_probes_ = metrics->counter("probe.udp_probes");
      ipid_samples_ = metrics->counter("probe.ipid_samples");
    }
  }

  // Mercator: UDP probe to `addr`; returns the source address of the ICMP
  // port-unreachable reply (the interface the router transmits from), if
  // the address is reachable and the router answers UDP.
  std::optional<Ipv4Addr> udp_probe(Ipv4Addr addr);

  // Echo probe reading the IP-ID of the reply at virtual time `t` seconds.
  std::optional<std::uint16_t> ipid_sample(Ipv4Addr addr, double t);

  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  std::uint16_t next_ipid(const topo::Router& router, net::IfaceId iface,
                          double t);

  const topo::Internet& net_;
  const route::Fib& fib_;
  TracerouteEngine& tracer_;
  net::Rng rng_;
  // Replies sent per counter (router id, or iface id for per-interface
  // counters) — each reply consumes one IP-ID.
  std::unordered_map<std::uint64_t, std::uint32_t> reply_counts_;
  std::uint64_t probes_sent_ = 0;
  // No-op handles unless a registry was supplied at construction.
  obs::Counter udp_probes_;
  obs::Counter ipid_samples_;
};

// Bundles the probe engines into the ProbeServices interface the inference
// core consumes. This is the "monolithic" deployment (prober and inference
// on the same machine); remote::RemoteProbeServices is the §5.8 split.
class LocalProbeServices final : public ProbeServices {
 public:
  LocalProbeServices(const topo::Internet& net, const route::Fib& fib,
                     topo::Vp vp, std::uint64_t seed,
                     TracerConfig tracer_config = {})
      : tracer_(net, fib, vp, seed, tracer_config),
        prober_(net, fib, tracer_, seed ^ 0x5a, tracer_config.metrics) {}

  TraceResult trace(Ipv4Addr dst, const StopFn& stop) override {
    return tracer_.trace(dst, stop);
  }
  void prewalk_wave(const std::vector<Ipv4Addr>& dsts) override {
    tracer_.prewalk_wave(dsts);
  }
  std::optional<Ipv4Addr> udp_probe(Ipv4Addr addr) override {
    return prober_.udp_probe(addr);
  }
  std::optional<std::uint16_t> ipid_sample(Ipv4Addr addr, double t) override {
    return prober_.ipid_sample(addr, t);
  }
  std::optional<bool> timestamp_probe(Ipv4Addr path_dst,
                                      Ipv4Addr candidate) override {
    return tracer_.timestamp_probe(path_dst, candidate);
  }
  std::uint64_t probes_sent() const override {
    return tracer_.probes_sent() + prober_.probes_sent();
  }

  TracerouteEngine& tracer() { return tracer_; }

 private:
  TracerouteEngine tracer_;
  AliasProber prober_;
};

}  // namespace bdrmap::probe
