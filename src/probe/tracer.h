// Simulated Paris traceroute over the synthetic Internet.
//
// Reproduces the traceroute idiosyncrasies the paper's heuristics exist to
// handle (§4): replies normally come from the ingress interface of the
// router where the TTL expired, but a router may instead reply from the
// interface facing the probe source (third-party addresses), or from the
// virtual-router interface that would have forwarded the probe; enterprise
// borders answer for themselves but firewall probes that would transit into
// their network; silent routers never answer; rate-limited routers answer
// probabilistically; echo replies carry the probed address as their source.
// Paris probing is implicit: the FIB is deterministic per flow, so every
// TTL of a trace follows the same path.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netbase/arena.h"
#include "netbase/rng.h"
#include "obs/metrics.h"
#include "probe/trace_batch.h"
#include "probe/types.h"
#include "route/fib.h"
#include "topo/generator.h"
#include "topo/internet.h"

namespace bdrmap::probe {

struct TracerConfig {
  int max_ttl = 48;
  // scamper-style gap limit: stop after this many consecutive non-replies.
  int gap_limit = 5;
  // Paris traceroute (the default, as in the paper [2]): every probe of a
  // trace carries the same flow tuple, so ECMP hashing keeps the path
  // stable. false = classic traceroute: each TTL's probe hashes
  // differently and equal-cost paths interleave, manufacturing false
  // adjacencies.
  bool paris = true;
  // Adversarial reply spoofing (eval scenario families): with this
  // probability a time-exceeded reply's source address is forged to a host
  // address inside the probed destination's covering prefix — the
  // spoofed/NATed-middlebox pathology that makes a transit hop look like
  // the destination network. 0 (default) leaves the reply plane honest and
  // consumes no RNG draws, so existing seeds stay bit-identical.
  double spoof_reply_p = 0.0;
  // When set, per-type probe counters (probe.*) report here; nullptr
  // (default) keeps them no-ops. Shared by every engine of a run — the
  // counters are get-or-create, so per-VP engines aggregate.
  obs::MetricsRegistry* metrics = nullptr;
};

class TracerouteEngine {
 public:
  TracerouteEngine(const topo::Internet& net, const route::Fib& fib,
                   topo::Vp vp, std::uint64_t seed, TracerConfig config = {});

  TraceResult trace(Ipv4Addr dst, const StopFn& stop = nullptr);

  // Batched probe-wave execution (DESIGN.md §14): pre-walks the forward
  // paths of the given future trace() destinations in one lockstep
  // TraceBatch pass. Each subsequent trace() consumes its stashed path
  // instead of walking alone; the reply plane (RNG draws, stop-set
  // evaluation, probe accounting) is untouched, so results stay
  // bit-identical to unbatched tracing in the same call order. Calling
  // this starts a new wave: any unconsumed stash from the previous wave
  // is dropped and the wave arena is recycled. No-op in classic
  // (non-Paris) mode, where trace() itself batches its per-TTL flows.
  void prewalk_wave(const std::vector<Ipv4Addr>& dsts);

  // ICMP echo probe to `addr` itself (used for alias resolution / §5.4.8
  // evidence). Returns the reply source, which for echo replies is the
  // probed address.
  std::optional<ReplyKind> ping(Ipv4Addr addr);

  // True iff a probe to `addr` is delivered to the router or host owning
  // it (considers routing and edge firewalls). Cached per address.
  bool reaches_addr(Ipv4Addr addr) const;

  // IP prespecified-timestamp probe ([26]): does `candidate` stamp probes
  // toward `path_dst`? true = stamped (inbound interface on the path),
  // false = probe delivered unstamped, nullopt = no evidence (the
  // candidate's router ignores the option or the probe was lost).
  std::optional<bool> timestamp_probe(Ipv4Addr path_dst, Ipv4Addr candidate);

  // The interface `router` transmits packets toward this VP from.
  // Memoized: the kEgressToSrc reply policy and Mercator UDP probing ask
  // this for the same routers over and over with a fixed VP address.
  std::optional<net::IfaceId> egress_iface_to_vp(net::RouterId router) const;

  std::uint64_t probes_sent() const { return probes_sent_; }
  const topo::Vp& vp() const { return vp_; }

 private:
  // The reply source address a router uses for a time-exceeded message.
  Ipv4Addr reply_source(net::RouterId router, net::IfaceId ingress,
                        const route::Fib::RouteQuery& dst_query) const;
  // Applies TracerConfig::spoof_reply_p to a time-exceeded reply source.
  Ipv4Addr maybe_spoof(Ipv4Addr real, Ipv4Addr probe_dst);
  bool reaches(net::RouterId router, Ipv4Addr probe_dst) const;

  const topo::Internet& net_;
  const route::Fib& fib_;
  topo::Vp vp_;
  net::Rng rng_;
  TracerConfig config_;
  std::uint64_t probes_sent_ = 0;
  // No-op handles unless TracerConfig::metrics was set.
  obs::Counter traces_;
  obs::Counter trace_packets_;
  obs::Counter pings_;
  obs::Counter timestamp_probes_;
  // The VP's own address resolved once for the engine's lifetime.
  route::Fib::RouteQuery vp_query_;
  mutable std::unordered_map<std::uint32_t, bool> reach_cache_;
  // router -> egress interface toward the VP (invalid == no egress).
  mutable std::unordered_map<std::uint32_t, net::IfaceId> vp_egress_cache_;

  // The shared pure-walk engine: trace() (Paris and classic), reaches()
  // and timestamp_probe() all derive their forward paths from it.
  // Mutable because reaches() is logically const but reuses the batch
  // scratch and the solo arena (same discipline as reach_cache_).
  mutable TraceBatch batch_;
  // Solo walks (one flow) recycle this arena per call; stashed wave
  // paths live in wave_arena_, reset only when a new wave starts.
  mutable net::Arena solo_arena_;
  net::Arena wave_arena_;
  std::unordered_map<std::uint32_t, PrewalkedPath> wave_;
  std::vector<FlowSpec> wave_flows_;          // scratch
  std::vector<PrewalkedPath> wave_paths_;     // scratch
  std::vector<PathHop> classic_scratch_;      // classic-mode spliced path
};

}  // namespace bdrmap::probe
