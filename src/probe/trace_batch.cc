#include "probe/trace_batch.h"

namespace bdrmap::probe {

TraceBatch::TraceBatch(const topo::Internet& net, const route::Fib& fib,
                       obs::MetricsRegistry* metrics)
    : net_(net), fib_(fib) {
  if (metrics) {
    batches_ = metrics->counter("probe.batch.batches");
    flows_ = metrics->counter("probe.batch.flows");
    flows_per_batch_ = metrics->histogram("probe.batch.flows_per_batch",
                                          {1, 2, 4, 8, 16, 32, 64, 128});
  }
}

void TraceBatch::prewalk(net::RouterId start, const FlowSpec* flows,
                         std::size_t n, net::Arena& arena,
                         PrewalkedPath* out) {
  if (n == 0) return;
  batches_.inc();
  flows_.inc(n);
  flows_per_batch_.observe(n);

  // Resolve every destination once, allocate every hop array up front.
  slots_.assign(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].query = flows[i].shared_query ? *flows[i].shared_query
                                         : fib_.query(flows[i].dst);
    const int limit = flows[i].limit;
    slots_[i] = arena.allocate<PathHop>(
        limit > 0 ? static_cast<std::size_t>(limit) : 0);
    out[i].hops = slots_[i];
    out[i].count = 0;
  }

  cur_.assign(n, start);
  ingress_.assign(n, net::IfaceId{});
  entered_.assign(n, 0);
  live_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (flows[i].limit > 0) live_.push_back(static_cast<std::uint32_t>(i));
  }

  // BDRMAP_HOT_BEGIN(probe_batch_advance) — BDR104: the lockstep sweep.
  // One hop for every live flow per pass; pure FIB reads, no allocation
  // beyond the up-front arena grab, no node containers.
  int step = 0;
  while (!live_.empty()) {
    std::size_t w = 0;
    for (std::size_t k = 0; k < live_.size(); ++k) {
      const std::uint32_t i = live_[k];
      const FlowSpec& flow = flows[i];
      PrewalkedPath& path = out[i];
      const net::RouterId cur = cur_[i];

      PathHop node;
      node.router = cur;
      node.ingress = ingress_[i];
      node.is_delivery = fib_.delivered_at(cur, path.query);
      if (node.is_delivery) {
        node.dst_is_own_addr = fib_.addr_owned_by(cur, path.query);
      }
      // Enterprise edge filtering: the border answers for itself but
      // drops probes transiting into the network (§4 challenge 3).
      node.firewalled = entered_[i] != 0 &&
                        net_.router(cur).behavior.firewall_edge &&
                        !node.dst_is_own_addr;
      slots_[i][path.count] = node;
      ++path.count;

      if (node.is_delivery || node.firewalled || step + 1 >= flow.limit) {
        continue;  // flow retires
      }
      auto hop = fib_.next_hop(cur, path.query, flow.flow_salt);
      if (!hop) continue;  // no route: flow retires
      entered_[i] = hop->crossed_interdomain ? 1 : 0;
      cur_[i] = hop->router;
      ingress_[i] = hop->ingress;
      live_[w++] = i;  // flow survives into the next sweep
    }
    live_.resize(w);
    ++step;
  }
  // BDRMAP_HOT_END(probe_batch_advance)
}

}  // namespace bdrmap::probe
