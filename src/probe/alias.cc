#include "probe/alias.h"

namespace bdrmap::probe {

std::optional<Ipv4Addr> AliasProber::udp_probe(Ipv4Addr addr) {
  ++probes_sent_;
  udp_probes_.inc();
  auto iface = net_.iface_at(addr);
  if (!iface) return std::nullopt;  // hosts don't emit port unreachables here
  net::RouterId owner = net_.iface(*iface).router;
  const auto& router = net_.router(owner);
  if (!router.behavior.responds_udp) return std::nullopt;
  if (!tracer_.reaches_addr(addr)) return std::nullopt;
  if (rng_.chance(router.behavior.rate_limit_drop)) return std::nullopt;
  // The reply is transmitted from the interface toward the prober; if the
  // router cannot resolve a route back, it uses its canonical address.
  // The tracer memoizes this per-router lookup (the VP address is fixed).
  if (auto out = tracer_.egress_iface_to_vp(owner)) {
    return net_.iface(*out).addr;
  }
  return net_.canonical_addr(owner);
}

std::uint16_t AliasProber::next_ipid(const topo::Router& router,
                                     net::IfaceId iface, double t) {
  switch (router.behavior.ipid) {
    case topo::IpidKind::kSharedCounter: {
      auto& count = reply_counts_[router.id.value];
      ++count;
      double base = router.behavior.ipid_init +
                    router.behavior.ipid_velocity * t +
                    static_cast<double>(count);
      return static_cast<std::uint16_t>(
          static_cast<std::uint64_t>(base) & 0xffff);
    }
    case topo::IpidKind::kPerInterface: {
      std::uint64_t key = 0x100000000ULL | iface.value;
      auto& count = reply_counts_[key];
      ++count;
      // Each interface has its own counter: decorrelated initial value and
      // velocity derived from the interface id.
      std::uint32_t init = router.behavior.ipid_init ^
                           static_cast<std::uint16_t>(iface.value * 40503u);
      double velocity =
          router.behavior.ipid_velocity * (1.0 + (iface.value % 7) * 0.37);
      double base = init + velocity * t + static_cast<double>(count);
      return static_cast<std::uint16_t>(
          static_cast<std::uint64_t>(base) & 0xffff);
    }
    case topo::IpidKind::kRandom:
      return static_cast<std::uint16_t>(rng_.uniform(0, 0xffff));
    case topo::IpidKind::kZero:
      return 0;
  }
  return 0;
}

std::optional<std::uint16_t> AliasProber::ipid_sample(Ipv4Addr addr,
                                                      double t) {
  ++probes_sent_;
  ipid_samples_.inc();
  auto iface = net_.iface_at(addr);
  if (!iface) return std::nullopt;
  net::RouterId owner = net_.iface(*iface).router;
  const auto& router = net_.router(owner);
  if (!router.behavior.responds_echo) return std::nullopt;
  if (!tracer_.reaches_addr(addr)) return std::nullopt;
  if (rng_.chance(router.behavior.rate_limit_drop)) return std::nullopt;
  return next_ipid(router, *iface, t);
}

}  // namespace bdrmap::probe
