#include "probe/tracer.h"

namespace bdrmap::probe {

using net::IfaceId;
using net::RouterId;

TracerouteEngine::TracerouteEngine(const topo::Internet& net,
                                   const route::Fib& fib, topo::Vp vp,
                                   std::uint64_t seed, TracerConfig config)
    : net_(net), fib_(fib), vp_(vp), rng_(seed), config_(config),
      vp_query_(fib.query(vp.addr)), batch_(net, fib, config.metrics) {
  if (config_.metrics) {
    traces_ = config_.metrics->counter("probe.traces");
    trace_packets_ = config_.metrics->counter("probe.trace_packets");
    pings_ = config_.metrics->counter("probe.pings");
    timestamp_probes_ = config_.metrics->counter("probe.timestamp_probes");
  }
}

std::optional<IfaceId> TracerouteEngine::egress_iface_to_vp(
    RouterId router) const {
  auto it = vp_egress_cache_.find(router.value);
  if (it == vp_egress_cache_.end()) {
    auto out = fib_.egress_iface(router, vp_query_);
    it = vp_egress_cache_.emplace(router.value, out.value_or(IfaceId{}))
             .first;
  }
  if (!it->second.valid()) return std::nullopt;
  return it->second;
}

Ipv4Addr TracerouteEngine::reply_source(
    RouterId router, IfaceId ingress,
    const route::Fib::RouteQuery& dst_query) const {
  const auto& behavior = net_.router(router).behavior;
  switch (behavior.reply_addr) {
    case topo::ReplyAddrPolicy::kEgressToSrc: {
      // IETF-advised: source the reply from the interface transmitting it —
      // the origin of third-party addresses (§4 challenge 2).
      if (auto out = egress_iface_to_vp(router)) {
        return net_.iface(*out).addr;
      }
      break;
    }
    case topo::ReplyAddrPolicy::kVirtualRouter: {
      // The virtual router that would have forwarded the probe replies
      // with its own interface (§4 challenge 4).
      if (auto out = fib_.egress_iface(router, dst_query)) {
        return net_.iface(*out).addr;
      }
      break;
    }
    case topo::ReplyAddrPolicy::kIngress:
      break;
  }
  if (ingress.valid()) return net_.iface(ingress).addr;
  // First hop (no modelled VP-facing link): real gateways answer from a
  // LAN/internal interface, not an interdomain one — prefer the lowest
  // internal-link address over the canonical address, which could be a
  // neighbor-supplied point-to-point address.
  Ipv4Addr best;
  bool found = false;
  for (net::IfaceId i : net_.router(router).ifaces) {
    const auto& iface = net_.iface(i);
    if (net_.link(iface.link).kind != topo::LinkKind::kInternal) continue;
    if (!found || iface.addr < best) {
      best = iface.addr;
      found = true;
    }
  }
  return found ? best : net_.canonical_addr(router);
}

Ipv4Addr TracerouteEngine::maybe_spoof(Ipv4Addr real, Ipv4Addr probe_dst) {
  // Guard on p > 0 before drawing so the honest configuration consumes no
  // RNG state (bit-identical traces for every pre-existing seed).
  if (config_.spoof_reply_p <= 0.0 || !rng_.chance(config_.spoof_reply_p)) {
    return real;
  }
  // Forge a host address inside the destination's /24: the reply appears
  // to originate in the destination network even though the true replier
  // sits mid-path (TraceHop::truth_router still records reality).
  std::uint32_t host = rng_.uniform(1, 254);
  return Ipv4Addr((probe_dst.value() & 0xffffff00u) | host);
}

void TracerouteEngine::prewalk_wave(const std::vector<Ipv4Addr>& dsts) {
  if (!config_.paris || dsts.empty()) return;
  // Starting a wave drops any unconsumed stash: the wave arena is about
  // to be recycled, which would dangle the stale paths.
  wave_.clear();
  wave_arena_.reset();
  wave_flows_.clear();
  for (Ipv4Addr dst : dsts) {
    wave_flows_.push_back({dst, 0, config_.max_ttl, nullptr});
  }
  wave_paths_.assign(wave_flows_.size(), PrewalkedPath{});
  batch_.prewalk(vp_.attach_router, wave_flows_.data(), wave_flows_.size(),
                 wave_arena_, wave_paths_.data());
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    // First writer wins on duplicate destinations; the loser re-walks
    // solo in trace() — same pure path either way.
    wave_.emplace(dsts[i].value(), wave_paths_[i]);
  }
}

TraceResult TracerouteEngine::trace(Ipv4Addr dst, const StopFn& stop) {
  traces_.inc();
  TraceResult result;
  result.dst = dst;

  // The forward path, pre-walked (TraceBatch, DESIGN.md §14): either
  // stashed by a prewalk_wave() call or walked solo here. The walk is a
  // pure function of the FIB, so both routes yield identical paths; all
  // RNG/stop-set consumption happens in the reply loop below.
  PrewalkedPath path;
  if (config_.paris) {
    auto it = wave_.find(dst.value());
    if (it != wave_.end()) {
      path = it->second;  // hops stay valid until the next wave starts
      wave_.erase(it);
    } else {
      solo_arena_.reset();
      FlowSpec flow{dst, 0, config_.max_ttl, nullptr};
      batch_.prewalk(vp_.attach_router, &flow, 1, solo_arena_, &path);
    }
  } else {
    // Classic traceroute: each TTL's probe hashes to its own ECMP choice;
    // the recorded "path" is hop k of the salt-k walk — which may splice
    // different true paths together (the [2] artifact). One RouteQuery
    // resolution is shared by every per-TTL flow; the batch advances all
    // of them in lockstep.
    solo_arena_.reset();
    const route::Fib::RouteQuery q = fib_.query(dst);
    wave_flows_.clear();
    for (int ttl = 1; ttl <= config_.max_ttl; ++ttl) {
      wave_flows_.push_back({dst, static_cast<std::uint32_t>(ttl), ttl, &q});
    }
    wave_paths_.assign(wave_flows_.size(), PrewalkedPath{});
    batch_.prewalk(vp_.attach_router, wave_flows_.data(), wave_flows_.size(),
                   solo_arena_, wave_paths_.data());
    classic_scratch_.clear();
    for (int ttl = 1; ttl <= config_.max_ttl; ++ttl) {
      const PrewalkedPath& probe_path =
          wave_paths_[static_cast<std::size_t>(ttl - 1)];
      if (probe_path.count == 0) break;
      const PathHop& last = probe_path.hops[probe_path.count - 1];
      classic_scratch_.push_back(last);
      if (static_cast<int>(probe_path.count) < ttl) {
        // The salt-ttl walk ended early (delivery/firewall/no route):
        // its terminal node is recorded and probing stops.
        break;
      }
      if (last.is_delivery || last.firewalled) break;
    }
    path.query = q;
    path.hops = classic_scratch_.data();
    path.count = static_cast<std::uint32_t>(classic_scratch_.size());
  }
  const route::Fib::RouteQuery& q = path.query;

  // Generate per-TTL replies along the walked path.
  int gap = 0;
  for (std::uint32_t hop_i = 0; hop_i < path.count; ++hop_i) {
    const PathHop& node = path.hops[hop_i];
    ++probes_sent_;
    trace_packets_.inc();
    const auto& router = net_.router(node.router);
    TraceHop hop;
    hop.truth_router = node.router;

    if (node.is_delivery && node.dst_is_own_addr) {
      // The destination is the router itself: an echo reply whose source is
      // the probed address (§4: useless for ownership inference).
      if (router.behavior.responds_echo &&
          !rng_.chance(router.behavior.rate_limit_drop)) {
        hop.addr = dst;
        hop.kind = ReplyKind::kEchoReply;
        result.reached_dst = true;
      }
      result.hops.push_back(hop);
      break;
    }

    if (node.is_delivery) {
      // A host prefix attaches here: the probe whose TTL expires at this
      // router still elicits a normal time-exceeded reply (this is how the
      // customer's border appears in traceroute at all); the next TTL
      // reaches the end host, which may answer.
      if (router.behavior.sends_ttl_expired &&
          !rng_.chance(router.behavior.rate_limit_drop)) {
        hop.addr = maybe_spoof(reply_source(node.router, node.ingress, q), dst);
        hop.kind = ReplyKind::kTimeExceeded;
      }
      ++probes_sent_;  // the extra host-directed probe
      trace_packets_.inc();
      result.hops.push_back(hop);
      if (hop.kind != ReplyKind::kNone && stop && stop(hop.addr)) {
        result.stopped_by_stopset = true;
        break;
      }
      TraceHop host_hop;
      host_hop.truth_router = node.router;
      const auto* ap = net_.announced_match(dst);
      if (!node.firewalled && ap && rng_.chance(ap->dest_responsiveness)) {
        host_hop.addr = dst;
        host_hop.kind = ReplyKind::kEchoReply;
        result.reached_dst = true;
      }
      result.hops.push_back(host_hop);
      break;
    }

    // Intermediate hop: ICMP time exceeded, maybe.
    if (router.behavior.sends_ttl_expired &&
        !rng_.chance(router.behavior.rate_limit_drop)) {
      hop.addr = maybe_spoof(reply_source(node.router, node.ingress, q), dst);
      hop.kind = ReplyKind::kTimeExceeded;
    }
    result.hops.push_back(hop);

    if (hop.kind == ReplyKind::kNone) {
      if (++gap >= config_.gap_limit) break;
    } else {
      gap = 0;
      if (stop && stop(hop.addr)) {
        result.stopped_by_stopset = true;
        break;
      }
    }
  }
  return result;
}

bool TracerouteEngine::reaches(RouterId router, Ipv4Addr probe_dst) const {
  // Derived from the shared pure walk (trace_batch.h): the probe reaches
  // `router` iff the path terminates there as an unfirewalled delivery
  // (edge filters still permit traffic to the border's own addresses,
  // which the walk's firewalled flag already exempts).
  solo_arena_.reset();
  FlowSpec flow{probe_dst, 0, config_.max_ttl, nullptr};
  PrewalkedPath path;
  batch_.prewalk(vp_.attach_router, &flow, 1, solo_arena_, &path);
  if (path.count == 0) return false;
  const PathHop& last = path.hops[path.count - 1];
  return last.is_delivery && !last.firewalled && last.router == router;
}

bool TracerouteEngine::reaches_addr(Ipv4Addr addr) const {
  auto it = reach_cache_.find(addr.value());
  if (it != reach_cache_.end()) return it->second;
  bool ok = false;
  if (auto iface = net_.iface_at(addr)) {
    ok = reaches(net_.iface(*iface).router, addr);
  } else if (const auto* ap = net_.announced_match(addr)) {
    ok = reaches(ap->host_router, addr);
  }
  reach_cache_.emplace(addr.value(), ok);
  return ok;
}

std::optional<bool> TracerouteEngine::timestamp_probe(Ipv4Addr path_dst,
                                                      Ipv4Addr candidate) {
  ++probes_sent_;
  timestamp_probes_.inc();
  auto cand_iface = net_.iface_at(candidate);
  if (!cand_iface) return std::nullopt;  // not a router interface at all
  const auto& cand_router = net_.router(net_.iface(*cand_iface).router);
  if (!cand_router.behavior.honors_timestamp) return std::nullopt;

  // Walk the forward path; the candidate stamps iff it is the ingress
  // interface of some hop (the semantics [26] exploits: a router stamps
  // with the address of the interface the packet arrived on). The path
  // comes from the shared pure walk (trace_batch.h).
  solo_arena_.reset();
  FlowSpec flow{path_dst, 0, config_.max_ttl, nullptr};
  PrewalkedPath path;
  batch_.prewalk(vp_.attach_router, &flow, 1, solo_arena_, &path);
  bool delivered = false;
  bool stamped = false;
  for (std::uint32_t i = 0; i < path.count; ++i) {
    const PathHop& node = path.hops[i];
    if (node.ingress.valid() && net_.iface(node.ingress).addr == candidate) {
      stamped = true;
    }
    if (node.is_delivery) {
      delivered = true;
      break;
    }
  }
  if (stamped) return true;
  // Negative evidence only if the probe actually completed its journey.
  if (delivered) return false;
  return std::nullopt;
}

std::optional<ReplyKind> TracerouteEngine::ping(Ipv4Addr addr) {
  ++probes_sent_;
  pings_.inc();
  auto iface = net_.iface_at(addr);
  if (iface) {
    RouterId owner = net_.iface(*iface).router;
    if (!reaches(owner, addr)) return std::nullopt;
    const auto& behavior = net_.router(owner).behavior;
    if (!behavior.responds_echo || rng_.chance(behavior.rate_limit_drop)) {
      return std::nullopt;
    }
    return ReplyKind::kEchoReply;
  }
  const auto* ap = net_.announced_match(addr);
  if (!ap) return std::nullopt;
  if (!reaches(ap->host_router, addr)) return std::nullopt;
  if (!rng_.chance(ap->dest_responsiveness)) return std::nullopt;
  return ReplyKind::kEchoReply;
}

}  // namespace bdrmap::probe
