// Probe-level observation types shared by the probe engine, the inference
// core, and the remote (split prober/controller) deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "netbase/ids.h"
#include "netbase/ipv4.h"

namespace bdrmap::probe {

using net::Ipv4Addr;

enum class ReplyKind : std::uint8_t {
  kNone,             // * — no response
  kTimeExceeded,     // ICMP time exceeded (the hop addresses bdrmap trusts)
  kEchoReply,        // ICMP echo reply (source == probed address, §4)
  kDestUnreachable,  // ICMP destination unreachable
};

struct TraceHop {
  Ipv4Addr addr;  // zero when kind == kNone
  ReplyKind kind = ReplyKind::kNone;
  // Ground-truth annotation for evaluation ONLY — the inference core never
  // reads it (eval:: uses it to score where each reply really came from).
  net::RouterId truth_router;
};

struct TraceResult {
  Ipv4Addr dst;
  std::vector<TraceHop> hops;
  bool reached_dst = false;     // destination itself replied
  bool stopped_by_stopset = false;  // doubletree stop set halted the trace
  // The probe could not be executed at all (§5.8 degraded channel: the
  // controller abandoned it after its retry budget). No observation was
  // made — distinct from a trace whose hops were all silent.
  bool failed = false;
};

// Predicate the driver passes in: "stop probing past this address" —
// doubletree's stop set (§5.3). Evaluated on responsive hop addresses.
using StopFn = std::function<bool(Ipv4Addr)>;

// The probing capabilities a measurement device exposes. core::Bdrmap is
// written against this interface so the same inference code runs on a
// monolithic prober (probe::LocalProbeServices) or the split low-resource
// deployment of §5.8 (remote::RemoteProbeServices).
class ProbeServices {
 public:
  virtual ~ProbeServices() = default;

  // Paris traceroute with ICMP echo probes toward `dst`.
  virtual TraceResult trace(Ipv4Addr dst, const StopFn& stop) = 0;

  // Optional batched probe-wave hint (DESIGN.md §14): the caller is about
  // to trace() each of `dsts`, in order. Implementations with a local FIB
  // pre-walk every forward path in one lockstep pass so the subsequent
  // traces skip their per-flow walks; results are bit-identical either
  // way (the walk is pure — replies, RNG and stop sets are evaluated in
  // trace() itself). The default does nothing, which is always correct —
  // the split remote deployment ignores waves entirely.
  virtual void prewalk_wave(const std::vector<Ipv4Addr>& dsts) {
    (void)dsts;
  }

  // UDP probe to a high port (Mercator): the source address of the ICMP
  // port-unreachable reply, if the router answers.
  virtual std::optional<Ipv4Addr> udp_probe(Ipv4Addr addr) = 0;

  // ICMP echo probe reading the IP-ID of the reply at virtual time `t`
  // seconds (Ally / MIDAR velocity sampling).
  virtual std::optional<std::uint16_t> ipid_sample(Ipv4Addr addr,
                                                   double t) = 0;

  // IP prespecified-timestamp probe ([26]): a probe toward `path_dst`
  // carrying a timestamp slot prespecified for `candidate`. Returns true
  // if `candidate` stamped it (it is an inbound interface on the forward
  // path), false if the probe completed without a stamp, nullopt when no
  // evidence could be gathered (option stripped / router ignores it).
  virtual std::optional<bool> timestamp_probe(Ipv4Addr path_dst,
                                              Ipv4Addr candidate) = 0;

  // Number of probe packets sent so far (run-time accounting, §5.3).
  virtual std::uint64_t probes_sent() const = 0;
};

}  // namespace bdrmap::probe
