// Batched probe-wave execution (DESIGN.md §14).
//
// The forward-path walk of a simulated trace is a pure function of the
// FIB: it consumes no RNG and never consults the stop set (tracer.cc
// generates replies only after the walk). TraceBatch exploits that: one
// call pre-walks the forward paths of MANY flows — a probe wave — in
// lockstep, resolving each destination's RouteQuery once up front and
// then advancing every live flow one hop per sweep, so the FIB's dense
// IGP tables and flat egress rows stay hot across flows instead of being
// re-walked per destination. The per-destination ECMP rank is applied
// per flow at lookup (FlowSpec::flow_salt), exactly as the per-flow walk
// would.
//
// Bit-identity: because the walk is pure, the paths produced here are
// identical to the ones TracerouteEngine would compute one flow at a
// time, in any batching arrangement — the property tests/trace_batch_test.cc
// pins and bench_scale hard-gates.
//
// Paths are flattened into a caller-supplied net::Arena; pointers stay
// valid until that arena is reset (the engine resets its wave arena only
// between fully-consumed waves — the serve layer's quiescence contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netbase/arena.h"
#include "netbase/ids.h"
#include "netbase/ipv4.h"
#include "obs/metrics.h"
#include "route/fib.h"
#include "topo/internet.h"

namespace bdrmap::probe {

// One pre-walked forward-path hop. Mirrors the tracer's per-node state:
// the router the probe's TTL expires at, the interface it arrived on,
// and the delivery/firewall classification every consumer re-derives.
struct PathHop {
  net::RouterId router;
  net::IfaceId ingress;           // invalid on the first hop
  bool is_delivery = false;       // dst terminates at this router
  bool dst_is_own_addr = false;   // dst is one of the router's interfaces
  bool firewalled = false;        // edge filter blocks onward delivery
};

// A flow to pre-walk: destination, ECMP flow salt, and the hop budget.
// When `shared_query` is set the flow copies that resolution instead of
// resolving dst itself — one RouteQuery resolution advancing many flows
// (classic traceroute's per-TTL salts all target the same destination).
struct FlowSpec {
  net::Ipv4Addr dst;
  std::uint32_t flow_salt = 0;
  int limit = 0;
  const route::Fib::RouteQuery* shared_query = nullptr;
};

// The pre-walked forward path of one flow: the resolved query plus an
// arena-backed hop array.
struct PrewalkedPath {
  route::Fib::RouteQuery query;
  const PathHop* hops = nullptr;
  std::uint32_t count = 0;
};

class TraceBatch {
 public:
  TraceBatch(const topo::Internet& net, const route::Fib& fib,
             obs::MetricsRegistry* metrics = nullptr);

  // Pre-walks `n` flows from `start` in lockstep, writing one
  // PrewalkedPath per flow into `out`. Hop arrays land in `arena`.
  void prewalk(net::RouterId start, const FlowSpec* flows, std::size_t n,
               net::Arena& arena, PrewalkedPath* out);

 private:
  const topo::Internet& net_;
  const route::Fib& fib_;

  // No-op handles unless a registry was supplied.
  obs::Counter batches_;
  obs::Counter flows_;
  obs::Histogram flows_per_batch_;

  // Lockstep scratch, reused across calls (no per-wave allocation once
  // the high-water mark is reached).
  std::vector<net::RouterId> cur_;
  std::vector<net::IfaceId> ingress_;
  std::vector<std::uint8_t> entered_;
  std::vector<std::uint32_t> live_;
  std::vector<PathHop*> slots_;  // mutable view of each flow's hop array
};

}  // namespace bdrmap::probe
