#include "topo/generator.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace bdrmap::topo {

namespace {

using net::Rng;

// ---------------------------------------------------------------------------
// Address allocation
// ---------------------------------------------------------------------------

// Hands out disjoint CIDR blocks from a linear cursor. All interface
// addresses in the generated Internet descend from blocks handed out here,
// so uniqueness is structural.
class BlockAllocator {
 public:
  explicit BlockAllocator(Ipv4Addr start) : cursor_(start.value()) {}

  Prefix allocate(std::uint8_t len) {
    std::uint64_t size = std::uint64_t{1} << (32 - len);
    // Align the cursor to the block size.
    std::uint64_t aligned = (cursor_ + size - 1) & ~(size - 1);
    if (aligned + size > (std::uint64_t{1} << 32)) {
      throw std::logic_error("address space exhausted");
    }
    cursor_ = aligned + size;
    return Prefix(Ipv4Addr(static_cast<std::uint32_t>(aligned)), len);
  }

 private:
  std::uint64_t cursor_;
};

// Allocates point-to-point subnets and single addresses from an AS's
// infrastructure block.
class InfraPool {
 public:
  InfraPool() = default;
  explicit InfraPool(Prefix block)
      : block_(block), cursor_(block.first().value()), valid_(true) {}

  Prefix block() const { return block_; }

  // A /30 or /31 subnet for a link.
  Prefix allocate_subnet(std::uint8_t len) {
    std::uint64_t size = std::uint64_t{1} << (32 - len);
    std::uint64_t aligned = (cursor_ + size - 1) & ~(size - 1);
    if (aligned + size > std::uint64_t{block_.last().value()} + 1) {
      throw std::logic_error("infra pool exhausted for " + block_.str());
    }
    cursor_ = aligned + size;
    return Prefix(Ipv4Addr(static_cast<std::uint32_t>(aligned)), len);
  }

  bool valid() const { return valid_; }

 private:
  Prefix block_;
  std::uint64_t cursor_ = 0;
  bool valid_ = false;
};

// The two usable host addresses of a p2p subnet.
std::pair<Ipv4Addr, Ipv4Addr> p2p_addrs(const Prefix& subnet) {
  if (subnet.length() == 31) {
    return {subnet.first(), Ipv4Addr(subnet.first().value() + 1)};
  }
  return {Ipv4Addr(subnet.first().value() + 1),
          Ipv4Addr(subnet.first().value() + 2)};
}

// ---------------------------------------------------------------------------
// PoPs
// ---------------------------------------------------------------------------

const std::vector<Pop>& pops_impl() {
  static const std::vector<Pop> pops = {
      {"Seattle", -122.3, 47.6},      {"Portland", -122.7, 45.5},
      {"SanFrancisco", -122.4, 37.8}, {"SanJose", -121.9, 37.3},
      {"LosAngeles", -118.2, 34.1},   {"SanDiego", -117.2, 32.7},
      {"LasVegas", -115.1, 36.2},     {"Phoenix", -112.1, 33.4},
      {"SaltLakeCity", -111.9, 40.8}, {"Denver", -105.0, 39.7},
      {"Albuquerque", -106.6, 35.1},  {"Dallas", -96.8, 32.8},
      {"Houston", -95.4, 29.8},       {"KansasCity", -94.6, 39.1},
      {"Minneapolis", -93.3, 45.0},   {"Chicago", -87.6, 41.9},
      {"StLouis", -90.2, 38.6},       {"Nashville", -86.8, 36.2},
      {"Atlanta", -84.4, 33.7},       {"Miami", -80.2, 25.8},
      {"Charlotte", -80.8, 35.2},     {"WashingtonDC", -77.0, 38.9},
      {"Philadelphia", -75.2, 39.9},  {"NewYork", -74.0, 40.7},
      {"Boston", -71.1, 42.4},        {"Ashburn", -77.5, 39.0},
  };
  return pops;
}

double pop_distance(const Pop& a, const Pop& b) {
  double dx = a.longitude - b.longitude;
  double dy = a.latitude - b.latitude;
  return std::sqrt(dx * dx + dy * dy);
}

// ---------------------------------------------------------------------------
// Generator state
// ---------------------------------------------------------------------------

struct AsPlan {
  AsId id;
  AsKind kind;
  Prefix block;
  InfraPool infra;
  bool unrouted_infra = false;  // infra block never announced
  bool pa_infra = false;        // infra comes from a provider's pool
  AsId pa_provider;             // which provider supplies PA space
  std::vector<std::uint32_t> pops;
  // router at pops[i]; "core" carries internal topology. Large ASes have
  // one core per PoP; the featured access net adds a border per PoP.
  std::vector<RouterId> core;
  std::vector<RouterId> border;  // parallel to core; may equal core
  std::uint64_t host_cursor_from_end = 16;  // VP/host address allocation
};

struct PlannedPeering {
  AsId a, b;
  asdata::Relationship rel_ab;  // relationship of b from a's viewpoint
  bool via_ixp = false;
  std::size_t ixp = 0;
};

class Generator {
 public:
  Generator(const GeneratorConfig& config)
      : config_(config),
        rng_(config.seed),
        behavior_rng_(rng_.fork()),
        addr_alloc_(Ipv4Addr::of(1, 0, 0, 0)) {}

  GeneratedInternet run();

 private:
  void create_pops();
  void create_ases();
  void allocate_addressing();
  void create_relationships();
  void create_routers();
  void create_internal_links();
  void create_interdomain_links();
  void create_ixps();
  void create_announcements();
  void create_dns();
  void create_vps();

  AsPlan& plan(AsId as) { return plans_.at(plan_index_.at(as)); }
  const AsPlan& plan(AsId as) const { return plans_.at(plan_index_.at(as)); }

  RouterBehavior draw_behavior(AsKind kind, bool border);
  std::uint32_t nearest_pop_index(const AsPlan& p, std::uint32_t pop) const;
  void add_interdomain_link(AsId a, AsId b, asdata::Relationship rel_ab,
                            std::uint32_t pop_a, std::uint32_t pop_b,
                            bool use_core_a = false, bool use_core_b = false);
  InfraPool& supplier_pool(AsId a, AsId b, asdata::Relationship rel_ab,
                           AsId* supplier);
  Ipv4Addr host_addr(AsPlan& p);

  const GeneratorConfig& config_;
  Rng rng_;
  Rng behavior_rng_;
  BlockAllocator addr_alloc_;
  Internet net_;
  std::vector<AsPlan> plans_;
  std::unordered_map<AsId, std::size_t> plan_index_;
  std::vector<PlannedPeering> peerings_;
  std::vector<Vp> vps_;
  std::uint32_t next_org_ = 1;

  // Featured networks (see DESIGN.md experiment index).
  AsId featured_access_;   // the "large U.S. access network" of §6
  AsId level3_like_;       // Tier-1 peer with ~45 links (hot potato)
  AsId akamai_like_;       // CDN with per-link selective announcement
  AsId google_like_;       // CDN with coastal interconnects only
};

GeneratedInternet Generator::run() {
  create_pops();
  create_ases();
  allocate_addressing();
  create_relationships();
  create_routers();
  create_internal_links();
  create_interdomain_links();
  create_ixps();
  create_announcements();
  create_dns();
  create_vps();
  return GeneratedInternet{std::move(net_), std::move(vps_)};
}

void Generator::create_pops() {
  for (const Pop& p : pops_impl()) net_.add_pop(p);
}

// ---------------------------------------------------------------------------
// AS population
// ---------------------------------------------------------------------------

void Generator::create_ases() {
  auto make = [&](AsKind kind, const std::string& name_prefix,
                  std::size_t count, std::vector<AsId>& out) {
    for (std::size_t i = 0; i < count; ++i) {
      OrgId org;
      // Occasionally fold an AS into an existing organization of the same
      // kind, producing sibling ASes (§4 challenge 5).
      if (!out.empty() && rng_.chance(config_.p_sibling_org)) {
        org = net_.sibling_table().org_of(rng_.pick(out));
      } else {
        org = OrgId(next_org_++);
      }
      AsId as = net_.add_as(kind, org, name_prefix + std::to_string(i + 1));
      AsPlan p;
      p.id = as;
      p.kind = kind;
      plan_index_.emplace(as, plans_.size());
      plans_.push_back(std::move(p));
      out.push_back(as);
    }
  };

  std::vector<AsId> tier1, transit, access, content, research, enterprise;
  make(AsKind::kTier1, "Tier1-", config_.num_tier1, tier1);
  make(AsKind::kTransit, "Transit-", config_.num_transit, transit);
  make(AsKind::kAccess, "Access-", config_.num_access, access);
  make(AsKind::kContent, "CDN-", config_.num_content, content);
  make(AsKind::kResearchEdu, "REN-", config_.num_research_edu, research);
  make(AsKind::kEnterprise, "Ent-", config_.num_enterprise, enterprise);

  featured_access_ = access.empty() ? AsId{} : access.front();
  level3_like_ = tier1.empty() ? AsId{} : tier1.front();
  akamai_like_ = content.empty() ? AsId{} : content.front();
  google_like_ = content.size() > 1 ? content[1] : AsId{};

  // PoP footprints.
  const std::size_t total_pops = net_.pops().size();
  auto pick_pops = [&](AsPlan& p, std::size_t count) {
    std::vector<std::uint32_t> all(total_pops);
    for (std::size_t i = 0; i < total_pops; ++i)
      all[i] = static_cast<std::uint32_t>(i);
    rng_.shuffle(all);
    count = std::min(count, total_pops);
    p.pops.assign(all.begin(), all.begin() + static_cast<long>(count));
    // Sort west-to-east so internal rings follow geography.
    std::sort(p.pops.begin(), p.pops.end(), [&](auto a, auto b) {
      return net_.pops()[a].longitude < net_.pops()[b].longitude;
    });
  };

  for (AsPlan& p : plans_) {
    switch (p.kind) {
      case AsKind::kTier1:
        // Tier-1s are everywhere; the Level3-like network especially.
        pick_pops(p, p.id == level3_like_ ? total_pops : total_pops - 4);
        break;
      case AsKind::kTransit:
        pick_pops(p, 3 + rng_.uniform(0, 6));
        break;
      case AsKind::kAccess:
        if (p.id == featured_access_) {
          // Deterministic footprint spanning the US (§6 deploys 19 VPs in
          // the large access network); includes the coastal cities the
          // Google-like CDN interconnects at. Smaller featured networks
          // (the §5.6 small access scenario) keep the coastal anchors and
          // drop interior cities first.
          p.pops.clear();
          static constexpr std::uint32_t kPreferred[] = {
              0, 2, 23, 24, 4, 11, 15, 18, 21, 9, 19, 22, 5, 7, 8,
              12, 14, 16, 6};
          for (std::uint32_t i : kPreferred) {
            if (p.pops.size() >= config_.featured_access_pops) break;
            if (i < total_pops) p.pops.push_back(i);
          }
          std::sort(p.pops.begin(), p.pops.end(), [&](auto a, auto b) {
            return net_.pops()[a].longitude < net_.pops()[b].longitude;
          });
        } else {
          pick_pops(p, 4 + rng_.uniform(0, 5));
        }
        break;
      case AsKind::kContent:
        if (p.id == google_like_) {
          // Coastal presence only: two west + two east PoPs (Figure 16's
          // Google pattern: visibility needs west- and east-coast VPs).
          p.pops = {0, 2, 23, 24};
        } else if (p.id == akamai_like_) {
          // Eight PoPs spread across the US, all shared with the featured
          // access network (Figure 15: one VP sees all Akamai links).
          p.pops = {0, 4, 9, 11, 15, 18, 22, 23};
        } else {
          pick_pops(p, 5 + rng_.uniform(0, 9));
        }
        break;
      case AsKind::kResearchEdu:
        pick_pops(p, 2 + rng_.uniform(0, 2));
        break;
      case AsKind::kEnterprise:
        pick_pops(p, 1);
        break;
      case AsKind::kIxpOperator:
        break;  // created later with their LAN city
    }
  }
}

// ---------------------------------------------------------------------------
// Addressing
// ---------------------------------------------------------------------------

void Generator::allocate_addressing() {
  for (AsPlan& p : plans_) {
    bool big = p.kind == AsKind::kTier1 || p.kind == AsKind::kTransit ||
               p.kind == AsKind::kAccess || p.kind == AsKind::kContent;
    p.block = addr_alloc_.allocate(big ? 16 : 20);
    // RIR registers the whole block to the AS's organization (§5.2).
    net_.rir().add({p.block, net_.sibling_table().org_of(p.id)});

    if (p.kind == AsKind::kEnterprise && rng_.chance(config_.p_pa_infra)) {
      p.pa_infra = true;  // provider pool attached once providers are known
      continue;
    }
    // Infrastructure block at the front of the AS block.
    Prefix infra = big ? Prefix(p.block.first(), 20)
                       : Prefix(p.block.first(), 24);
    p.infra = InfraPool(infra);
    p.unrouted_infra = rng_.chance(config_.p_unrouted_infra);
  }
}

// ---------------------------------------------------------------------------
// Relationships
// ---------------------------------------------------------------------------

void Generator::create_relationships() {
  auto& rels = net_.truth_relationships();
  std::vector<AsId> tier1, transit, access, content, research;
  for (const AsPlan& p : plans_) {
    switch (p.kind) {
      case AsKind::kTier1: tier1.push_back(p.id); break;
      case AsKind::kTransit: transit.push_back(p.id); break;
      case AsKind::kAccess: access.push_back(p.id); break;
      case AsKind::kContent: content.push_back(p.id); break;
      case AsKind::kResearchEdu: research.push_back(p.id); break;
      default: break;
    }
  }

  auto plan_private = [&](AsId a, AsId b, asdata::Relationship rel_ab) {
    if (rels.rel(a, b) != asdata::Relationship::kNone) return false;
    if (rel_ab == asdata::Relationship::kPeer) {
      rels.add_p2p(a, b);
    } else if (rel_ab == asdata::Relationship::kCustomer) {
      rels.add_c2p(b, a);  // b is customer of a
    } else {
      rels.add_c2p(a, b);  // a is customer of b
    }
    peerings_.push_back({a, b, rel_ab, false, 0});
    return true;
  };

  // Tier-1 clique: full mesh of p2p.
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      plan_private(tier1[i], tier1[j], asdata::Relationship::kPeer);
    }
  }

  // Transit networks: 1-2 tier-1 providers, occasional transit-transit
  // peering and secondary transit provider.
  for (AsId t : transit) {
    plan_private(t, rng_.pick(tier1), asdata::Relationship::kProvider);
    // Most transit networks dual-home to the clique: prefixes below them
    // are then reachable at equal preference via two Tier-1s, which is
    // what lets hot potato vary the next-hop AS by VP (Figure 14's 33%).
    if (rng_.chance(0.8)) {
      plan_private(t, rng_.pick(tier1), asdata::Relationship::kProvider);
    }
    for (AsId u : transit) {
      if (u < t && rng_.chance(config_.transit_peering_p)) {
        plan_private(t, u, asdata::Relationship::kPeer);
      }
    }
  }

  // Access networks: 1-2 transit/tier-1 providers, p2p with several
  // tier-1s (the paper's access network peers with Tier-1s, §6).
  for (AsId a : access) {
    AsId provider = rng_.pick(tier1);
    if (a == featured_access_) {
      // Keep the Level3-like Tier-1 a settlement-free *peer* of the
      // featured access network, as in §6.
      while (provider == level3_like_ && tier1.size() > 1) {
        provider = rng_.pick(tier1);
      }
    }
    plan_private(a, provider, asdata::Relationship::kProvider);
    if (rng_.chance(0.6)) {
      plan_private(a, rng_.pick(transit), asdata::Relationship::kProvider);
    }
    if (a == featured_access_) {
      // A large eyeball network peers with the whole clique (§6's access
      // network peers with Tier-1s); the Level3-like member is forced.
      for (AsId t : tier1) {
        plan_private(a, t, asdata::Relationship::kPeer);
      }
    } else {
      std::size_t peers = 1 + rng_.uniform(0, 2);
      for (std::size_t i = 0; i < peers; ++i) {
        plan_private(a, rng_.pick(tier1), asdata::Relationship::kPeer);
      }
    }
    for (AsId t : transit) {
      if (rng_.chance(0.08)) plan_private(a, t, asdata::Relationship::kPeer);
    }
  }

  // Content networks: transit providers + direct peering with access.
  for (AsId c : content) {
    plan_private(c, rng_.pick(tier1), asdata::Relationship::kProvider);
    plan_private(c, rng_.pick(transit), asdata::Relationship::kProvider);
    for (AsId a : access) {
      bool marquee = a == featured_access_ &&
                     (c == akamai_like_ || c == google_like_);
      if (marquee || rng_.chance(config_.content_peers_access_p)) {
        plan_private(c, a, asdata::Relationship::kPeer);
      }
    }
  }

  // R&E networks: transit providers plus peering at IXPs (added later).
  for (AsId r : research) {
    plan_private(r, rng_.pick(transit), asdata::Relationship::kProvider);
    if (rng_.chance(0.5)) {
      plan_private(r, rng_.pick(tier1), asdata::Relationship::kProvider);
    }
  }

  // Enterprises: providers drawn with heavy weight on the featured
  // networks so their customer counts resemble Table 1's proportions.
  for (AsPlan& p : plans_) {
    if (p.kind != AsKind::kEnterprise) continue;
    std::vector<AsId> candidates;
    std::vector<double> weights;
    for (AsId t : tier1) {
      candidates.push_back(t);
      weights.push_back(t == level3_like_ ? 30.0 : 4.0);
    }
    for (AsId t : transit) {
      candidates.push_back(t);
      weights.push_back(2.0);
    }
    for (AsId a : access) {
      candidates.push_back(a);
      weights.push_back(a == featured_access_ ? 20.0 : 2.0);
    }
    for (AsId r : research) {
      candidates.push_back(r);
      weights.push_back(r == research.front()
                            ? config_.featured_ren_customer_weight
                            : 0.3);
    }
    AsId provider = candidates[rng_.weighted(weights)];
    plan_private(p.id, provider, asdata::Relationship::kProvider);
    if (p.pa_infra) {
      p.pa_provider = provider;
      p.infra = InfraPool();  // resolved at link creation via provider pool
    }
    if (rng_.chance(config_.enterprise_multihome_p)) {
      AsId second = candidates[rng_.weighted(weights)];
      plan_private(p.id, second, asdata::Relationship::kProvider);
    }
  }

  // Sibling ASes under one org usually interconnect.
  std::map<OrgId, std::vector<AsId>> by_org;
  for (const AsPlan& p : plans_) {
    by_org[net_.sibling_table().org_of(p.id)].push_back(p.id);
  }
  for (auto& [org, members] : by_org) {
    for (std::size_t i = 1; i < members.size(); ++i) {
      plan_private(members[i - 1], members[i], asdata::Relationship::kPeer);
    }
  }
}

// ---------------------------------------------------------------------------
// Routers and behaviour
// ---------------------------------------------------------------------------

RouterBehavior Generator::draw_behavior(AsKind kind, bool border) {
  RouterBehavior b;
  Rng& r = behavior_rng_;

  // IP-ID model (alias-resolution visibility).
  double x = r.uniform_real(0.0, 1.0);
  if (x < config_.ipid_shared) {
    b.ipid = IpidKind::kSharedCounter;
  } else if (x < config_.ipid_shared + config_.ipid_per_iface) {
    b.ipid = IpidKind::kPerInterface;
  } else if (x < config_.ipid_shared + config_.ipid_per_iface +
                     config_.ipid_random) {
    b.ipid = IpidKind::kRandom;
  } else {
    b.ipid = IpidKind::kZero;
  }
  b.ipid_velocity = r.uniform_real(2.0, 120.0);
  b.ipid_init = static_cast<std::uint16_t>(r.uniform(0, 0xffff));
  b.responds_udp = r.chance(config_.p_udp_responsive);
  b.honors_timestamp = r.chance(config_.p_timestamp_honored);

  // CDN edge routers answer traceroute reliably (they are measurement
  // infrastructure themselves); only enterprise and R&E gear goes silent.
  bool transit_core = kind == AsKind::kTier1 || kind == AsKind::kTransit ||
                      kind == AsKind::kAccess || kind == AsKind::kContent;
  if (!transit_core) {
    if (r.chance(config_.p_silent)) {
      b.make_silent();
      return b;
    }
    if (r.chance(config_.p_echo_only)) {
      b.sends_ttl_expired = false;  // echo/unreachable only (§5.4.8 case 2)
      return b;
    }
    b.rate_limit_drop = r.uniform_real(0.0, config_.rate_limit_max);
  } else {
    // Transit cores rate-limit mildly; still bounded by the config knob so
    // fully-deterministic topologies (rate_limit_max = 0) stay that way.
    b.rate_limit_drop =
        r.uniform_real(0.0, std::min(config_.rate_limit_max, 0.04));
  }

  if (r.chance(config_.p_egress_reply)) {
    b.reply_addr = ReplyAddrPolicy::kEgressToSrc;
  } else if (border && r.chance(config_.p_virtual_router)) {
    b.reply_addr = ReplyAddrPolicy::kVirtualRouter;
  }
  if (kind == AsKind::kEnterprise && border &&
      r.chance(config_.p_enterprise_firewall)) {
    b.firewall_edge = true;
  }
  return b;
}

void Generator::create_routers() {
  for (AsPlan& p : plans_) {
    if (p.pops.empty()) continue;
    // The featured access network gets a dedicated border router per PoP
    // (so VP-to-border paths traverse internal hops, §5.4.1); its marquee
    // Tier-1 peer gets two routers per PoP so parallel interconnects at a
    // PoP terminate on distinct routers (the paper counts 45 router-level
    // links).
    bool two_routers = p.id == featured_access_ || p.id == level3_like_;
    for (std::uint32_t pop : p.pops) {
      RouterId core =
          net_.add_router(p.id, pop, draw_behavior(p.kind, /*border=*/true));
      p.core.push_back(core);
      if (two_routers) {
        RouterId border = net_.add_router(
            p.id, pop, draw_behavior(p.kind, /*border=*/true));
        p.border.push_back(border);
      } else {
        p.border.push_back(core);
      }
    }
    // Some enterprises have an internal router behind the border (hosts
    // attach there); required for the PA-space error mode of Figure 12.
    if (p.kind == AsKind::kEnterprise &&
        (p.pa_infra || rng_.chance(0.4))) {
      RouterId internal = net_.add_router(
          p.id, p.pops[0], draw_behavior(p.kind, /*border=*/false));
      p.core.push_back(internal);
      p.border.push_back(p.border[0]);  // keep vectors parallel
    }
  }
}

void Generator::create_internal_links() {
  for (AsPlan& p : plans_) {
    // Collect the distinct routers of this AS in creation order.
    const auto& routers = net_.as_info(p.id).routers;
    if (routers.size() < 2) continue;

    InfraPool* pool = p.infra.valid() ? &p.infra : nullptr;
    if (p.pa_infra) pool = &plan(p.pa_provider).infra;
    if (!pool || !pool->valid()) continue;

    auto connect = [&](RouterId a, RouterId b) {
      Prefix subnet = pool->allocate_subnet(31);
      auto [addr_a, addr_b] = p2p_addrs(subnet);
      double cost = pop_distance(net_.pops()[net_.router(a).pop],
                                 net_.pops()[net_.router(b).pop]) +
                    0.1;
      net_.add_link(LinkKind::kInternal, subnet,
                    p.pa_infra ? p.pa_provider : p.id,
                    {{a, addr_a}, {b, addr_b}}, cost);
    };

    // Chain the routers west-to-east (they were created in PoP order),
    // close the ring for larger networks, and add a few chords.
    for (std::size_t i = 1; i < routers.size(); ++i) {
      connect(routers[i - 1], routers[i]);
    }
    if (routers.size() > 3) {
      connect(routers.back(), routers.front());
      std::size_t chords = routers.size() / 5;
      for (std::size_t i = 0; i < chords; ++i) {
        std::size_t a = rng_.uniform(0, static_cast<std::uint32_t>(
                                            routers.size() - 1));
        std::size_t b = rng_.uniform(0, static_cast<std::uint32_t>(
                                            routers.size() - 1));
        if (a != b) connect(routers[a], routers[b]);
      }
    }
    // The featured access network: core<->border at each PoP were created
    // pairwise adjacent in creation order, so the chain above covers them.
  }
}

// ---------------------------------------------------------------------------
// Interdomain links
// ---------------------------------------------------------------------------

std::uint32_t Generator::nearest_pop_index(const AsPlan& p,
                                           std::uint32_t pop) const {
  double best = 1e18;
  std::uint32_t best_index = 0;
  for (std::size_t i = 0; i < p.pops.size(); ++i) {
    double d = pop_distance(net_.pops()[p.pops[i]], net_.pops()[pop]);
    if (d < best) {
      best = d;
      best_index = static_cast<std::uint32_t>(i);
    }
  }
  return best_index;
}

InfraPool& Generator::supplier_pool(AsId a, AsId b,
                                    asdata::Relationship rel_ab,
                                    AsId* supplier) {
  // §4 challenge 1: in c2p the provider supplies the link subnet; for p2p
  // there is no convention, so either side may.
  AsId chosen;
  if (rel_ab == asdata::Relationship::kCustomer) {
    chosen = a;  // a is b's provider
  } else if (rel_ab == asdata::Relationship::kProvider) {
    chosen = b;
  } else {
    chosen = rng_.chance(0.5) ? a : b;
    // PA-infra and pool-less ASes cannot supply; fall back to the other.
    if (!plan(chosen).infra.valid()) chosen = (chosen == a) ? b : a;
  }
  if (!plan(chosen).infra.valid()) chosen = (chosen == a) ? b : a;
  *supplier = chosen;
  return plan(chosen).infra;
}

void Generator::add_interdomain_link(AsId a, AsId b,
                                     asdata::Relationship rel_ab,
                                     std::uint32_t pop_index_a,
                                     std::uint32_t pop_index_b,
                                     bool use_core_a, bool use_core_b) {
  AsPlan& pa = plan(a);
  AsPlan& pb = plan(b);
  RouterId ra = use_core_a ? pa.core[pop_index_a] : pa.border[pop_index_a];
  RouterId rb = use_core_b ? pb.core[pop_index_b] : pb.border[pop_index_b];
  AsId supplier;
  InfraPool& pool = supplier_pool(a, b, rel_ab, &supplier);
  if (!pool.valid()) return;  // neither side can supply address space
  std::uint8_t len = rng_.chance(config_.p_slash31) ? 31 : 30;
  Prefix subnet = pool.allocate_subnet(len);
  auto [addr_1, addr_2] = p2p_addrs(subnet);
  // Convention: the supplier's router takes the first usable address.
  Ipv4Addr addr_a = (supplier == a) ? addr_1 : addr_2;
  Ipv4Addr addr_b = (supplier == a) ? addr_2 : addr_1;
  LinkId link = net_.add_link(LinkKind::kInterdomain, subnet, supplier,
                              {{ra, addr_a}, {rb, addr_b}});
  net_.record_interdomain({link, a, b, ra, rb, /*via_ixp=*/false});
}

void Generator::create_interdomain_links() {
  for (const PlannedPeering& pp : peerings_) {
    AsPlan& pa = plan(pp.a);
    AsPlan& pb = plan(pp.b);
    if (pa.pops.empty() || pb.pops.empty()) continue;

    // Shared PoPs (same city for both networks).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> shared;
    for (std::size_t i = 0; i < pa.pops.size(); ++i) {
      for (std::size_t j = 0; j < pb.pops.size(); ++j) {
        if (pa.pops[i] == pb.pops[j]) {
          shared.emplace_back(static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j));
        }
      }
    }

    bool featured_pair =
        (pp.a == featured_access_ && pp.b == level3_like_) ||
        (pp.b == featured_access_ && pp.a == level3_like_);
    bool cdn_pair =
        ((pp.a == featured_access_ || pp.b == featured_access_) &&
         (pp.a == akamai_like_ || pp.b == akamai_like_ ||
          pp.a == google_like_ || pp.b == google_like_));

    std::size_t count;
    bool both_big = (pa.kind != AsKind::kEnterprise &&
                     pa.kind != AsKind::kResearchEdu) &&
                    (pb.kind != AsKind::kEnterprise &&
                     pb.kind != AsKind::kResearchEdu);
    if (featured_pair) {
      // Two links per shared PoP plus a third at every third PoP: with 19
      // shared PoPs this yields ~45 router-level links, the count the
      // paper observed between the access network and its Tier-1 peer.
      // Parallel links at a PoP terminate on distinct router pairs; every
      // third PoP adds a cross-PoP backhaul link to the Tier-1's router at
      // the adjacent shared city (all three stay equal-cost from the local
      // VP, so per-destination ECMP exercises each of them).
      for (std::size_t k = 0; k < shared.size(); ++k) {
        auto [i, j] = shared[k];
        add_interdomain_link(pp.a, pp.b, pp.rel_ab, i, j, false, false);
        add_interdomain_link(pp.a, pp.b, pp.rel_ab, i, j, false, true);
        if (k % 3 == 0 && shared.size() > 1) {
          std::uint32_t j2 = shared[(k + 1) % shared.size()].second;
          add_interdomain_link(pp.a, pp.b, pp.rel_ab, i, j2, false, false);
        }
      }
      if (shared.empty()) {
        add_interdomain_link(pp.a, pp.b, pp.rel_ab, 0,
                             nearest_pop_index(pb, pa.pops[0]));
      }
      continue;
    }

    if (cdn_pair) {
      // One link per shared PoP (8 for the Akamai-like CDN, 4 coastal for
      // the Google-like CDN).
      for (auto [i, j] : shared) {
        add_interdomain_link(pp.a, pp.b, pp.rel_ab, i, j);
      }
      if (shared.empty()) {
        add_interdomain_link(pp.a, pp.b, pp.rel_ab, 0,
                             nearest_pop_index(pb, pa.pops[0]));
      }
      continue;
    }

    bool featured_side =
        pp.a == featured_access_ || pp.b == featured_access_;
    if (featured_side && both_big && !shared.empty()) {
      // The measured access network interconnects with its transit
      // providers and large peers at most shared PoPs — the density behind
      // Figure 14's 5-15 distinct border routers per prefix.
      count = std::max<std::size_t>(shared.size() * 3 / 4, 1);
    } else if (both_big && !shared.empty()) {
      count = 1 + rng_.uniform(0, static_cast<std::uint32_t>(
                                      std::min<std::size_t>(shared.size(), 4) -
                                      1));
    } else {
      count = 1;
    }
    for (std::size_t k = 0; k < count; ++k) {
      std::uint32_t ia, ib;
      if (!shared.empty()) {
        auto [si, sj] = shared[k % shared.size()];
        ia = si;
        ib = sj;
      } else {
        ia = rng_.uniform(0, static_cast<std::uint32_t>(pa.pops.size() - 1));
        ib = nearest_pop_index(pb, pa.pops[ia]);
      }
      add_interdomain_link(pp.a, pp.b, pp.rel_ab, ia, ib);
    }

    // §5.4.1 step 1.1: occasionally an enterprise multihomes to the same
    // provider with a second link on an adjacent router.
    if ((pa.kind == AsKind::kEnterprise || pb.kind == AsKind::kEnterprise) &&
        rng_.chance(0.05) && !shared.empty()) {
      auto [si, sj] = shared[0];
      add_interdomain_link(pp.a, pp.b, pp.rel_ab, si, sj);
    }
  }
}

// ---------------------------------------------------------------------------
// IXPs
// ---------------------------------------------------------------------------

void Generator::create_ixps() {
  if (config_.num_ixps == 0) return;
  BlockAllocator ixp_alloc(Ipv4Addr::of(198, 32, 0, 0));
  auto& rels = net_.truth_relationships();

  for (std::size_t x = 0; x < config_.num_ixps; ++x) {
    std::uint32_t city =
        rng_.uniform(0, static_cast<std::uint32_t>(net_.pops().size() - 1));
    OrgId org = OrgId(next_org_++);
    AsId ixp_as =
        net_.add_as(AsKind::kIxpOperator, org, "IXP-" + std::to_string(x + 1));
    AsPlan ip;
    ip.id = ixp_as;
    ip.kind = AsKind::kIxpOperator;
    plan_index_.emplace(ixp_as, plans_.size());
    plans_.push_back(std::move(ip));

    Prefix lan = ixp_alloc.allocate(24);
    net_.rir().add({lan, org});

    // Members: transit / content / access / R&E networks join.
    std::vector<AsId> members;
    for (const AsPlan& p : plans_) {
      if (p.id == ixp_as) continue;
      bool eligible = p.kind == AsKind::kTransit ||
                      p.kind == AsKind::kContent ||
                      p.kind == AsKind::kAccess ||
                      p.kind == AsKind::kResearchEdu;
      if (eligible && !p.core.empty() && rng_.chance(config_.ixp_member_p)) {
        members.push_back(p.id);
      }
    }
    if (members.size() < 2) continue;

    // Build the shared LAN: each member attaches the router nearest the
    // IXP's city; addresses are IXP-owned (§4 challenge 6).
    std::vector<std::pair<RouterId, Ipv4Addr>> ends;
    std::unordered_map<AsId, std::pair<RouterId, Ipv4Addr>> attach;
    std::uint32_t host = lan.first().value() + 1;
    for (AsId m : members) {
      const AsPlan& p = plan(m);
      // The member attaches the router nearest the IXP's city.
      RouterId r = p.border[nearest_pop_index(p, city)];
      Ipv4Addr a(host++);
      ends.emplace_back(r, a);
      attach.emplace(m, std::make_pair(r, a));
    }
    LinkId lan_link = net_.add_link(LinkKind::kIxpLan, lan, ixp_as, ends);

    // The IXP operator may or may not originate the LAN in BGP (§4 ch. 6).
    bool lan_announced = rng_.chance(0.5);
    if (lan_announced && !attach.empty()) {
      net_.add_announced(
          {lan, ixp_as, attach.begin()->second.first, {}, 0.0});
    }

    // Public directory entry (PeeringDB/PCH analogue), with configurable
    // record noise (defaults: ~7% of rows missing, ~3% stale).
    std::size_t ixp_index = net_.ixp_directory().add_ixp(
        {"IXP-" + std::to_string(x + 1), lan, lan_announced ? ixp_as : AsId{}});
    for (AsId m : members) {
      if (rng_.chance(config_.ixp_missing_record_p)) continue;
      Ipv4Addr recorded = attach.at(m).second;
      if (rng_.chance(config_.ixp_stale_record_p)) {
        recorded = Ipv4Addr(recorded.value() + 100);
      }
      net_.ixp_directory().add_membership({ixp_index, m, recorded});
    }

    // Route-server peerings: member pairs peer with probability; these
    // sessions ride the shared LAN (no dedicated link), and are usually
    // invisible at route collectors unless one side exports them.
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        AsId a = members[i], b = members[j];
        if (rels.rel(a, b) != asdata::Relationship::kNone) continue;
        if (!rng_.chance(config_.ixp_peering_p)) continue;
        rels.add_p2p(a, b);
        net_.record_interdomain({lan_link, a, b, attach.at(a).first,
                                 attach.at(b).first, /*via_ixp=*/true});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Announcements, destinations and VPs
// ---------------------------------------------------------------------------

Ipv4Addr Generator::host_addr(AsPlan& p) {
  Ipv4Addr a(static_cast<std::uint32_t>(p.block.last().value() -
                                        p.host_cursor_from_end));
  p.host_cursor_from_end += 1;
  return a;
}

void Generator::create_announcements() {
  for (AsPlan& p : plans_) {
    if (p.kind == AsKind::kIxpOperator) continue;
    if (net_.as_info(p.id).routers.empty()) continue;
    const auto& routers = net_.as_info(p.id).routers;
    auto host_router = [&](std::size_t i) { return routers[i % routers.size()]; };

    double responsiveness = p.kind == AsKind::kEnterprise
                                ? config_.dest_responsiveness_enterprise
                                : config_.dest_responsiveness_default;

    // Pinned links for selective announcers (Akamai-like CDN, §6): each
    // prefix is announced to the featured access network over exactly one
    // interconnect, but still reaches its transit providers — otherwise
    // the rest of the Internet could not deliver to it at all.
    std::vector<LinkId> own_links;
    std::vector<LinkId> transit_links;
    if (p.id == akamai_like_) {
      const auto& rels = net_.truth_relationships();
      for (const auto& info : net_.interdomain_links_of(p.id)) {
        AsId other = (info.as_a == p.id) ? info.as_b : info.as_a;
        if (other == featured_access_) {
          own_links.push_back(info.link);
        } else if (rels.rel(p.id, other) ==
                   asdata::Relationship::kProvider) {
          transit_links.push_back(info.link);
        }
      }
    }

    // 1. Covering announcement(s) for the whole block. Networks that keep
    // infrastructure out of BGP (§5.4.3) unroute only part of it when they
    // are sizable — per §5.4.1 such networks "usually announce other
    // infrastructure addresses that bdrmap observes nearby", which is what
    // lets the RIR-delegation extension attribute the rest.
    if (p.unrouted_infra && p.infra.valid()) {
      Prefix unrouted = p.kind == AsKind::kEnterprise
                            ? p.infra.block()
                            : p.infra.block().upper_half();
      net_.as_info_mutable(p.id).unrouted_infra.push_back(unrouted);
      auto pieces = net::subtract(p.block, {unrouted});
      std::size_t i = 0;
      for (const Prefix& piece : pieces) {
        net_.add_announced({piece, p.id, host_router(i++), {}, responsiveness});
      }
    } else {
      net_.add_announced({p.block, p.id, host_router(0), {}, responsiveness});
    }

    // 2. More-specific host prefixes (exercise §5.3 block splitting and the
    //    MOAS challenge). Content networks announce more of them.
    std::size_t extra = config_.host_prefixes_min +
                        rng_.uniform(0, static_cast<std::uint32_t>(
                                            config_.host_prefixes_max -
                                            config_.host_prefixes_min));
    // Enterprises announce little beyond their block; transit and content
    // networks deaggregate much more (in the real table the vast majority
    // of prefixes sit behind multi-link networks, cf. Figure 14).
    if (p.kind == AsKind::kEnterprise) extra = config_.host_prefixes_min;
    if (p.kind == AsKind::kTransit || p.kind == AsKind::kTier1) extra += 4;
    if (p.kind == AsKind::kContent) extra += 6;
    if (p.id == akamai_like_ && !own_links.empty()) {
      // Enough prefixes that every pinned link carries several.
      extra = std::max(extra, own_links.size() * 2);
    }
    // Carve /24s right after the infra region.
    std::uint32_t cursor = p.block.first().value() +
                           (p.infra.valid() && !p.pa_infra
                                ? static_cast<std::uint32_t>(p.infra.block().size())
                                : 0u);
    for (std::size_t i = 0; i < extra; ++i) {
      Prefix host(Ipv4Addr(cursor), 24);
      cursor += 256;
      if (!p.block.contains(host)) break;
      AnnouncedPrefix ap{host, p.id, host_router(i + 1), {}, responsiveness};
      if (p.id == akamai_like_ && !own_links.empty()) {
        // Pin each prefix to exactly one access interconnection (a single
        // VP then observes every Akamai link — Figure 15's flat curve),
        // plus the transit links that keep it globally routable.
        ap.only_via_links = {own_links[i % own_links.size()]};
        ap.only_via_links.insert(ap.only_via_links.end(),
                                 transit_links.begin(),
                                 transit_links.end());
      }
      std::size_t index = net_.add_announced(ap);
      // MOAS: a sibling co-originates this prefix in BGP.
      if (rng_.chance(config_.p_moas_prefix)) {
        auto sibs = net_.sibling_table().siblings_of(p.id);
        if (sibs.size() > 1) {
          for (AsId s : sibs) {
            if (s != p.id) {
              net_.truth_origins().add(net_.announced()[index].prefix, s);
              break;
            }
          }
        }
      }
    }
  }
}

// Reverse DNS (§5.1, §6): interface names embed location codes, sometimes
// the AS number, sometimes only an organization label — and are frequently
// missing or stale, per the paper's caveats about DNS-based validation.
void Generator::create_dns() {
  Rng rng = rng_.fork();
  for (const auto& iface : net_.ifaces()) {
    const Router& router = net_.router(iface.router);
    const AsInfo& info = net_.as_info(router.owner);

    double p_missing = info.kind == AsKind::kEnterprise ? 0.6 : 0.3;
    if (rng.chance(p_missing)) continue;

    std::uint32_t pop = router.pop;
    if (rng.chance(config_.dns_stale_city_p)) {
      pop = rng.uniform(0, static_cast<std::uint32_t>(net_.pops().size() - 1));
    }
    std::string city = asdata::city_code_of(net_.pops()[pop].city);

    // Organization label: the AS name lower-cased with separators removed.
    std::string org;
    for (char c : info.name) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        org.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
      }
    }
    if (org.empty()) org = "net";

    const Link& link = net_.link(iface.link);
    const char* role =
        link.kind == LinkKind::kInternal
            ? "ae"
            : (link.kind == LinkKind::kIxpLan ? "ix" : "xe");
    unsigned unit = iface.id.value % 100;

    std::string name;
    if (rng.chance(config_.dns_org_only_p)) {
      // Organization label without an AS number — the paper's complaint
      // about links "labeled with organization names, rather than ASNs".
      name = std::string(role) + "-" + std::to_string(unit) + "." + city +
             "." + org + ".net";
    } else {
      name = asdata::make_hostname(role, unit, city, router.owner, org);
    }
    net_.reverse_dns().add(iface.addr, std::move(name));
  }
}

void Generator::create_vps() {
  for (AsPlan& p : plans_) {
    bool wants_vp = p.kind == AsKind::kAccess ||
                    p.kind == AsKind::kResearchEdu ||
                    p.id == level3_like_;
    if (!wants_vp || p.core.empty()) continue;
    std::size_t count = 1;
    if (p.id == featured_access_) count = p.pops.size();  // 19 VPs (§6)
    if (p.id == level3_like_) count = 1;
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t pop_index = (count == 1) ? p.pops.size() / 2 : i;
      RouterId attach = p.core[pop_index];
      // A VP's first-hop router must respond to traceroute, or every trace
      // starts blind; operators hosting VPs pick such attachment points.
      RouterBehavior& b = net_.router_mutable(attach).behavior;
      b.sends_ttl_expired = true;
      b.responds_echo = true;
      b.rate_limit_drop = 0.0;
      vps_.push_back(Vp{p.id, attach, host_addr(p), p.pops[pop_index]});
    }
  }
}

}  // namespace

const std::vector<Pop>& us_pops() { return pops_impl(); }

GeneratedInternet generate(const GeneratorConfig& config) {
  Generator g(config);
  return g.run();
}

}  // namespace bdrmap::topo
