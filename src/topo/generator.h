// Synthetic Internet generator.
//
// Produces a ground-truth topo::Internet exhibiting every phenomenon the
// bdrmap heuristics exist to handle (§4 challenges 1-7, §5.5 limitations):
// provider-assigned interconnection addressing, third-party reply sources,
// edge firewalls, silent and echo-only routers, virtual routers, sibling
// organizations, IXP fabrics with inconsistently-originated LANs, MOAS
// prefixes, unannounced infrastructure space, and PA space on customer
// routers. All draws come from a single seed, so a (seed, config) pair is
// fully reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/rng.h"
#include "topo/internet.h"

namespace bdrmap::topo {

// A vantage point: a measurement host inside some AS, attached to one of
// its routers with an address from the AS's space.
struct Vp {
  AsId as;
  RouterId attach_router;
  Ipv4Addr addr;
  std::uint32_t pop = 0;
};

struct GeneratorConfig {
  std::uint64_t seed = 1;

  // --- AS population ---
  std::size_t num_tier1 = 8;
  std::size_t num_transit = 40;
  std::size_t num_access = 12;
  std::size_t num_content = 14;
  std::size_t num_research_edu = 6;
  std::size_t num_enterprise = 260;
  std::size_t num_ixps = 5;

  // --- featured networks (see DESIGN.md experiment index) ---
  // PoP count of the featured (first) access network; 19 matches the §6
  // deployment. Smaller values model the §5.6 "small access network".
  std::size_t featured_access_pops = 19;
  // Enterprise-provider selection weight for the first R&E network, so the
  // §5.6 R&E validation scenario has a realistic customer count (~30).
  double featured_ren_customer_weight = 0.8;

  // --- multihoming / peering density ---
  double enterprise_multihome_p = 0.35;  // second provider for a stub
  double transit_peering_p = 0.25;       // p2p between transit pairs
  double content_peers_access_p = 0.8;   // CDN peers directly with access
  double ixp_member_p = 0.35;            // transit/content joins a given IXP
  double ixp_peering_p = 0.5;            // members peer via route server

  // --- IXP directory record quality (PeeringDB/PCH analogue) ---
  // Defaults reproduce real-world noise levels; adversarial scenario
  // families crank them up to model hidden route-server peers (§4 ch. 6).
  double ixp_missing_record_p = 0.07;  // membership row absent entirely
  double ixp_stale_record_p = 0.03;    // row present, wrong fabric address

  // --- behaviour mixtures (per router unless noted) ---
  double p_enterprise_firewall = 0.72;  // edge filtering at stub borders
  double p_silent = 0.04;               // no ICMP at all
  double p_echo_only = 0.025;           // no time-exceeded, echo ok (§5.4.8)
  double p_egress_reply = 0.07;         // reply from iface toward probe src
  double p_virtual_router = 0.03;       // per-neighbor reply addresses
  double p_udp_responsive = 0.6;        // Mercator works
  double p_timestamp_honored = 0.2;     // IP timestamp option honored [26]
  double ipid_shared = 0.5;             // Ally/MIDAR resolvable
  double ipid_per_iface = 0.2;
  double ipid_random = 0.15;            // remainder: zero IP-ID
  double rate_limit_max = 0.15;         // uniform [0, max) drop probability

  // --- addressing pathologies ---
  double p_unrouted_infra = 0.10;  // AS never announces its infra block
  double p_pa_infra = 0.08;        // stub numbers internals from provider
  double p_moas_prefix = 0.03;     // prefix co-originated by a sibling
  double p_sibling_org = 0.10;     // AS gets folded into a multi-AS org

  // --- prefix / destination properties ---
  std::size_t host_prefixes_min = 1;
  std::size_t host_prefixes_max = 4;
  double dest_responsiveness_enterprise = 0.15;
  double dest_responsiveness_default = 0.45;

  // Use /31 (vs /30) subnets on interdomain links with this probability.
  double p_slash31 = 0.35;

  // --- reverse DNS realism (§5.1's validation caveats) ---
  double dns_stale_city_p = 0.03;  // name carries the wrong location code
  double dns_org_only_p = 0.2;     // name has an org label but no AS number
};

struct GeneratedInternet {
  Internet net;
  std::vector<Vp> vps;  // one per access-network PoP plus one per R&E AS
};

// Builds the Internet described by `config`.
GeneratedInternet generate(const GeneratorConfig& config);

// The named US PoP locations the generator places routers at.
const std::vector<Pop>& us_pops();

}  // namespace bdrmap::topo
