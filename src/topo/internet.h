// The synthetic Internet: ground-truth ASes, routers, interfaces and links.
//
// This structure substitutes for the real Internet the paper probes. It is
// the *only* holder of ground truth (router ownership, true relationships,
// true interdomain links); the routing simulator and probe engine consume it
// to produce observable behaviour, while the inference core never touches it
// directly. eval:: reads it to score inferences (§5.6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asdata/as_relationships.h"
#include "asdata/bgp_origins.h"
#include "asdata/dns.h"
#include "asdata/ixp.h"
#include "asdata/rir.h"
#include "asdata/siblings.h"
#include "netbase/ids.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "netbase/radix_trie.h"
#include "topo/behavior.h"

namespace bdrmap::topo {

using net::AsId;
using net::IfaceId;
using net::Ipv4Addr;
using net::OrgId;
using net::Prefix;
using net::RouterId;

// Role of an AS in the synthetic topology; drives router counts, peering
// policy and behaviour mixtures in the generator.
enum class AsKind : std::uint8_t {
  kTier1,        // member of the transit-free clique
  kTransit,      // mid-tier transit provider
  kAccess,       // access/eyeball ISP (the paper's "large access network")
  kContent,      // CDN / content network (Akamai/Google-like)
  kEnterprise,   // enterprise or stub customer — firewalls at the edge
  kResearchEdu,  // R&E network (the paper's first validation network)
  kIxpOperator,  // the IXP's own AS (originates the peering LAN, sometimes)
};

struct LinkId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  constexpr LinkId() = default;
  constexpr explicit LinkId(std::uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != kInvalid; }
  friend constexpr auto operator<=>(LinkId, LinkId) = default;
};

enum class LinkKind : std::uint8_t {
  kInternal,     // intra-AS backbone/PoP link
  kInterdomain,  // private point-to-point interconnection (/30 or /31)
  kIxpLan,       // shared IXP peering fabric
};

struct Interface {
  IfaceId id;
  Ipv4Addr addr;
  RouterId router;
  LinkId link;
};

struct Link {
  LinkId id;
  LinkKind kind = LinkKind::kInternal;
  Prefix subnet;                  // /30 or /31 for p2p, larger for IXP LANs
  std::vector<IfaceId> ifaces;    // exactly 2 for p2p links
  // For interdomain links: the AS whose address space numbers the subnet
  // (usually the provider in a c2p relationship, §4 challenge 1). For IXP
  // LANs this is the IXP operator AS. Unused for internal links.
  AsId addr_space_owner;
  double igp_cost = 1.0;          // metric for internal shortest paths
};

// A point of presence: a named location. Longitude matters for Figures 15
// and 16 (geographic diversity of VPs vs. observed interdomain links).
struct Pop {
  std::string city;
  double longitude = 0.0;
  double latitude = 0.0;
};

struct Router {
  RouterId id;
  AsId owner;                     // ground truth
  std::uint32_t pop = 0;          // index into Internet::pops
  std::vector<IfaceId> ifaces;
  RouterBehavior behavior;
  // Convenience ground-truth flag: has at least one interdomain/IXP iface.
  bool is_border = false;
};

// An announced prefix with its attachment point and announcement policy.
struct AnnouncedPrefix {
  Prefix prefix;
  AsId origin;
  RouterId host_router;  // where destination addresses "live"
  // Selective announcement (Akamai-style, §6): when non-empty, the origin
  // announces this prefix only over the listed interdomain links. Empty
  // means announced everywhere (Level3-style / hot potato).
  std::vector<LinkId> only_via_links;
  // Probability a probe to a host in this prefix gets an echo reply back
  // from the destination itself (end hosts are often firewalled).
  double dest_responsiveness = 0.3;
};

struct AsInfo {
  AsId id;
  AsKind kind = AsKind::kEnterprise;
  OrgId org;  // owning organization (drives sibling grouping)
  std::string name;
  std::vector<RouterId> routers;
  std::vector<std::uint32_t> pops;  // indices into Internet::pops
  // Prefixes this AS announces (indices into Internet::announced).
  std::vector<std::size_t> announced;
  // Infrastructure blocks used on interfaces but NOT announced in BGP
  // (§5.4.3 "unrouted addresses"). Registered in RIR delegations only.
  std::vector<Prefix> unrouted_infra;
};

// Ground-truth record of one interdomain interconnection.
struct InterdomainLinkInfo {
  LinkId link;
  AsId as_a;
  AsId as_b;
  RouterId router_a;
  RouterId router_b;
  bool via_ixp = false;
};

class Internet {
 public:
  // ---- construction (used by the generator and by tests) ----
  AsId add_as(AsKind kind, OrgId org, std::string name);
  std::uint32_t add_pop(Pop pop);
  RouterId add_router(AsId owner, std::uint32_t pop, RouterBehavior behavior);
  // Creates a link with one interface per (router, addr) pair given.
  LinkId add_link(LinkKind kind, Prefix subnet, AsId addr_space_owner,
                  const std::vector<std::pair<RouterId, Ipv4Addr>>& ends,
                  double igp_cost = 1.0);
  std::size_t add_announced(AnnouncedPrefix ap);
  void record_interdomain(InterdomainLinkInfo info);

  // ---- queries ----
  const std::vector<AsInfo>& ases() const { return ases_; }
  const std::vector<Router>& routers() const { return routers_; }
  const std::vector<Interface>& ifaces() const { return ifaces_; }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<Pop>& pops() const { return pops_; }
  const std::vector<AnnouncedPrefix>& announced() const { return announced_; }
  const std::vector<InterdomainLinkInfo>& interdomain_links() const {
    return interdomain_;
  }

  const AsInfo& as_info(AsId as) const { return ases_.at(index_of(as)); }
  AsInfo& as_info_mutable(AsId as) { return ases_.at(index_of(as)); }
  bool has_as(AsId as) const { return as_index_.count(as) > 0; }
  const Router& router(RouterId r) const { return routers_.at(r.value); }
  Router& router_mutable(RouterId r) { return routers_.at(r.value); }
  const Interface& iface(IfaceId i) const { return ifaces_.at(i.value); }
  const Link& link(LinkId l) const { return links_.at(l.value); }

  // Interface carrying address `a`, if any. Generator guarantees interface
  // addresses are unique Internet-wide.
  std::optional<IfaceId> iface_at(Ipv4Addr a) const;
  // Router owning address `a`, if any.
  std::optional<RouterId> router_at(Ipv4Addr a) const;

  // The announced prefix covering `a` (longest match), if any.
  const AnnouncedPrefix* announced_match(Ipv4Addr a) const;

  // Ground-truth relationship store (generator-populated).
  asdata::RelationshipStore& truth_relationships() { return truth_rels_; }
  const asdata::RelationshipStore& truth_relationships() const {
    return truth_rels_;
  }

  // Ground-truth origin table (what "the BGP system" would see if every
  // announcement were visible; collectors derive partial views from this).
  asdata::OriginTable& truth_origins() { return truth_origins_; }
  const asdata::OriginTable& truth_origins() const { return truth_origins_; }

  // Public data products the generator also emits (inputs to bdrmap, §5.2).
  asdata::IxpDirectory& ixp_directory() { return ixps_; }
  const asdata::IxpDirectory& ixp_directory() const { return ixps_; }
  asdata::RirDelegations& rir() { return rir_; }
  const asdata::RirDelegations& rir() const { return rir_; }
  asdata::SiblingTable& sibling_table() { return siblings_; }
  const asdata::SiblingTable& sibling_table() const { return siblings_; }
  asdata::ReverseDns& reverse_dns() { return rdns_; }
  const asdata::ReverseDns& reverse_dns() const { return rdns_; }

  // All interdomain/IXP link infos touching `as`.
  std::vector<InterdomainLinkInfo> interdomain_links_of(AsId as) const;

  // Canonical (lowest) interface address of a router — Mercator reply source.
  Ipv4Addr canonical_addr(RouterId r) const;

  // The other end of a point-to-point link from `from_iface`.
  IfaceId p2p_other_end(IfaceId from_iface) const;

 private:
  std::size_t index_of(AsId as) const { return as_index_.at(as); }

  std::vector<AsInfo> ases_;
  std::unordered_map<AsId, std::size_t> as_index_;
  std::vector<Router> routers_;
  std::vector<Interface> ifaces_;
  std::vector<Link> links_;
  std::vector<Pop> pops_;
  std::vector<AnnouncedPrefix> announced_;
  net::RadixTrie<std::size_t> announced_trie_;  // prefix -> index
  std::vector<InterdomainLinkInfo> interdomain_;
  std::unordered_map<Ipv4Addr, IfaceId> addr_index_;

  asdata::RelationshipStore truth_rels_;
  asdata::OriginTable truth_origins_;
  asdata::IxpDirectory ixps_;
  asdata::RirDelegations rir_;
  asdata::SiblingTable siblings_;
  asdata::ReverseDns rdns_;
};

}  // namespace bdrmap::topo
