#include "topo/internet.h"

#include <algorithm>
#include <stdexcept>

namespace bdrmap::topo {

AsId Internet::add_as(AsKind kind, OrgId org, std::string name) {
  // AS numbers start at 1 and grow densely; tests may rely on determinism.
  AsId id(static_cast<std::uint32_t>(ases_.size() + 1));
  AsInfo info;
  info.id = id;
  info.kind = kind;
  info.org = org;
  info.name = std::move(name);
  as_index_.emplace(id, ases_.size());
  ases_.push_back(std::move(info));
  if (org.valid()) siblings_.assign(id, org);
  return id;
}

std::uint32_t Internet::add_pop(Pop pop) {
  pops_.push_back(std::move(pop));
  return static_cast<std::uint32_t>(pops_.size() - 1);
}

RouterId Internet::add_router(AsId owner, std::uint32_t pop,
                              RouterBehavior behavior) {
  RouterId id(static_cast<std::uint32_t>(routers_.size()));
  Router r;
  r.id = id;
  r.owner = owner;
  r.pop = pop;
  r.behavior = behavior;
  routers_.push_back(std::move(r));
  as_info_mutable(owner).routers.push_back(id);
  return id;
}

LinkId Internet::add_link(
    LinkKind kind, Prefix subnet, AsId addr_space_owner,
    const std::vector<std::pair<RouterId, Ipv4Addr>>& ends, double igp_cost) {
  LinkId id(static_cast<std::uint32_t>(links_.size()));
  Link link;
  link.id = id;
  link.kind = kind;
  link.subnet = subnet;
  link.addr_space_owner = addr_space_owner;
  link.igp_cost = igp_cost;
  for (const auto& [router_id, addr] : ends) {
    if (addr_index_.count(addr) != 0) {
      throw std::logic_error("duplicate interface address " + addr.str());
    }
    IfaceId iface_id(static_cast<std::uint32_t>(ifaces_.size()));
    ifaces_.push_back(Interface{iface_id, addr, router_id, id});
    addr_index_.emplace(addr, iface_id);
    routers_.at(router_id.value).ifaces.push_back(iface_id);
    link.ifaces.push_back(iface_id);
    if (kind != LinkKind::kInternal) {
      routers_.at(router_id.value).is_border = true;
    }
  }
  links_.push_back(std::move(link));
  return id;
}

std::size_t Internet::add_announced(AnnouncedPrefix ap) {
  std::size_t index = announced_.size();
  announced_trie_.insert(ap.prefix, index);
  truth_origins_.add(ap.prefix, ap.origin);
  as_info_mutable(ap.origin).announced.push_back(index);
  announced_.push_back(std::move(ap));
  return index;
}

void Internet::record_interdomain(InterdomainLinkInfo info) {
  interdomain_.push_back(info);
}

std::optional<IfaceId> Internet::iface_at(Ipv4Addr a) const {
  auto it = addr_index_.find(a);
  if (it == addr_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<RouterId> Internet::router_at(Ipv4Addr a) const {
  auto i = iface_at(a);
  if (!i) return std::nullopt;
  return ifaces_.at(i->value).router;
}

const AnnouncedPrefix* Internet::announced_match(Ipv4Addr a) const {
  const std::size_t* idx = announced_trie_.match(a);
  return idx ? &announced_.at(*idx) : nullptr;
}

std::vector<InterdomainLinkInfo> Internet::interdomain_links_of(
    AsId as) const {
  std::vector<InterdomainLinkInfo> out;
  for (const auto& info : interdomain_) {
    if (info.as_a == as || info.as_b == as) out.push_back(info);
  }
  return out;
}

Ipv4Addr Internet::canonical_addr(RouterId r) const {
  const Router& router = routers_.at(r.value);
  Ipv4Addr best;
  bool found = false;
  for (IfaceId i : router.ifaces) {
    Ipv4Addr a = ifaces_.at(i.value).addr;
    if (!found || a < best) {
      best = a;
      found = true;
    }
  }
  return best;  // zero address when the router has no interfaces
}

IfaceId Internet::p2p_other_end(IfaceId from_iface) const {
  const Interface& from = ifaces_.at(from_iface.value);
  const Link& link = links_.at(from.link.value);
  for (IfaceId i : link.ifaces) {
    if (i != from_iface) return i;
  }
  return IfaceId{};
}

}  // namespace bdrmap::topo
