// Per-router response behaviour model.
//
// §4 of the paper catalogs seven reasons the obvious IP-AS inference fails;
// almost all of them are *router implementation and configuration* details.
// Every such detail is an explicit, independently switchable field here so
// (a) the generator can draw realistic mixtures, and (b) unit tests can
// construct a router exhibiting exactly one idiosyncrasy at a time.
#pragma once

#include <cstdint>

namespace bdrmap::topo {

// How the router assigns IP-ID values to the packets it originates.
// Determines which alias-resolution techniques can see it (§5.3).
enum class IpidKind : std::uint8_t {
  kSharedCounter,  // one central counter — Ally/MIDAR resolvable
  kPerInterface,   // independent counter per interface — not Ally resolvable
  kRandom,         // randomized IP-ID — not resolvable, can false-positive
  kZero,           // always zero (common on modern Linux) — unresolvable
};

// Which source address the router puts on an ICMP time-exceeded reply.
enum class ReplyAddrPolicy : std::uint8_t {
  kIngress,      // address of the interface the probe arrived on (common,
                 // and what §5.3 relies on for time-exceeded messages)
  kEgressToSrc,  // address of the interface used to transmit the reply,
                 // per the IETF advice in [4] — source of third-party
                 // addresses (§4 challenge 2)
  kVirtualRouter,  // address of the virtual router that would have forwarded
                   // the probe onward (§4 challenge 4)
};

struct RouterBehavior {
  // ICMP time-exceeded generation. When false the router never appears as an
  // intermediate traceroute hop (§5.4.8 "silent" routers).
  bool sends_ttl_expired = true;

  // Replies to ICMP echo requests addressed to its own interfaces.
  bool responds_echo = true;

  // Replies to UDP probes to unused ports with ICMP port-unreachable whose
  // source is a canonical address — the Mercator alias technique (§5.3).
  bool responds_udp = true;

  // Honors the IP prespecified-timestamp option (most routers strip or
  // ignore it; [26] measured a minority honoring it) — fuel for the
  // timestamp-based third-party detection extension.
  bool honors_timestamp = false;

  // Enterprise edge filtering: the router itself answers probes whose TTL
  // expires at it, but silently discards packets that would transit onward
  // into its network (§4 challenge 3, router R5 in Figure 1).
  bool firewall_edge = false;

  ReplyAddrPolicy reply_addr = ReplyAddrPolicy::kIngress;

  IpidKind ipid = IpidKind::kSharedCounter;
  // Background IP-ID consumption in increments/second (traffic the router
  // sources besides our probes). Drives MIDAR/Ally velocity modelling.
  double ipid_velocity = 20.0;
  // Initial counter value (randomized by the generator).
  std::uint16_t ipid_init = 0;

  // Probability an individual probe response is suppressed (ICMP rate
  // limiting). Distinguished from silent routers in §5.4.8.
  double rate_limit_drop = 0.0;

  // Completely unresponsive to every probe type (R6 in Figure 1).
  bool silent() const {
    return !sends_ttl_expired && !responds_echo && !responds_udp;
  }
  void make_silent() {
    sends_ttl_expired = false;
    responds_echo = false;
    responds_udp = false;
  }
};

}  // namespace bdrmap::topo
