// Resilience analysis (§2 "Network Modeling and Resilience").
//
// The paper motivates border mapping with resiliency questions: which
// routers and interconnects "carry traffic to a significant fraction of
// the Internet", and how much reachability an outage would cost. With the
// per-trace exit records we can answer both for the hosting network: the
// share of routed prefixes each border router carries, and the reachability
// lost if it failed with no reconvergence (worst case) — an upper bound on
// the blast radius the paper's [37] estimates.
#pragma once

#include <map>
#include <vector>

#include "eval/analysis.h"

namespace bdrmap::eval {

struct CriticalRouter {
  RouterId router;               // ground-truth identity of the egress
  std::size_t prefixes = 0;      // routed prefixes exiting through it
  double share = 0.0;            // fraction of all measured prefixes
  std::size_t sole_exit_for = 0; // prefixes with no other observed egress
};

struct RobustnessReport {
  std::size_t prefixes_measured = 0;
  std::vector<CriticalRouter> routers;  // sorted by share, descending

  // Prefixes reachable only via a single border router (the fragile set).
  std::size_t single_homed_prefixes = 0;
  // Largest single-router blast radius as a fraction of prefixes.
  double worst_blast_radius = 0.0;
};

// Aggregates exit records from one or more runs (multiple VPs give the
// full egress diversity per prefix).
RobustnessReport robustness_report(
    const std::vector<std::vector<TraceExit>>& per_run_exits);

}  // namespace bdrmap::eval
