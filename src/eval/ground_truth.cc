#include "eval/ground_truth.h"

#include <algorithm>
#include <map>

namespace bdrmap::eval {

GroundTruth::GroundTruth(const topo::Internet& net, AsId vp_as)
    : net_(net), vp_as_(vp_as) {}

std::optional<RouterId> GroundTruth::true_router(
    const std::vector<Ipv4Addr>& addrs) const {
  std::map<RouterId, int> votes;
  for (Ipv4Addr a : addrs) {
    if (auto r = net_.router_at(a)) ++votes[*r];
  }
  if (votes.empty()) return std::nullopt;
  auto best = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return best->first;
}

std::optional<AsId> GroundTruth::true_owner(
    const std::vector<Ipv4Addr>& addrs) const {
  std::map<AsId, int> votes;
  for (Ipv4Addr a : addrs) {
    if (auto r = net_.router_at(a)) ++votes[net_.router(*r).owner];
  }
  if (votes.empty()) return std::nullopt;
  auto best = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return best->first;
}

bool GroundTruth::same_org(AsId a, AsId b) const {
  if (a == b) return true;
  return net_.sibling_table().are_siblings(a, b);
}

std::vector<AsId> GroundTruth::true_neighbors() const {
  std::vector<AsId> out;
  for (const auto& info : net_.interdomain_links()) {
    AsId other;
    if (same_org(info.as_a, vp_as_)) {
      other = info.as_b;
    } else if (same_org(info.as_b, vp_as_)) {
      other = info.as_a;
    } else {
      continue;
    }
    if (std::find(out.begin(), out.end(), other) == out.end()) {
      out.push_back(other);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ValidationSummary GroundTruth::validate(
    const core::BdrmapResult& result) const {
  ValidationSummary summary;

  // Routers: every inferred neighbor (far-side) router.
  const auto& routers = result.graph.routers();
  for (std::size_t i = 0; i < routers.size(); ++i) {
    const auto& r = routers[i];
    if (r.addrs.empty() || r.vp_side || r.how == core::Heuristic::kNone ||
        !r.owner.valid()) {
      continue;
    }
    RouterValidation v;
    v.graph_index = i;
    v.inferred_owner = r.owner;
    v.how = r.how;
    auto truth = true_owner(r.addrs);
    if (!truth) {
      // Addresses unknown to the generator cannot occur; defensive.
      v.verdict = Verdict::kInconsistent;
    } else {
      v.true_owner = *truth;
      v.verdict = same_org(*truth, r.owner) ? Verdict::kCorrect
                                            : Verdict::kWrongAs;
    }
    ++summary.routers_total;
    if (v.verdict == Verdict::kCorrect) ++summary.routers_correct;
    summary.routers.push_back(v);
  }

  // Links: resolve each inferred link to ground-truth routers and check
  // that such an interdomain link exists with the inferred organization.
  for (std::size_t i = 0; i < result.links.size(); ++i) {
    const auto& link = result.links[i];
    LinkTruth lt;
    lt.link_index = i;
    lt.inferred_as = link.neighbor_as;

    if (link.vp_router != core::InferredLink::kNoRouter) {
      auto near = true_router(routers[link.vp_router].addrs);
      if (near) lt.near_router = *near;
    }
    if (link.neighbor_router != core::InferredLink::kNoRouter) {
      auto far = true_router(routers[link.neighbor_router].addrs);
      if (far) lt.far_router = *far;
    }

    if (lt.far_router.valid()) {
      // Correct iff the far router's true operator matches the inferred
      // organization (this is what the paper's operators confirmed).
      lt.correct = same_org(net_.router(lt.far_router).owner,
                            link.neighbor_as);
      // Resolve the physical interconnect: an inferred far-side address
      // sitting on an interdomain subnet identifies the link precisely
      // (parallel links between one router pair stay distinct).
      for (Ipv4Addr a : routers[link.neighbor_router].addrs) {
        auto iface = net_.iface_at(a);
        if (!iface) continue;
        const auto& l = net_.link(net_.iface(*iface).link);
        if (l.kind == topo::LinkKind::kInternal) continue;
        if (!lt.near_router.valid()) {
          lt.truth_link = l.id;
          break;
        }
        bool touches_near = false;
        for (auto i2 : l.ifaces) {
          touches_near |= net_.iface(i2).router == lt.near_router;
        }
        if (touches_near) {
          lt.truth_link = l.id;
          break;
        }
      }
      if (!lt.truth_link.valid() && lt.near_router.valid()) {
        for (const auto& info : net_.interdomain_links()) {
          bool match = (info.router_a == lt.near_router &&
                        info.router_b == lt.far_router) ||
                       (info.router_b == lt.near_router &&
                        info.router_a == lt.far_router);
          if (match) {
            lt.truth_link = info.link;
            break;
          }
        }
      }
    } else if (lt.near_router.valid()) {
      // Silent neighbor: correct iff the true near router has an
      // interdomain link with the inferred organization.
      for (const auto& info : net_.interdomain_links()) {
        bool near_matches =
            info.router_a == lt.near_router || info.router_b == lt.near_router;
        if (!near_matches) continue;
        AsId other = (info.router_a == lt.near_router) ? info.as_b : info.as_a;
        if (same_org(other, link.neighbor_as)) {
          lt.correct = true;
          lt.far_router = (info.router_a == lt.near_router) ? info.router_b
                                                            : info.router_a;
          lt.truth_link = info.link;
          break;
        }
      }
    }
    ++summary.links_total;
    if (lt.correct) ++summary.links_correct;
    summary.links.push_back(lt);
  }
  return summary;
}

}  // namespace bdrmap::eval
