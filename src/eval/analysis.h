// Per-trace exit analysis for the §6 interconnection studies.
//
// Figure 14 needs, for every routed prefix and every VP, the border router
// the probe left the hosting network through and the next-hop AS; Figures
// 15 and 16 need the set of physical interconnects each VP discovered with
// a given neighbor. Both are derived from bdrmap results resolved against
// ground truth (cross-VP router identity requires the generator's ids).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/bdrmap.h"
#include "eval/ground_truth.h"

namespace bdrmap::eval {

// Where one trace left the hosting network.
struct TraceExit {
  net::Prefix prefix;       // routed prefix the destination fell in
  RouterId egress_truth;    // true identity of the last VP-side router
  AsId next_as;             // inferred operator of the first external hop
};

// Extracts an exit record from every trace that visibly left the hosting
// network. `origins` must be the same public table the run consumed.
std::vector<TraceExit> trace_exits(const core::BdrmapResult& result,
                                   const GroundTruth& truth,
                                   const asdata::OriginTable& origins);

// The distinct physical interconnects (truth link ids) this run discovered
// with `neighbor` (sibling-aware).
std::set<std::uint32_t> discovered_links_with(
    const core::BdrmapResult& result, const GroundTruth& truth,
    AsId neighbor);

}  // namespace bdrmap::eval
