#include "eval/degradation.h"

#include "eval/report.h"
#include "eval/table1.h"

namespace bdrmap::eval {

DegradationRow score_degraded_run(double fault_rate,
                                  const core::BdrmapResult& result,
                                  const GroundTruth& truth,
                                  const asdata::RelationshipStore& rels,
                                  const std::vector<AsId>& vp_ases) {
  DegradationRow row;
  row.fault_rate = fault_rate;
  row.links = result.links.size();
  row.neighbor_ases = result.links_by_as.size();
  row.probe_failures = result.stats.probe_failures;

  Table1 table = build_table1(result, rels, vp_ases);
  row.bgp_coverage = table.bgp_coverage();

  ValidationSummary summary = truth.validate(result);
  row.router_ppv = summary.router_accuracy();
  row.link_ppv = summary.link_accuracy();
  return row;
}

bool same_border_map(const core::BdrmapResult& a,
                     const core::BdrmapResult& b) {
  if (a.links.size() != b.links.size()) return false;
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    const auto& la = a.links[i];
    const auto& lb = b.links[i];
    // InferredLink::confidence is deliberately NOT compared (DESIGN.md
    // §15): it annotates inference strength and must never redefine what
    // "same map" means for the identity gates. Likewise rule_stats below.
    if (la.vp_router != lb.vp_router ||
        la.neighbor_router != lb.neighbor_router ||
        la.neighbor_as != lb.neighbor_as || la.how != lb.how) {
      return false;
    }
  }
  if (a.links_by_as != b.links_by_as) return false;
  // probes_sent is deliberately NOT compared: the split deployment spends
  // extra device probes past the controller-side stop-set truncation (the
  // §5.8 trade), without changing the inferred map.
  const core::BdrmapStats& sa = a.stats;
  const core::BdrmapStats& sb = b.stats;
  return sa.traces == sb.traces && sa.routers == sb.routers &&
         sa.stopset_hits == sb.stopset_hits &&
         sa.alias_pair_tests == sb.alias_pair_tests &&
         sa.probe_failures == sb.probe_failures;
}

std::string render_degradation(const std::vector<DegradationRow>& rows) {
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const DegradationRow& row : rows) {
    cells.push_back({
        format_double(row.fault_rate * 100.0, 1) + "%",
        std::to_string(row.links),
        std::to_string(row.neighbor_ases),
        format_double(row.bgp_coverage * 100.0, 1) + "%",
        format_double(row.router_ppv * 100.0, 1) + "%",
        format_double(row.link_ppv * 100.0, 1) + "%",
        std::to_string(row.probe_failures),
        std::to_string(row.retransmits),
        std::to_string(row.timeouts),
        std::to_string(row.corrupt_frames_detected),
        std::to_string(row.device_restarts),
        row.identical_to_baseline ? "yes" : "no",
    });
  }
  return render_table({"fault rate", "links", "nbr ASes", "coverage",
                       "router PPV", "link PPV", "failed", "rexmit",
                       "timeout", "corrupt", "restarts", "identical"},
                      cells);
}

}  // namespace bdrmap::eval
