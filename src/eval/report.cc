#include "eval/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bdrmap::eval {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      if (c == 0) {
        line += cell + std::string(widths[c] - cell.size(), ' ');
      } else {
        line += "  " + std::string(widths[c] - cell.size(), ' ') + cell;
      }
    }
    return line + "\n";
  };
  std::string out = render_row(header);
  out += std::string(out.size() - 1, '-') + "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

std::vector<std::pair<int, double>> cdf(std::vector<int> samples) {
  std::vector<std::pair<int, double>> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i + 1 == samples.size() || samples[i + 1] != samples[i]) {
      out.emplace_back(samples[i], static_cast<double>(i + 1) / n);
    }
  }
  return out;
}

std::string render_series(const std::string& title,
                          const std::vector<std::pair<double, double>>& xy,
                          int height) {
  std::string out = title + "\n";
  if (xy.empty()) return out + "  (no data)\n";
  double ymax = 0.0;
  for (const auto& [x, y] : xy) ymax = std::max(ymax, y);
  if (ymax <= 0.0) ymax = 1.0;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(xy.size(), ' '));
  for (std::size_t i = 0; i < xy.size(); ++i) {
    int level = static_cast<int>(std::lround(xy[i].second / ymax *
                                             (height - 1)));
    level = std::clamp(level, 0, height - 1);
    grid[static_cast<std::size_t>(height - 1 - level)][i] = '*';
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%8.1f |", ymax);
  out += std::string(buf) + grid[0] + "\n";
  for (int r = 1; r < height; ++r) {
    out += "         |" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  out += "         +" + std::string(xy.size(), '-') + "\n";
  std::snprintf(buf, sizeof(buf), "          x: %.1f .. %.1f\n", xy.front().first,
                xy.back().first);
  out += buf;
  return out;
}

}  // namespace bdrmap::eval
