#include "eval/fuzzer.h"

#include <algorithm>
#include <exception>
#include <map>
#include <sstream>

#include "check/check.h"
#include "eval/ground_truth.h"
#include "netbase/contract.h"
#include "netbase/rng.h"
#include "runtime/parallel_for.h"

namespace bdrmap::eval {

namespace {

// Jitters `p` multiplicatively within [0.5x, 1.5x], clamped to [0, cap].
double jitter(net::Rng& rng, double p, double cap = 0.95) {
  return std::clamp(p * rng.uniform_real(0.5, 1.5), 0.0, cap);
}

std::string make_repro(const std::string& family, std::uint64_t seed) {
  std::ostringstream os;
  os << "tools/scenario_fuzz --family " << family << " --base-seed " << seed
     << " --seeds 1";
  return os.str();
}

}  // namespace

std::vector<std::string> default_fuzz_families() {
  std::vector<std::string> out = adversarial_scenario_names();
  out.insert(out.begin(), "small");  // one clean control family
  return out;
}

ScenarioSpec fuzzed_spec(const std::string& family, std::uint64_t seed) {
  auto base = scenario_spec(family, seed);
  BDRMAP_EXPECTS(base.has_value(), "fuzzed family must be registered");
  ScenarioSpec spec = *base;

  // Independent stream per case: the topology draw must not perturb the
  // generator's own seeded stream (spec.config.seed stays `seed`).
  net::Rng rng(seed ^ 0xF0221E57ULL);
  topo::GeneratorConfig& c = spec.config;
  c.num_tier1 = rng.uniform(3, 6);
  c.num_transit = rng.uniform(8, 16);
  c.num_access = rng.uniform(3, 6);
  c.num_content = rng.uniform(4, 8);
  c.num_research_edu = rng.uniform(1, 3);
  c.num_enterprise = rng.uniform(40, 100);
  c.num_ixps = rng.uniform(1, 3);
  c.featured_access_pops = rng.uniform(3, 6);
  c.enterprise_multihome_p = jitter(rng, c.enterprise_multihome_p);
  c.transit_peering_p = jitter(rng, c.transit_peering_p);
  c.content_peers_access_p = jitter(rng, c.content_peers_access_p);
  c.ixp_member_p = jitter(rng, c.ixp_member_p);
  c.ixp_peering_p = jitter(rng, c.ixp_peering_p);
  c.p_egress_reply = jitter(rng, c.p_egress_reply, 0.4);
  c.p_virtual_router = jitter(rng, c.p_virtual_router, 0.2);
  return spec;
}

FuzzCaseResult run_fuzz_case(const std::string& family, std::uint64_t seed,
                             double floor_override, obs::Observability* obs) {
  FuzzCaseResult out;
  out.family = family;
  out.seed = seed;
  out.repro = make_repro(family, seed);
  try {
    ScenarioSpec spec = fuzzed_spec(family, seed);
    out.floor = floor_override >= 0.0 ? floor_override : spec.fuzz_floor;
    Scenario scenario(spec);

    // Property 3a: the generated truth graph must itself be Gao-Rexford
    // consistent — the adversarial layers poison announcements, exports,
    // and input copies, never the relationship edges.
    check::InvariantChecker checker;
    check::CheckContext truth_ctx;
    truth_ctx.net = &scenario.net();
    truth_ctx.rels = &scenario.net().truth_relationships();
    check::CheckReport truth_report = checker.run(
        truth_ctx, {std::string(check::pass_id::kAsGraphSymmetry),
                    std::string(check::pass_id::kAsGraphGaoRexford)});
    out.gr_consistent = truth_report.error_count() == 0;

    // The pipeline run (property 1 guards the whole try block).
    net::AsId vp_as = scenario.first_of(spec.vp_kind);
    std::vector<topo::Vp> vps = scenario.vps_in(vp_as);
    if (vps.empty()) {
      out.crashed = true;
      out.error = "no VP available in the featured network";
      return out;
    }
    core::BdrmapConfig config;
    config.obs = obs;
    core::BdrmapResult result = scenario.run_bdrmap(vps.front(), config, seed);

    // Property 2: accuracy against ground truth.
    GroundTruth truth(scenario.net(), vp_as);
    ValidationSummary summary = truth.validate(result);
    out.link_accuracy = summary.link_accuracy();
    out.links_total = summary.links_total;

    // Property 3b: the inference audit over what the pipeline produced.
    core::InferenceInputs inputs = scenario.inputs_for(vp_as);
    check::CheckContext ctx = check::inference_context(result, inputs);
    ctx.net = &scenario.net();
    out.audit_errors = checker.run(ctx).error_count();
  } catch (const std::exception& e) {
    out.crashed = true;
    out.error = e.what();
    return out;
  } catch (...) {
    out.crashed = true;
    out.error = "unknown exception";
    return out;
  }
  out.passed = !out.crashed && out.gr_consistent && out.audit_errors == 0 &&
               out.links_total > 0 && out.link_accuracy >= out.floor;
  return out;
}

FuzzSummary run_fuzz(const FuzzConfig& config) {
  const std::vector<std::string> families =
      config.families.empty() ? default_fuzz_families() : config.families;
  BDRMAP_EXPECTS(!families.empty(), "fuzz sweep needs at least one family");

  // Contract mode is process-global, so it is switched once around the
  // whole (possibly pool-parallel) sweep rather than per case: a firing
  // BDRMAP_EXPECTS anywhere in the pipeline surfaces as a recorded crash.
  net::ScopedContractMode guard(net::ContractMode::kThrow);

  FuzzSummary summary;
  summary.cases = runtime::parallel_map<FuzzCaseResult>(
      config.pool, config.cases, [&](std::size_t i) {
        const std::string& family = families[i % families.size()];
        return run_fuzz_case(family, config.base_seed + i,
                             config.floor_override, config.obs);
      });

  if (config.obs != nullptr && config.obs->registry() != nullptr) {
    obs::MetricsRegistry* reg = config.obs->registry();
    reg->counter("eval.fuzz.scenarios").inc(summary.cases.size());
    reg->counter("eval.fuzz.failures").inc(summary.failures());
    // Per-family minimum link accuracy, in basis points (gauges are int64).
    std::map<std::string, double> min_acc;
    for (const FuzzCaseResult& c : summary.cases) {
      auto [it, fresh] = min_acc.try_emplace(c.family, c.link_accuracy);
      if (!fresh) it->second = std::min(it->second, c.link_accuracy);
    }
    for (const auto& [family, acc] : min_acc) {
      reg->gauge("eval.fuzz.accuracy_bp." + family)
          .set(static_cast<std::int64_t>(acc * 10000.0));
    }
  }
  return summary;
}

}  // namespace bdrmap::eval
