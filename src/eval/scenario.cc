#include "eval/scenario.h"

namespace bdrmap::eval {

namespace {

ScenarioSpec custom_spec(const topo::GeneratorConfig& config,
                         const route::CollectorConfig& collector_config) {
  ScenarioSpec spec;
  spec.config = config;
  spec.collectors = collector_config;
  return spec;
}

}  // namespace

Scenario::Scenario(const topo::GeneratorConfig& config,
                   const route::CollectorConfig& collector_config,
                   const route::FibOptions& fib_options)
    : Scenario(custom_spec(config, collector_config), fib_options) {}

Scenario::Scenario(const ScenarioSpec& spec,
                   const route::FibOptions& fib_options)
    : spec_(spec), gen_(topo::generate(spec.config)) {
  // Control-plane mutations run before the routing substrate is built so
  // the FIB and collector view see the poisoned announcements.
  const AdversarySpec& adv = spec_.adversary;
  if (adv.hijacked_prefixes > 0) {
    hijacks_ = inject_hijacks(gen_.net, first_of(spec_.vp_kind),
                              adv.hijacked_prefixes, adv.seed);
  }
  if (adv.anycast_prefixes > 0) {
    anycasts_ = inject_anycast(gen_.net, adv.anycast_prefixes, adv.seed);
  }
  route::BgpPolicy policy;
  if (adv.route_leakers > 0) {
    policy.leakers = pick_route_leakers(gen_.net, adv.route_leakers);
  }
  // One registry handle covers the whole routing substrate: the BGP
  // simulator inherits whatever FibOptions carries.
  bgp_ = std::make_unique<route::BgpSimulator>(gen_.net, std::move(policy),
                                               fib_options.metrics);
  fib_ = std::make_unique<route::Fib>(gen_.net, *bgp_, fib_options);
  collectors_ = std::make_unique<route::CollectorView>(gen_.net, *bgp_,
                                                       spec_.collectors);
  asdata::RelationshipInferenceConfig ric;
  ric.clique_seed_size = spec_.config.num_tier1;
  inferred_rels_ = collectors_->infer_relationships(ric);
  if (adv.corruption.any()) {
    // Every VP-hosting AS is an operator with curated self-knowledge, so
    // its own records survive the corruption (see corrupt_inputs).
    std::vector<net::AsId> vp_hosts;
    for (const auto& vp : gen_.vps) {
      if (std::find(vp_hosts.begin(), vp_hosts.end(), vp.as) ==
          vp_hosts.end()) {
        vp_hosts.push_back(vp.as);
      }
    }
    corrupted_ = corrupt_inputs(gen_.net, collectors_->public_origins(),
                                inferred_rels_, adv.corruption, vp_hosts);
  }
}

core::InferenceInputs Scenario::inputs_for(net::AsId as) const {
  core::InferenceInputs in;
  if (corrupted_.has_value()) {
    in.origins = &corrupted_->origins;
    in.rels = &corrupted_->rels;
    in.ixps = &corrupted_->ixps;
    in.rir = &corrupted_->rir;
    in.siblings = &corrupted_->siblings;
    // The VP's own sibling list is operator-curated (§5.2), so it stays
    // truthful even when the public AS-to-org data is corrupted.
    in.vp_ases = gen_.net.sibling_table().siblings_of(as);
  } else {
    in.origins = &collectors_->public_origins();
    in.rels = &inferred_rels_;
    in.ixps = &gen_.net.ixp_directory();
    in.rir = &gen_.net.rir();
    in.siblings = &gen_.net.sibling_table();
    in.vp_ases = gen_.net.sibling_table().siblings_of(as);
  }
  // Primary AS first (§5.2: curated list for the hosting network).
  auto it = std::find(in.vp_ases.begin(), in.vp_ases.end(), as);
  if (it != in.vp_ases.end()) std::iter_swap(in.vp_ases.begin(), it);
  return in;
}

std::vector<topo::Vp> Scenario::vps_in(net::AsId as) const {
  std::vector<topo::Vp> out;
  for (const auto& vp : gen_.vps) {
    if (vp.as == as) out.push_back(vp);
  }
  return out;
}

std::unique_ptr<probe::LocalProbeServices> Scenario::services_for(
    const topo::Vp& vp, std::uint64_t seed,
    probe::TracerConfig tracer) const {
  // Spec-level reply spoofing applies unless the caller configured its own.
  if (tracer.spoof_reply_p <= 0.0) {
    tracer.spoof_reply_p = spec_.adversary.spoof_reply_p;
  }
  return std::make_unique<probe::LocalProbeServices>(gen_.net, *fib_, vp,
                                                     seed, tracer);
}

core::BdrmapResult Scenario::run_bdrmap(const topo::Vp& vp,
                                        core::BdrmapConfig config,
                                        std::uint64_t seed,
                                        probe::TracerConfig tracer) const {
  // Obs runs get probe counters for free: wire the run's registry into the
  // probe stack unless the caller supplied one explicitly.
  if (!tracer.metrics && config.obs) tracer.metrics = config.obs->registry();
  auto services = services_for(vp, seed, tracer);
  core::InferenceInputs inputs = inputs_for(vp.as);
  core::Bdrmap bdrmap(*services, inputs, config);
  return bdrmap.run();
}

runtime::MultiVpResult Scenario::run_bdrmap_parallel(
    const std::vector<topo::Vp>& vps, core::BdrmapConfig config,
    std::uint64_t base_seed, runtime::ThreadPool* pool,
    probe::TracerConfig tracer) const {
  if (!tracer.metrics && config.obs) tracer.metrics = config.obs->registry();
  std::vector<runtime::VpJob> jobs;
  jobs.reserve(vps.size());
  for (std::size_t i = 0; i < vps.size(); ++i) {
    runtime::VpJob job;
    const topo::Vp vp = vps[i];
    const std::uint64_t seed = base_seed + i;
    job.make_services = [this, vp, seed,
                         tracer]() -> std::unique_ptr<probe::ProbeServices> {
      return services_for(vp, seed, tracer);
    };
    job.inputs = inputs_for(vp.as);
    job.config = config;
    jobs.push_back(std::move(job));
  }
  return runtime::MultiVpExecutor(pool).run(jobs);
}

runtime::MultiVpResult Scenario::run_bdrmap_sharded(
    const std::vector<topo::Vp>& vps, core::BdrmapConfig config,
    std::uint64_t base_seed, runtime::ThreadPool* pool,
    std::size_t ases_per_shard, probe::TracerConfig tracer) const {
  if (!tracer.metrics && config.obs) tracer.metrics = config.obs->registry();
  std::vector<runtime::ShardedVpJob> jobs;
  jobs.reserve(vps.size());
  for (const topo::Vp& vp : vps) {
    runtime::ShardedVpJob job;
    const topo::Vp vp_copy = vp;
    job.make_services = [this, vp_copy, tracer](std::uint64_t seed)
        -> std::unique_ptr<probe::ProbeServices> {
      return services_for(vp_copy, seed, tracer);
    };
    job.inputs = inputs_for(vp.as);
    job.config = config;
    jobs.push_back(std::move(job));
  }
  runtime::ShardPlan plan;
  plan.base_seed = base_seed;
  plan.ases_per_shard = ases_per_shard;
  return runtime::MultiVpExecutor(pool).run_sharded(jobs, plan);
}

net::AsId Scenario::first_of(topo::AsKind kind, std::size_t index) const {
  std::size_t seen = 0;
  for (const auto& info : gen_.net.ases()) {
    if (info.kind == kind) {
      if (seen == index) return info.id;
      ++seen;
    }
  }
  return net::AsId{};
}

net::AsId Scenario::featured_access() const {
  return first_of(topo::AsKind::kAccess);
}
net::AsId Scenario::level3_like() const {
  return first_of(topo::AsKind::kTier1);
}
net::AsId Scenario::akamai_like() const {
  return first_of(topo::AsKind::kContent);
}
net::AsId Scenario::google_like() const {
  return first_of(topo::AsKind::kContent, 1);
}

topo::GeneratorConfig research_education_config(std::uint64_t seed) {
  // A small Internet where the VP network is an R&E network with tens of
  // customers, a couple of peers and one provider (§5.6's first network).
  topo::GeneratorConfig c;
  c.seed = seed;
  c.num_tier1 = 6;
  c.num_transit = 18;
  c.num_access = 4;
  c.num_content = 8;
  c.num_research_edu = 4;
  c.num_enterprise = 120;
  c.num_ixps = 3;
  // The paper's R&E network had ~30 customers, 2 peers, 1 provider.
  c.featured_ren_customer_weight = 30.0;
  return c;
}

topo::GeneratorConfig large_access_config(std::uint64_t seed) {
  // The §6 deployment: a 19-PoP US access network with dense Tier-1
  // peering and CDN interconnection.
  topo::GeneratorConfig c;
  c.seed = seed;
  return c;  // defaults are tuned for this scenario
}

topo::GeneratorConfig tier1_config(std::uint64_t seed) {
  // A larger Internet where the VP sits inside a Tier-1 with many hundreds
  // of customers (§5.6's Tier-1 network, scaled down ~5x).
  topo::GeneratorConfig c;
  c.seed = seed;
  c.num_transit = 48;
  c.num_enterprise = 380;
  c.num_content = 16;
  return c;
}

topo::GeneratorConfig small_access_config(std::uint64_t seed) {
  topo::GeneratorConfig c;
  c.seed = seed;
  c.num_tier1 = 5;
  c.num_transit = 14;
  c.num_access = 6;
  c.num_content = 6;
  c.num_research_edu = 2;
  c.num_enterprise = 80;
  c.num_ixps = 2;
  c.featured_access_pops = 4;  // a small regional access network
  return c;
}

topo::GeneratorConfig scale_config(std::uint64_t seed) {
  // Thousands of ASes: enough distinct §5.3 target ASes that a sharded
  // run yields hundreds of slice tasks per VP and a probe wave always
  // fills. Enterprise stubs dominate, as in the real routing table.
  topo::GeneratorConfig c;
  c.seed = seed;
  c.num_tier1 = 8;
  c.num_transit = 64;
  c.num_access = 12;
  c.num_content = 20;
  c.num_research_edu = 8;
  c.num_enterprise = 2000;
  c.num_ixps = 5;
  return c;
}

}  // namespace bdrmap::eval
