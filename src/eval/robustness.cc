#include "eval/robustness.h"

#include <algorithm>
#include <set>

namespace bdrmap::eval {

RobustnessReport robustness_report(
    const std::vector<std::vector<TraceExit>>& per_run_exits) {
  RobustnessReport report;

  // Per prefix: the set of egress routers observed across all runs.
  std::map<net::Prefix, std::set<std::uint32_t>> egresses;
  for (const auto& exits : per_run_exits) {
    for (const auto& exit : exits) {
      egresses[exit.prefix].insert(exit.egress_truth.value);
    }
  }
  report.prefixes_measured = egresses.size();
  if (egresses.empty()) return report;

  std::map<std::uint32_t, CriticalRouter> routers;
  for (const auto& [prefix, set] : egresses) {
    bool sole = set.size() == 1;
    report.single_homed_prefixes += sole;
    for (std::uint32_t r : set) {
      auto& entry = routers[r];
      entry.router = RouterId(r);
      ++entry.prefixes;
      entry.sole_exit_for += sole;
    }
  }
  const double total = static_cast<double>(report.prefixes_measured);
  for (auto& [value, entry] : routers) {
    entry.share = static_cast<double>(entry.prefixes) / total;
    report.worst_blast_radius =
        std::max(report.worst_blast_radius,
                 static_cast<double>(entry.sole_exit_for) / total);
    report.routers.push_back(entry);
  }
  std::sort(report.routers.begin(), report.routers.end(),
            [](const CriticalRouter& a, const CriticalRouter& b) {
              return a.share > b.share;
            });
  return report;
}

}  // namespace bdrmap::eval
