// Named scenario registry: one place that maps a scenario name to its full
// ScenarioSpec (topology, collectors, VP placement, adversarial layers,
// accuracy floors). bdrmap_sim, bench_validation, scenario_fuzz, and the
// test suite all construct scenarios through here, so a family is defined
// exactly once.
//
// Clean families ("ren", "access", "tier1", "small") approximate the §5.6
// validation networks; adversarial families stress the §4 challenges — see
// docs/scenarios.md for each family's grounding, knobs, and floors.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "eval/scenario.h"

namespace bdrmap::eval {

// All registered scenario names, clean families first.
std::vector<std::string> scenario_names();

// The adversarial subset (families with an active AdversarySpec), in
// registry order — what bench_validation gates and the fuzzer sweeps.
std::vector<std::string> adversarial_scenario_names();

// The spec for `name` seeded with `seed`; nullopt for unknown names.
std::optional<ScenarioSpec> scenario_spec(std::string_view name,
                                          std::uint64_t seed);

// Convenience: builds the scenario for `name`; nullptr for unknown names.
std::unique_ptr<Scenario> make_scenario(std::string_view name,
                                        std::uint64_t seed,
                                        const route::FibOptions& fib_options =
                                            {});

}  // namespace bdrmap::eval
