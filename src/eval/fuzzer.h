// Property-based scenario fuzzer (ROADMAP item 5 tentpole).
//
// Each case draws a random Gao-Rexford-consistent topology from a seed,
// instantiates one scenario family from the registry over it, runs the
// full bdrmap pipeline for one VP, and checks three properties:
//
//   1. no crash — neither an exception nor a BDRMAP_EXPECTS/ENSURES
//      violation escapes the pipeline (contracts run in kThrow mode, so a
//      firing contract is a recorded failure, not a process abort);
//   2. accuracy — link accuracy meets the family's fuzz floor, and the
//      pipeline inferred at least one interdomain link;
//   3. audit — the src/check inference audit reports zero errors, and the
//      truth AS graph itself is symmetric and Gao-Rexford consistent
//      (a generator bug fails the case, not the inference).
//
// Failures carry a one-line repro command (tools/scenario_fuzz flags) so
// any failing seed reruns in isolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/scenario_registry.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace bdrmap::eval {

struct FuzzConfig {
  std::uint64_t base_seed = 1;
  std::size_t cases = 25;
  // Families to sweep, round-robin (case i uses families[i % size]).
  // Empty selects the default sweep: "small" plus every adversarial family.
  std::vector<std::string> families;
  // Replaces every family's fuzz floor when >= 0 (tests use 1.1 to force
  // failures deterministically).
  double floor_override = -1.0;
  runtime::ThreadPool* pool = nullptr;  // null = sequential
  obs::Observability* obs = nullptr;    // eval.fuzz.* metrics when enabled
};

struct FuzzCaseResult {
  std::string family;
  std::uint64_t seed = 0;
  bool passed = false;
  bool crashed = false;        // property 1 failed
  bool gr_consistent = true;   // property 3a (truth graph)
  std::size_t audit_errors = 0;  // property 3b (inference audit)
  double link_accuracy = 0.0;
  std::size_t links_total = 0;
  double floor = 0.0;          // the fuzz floor this case was gated on
  std::string error;           // exception/contract text when crashed
  // `tools/scenario_fuzz --family F --base-seed S --seeds 1` — reruns
  // exactly this case.
  std::string repro;
};

struct FuzzSummary {
  std::vector<FuzzCaseResult> cases;

  std::size_t failures() const {
    std::size_t n = 0;
    for (const auto& c : cases) {
      if (!c.passed) ++n;
    }
    return n;
  }
  bool passed() const { return failures() == 0; }
};

// The family list run_fuzz sweeps when FuzzConfig::families is empty.
std::vector<std::string> default_fuzz_families();

// The registry spec for `family` with its topology randomized from `seed`:
// AS population, IXP count, PoP count, and peering densities all jitter
// within generator-supported ranges while the adversarial knobs and floors
// stay the family's own. Asserts the family exists.
ScenarioSpec fuzzed_spec(const std::string& family, std::uint64_t seed);

// Runs one fuzz case. The caller is responsible for contract mode (run_fuzz
// sets kThrow process-wide); obs may be null.
FuzzCaseResult run_fuzz_case(const std::string& family, std::uint64_t seed,
                             double floor_override = -1.0,
                             obs::Observability* obs = nullptr);

// Runs the whole sweep, in parallel when config.pool is set. Deterministic
// for a given config at any thread count: case i's result depends only on
// (family, base_seed + i). Publishes eval.fuzz.scenarios/.failures counters
// and per-family minimum-accuracy gauges (basis points) when obs is live.
FuzzSummary run_fuzz(const FuzzConfig& config);

}  // namespace bdrmap::eval
