// Small text-rendering helpers for the benchmark harnesses: aligned tables
// and ASCII CDF/series plots, so each bench binary can print the same rows
// and curves the paper's tables and figures report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bdrmap::eval {

// Safe ratio/percentage over the unsigned counters the evaluation code
// accumulates: explicit widening (keeps -Wconversion quiet) and a zero
// denominator maps to 0 instead of a NaN in a report cell.
constexpr double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}
constexpr double pct(std::size_t num, std::size_t den) {
  return 100.0 * ratio(num, den);
}

// Renders rows of columns with left-aligned first column and right-aligned
// numeric columns.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

// Empirical CDF over integer samples: returns (value, fraction <= value)
// pairs at each distinct value.
std::vector<std::pair<int, double>> cdf(std::vector<int> samples);

// Renders a simple ASCII x/y series plot (one character column per x).
std::string render_series(const std::string& title,
                          const std::vector<std::pair<double, double>>& xy,
                          int height = 12);

std::string format_double(double v, int precision = 1);

}  // namespace bdrmap::eval
