// Adversarial scenario machinery (ROADMAP item 5, paper §4 challenges).
//
// Three independent attack layers compose into named scenario families
// (scenario_registry.h): control-plane mutations applied to the generated
// Internet before the routing substrate is built (prefix hijacks, anycast
// co-origination), export-policy overrides handed to route::BgpSimulator
// (route leaks), and input corruption producing stale/noisy copies of the
// §5.2 data products the inference core consumes. Every draw comes from a
// seeded net::Rng, so each adversarial scenario is exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "asdata/bgp_origins.h"
#include "asdata/ixp.h"
#include "asdata/rir.h"
#include "asdata/siblings.h"
#include "topo/internet.h"

namespace bdrmap::eval {

// Corruption rates applied to the inference inputs (NOT to the ground
// truth): each knob is the probability that one record of the matching
// store is dropped, flipped, or rewritten. Models stale WHOIS, inconsistent
// relationship dumps, and out-of-date IXP directories (§4 challenge 5-6).
struct CorruptionConfig {
  double drop_relationship_p = 0.0;   // relationship edge missing entirely
  double flip_relationship_p = 0.0;   // c2p <-> p2p mislabeled (symmetric:
                                      // both sides carry the wrong label)
  double drop_origin_p = 0.0;         // prefix-origin row missing
  double drop_ixp_member_p = 0.0;     // IXP membership row missing
  double stale_ixp_member_p = 0.0;    // membership row has a wrong address
  double drop_delegation_p = 0.0;     // RIR delegation missing
  double shuffle_sibling_p = 0.0;     // AS filed under a random other org
  std::uint64_t seed = 0xBADDA7A;

  bool any() const {
    return drop_relationship_p > 0 || flip_relationship_p > 0 ||
           drop_origin_p > 0 || drop_ixp_member_p > 0 ||
           stale_ixp_member_p > 0 || drop_delegation_p > 0 ||
           shuffle_sibling_p > 0;
  }
};

// Every knob set to `rate` — the one-dimensional sweep the noisy-inputs
// family and the degradation analyses use.
CorruptionConfig uniform_corruption(double rate,
                                    std::uint64_t seed = 0xBADDA7A);

// One injected more-specific hijack: `hijacker` originates `hijacked`
// (a more-specific of the victim's `victim_prefix`), so longest-match
// forwarding delivers the victim's traffic to the hijacker's network and
// the public origin data is poisoned.
struct HijackRecord {
  net::Prefix victim_prefix;
  net::Prefix hijacked;
  net::AsId victim;
  net::AsId hijacker;
};

// One anycast/MOAS co-origination: `secondary` (an unrelated organization)
// additionally originates `prefix`, and traffic lands at the secondary's
// site — one prefix, multiple origins and sites (root-DNS style anycast).
struct AnycastRecord {
  net::Prefix prefix;
  net::AsId primary;
  net::AsId secondary;
};

// The adversarial layers of one scenario family. Defaults are all inert.
struct AdversarySpec {
  std::size_t route_leakers = 0;     // ASes violating valley-free export
  std::size_t hijacked_prefixes = 0; // injected more-specific hijacks
  std::size_t anycast_prefixes = 0;  // injected anycast co-originations
  double spoof_reply_p = 0.0;        // probe::TracerConfig::spoof_reply_p
  CorruptionConfig corruption;       // inference-input corruption rates
  std::uint64_t seed = 0xADC0DE;     // drives hijack/anycast selection

  bool active() const {
    return route_leakers > 0 || hijacked_prefixes > 0 ||
           anycast_prefixes > 0 || spoof_reply_p > 0 || corruption.any();
  }
};

// Deterministically selects up to `count` transit ASes with both a provider
// and a peer (so the leak has an audience), in ascending AS order.
std::vector<net::AsId> pick_route_leakers(const topo::Internet& net,
                                          std::size_t count);

// Injects up to `count` more-specific hijacks against prefixes originated
// outside the VP's organization. Must run before the BGP/FIB substrate is
// built over `net`.
std::vector<HijackRecord> inject_hijacks(topo::Internet& net,
                                         net::AsId vp_as, std::size_t count,
                                         std::uint64_t seed);

// Injects up to `count` anycast co-originations of content-network
// prefixes. Must run before the BGP/FIB substrate is built over `net`.
std::vector<AnycastRecord> inject_anycast(topo::Internet& net,
                                          std::size_t count,
                                          std::uint64_t seed);

// Owned corrupted copies of the five §5.2 input stores. Built from the
// *public* data a VP would consume (collector-derived origins, inferred
// relationships), never from the ground truth.
struct CorruptedInputs {
  asdata::OriginTable origins;
  asdata::RelationshipStore rels;
  asdata::IxpDirectory ixps;
  asdata::RirDelegations rir;
  asdata::SiblingTable siblings;
};

// `protected_ases` are the VP-hosting networks: their own origin rows, RIR
// delegations, and sibling filings survive corruption untouched, because a
// bdrmap operator curates their own network's records (§5.2 — the same
// reason InferenceInputs::vp_ases stays truthful). Public data about
// everyone else is fair game. Every corruption decision consumes its RNG
// draw whether or not the record is protected, so the noise applied to the
// rest of the Internet is identical for any protected set.
CorruptedInputs corrupt_inputs(const topo::Internet& net,
                               const asdata::OriginTable& clean_origins,
                               const asdata::RelationshipStore& clean_rels,
                               const CorruptionConfig& config,
                               const std::vector<net::AsId>& protected_ases);

}  // namespace bdrmap::eval
