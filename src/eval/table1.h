// Table 1 accounting: heuristic attribution vs. BGP-observed neighbors.
//
// Reproduces the structure of the paper's Table 1 for one VP run: neighbor
// ASes are grouped into customer / peer / provider columns by the inferred
// relationship data (the same data bdrmap used), plus a "trace" column for
// neighbors with inferred links but no BGP-visible relationship; rows count
// which heuristic identified each inferred neighbor router.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "asdata/as_relationships.h"
#include "core/bdrmap.h"

namespace bdrmap::eval {

using net::AsId;

enum class RelColumn : std::size_t {
  kCustomer = 0,
  kPeer = 1,
  kProvider = 2,
  kTrace = 3,  // interdomain link seen in traceroute but not in BGP
};
inline constexpr std::size_t kRelColumns = 4;

struct Table1 {
  // Neighbors of the VP network observed in the BGP view, by relationship.
  std::array<std::size_t, kRelColumns> observed_in_bgp{};
  // Of those, neighbors bdrmap found at least one link for; the kTrace
  // entry counts trace-only neighbors instead.
  std::array<std::size_t, kRelColumns> observed_in_bdrmap{};
  // Inferred neighbor routers per column.
  std::array<std::size_t, kRelColumns> neighbor_routers{};
  // heuristic row -> per-column router counts.
  std::map<core::Heuristic, std::array<std::size_t, kRelColumns>> rows;

  double bgp_coverage() const {
    std::size_t seen = 0, total = 0;
    for (std::size_t c = 0; c < 3; ++c) {  // BGP columns only
      seen += observed_in_bdrmap[c];
      total += observed_in_bgp[c];
    }
    return total == 0
               ? 0.0
               : static_cast<double>(seen) / static_cast<double>(total);
  }
};

// Builds the table for one bdrmap run. `rels` must be the same inferred
// relationship store the run consumed; `vp_ases` the VP's sibling list.
Table1 build_table1(const core::BdrmapResult& result,
                    const asdata::RelationshipStore& rels,
                    const std::vector<AsId>& vp_ases);

// Renders the table in the paper's layout.
std::string render_table1(const Table1& table, const std::string& title);

}  // namespace bdrmap::eval
