#include "eval/scenario_registry.h"

namespace bdrmap::eval {

namespace {

ScenarioSpec ren_spec(std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "ren";
  s.description = "R&E network, ~30 customers (paper §5.6 first network)";
  s.config = research_education_config(seed);
  s.vp_kind = topo::AsKind::kResearchEdu;
  s.link_accuracy_floor = 0.9;
  return s;
}

ScenarioSpec access_spec(std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "access";
  s.description = "19-PoP large access network (paper §6 deployment)";
  s.config = large_access_config(seed);
  s.vp_kind = topo::AsKind::kAccess;
  s.bench_vp_count = 3;  // the paper evaluated three VPs here
  s.link_accuracy_floor = 0.9;
  return s;
}

ScenarioSpec tier1_spec(std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "tier1";
  s.description = "Tier-1 transit network (paper §5.6, scaled ~5x down)";
  s.config = tier1_config(seed);
  s.vp_kind = topo::AsKind::kTier1;
  s.link_accuracy_floor = 0.9;
  return s;
}

ScenarioSpec small_spec(std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "small";
  s.description = "small regional access network (paper §5.6 fourth network)";
  s.config = small_access_config(seed);
  s.vp_kind = topo::AsKind::kAccess;
  s.link_accuracy_floor = 0.9;
  return s;
}

// Adversarial families build on the small-access topology: fast enough for
// gates and fuzzing, and the featured VP network has the full peer/provider
// /IXP mix every §5.4 heuristic exercises.

ScenarioSpec route_leak_spec(std::uint64_t seed) {
  ScenarioSpec s = small_spec(seed);
  s.name = "route_leak";
  s.description =
      "two transit ASes leak peer/provider routes upward (valley paths)";
  s.adversary.route_leakers = 2;
  s.link_accuracy_floor = 0.8;
  s.fuzz_floor = 0.6;
  return s;
}

ScenarioSpec hijack_spec(std::uint64_t seed) {
  ScenarioSpec s = small_spec(seed);
  s.name = "hijack";
  s.description =
      "rogue enterprise originates more-specifics of three victim prefixes";
  s.adversary.hijacked_prefixes = 3;
  s.link_accuracy_floor = 0.8;
  s.fuzz_floor = 0.6;
  return s;
}

ScenarioSpec spoofed_source_spec(std::uint64_t seed) {
  ScenarioSpec s = small_spec(seed);
  s.name = "spoofed_source";
  s.description =
      "spoofed reply sources plus dense third-party/virtual-router replies";
  // 1% forged reply sources already halve link accuracy (every spoofed
  // address fabricates a bogus border link) — the floors document that
  // sensitivity rather than hide it.
  s.adversary.spoof_reply_p = 0.01;
  s.config.p_egress_reply = 0.15;    // §4 ch. 2 third-party addresses, dense
  s.config.p_virtual_router = 0.06;  // §4 ch. 4 virtual routers, dense
  s.link_accuracy_floor = 0.55;
  s.fuzz_floor = 0.4;
  return s;
}

ScenarioSpec anycast_spec(std::uint64_t seed) {
  ScenarioSpec s = small_spec(seed);
  s.name = "anycast";
  s.description =
      "three content prefixes co-originated from a second org's site";
  s.adversary.anycast_prefixes = 3;
  s.link_accuracy_floor = 0.8;
  s.fuzz_floor = 0.6;
  return s;
}

ScenarioSpec hidden_ixp_spec(std::uint64_t seed) {
  ScenarioSpec s = small_spec(seed);
  s.name = "hidden_ixp";
  s.description =
      "dense route-server fabrics, stale directory, sparse collector view";
  s.config.ixp_member_p = 0.6;
  s.config.ixp_peering_p = 0.7;
  s.config.ixp_missing_record_p = 0.35;  // §4 ch. 6: hidden peers
  s.config.ixp_stale_record_p = 0.10;
  s.collectors.transit_peer_fraction = 0.15;  // fewer routes exported
  s.collectors.access_peer_fraction = 0.0;
  s.link_accuracy_floor = 0.75;
  s.fuzz_floor = 0.55;
  return s;
}

ScenarioSpec noisy_inputs_spec(std::uint64_t seed) {
  ScenarioSpec s = small_spec(seed);
  s.name = "noisy_inputs";
  s.description =
      "8% uniform corruption of relationship/origin/IXP/RIR/sibling inputs";
  s.adversary.corruption = uniform_corruption(0.08);
  s.link_accuracy_floor = 0.6;
  s.fuzz_floor = 0.45;
  return s;
}

using SpecFn = ScenarioSpec (*)(std::uint64_t);

struct Entry {
  const char* name;
  SpecFn make;
  bool adversarial;
};

// Clean families first, adversarial after — scenario_names() preserves
// this order for --list output and bench tables. hidden_ixp is adversarial
// through generator/collector knobs alone, so the flag is explicit here
// rather than derived from AdversarySpec::active().
constexpr Entry kRegistry[] = {
    {"ren", ren_spec, false},
    {"access", access_spec, false},
    {"tier1", tier1_spec, false},
    {"small", small_spec, false},
    {"route_leak", route_leak_spec, true},
    {"hijack", hijack_spec, true},
    {"spoofed_source", spoofed_source_spec, true},
    {"anycast", anycast_spec, true},
    {"hidden_ixp", hidden_ixp_spec, true},
    {"noisy_inputs", noisy_inputs_spec, true},
};

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> out;
  for (const Entry& e : kRegistry) out.emplace_back(e.name);
  return out;
}

std::vector<std::string> adversarial_scenario_names() {
  std::vector<std::string> out;
  for (const Entry& e : kRegistry) {
    if (e.adversarial) out.emplace_back(e.name);
  }
  return out;
}

std::optional<ScenarioSpec> scenario_spec(std::string_view name,
                                          std::uint64_t seed) {
  for (const Entry& e : kRegistry) {
    if (name == e.name) return e.make(seed);
  }
  return std::nullopt;
}

std::unique_ptr<Scenario> make_scenario(std::string_view name,
                                        std::uint64_t seed,
                                        const route::FibOptions& fib_options) {
  auto spec = scenario_spec(name, seed);
  if (!spec.has_value()) return nullptr;
  return std::make_unique<Scenario>(*spec, fib_options);
}

}  // namespace bdrmap::eval
