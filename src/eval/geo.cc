#include "eval/geo.h"

namespace bdrmap::eval {

std::optional<double> rdns_longitude(
    const topo::Internet& net, const std::vector<net::Ipv4Addr>& addrs) {
  for (net::Ipv4Addr a : addrs) {
    auto name = net.reverse_dns().lookup(a);
    if (!name) continue;
    auto hints = asdata::parse_hostname(*name);
    if (!hints.city_code) continue;
    for (const auto& pop : net.pops()) {
      if (asdata::city_code_of(pop.city) == *hints.city_code) {
        return pop.longitude;
      }
    }
  }
  return std::nullopt;
}

DnsSanity dns_sanity_check(const core::BdrmapResult& result,
                           const topo::Internet& net) {
  DnsSanity out;
  for (const auto& router : result.graph.routers()) {
    if (router.addrs.empty() || router.vp_side ||
        router.how == core::Heuristic::kNone || !router.owner.valid()) {
      continue;
    }
    std::optional<net::AsId> hint;
    for (net::Ipv4Addr a : router.addrs) {
      auto name = net.reverse_dns().lookup(a);
      if (!name) continue;
      auto hints = asdata::parse_hostname(*name);
      if (hints.as_hint) {
        hint = hints.as_hint;
        break;
      }
    }
    if (!hint) continue;
    ++out.routers_checked;
    if (net.sibling_table().are_siblings(*hint, router.owner)) {
      ++out.agree;
    } else {
      ++out.disagree;
    }
  }
  return out;
}

}  // namespace bdrmap::eval
