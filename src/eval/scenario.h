// Scenario wiring: generator → routing → collectors → inference inputs.
//
// Bundles everything a bdrmap experiment needs: the synthetic Internet, the
// BGP/FIB substrate, the simulated public BGP view, the inferred
// relationships, and a factory for per-VP inference inputs. Named scenario
// configurations approximate the four validation networks of §5.6 plus the
// §6 access-network deployment.
#pragma once

#include <memory>
#include <vector>

#include "core/bdrmap.h"
#include "core/heuristics.h"
#include "probe/alias.h"
#include "route/collectors.h"
#include "route/fib.h"
#include "runtime/multi_vp.h"
#include "topo/generator.h"

namespace bdrmap::eval {

class Scenario {
 public:
  // fib_options lets benchmarks and the golden bit-identity suite build a
  // scenario whose forwarding plane recomputes every hop
  // (enable_caches = false) as the fast-path baseline.
  explicit Scenario(const topo::GeneratorConfig& config,
                    const route::CollectorConfig& collector_config = {},
                    const route::FibOptions& fib_options = {});

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const topo::Internet& net() const { return gen_.net; }
  const std::vector<topo::Vp>& vps() const { return gen_.vps; }
  const route::BgpSimulator& bgp() const { return *bgp_; }
  const route::Fib& fib() const { return *fib_; }
  const route::CollectorView& collectors() const { return *collectors_; }
  const asdata::RelationshipStore& inferred_rels() const {
    return inferred_rels_;
  }

  // The inference inputs a VP in `as` receives: public origins, inferred
  // relationships, IXP/RIR data, and the curated sibling list of the VP's
  // organization (§5.2).
  core::InferenceInputs inputs_for(net::AsId as) const;

  // VPs hosted by `as`.
  std::vector<topo::Vp> vps_in(net::AsId as) const;

  // A fresh probe stack for one VP.
  std::unique_ptr<probe::LocalProbeServices> services_for(
      const topo::Vp& vp, std::uint64_t seed = 0x515,
      probe::TracerConfig tracer = {}) const;

  // Runs the full bdrmap pipeline for one VP.
  core::BdrmapResult run_bdrmap(const topo::Vp& vp,
                                core::BdrmapConfig config = {},
                                std::uint64_t seed = 0x515,
                                probe::TracerConfig tracer = {}) const;

  // Runs bdrmap for many VPs on the pool (sequentially when pool is
  // null). VP i is seeded base_seed + i, exactly as the sequential bench
  // loops did, so per-VP results are bit-identical to run_bdrmap(vps[i],
  // config, base_seed + i) at any worker count; the merged reduction is
  // in VP order. Safe because each VP gets a private probe stack and the
  // shared substrate (FIB / BGP route caches) is internally locked.
  runtime::MultiVpResult run_bdrmap_parallel(
      const std::vector<topo::Vp>& vps, core::BdrmapConfig config = {},
      std::uint64_t base_seed = 0x515, runtime::ThreadPool* pool = nullptr,
      probe::TracerConfig tracer = {}) const;

  // Featured networks (see DESIGN.md).
  net::AsId featured_access() const;   // the §6 large access network
  net::AsId level3_like() const;       // its Tier-1 peer (~45 links)
  net::AsId akamai_like() const;       // selective-announcement CDN
  net::AsId google_like() const;       // coastal CDN
  net::AsId first_of(topo::AsKind kind, std::size_t index = 0) const;

 private:
  topo::GeneratedInternet gen_;
  std::unique_ptr<route::BgpSimulator> bgp_;
  std::unique_ptr<route::Fib> fib_;
  std::unique_ptr<route::CollectorView> collectors_;
  asdata::RelationshipStore inferred_rels_;
};

// Named configurations approximating the paper's networks. All are
// deterministic for a given seed.
topo::GeneratorConfig research_education_config(std::uint64_t seed = 1);
topo::GeneratorConfig large_access_config(std::uint64_t seed = 1);
topo::GeneratorConfig tier1_config(std::uint64_t seed = 1);
topo::GeneratorConfig small_access_config(std::uint64_t seed = 1);

}  // namespace bdrmap::eval
