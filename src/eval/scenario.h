// Scenario wiring: generator → routing → collectors → inference inputs.
//
// Bundles everything a bdrmap experiment needs: the synthetic Internet, the
// BGP/FIB substrate, the simulated public BGP view, the inferred
// relationships, and a factory for per-VP inference inputs. Named scenario
// configurations approximate the four validation networks of §5.6 plus the
// §6 access-network deployment.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bdrmap.h"
#include "core/heuristics.h"
#include "eval/adversary.h"
#include "probe/alias.h"
#include "route/collectors.h"
#include "route/fib.h"
#include "runtime/multi_vp.h"
#include "topo/generator.h"

namespace bdrmap::eval {

// The full description of one named scenario family: topology, collector
// view, VP placement, adversarial layers, and the accuracy floors the
// validation bench and the fuzzer gate on. scenario_registry.h constructs
// these by name.
struct ScenarioSpec {
  std::string name = "custom";
  std::string description;
  topo::GeneratorConfig config;
  route::CollectorConfig collectors;
  topo::AsKind vp_kind = topo::AsKind::kAccess;
  // How many VPs bench_validation runs for this family (the paper used 3
  // for the large access network, 1 elsewhere).
  std::size_t bench_vp_count = 1;
  AdversarySpec adversary;
  // Link-accuracy gates: `link_accuracy_floor` applies at the canonical
  // bench seed (42); `fuzz_floor` is the looser bound for
  // fuzzer-randomized topologies.
  double link_accuracy_floor = 0.9;
  double fuzz_floor = 0.75;
};

class Scenario {
 public:
  // fib_options lets benchmarks and the golden bit-identity suite build a
  // scenario whose forwarding plane recomputes every hop
  // (enable_caches = false) as the fast-path baseline.
  explicit Scenario(const topo::GeneratorConfig& config,
                    const route::CollectorConfig& collector_config = {},
                    const route::FibOptions& fib_options = {});

  // Builds a (possibly adversarial) named scenario: applies the spec's
  // control-plane mutations before constructing the routing substrate,
  // hands the route-leak policy to the BGP simulator, and — when the spec
  // carries corruption rates — derives noisy copies of the inference
  // inputs that inputs_for() then serves instead of the clean ones.
  explicit Scenario(const ScenarioSpec& spec,
                    const route::FibOptions& fib_options = {});

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const topo::Internet& net() const { return gen_.net; }
  const std::vector<topo::Vp>& vps() const { return gen_.vps; }
  const route::BgpSimulator& bgp() const { return *bgp_; }
  const route::Fib& fib() const { return *fib_; }
  // Mutable substrate access for the serve engine: churn events mutate the
  // scenario's own BGP/FIB overlays (quiescence contract in route/fib.h).
  // Everything else should stick to the const accessors above.
  route::BgpSimulator& bgp_mutable() { return *bgp_; }
  route::Fib& fib_mutable() { return *fib_; }
  const route::CollectorView& collectors() const { return *collectors_; }
  const asdata::RelationshipStore& inferred_rels() const {
    return inferred_rels_;
  }

  // The spec this scenario was built from (a synthesized "custom" spec for
  // the plain-config constructor) and the adversarial injection records.
  const ScenarioSpec& spec() const { return spec_; }
  const std::vector<HijackRecord>& hijacks() const { return hijacks_; }
  const std::vector<AnycastRecord>& anycasts() const { return anycasts_; }
  bool inputs_corrupted() const { return corrupted_.has_value(); }

  // The inference inputs a VP in `as` receives: public origins, inferred
  // relationships, IXP/RIR data, and the curated sibling list of the VP's
  // organization (§5.2).
  core::InferenceInputs inputs_for(net::AsId as) const;

  // VPs hosted by `as`.
  std::vector<topo::Vp> vps_in(net::AsId as) const;

  // A fresh probe stack for one VP.
  std::unique_ptr<probe::LocalProbeServices> services_for(
      const topo::Vp& vp, std::uint64_t seed = 0x515,
      probe::TracerConfig tracer = {}) const;

  // Runs the full bdrmap pipeline for one VP.
  core::BdrmapResult run_bdrmap(const topo::Vp& vp,
                                core::BdrmapConfig config = {},
                                std::uint64_t seed = 0x515,
                                probe::TracerConfig tracer = {}) const;

  // Runs bdrmap for many VPs on the pool (sequentially when pool is
  // null). VP i is seeded base_seed + i, exactly as the sequential bench
  // loops did, so per-VP results are bit-identical to run_bdrmap(vps[i],
  // config, base_seed + i) at any worker count; the merged reduction is
  // in VP order. Safe because each VP gets a private probe stack and the
  // shared substrate (FIB / BGP route caches) is internally locked.
  runtime::MultiVpResult run_bdrmap_parallel(
      const std::vector<topo::Vp>& vps, core::BdrmapConfig config = {},
      std::uint64_t base_seed = 0x515, runtime::ThreadPool* pool = nullptr,
      probe::TracerConfig tracer = {}) const;

  // Sharded variant (DESIGN.md §14): repartitions each VP's collection
  // into (VP × target-AS-batch) slice tasks via
  // runtime::MultiVpExecutor::run_sharded. Output is a pure function of
  // (vps, config, base_seed, ases_per_shard) — byte-identical at any
  // worker count — but is keyed differently from run_bdrmap_parallel
  // (per-slice RNG streams), so the two are not comparable maps.
  runtime::MultiVpResult run_bdrmap_sharded(
      const std::vector<topo::Vp>& vps, core::BdrmapConfig config = {},
      std::uint64_t base_seed = 0x515, runtime::ThreadPool* pool = nullptr,
      std::size_t ases_per_shard = 8, probe::TracerConfig tracer = {}) const;

  // Featured networks (see DESIGN.md).
  net::AsId featured_access() const;   // the §6 large access network
  net::AsId level3_like() const;       // its Tier-1 peer (~45 links)
  net::AsId akamai_like() const;       // selective-announcement CDN
  net::AsId google_like() const;       // coastal CDN
  net::AsId first_of(topo::AsKind kind, std::size_t index = 0) const;

 private:
  ScenarioSpec spec_;
  topo::GeneratedInternet gen_;
  std::vector<HijackRecord> hijacks_;
  std::vector<AnycastRecord> anycasts_;
  std::unique_ptr<route::BgpSimulator> bgp_;
  std::unique_ptr<route::Fib> fib_;
  std::unique_ptr<route::CollectorView> collectors_;
  asdata::RelationshipStore inferred_rels_;
  // Present iff the spec carries corruption rates; inputs_for() serves
  // these noisy copies instead of the clean stores.
  std::optional<CorruptedInputs> corrupted_;
};

// Named configurations approximating the paper's networks. All are
// deterministic for a given seed.
topo::GeneratorConfig research_education_config(std::uint64_t seed = 1);
topo::GeneratorConfig large_access_config(std::uint64_t seed = 1);
topo::GeneratorConfig tier1_config(std::uint64_t seed = 1);
topo::GeneratorConfig small_access_config(std::uint64_t seed = 1);
// bench_scale's topology (DESIGN.md §14): thousands of ASes, so the §5.3
// schedule is wide enough for probe-wave batching and (VP × target-AS)
// sharding to show up in wall-clock rather than drown in setup cost.
topo::GeneratorConfig scale_config(std::uint64_t seed = 1);

}  // namespace bdrmap::eval
