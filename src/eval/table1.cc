#include "eval/table1.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "eval/report.h"

namespace bdrmap::eval {

namespace {

RelColumn column_for(const asdata::RelationshipStore& rels,
                     const std::vector<AsId>& vp_ases, AsId neighbor) {
  for (AsId v : vp_ases) {
    switch (rels.rel(v, neighbor)) {
      case asdata::Relationship::kCustomer:
        return RelColumn::kCustomer;
      case asdata::Relationship::kPeer:
        return RelColumn::kPeer;
      case asdata::Relationship::kProvider:
        return RelColumn::kProvider;
      case asdata::Relationship::kNone:
        break;
    }
  }
  return RelColumn::kTrace;
}

}  // namespace

Table1 build_table1(const core::BdrmapResult& result,
                    const asdata::RelationshipStore& rels,
                    const std::vector<AsId>& vp_ases) {
  Table1 table;
  auto is_vp = [&](AsId as) {
    return std::find(vp_ases.begin(), vp_ases.end(), as) != vp_ases.end();
  };

  // BGP-observed neighbors of the VP network, by relationship.
  std::set<AsId> bgp_neighbors;
  for (AsId v : vp_ases) {
    for (AsId n : rels.neighbors(v)) {
      if (!is_vp(n)) bgp_neighbors.insert(n);
    }
  }
  for (AsId n : bgp_neighbors) {
    ++table.observed_in_bgp[static_cast<std::size_t>(
        column_for(rels, vp_ases, n))];
  }

  // Neighbors bdrmap inferred links for.
  std::set<AsId> inferred_neighbors;
  for (const auto& [as, links] : result.links_by_as) {
    inferred_neighbors.insert(as);
  }
  for (AsId n : inferred_neighbors) {
    ++table.observed_in_bdrmap[static_cast<std::size_t>(
        column_for(rels, vp_ases, n))];
  }

  // Neighbor routers and their heuristics. Silent/other-ICMP placements
  // have no router; count them as one router each, as the paper does.
  const auto& routers = result.graph.routers();
  std::set<std::size_t> counted;
  for (const auto& link : result.links) {
    std::size_t col = static_cast<std::size_t>(
        column_for(rels, vp_ases, link.neighbor_as));
    if (link.neighbor_router == core::InferredLink::kNoRouter) {
      ++table.neighbor_routers[col];
      ++table.rows[link.how][col];
      continue;
    }
    if (!counted.insert(link.neighbor_router).second) continue;
    const auto& r = routers[link.neighbor_router];
    ++table.neighbor_routers[col];
    ++table.rows[r.how][col];
  }
  return table;
}

std::string render_table1(const Table1& table, const std::string& title) {
  std::string out;
  char buf[256];
  auto row4 = [&](const char* label, const std::array<std::size_t, 4>& v,
                  bool as_pct, const std::array<std::size_t, 4>& denom) {
    if (as_pct) {
      std::string cells;
      for (std::size_t c = 0; c < 4; ++c) {
        if (v[c] == 0) {
          cells += "          ";
        } else {
          char cell[32];
          std::snprintf(cell, sizeof(cell), "%9.1f%%",
                        pct(v[c], denom[c]));
          cells += cell;
        }
      }
      std::snprintf(buf, sizeof(buf), "%-24s%s\n", label, cells.c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "%-24s%9zu %9zu %9zu %9zu\n", label,
                    v[0], v[1], v[2], v[3]);
    }
    out += buf;
  };

  out += "== " + title + " ==\n";
  std::snprintf(buf, sizeof(buf), "%-24s%9s %9s %9s %9s\n", "", "cust",
                "peer", "prov", "trace");
  out += buf;
  row4("Observed in BGP", table.observed_in_bgp, false, {});
  row4("Observed in bdrmap", table.observed_in_bdrmap, false, {});
  std::snprintf(buf, sizeof(buf), "%-24s%8.1f%%\n", "Coverage of BGP",
                100.0 * table.bgp_coverage());
  out += buf;
  for (const auto& [heuristic, counts] : table.rows) {
    row4(core::heuristic_name(heuristic), counts, true,
         table.neighbor_routers);
  }
  row4("Neighbor routers", table.neighbor_routers, false, {});
  return out;
}

}  // namespace bdrmap::eval
