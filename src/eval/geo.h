// rDNS-driven geolocation and DNS sanity checking.
//
// §6 infers the geographic location of the access network's border routers
// from "the location information embedded in reverse DNS mappings"; §5.1
// describes using DNS names during development to sanity-check inferences
// while warning that names can be wrong or carry organization labels.
// Both uses are implemented here against asdata::ReverseDns.
#pragma once

#include <optional>
#include <vector>

#include "asdata/dns.h"
#include "core/bdrmap.h"
#include "topo/internet.h"

namespace bdrmap::eval {

// Longitude of the rDNS location code carried by any of `addrs`, resolved
// against the generator's PoP list. nullopt when no name carries a
// recognizable code. Stale codes yield (realistically) wrong longitudes.
std::optional<double> rdns_longitude(const topo::Internet& net,
                                     const std::vector<net::Ipv4Addr>& addrs);

// §5.1-style DNS sanity check over inferred neighbor routers: of the
// routers whose addresses carry an AS hint in rDNS, how many agree with
// the inference (sibling-aware)? Disagreement is a review flag, not an
// error verdict — the paper found mislabeled interdomain links in DNS.
struct DnsSanity {
  std::size_t routers_checked = 0;  // neighbor routers with any AS hint
  std::size_t agree = 0;
  std::size_t disagree = 0;

  double agreement() const {
    return routers_checked == 0
               ? 0.0
               : static_cast<double>(agree) /
                     static_cast<double>(routers_checked);
  }
};

DnsSanity dns_sanity_check(const core::BdrmapResult& result,
                           const topo::Internet& net);

}  // namespace bdrmap::eval
