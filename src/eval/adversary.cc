#include "eval/adversary.h"

#include <algorithm>
#include <unordered_set>

#include "asdata/as_relationships.h"
#include "netbase/rng.h"

namespace bdrmap::eval {

using net::AsId;
using net::Ipv4Addr;
using net::OrgId;
using net::Prefix;

CorruptionConfig uniform_corruption(double rate, std::uint64_t seed) {
  CorruptionConfig c;
  c.drop_relationship_p = rate;
  c.flip_relationship_p = rate;
  c.drop_origin_p = rate;
  c.drop_ixp_member_p = rate;
  c.stale_ixp_member_p = rate;
  c.drop_delegation_p = rate;
  c.shuffle_sibling_p = rate;
  c.seed = seed;
  return c;
}

std::vector<AsId> pick_route_leakers(const topo::Internet& net,
                                     std::size_t count) {
  const auto& rels = net.truth_relationships();
  std::vector<AsId> out;
  for (const auto& info : net.ases()) {
    if (out.size() >= count) break;
    if (info.kind != topo::AsKind::kTransit) continue;
    // The classic leaker profile: a multihomed transit with peers whose
    // peer/provider routes it can re-export upward and sideways.
    if (rels.providers(info.id).empty() || rels.peers(info.id).empty()) {
      continue;
    }
    out.push_back(info.id);
  }
  return out;
}

std::vector<HijackRecord> inject_hijacks(topo::Internet& net, AsId vp_as,
                                         std::size_t count,
                                         std::uint64_t seed) {
  std::vector<HijackRecord> out;
  if (count == 0) return out;
  net::Rng rng(seed);
  const auto& siblings = net.sibling_table();

  // The hijacker: one rogue enterprise AS originating every injected
  // more-specific (the typical single-origin leak/hijack event). Enterprises
  // sit at the edge, so the bogus announcement propagates through their
  // providers exactly like a real fat-finger hijack.
  std::vector<AsId> enterprises;
  for (const auto& info : net.ases()) {
    if (info.kind == topo::AsKind::kEnterprise &&
        !info.routers.empty() && !siblings.are_siblings(info.id, vp_as)) {
      enterprises.push_back(info.id);
    }
  }
  if (enterprises.empty()) return out;
  AsId hijacker = rng.pick(enterprises);

  // Victims: announced prefixes wide enough to carve a /24 out of,
  // originated outside both the VP's and the hijacker's organizations.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < net.announced().size(); ++i) {
    const auto& ap = net.announced()[i];
    if (ap.prefix.length() >= 24) continue;
    if (siblings.are_siblings(ap.origin, vp_as)) continue;
    if (siblings.are_siblings(ap.origin, hijacker)) continue;
    if (net.as_info(ap.origin).kind == topo::AsKind::kIxpOperator) continue;
    candidates.push_back(i);
  }
  rng.shuffle(candidates);

  const net::RouterId host = net.as_info(hijacker).routers.front();
  for (std::size_t i = 0; i < candidates.size() && out.size() < count; ++i) {
    const auto ap = net.announced()[candidates[i]];  // copy: vector grows
    Prefix more_specific(ap.prefix.first(), 24);
    net.add_announced({more_specific, hijacker, host, {}, 0.25});
    out.push_back({ap.prefix, more_specific, ap.origin, hijacker});
  }
  return out;
}

std::vector<AnycastRecord> inject_anycast(topo::Internet& net,
                                          std::size_t count,
                                          std::uint64_t seed) {
  std::vector<AnycastRecord> out;
  if (count == 0) return out;
  net::Rng rng(seed);
  const auto& siblings = net.sibling_table();

  std::vector<AsId> content;
  for (const auto& info : net.ases()) {
    if (info.kind == topo::AsKind::kContent && !info.routers.empty()) {
      content.push_back(info.id);
    }
  }
  if (content.size() < 2) return out;

  // Candidate prefixes: content-network announcements (anycast services
  // live in content space).
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < net.announced().size(); ++i) {
    const auto& ap = net.announced()[i];
    if (net.as_info(ap.origin).kind != topo::AsKind::kContent) continue;
    candidates.push_back(i);
  }
  rng.shuffle(candidates);

  for (std::size_t i = 0; i < candidates.size() && out.size() < count; ++i) {
    const auto ap = net.announced()[candidates[i]];  // copy: vector grows
    // A second, organizationally unrelated content network co-originates
    // the same prefix from its own site; longest-match (equal-length, last
    // writer) delivery moves the traffic there, so probes toward the
    // primary's space terminate inside the secondary — one prefix, two
    // origins, two sites.
    AsId secondary;
    bool found = false;
    for (AsId c : content) {
      if (!siblings.are_siblings(c, ap.origin) && c != ap.origin) {
        secondary = c;
        found = true;
        break;
      }
    }
    if (!found) break;
    net.add_announced({ap.prefix, secondary,
                       net.as_info(secondary).routers.front(), {},
                       ap.dest_responsiveness});
    out.push_back({ap.prefix, ap.origin, secondary});
  }
  return out;
}

CorruptedInputs corrupt_inputs(const topo::Internet& net,
                               const asdata::OriginTable& clean_origins,
                               const asdata::RelationshipStore& clean_rels,
                               const CorruptionConfig& config,
                               const std::vector<AsId>& protected_ases) {
  CorruptedInputs out;
  net::Rng rng(config.seed);

  // Operator-curated records (the VP-hosting orgs' own data) are immune.
  std::unordered_set<std::uint32_t> prot_as;
  std::unordered_set<std::uint32_t> prot_org;
  for (AsId a : protected_ases) {
    prot_as.insert(a.value);
    for (AsId s : net.sibling_table().siblings_of(a)) prot_as.insert(s.value);
    OrgId org = net.sibling_table().org_of(a);
    if (org.valid()) prot_org.insert(org.value);
  }
  auto as_protected = [&](AsId a) { return prot_as.count(a.value) > 0; };

  // Relationships: per undirected edge, drop, mislabel, or copy faithfully.
  // Mislabels stay symmetric — both sides of the dump agree on the wrong
  // label, matching sanitized relationship files — so the audit's
  // as-graph.symmetry pass holds on corrupted inputs by design. A flipped
  // peer edge gains a bogus hierarchy direction with the lower AS id
  // (created earlier, hence higher tier) as provider, which keeps the
  // corrupted hierarchy acyclic in practice; a flipped c2p edge flattens
  // into a peering.
  for (AsId a : clean_rels.all_ases()) {
    for (AsId b : clean_rels.neighbors(a)) {
      if (a.value >= b.value) continue;  // each edge once
      asdata::Relationship r = clean_rels.rel(a, b);
      if (rng.chance(config.drop_relationship_p)) continue;
      if (rng.chance(config.flip_relationship_p)) {
        asdata::Relationship wrong = r == asdata::Relationship::kPeer
                                         ? asdata::Relationship::kCustomer
                                         : asdata::Relationship::kPeer;
        out.rels.add_raw(a, b, wrong);
        out.rels.add_raw(b, a, invert(wrong));
        continue;
      }
      out.rels.add_raw(a, b, r);
      out.rels.add_raw(b, a, invert(r));
    }
  }

  // Origins: drop whole prefix-origin rows.
  for (const auto& [prefix, origins] : clean_origins.all_prefixes()) {
    for (AsId origin : origins) {
      if (rng.chance(config.drop_origin_p) && !as_protected(origin)) continue;
      out.origins.add(prefix, origin);
    }
  }

  // IXP directory: records copied verbatim (indices must stay aligned),
  // memberships dropped or gone stale.
  for (const auto& record : net.ixp_directory().ixps()) {
    out.ixps.add_ixp(record);
  }
  for (const auto& m : net.ixp_directory().memberships()) {
    if (rng.chance(config.drop_ixp_member_p)) continue;
    asdata::IxpMembership copy = m;
    if (rng.chance(config.stale_ixp_member_p)) {
      copy.address = Ipv4Addr(copy.address.value() + rng.uniform(1, 120));
    }
    out.ixps.add_membership(copy);
  }

  // RIR delegations: drop rows (never the VP orgs' own blocks).
  for (const auto& d : net.rir().all()) {
    if (rng.chance(config.drop_delegation_p) && !prot_org.count(d.org.value)) {
      continue;
    }
    out.rir.add(d);
  }

  // Siblings: refile some ASes under a random other organization (stale
  // WHOIS); assignment order follows the deterministic AS table.
  std::vector<OrgId> orgs;
  for (const auto& info : net.ases()) {
    OrgId org = net.sibling_table().org_of(info.id);
    if (org.valid()) orgs.push_back(org);
  }
  for (const auto& info : net.ases()) {
    OrgId org = net.sibling_table().org_of(info.id);
    if (!org.valid()) continue;
    if (!orgs.empty() && rng.chance(config.shuffle_sibling_p)) {
      OrgId wrong =
          orgs[rng.uniform(0, static_cast<std::uint32_t>(orgs.size() - 1))];
      if (!as_protected(info.id)) org = wrong;
    }
    out.siblings.assign(info.id, org);
  }
  return out;
}

}  // namespace bdrmap::eval
