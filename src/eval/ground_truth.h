// Ground-truth scoring of bdrmap inferences (§5.6).
//
// Plays the role of the four cooperating operators in the paper: given the
// generator's Internet, it resolves each inferred router to the true
// router(s) holding its addresses, checks inferred owners at organization
// granularity (an inference naming a sibling of the true owner counts, as
// in the paper's validation), and resolves inferred interdomain links to
// ground-truth (near router, far router) pairs for the §6 analyses.
#pragma once

#include <optional>
#include <vector>

#include "core/bdrmap.h"
#include "topo/internet.h"

namespace bdrmap::eval {

using net::AsId;
using net::Ipv4Addr;
using net::RouterId;

// Outcome of validating one inferred neighbor router or link.
enum class Verdict : std::uint8_t {
  kCorrect,        // owner org matches the true operator's org
  kWrongAs,        // border correctly found, wrong organization
  kNotBorder,      // inferred interdomain link doesn't exist in truth
  kInconsistent,   // inferred router mixes addresses of several routers
};

struct RouterValidation {
  std::size_t graph_index = 0;
  AsId inferred_owner;
  AsId true_owner;
  core::Heuristic how = core::Heuristic::kNone;
  Verdict verdict = Verdict::kCorrect;
};

struct LinkTruth {
  std::size_t link_index = 0;     // into BdrmapResult::links
  RouterId near_router;           // ground-truth near-side router
  RouterId far_router;            // invalid for silent neighbors
  topo::LinkId truth_link;        // the physical interconnect, if resolved
  AsId inferred_as;
  bool correct = false;           // far org matches truth
};

struct ValidationSummary {
  std::size_t routers_total = 0;
  std::size_t routers_correct = 0;
  std::size_t links_total = 0;
  std::size_t links_correct = 0;
  std::vector<RouterValidation> routers;
  std::vector<LinkTruth> links;

  double router_accuracy() const {
    return routers_total == 0
               ? 0.0
               : static_cast<double>(routers_correct) /
                     static_cast<double>(routers_total);
  }
  double link_accuracy() const {
    return links_total == 0
               ? 0.0
               : static_cast<double>(links_correct) /
                     static_cast<double>(links_total);
  }
};

class GroundTruth {
 public:
  GroundTruth(const topo::Internet& net, AsId vp_as);

  // Majority true operator over an inferred router's addresses.
  std::optional<AsId> true_owner(const std::vector<Ipv4Addr>& addrs) const;

  // True router holding the majority of the addresses.
  std::optional<RouterId> true_router(
      const std::vector<Ipv4Addr>& addrs) const;

  bool same_org(AsId a, AsId b) const;

  // Scores every inferred neighbor router and link (§5.6's methodology).
  ValidationSummary validate(const core::BdrmapResult& result) const;

  // The VP network's true neighbor ASes with at least one interdomain link.
  std::vector<AsId> true_neighbors() const;

  AsId vp_as() const { return vp_as_; }

 private:
  const topo::Internet& net_;
  AsId vp_as_;
};

}  // namespace bdrmap::eval
