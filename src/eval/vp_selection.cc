#include "eval/vp_selection.h"

#include <algorithm>

namespace bdrmap::eval {

std::size_t VpSelection::vps_for(double fraction) const {
  const double needed = fraction * static_cast<double>(total_links);
  for (std::size_t i = 0; i < coverage.size(); ++i) {
    if (static_cast<double>(coverage[i]) >= needed) return i + 1;
  }
  return 0;
}

VpSelection greedy_vp_selection(
    const std::vector<std::set<std::uint32_t>>& per_vp_links) {
  VpSelection out;
  std::set<std::uint32_t> covered;
  std::vector<bool> used(per_vp_links.size(), false);

  for (const auto& links : per_vp_links) {
    for (std::uint32_t l : links) covered.insert(l);
  }
  out.total_links = covered.size();
  covered.clear();

  for (std::size_t round = 0; round < per_vp_links.size(); ++round) {
    std::size_t best = per_vp_links.size();
    std::size_t best_gain = 0;
    for (std::size_t v = 0; v < per_vp_links.size(); ++v) {
      if (used[v]) continue;
      std::size_t gain = 0;
      for (std::uint32_t l : per_vp_links[v]) gain += !covered.count(l);
      if (best == per_vp_links.size() || gain > best_gain) {
        best = v;
        best_gain = gain;
      }
    }
    if (best == per_vp_links.size()) break;
    used[best] = true;
    for (std::uint32_t l : per_vp_links[best]) covered.insert(l);
    out.order.push_back(best);
    out.coverage.push_back(covered.size());
  }
  return out;
}

}  // namespace bdrmap::eval
