#include "eval/analysis.h"

namespace bdrmap::eval {

std::vector<TraceExit> trace_exits(const core::BdrmapResult& result,
                                   const GroundTruth& truth,
                                   const asdata::OriginTable& origins) {
  std::vector<TraceExit> out;
  const auto& routers = result.graph.routers();
  for (const auto& trace : result.graph.traces()) {
    net::Prefix prefix;
    if (!origins.origins(trace.dst, &prefix)) continue;

    // Walk the hops: the egress is the last VP-side router seen before the
    // first hop attributed to an external operator. Prefer an external
    // router directly adjacent to the egress (the inferred border); deeper
    // routers only as a fallback (rate-limited borders leave gaps).
    std::size_t last_vp = core::InferredLink::kNoRouter;
    std::size_t adjacent_external = core::InferredLink::kNoRouter;
    std::size_t any_external = core::InferredLink::kNoRouter;
    bool prev_was_last_vp = false;
    for (const auto& hop : trace.hops) {
      if (hop.kind != probe::ReplyKind::kTimeExceeded) {
        prev_was_last_vp = false;
        continue;
      }
      auto r = result.graph.router_of(hop.addr);
      if (!r) continue;
      if (routers[*r].vp_side) {
        last_vp = *r;
        prev_was_last_vp = true;
        continue;
      }
      if (routers[*r].how != core::Heuristic::kNone &&
          routers[*r].owner.valid()) {
        if (any_external == core::InferredLink::kNoRouter) {
          any_external = *r;
        }
        if (prev_was_last_vp &&
            adjacent_external == core::InferredLink::kNoRouter) {
          adjacent_external = *r;
        }
      }
      prev_was_last_vp = false;
      if (adjacent_external != core::InferredLink::kNoRouter) break;
    }
    if (last_vp == core::InferredLink::kNoRouter) continue;

    TraceExit exit;
    exit.prefix = prefix;
    auto egress = truth.true_router(routers[last_vp].addrs);
    if (!egress) continue;
    exit.egress_truth = *egress;
    std::size_t border = adjacent_external != core::InferredLink::kNoRouter
                             ? adjacent_external
                             : any_external;
    if (border != core::InferredLink::kNoRouter) {
      exit.next_as = routers[border].owner;
    } else {
      exit.next_as = trace.target_as;  // nothing seen beyond the border
    }
    out.push_back(exit);
  }
  return out;
}

std::set<std::uint32_t> discovered_links_with(
    const core::BdrmapResult& result, const GroundTruth& truth,
    AsId neighbor) {
  std::set<std::uint32_t> out;
  auto summary = truth.validate(result);
  for (const auto& lt : summary.links) {
    if (!lt.truth_link.valid() || !lt.correct) continue;
    if (!truth.same_org(lt.inferred_as, neighbor)) continue;
    out.insert(lt.truth_link.value);
  }
  return out;
}

}  // namespace bdrmap::eval
