// Graceful-degradation scoring for the §5.8 split deployment over a faulty
// measurement channel.
//
// The paper's prober runs on home-router-class devices behind real access
// links; a production controller must keep inferring borders when probes
// and control messages fail. This module quantifies what that costs: for
// each injected fault rate it reports how much of the border map survives
// (Table-1-style BGP-neighbor coverage) and how much of what was inferred
// is still correct (ground-truth PPV over neighbor routers and links),
// alongside the targets the run had to abandon.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asdata/as_relationships.h"
#include "core/bdrmap.h"
#include "eval/ground_truth.h"

namespace bdrmap::eval {

// One row of the accuracy-vs-fault-rate sweep.
struct DegradationRow {
  double fault_rate = 0.0;      // injected per-frame loss probability
  std::size_t links = 0;        // inferred interdomain links
  std::size_t neighbor_ases = 0;
  std::size_t probe_failures = 0;  // targets abandoned by the channel
  double bgp_coverage = 0.0;    // Table-1 coverage of BGP-observed neighbors
  double router_ppv = 0.0;      // correct / inferred neighbor routers
  double link_ppv = 0.0;        // correct / inferred links
  // Channel counters, filled in by the caller from remote::ChannelStats.
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t corrupt_frames_detected = 0;
  std::uint64_t device_restarts = 0;
  bool identical_to_baseline = false;  // bit-identical to the 0%-fault run
};

// Scores one degraded run: Table-1 coverage plus ground-truth PPV. `rels`
// and `vp_ases` must be the inputs the run consumed; channel counters are
// the caller's to fill.
DegradationRow score_degraded_run(double fault_rate,
                                  const core::BdrmapResult& result,
                                  const GroundTruth& truth,
                                  const asdata::RelationshipStore& rels,
                                  const std::vector<AsId>& vp_ases);

// True when two runs produced the identical border map: the same links (in
// order, field by field), per-AS index, and probing stats. This is the
// 0%-fault determinism guard — a lossless FaultyChannel run must be
// bit-identical to the local deployment.
bool same_border_map(const core::BdrmapResult& a, const core::BdrmapResult& b);

// Renders the sweep as an aligned table (one row per fault rate).
std::string render_degradation(const std::vector<DegradationRow>& rows);

}  // namespace bdrmap::eval
