// Vantage-point selection: which VPs buy the most border coverage?
//
// §6 asks "how many VPs we need in a hosting network, and where" — the
// paper answers empirically (17 of 19 for the Tier-1 peer). Operators
// placing a *budgeted* deployment want the inverse: the VP order that
// covers the most interconnects soonest. Max-coverage is NP-hard; the
// classic greedy algorithm is (1 - 1/e)-optimal and is what we provide,
// over per-VP sets of discovered links (truth link ids from eval, or
// merged-map link indices — any integer keys).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace bdrmap::eval {

struct VpSelection {
  std::vector<std::size_t> order;     // VP indices, most valuable first
  std::vector<std::size_t> coverage;  // links covered after each pick
  std::size_t total_links = 0;        // union over all VPs

  // VPs needed to reach `fraction` of total coverage (0 if unreachable).
  std::size_t vps_for(double fraction) const;
};

// Greedy max-coverage over per-VP link sets. VPs contributing nothing new
// are still appended (in index order) so `order` is a full permutation.
VpSelection greedy_vp_selection(
    const std::vector<std::set<std::uint32_t>>& per_vp_links);

}  // namespace bdrmap::eval
