// Reproduces Table 1 (§5.7): heuristic attribution and BGP coverage for a
// VP in each of three networks — an R&E network, a large access network,
// and a Tier-1 network. The paper's headline shapes: 92.2-96.8% of
// BGP-observed neighbors get a border router inferred; the firewall
// heuristic dominates customer inferences; onenet dominates peers and
// providers; a "trace" column of neighbors invisible in BGP.
#include <cstdio>
#include <string>
#include <vector>

#include "eval/scenario.h"
#include "eval/table1.h"
#include "runtime/flags.h"
#include "runtime/parallel_for.h"

using namespace bdrmap;

namespace {

// Renders one network's table; returns text so the three networks can run
// concurrently (each builds a private Scenario) and still print in the
// paper's fixed order.
std::string run_network(const char* title, const topo::GeneratorConfig& config,
                        topo::AsKind vp_kind) {
  eval::Scenario scenario(config);
  net::AsId vp_as = scenario.first_of(vp_kind);
  auto vps = scenario.vps_in(vp_as);
  if (vps.empty()) {
    return std::string("no VP in ") + title + "\n";
  }
  auto result = scenario.run_bdrmap(vps.front());
  auto inputs = scenario.inputs_for(vp_as);
  eval::Table1 table =
      eval::build_table1(result, *inputs.rels, inputs.vp_ases);
  std::string out = eval::render_table1(table, title);
  char line[128];
  std::snprintf(line, sizeof(line),
                "probes: %llu   traces: %zu   routers: %zu\n\n",
                static_cast<unsigned long long>(result.stats.probes_sent),
                result.stats.traces, result.stats.routers);
  return out + line;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = runtime::threads_flag(argc, argv);
  auto pool = runtime::make_pool(threads);
  std::printf("Table 1: evaluation of bdrmap heuristics against BGP "
              "observations\n(columns: inferred relationship of the "
              "neighbor; rows: heuristic that fired)\n\n");

  struct Network {
    const char* title;
    topo::GeneratorConfig config;
    topo::AsKind vp_kind;
  };
  const std::vector<Network> networks = {
      {"R&E network (VP: research-and-education AS)",
       eval::research_education_config(42), topo::AsKind::kResearchEdu},
      {"Large access network (VP: 19-PoP US access AS)",
       eval::large_access_config(42), topo::AsKind::kAccess},
      {"Tier-1 network (VP: transit-free clique member)",
       eval::tier1_config(42), topo::AsKind::kTier1},
  };
  std::vector<std::string> tables = runtime::parallel_map<std::string>(
      pool.get(), networks.size(), [&networks](std::size_t i) {
        const Network& n = networks[i];
        return run_network(n.title, n.config, n.vp_kind);
      });
  for (const std::string& t : tables) std::fputs(t.c_str(), stdout);
  return 0;
}
