// Reproduces Table 1 (§5.7): heuristic attribution and BGP coverage for a
// VP in each of three networks — an R&E network, a large access network,
// and a Tier-1 network. The paper's headline shapes: 92.2-96.8% of
// BGP-observed neighbors get a border router inferred; the firewall
// heuristic dominates customer inferences; onenet dominates peers and
// providers; a "trace" column of neighbors invisible in BGP.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eval/scenario.h"
#include "eval/table1.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "runtime/flags.h"
#include "runtime/parallel_for.h"

using namespace bdrmap;

namespace {

// Renders one network's table; returns text so the three networks can run
// concurrently (each builds a private Scenario) and still print in the
// paper's fixed order.
std::string run_network(const char* title, const topo::GeneratorConfig& config,
                        topo::AsKind vp_kind, obs::Observability* obs) {
  route::FibOptions fib_options;
  if (obs) fib_options.metrics = obs->registry();
  eval::Scenario scenario(config, {}, fib_options);
  net::AsId vp_as = scenario.first_of(vp_kind);
  auto vps = scenario.vps_in(vp_as);
  if (vps.empty()) {
    return std::string("no VP in ") + title + "\n";
  }
  core::BdrmapConfig run_config;
  run_config.obs = obs;
  auto result = scenario.run_bdrmap(vps.front(), run_config);
  auto inputs = scenario.inputs_for(vp_as);
  eval::Table1 table =
      eval::build_table1(result, *inputs.rels, inputs.vp_ases);
  std::string out = eval::render_table1(table, title);
  char line[128];
  std::snprintf(line, sizeof(line),
                "probes: %llu   traces: %zu   routers: %zu\n\n",
                static_cast<unsigned long long>(result.stats.probes_sent),
                result.stats.traces, result.stats.routers);
  return out + line;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = runtime::threads_flag(argc, argv);
  std::string obs_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs-json") == 0 && i + 1 < argc) {
      obs_json_path = argv[++i];
    }
  }
  obs::ObsOptions obs_options;
  obs_options.enabled = !obs_json_path.empty();
  obs_options.run_label = "table1";
  obs::Observability obs(obs_options);
  auto pool = runtime::make_pool(threads, obs.registry());
  std::printf("Table 1: evaluation of bdrmap heuristics against BGP "
              "observations\n(columns: inferred relationship of the "
              "neighbor; rows: heuristic that fired)\n\n");

  struct Network {
    const char* title;
    topo::GeneratorConfig config;
    topo::AsKind vp_kind;
  };
  const std::vector<Network> networks = {
      {"R&E network (VP: research-and-education AS)",
       eval::research_education_config(42), topo::AsKind::kResearchEdu},
      {"Large access network (VP: 19-PoP US access AS)",
       eval::large_access_config(42), topo::AsKind::kAccess},
      {"Tier-1 network (VP: transit-free clique member)",
       eval::tier1_config(42), topo::AsKind::kTier1},
  };
  obs::Observability* obs_ptr = obs.enabled() ? &obs : nullptr;
  std::vector<std::string> tables = runtime::parallel_map<std::string>(
      pool.get(), networks.size(), [&networks, obs_ptr](std::size_t i) {
        const Network& n = networks[i];
        return run_network(n.title, n.config, n.vp_kind, obs_ptr);
      });
  for (const std::string& t : tables) std::fputs(t.c_str(), stdout);
  if (obs.enabled()) {
    obs::ExportInfo info;
    info.tool = "bench_table1";
    info.scenario = "table1";
    info.seed = 42;
    info.vps = networks.size();
    info.threads = threads;
    if (!obs::write_json_file(obs_json_path, obs, info)) {
      std::fprintf(stderr, "cannot write %s\n", obs_json_path.c_str());
      return 1;
    }
    std::printf("wrote observability export to %s\n", obs_json_path.c_str());
  }
  return 0;
}
