// Reproduces Table 1 (§5.7): heuristic attribution and BGP coverage for a
// VP in each of three networks — an R&E network, a large access network,
// and a Tier-1 network. The paper's headline shapes: 92.2-96.8% of
// BGP-observed neighbors get a border router inferred; the firewall
// heuristic dominates customer inferences; onenet dominates peers and
// providers; a "trace" column of neighbors invisible in BGP.
#include <cstdio>

#include "eval/scenario.h"
#include "eval/table1.h"

using namespace bdrmap;

namespace {

void run_network(const char* title, const topo::GeneratorConfig& config,
                 topo::AsKind vp_kind) {
  eval::Scenario scenario(config);
  net::AsId vp_as = scenario.first_of(vp_kind);
  auto vps = scenario.vps_in(vp_as);
  if (vps.empty()) {
    std::printf("no VP in %s\n", title);
    return;
  }
  auto result = scenario.run_bdrmap(vps.front());
  auto inputs = scenario.inputs_for(vp_as);
  eval::Table1 table =
      eval::build_table1(result, *inputs.rels, inputs.vp_ases);
  std::fputs(eval::render_table1(table, title).c_str(), stdout);
  std::printf("probes: %llu   traces: %zu   routers: %zu\n\n",
              static_cast<unsigned long long>(result.stats.probes_sent),
              result.stats.traces, result.stats.routers);
}

}  // namespace

int main() {
  std::printf("Table 1: evaluation of bdrmap heuristics against BGP "
              "observations\n(columns: inferred relationship of the "
              "neighbor; rows: heuristic that fired)\n\n");
  run_network("R&E network (VP: research-and-education AS)",
              eval::research_education_config(42), topo::AsKind::kResearchEdu);
  run_network("Large access network (VP: 19-PoP US access AS)",
              eval::large_access_config(42), topo::AsKind::kAccess);
  run_network("Tier-1 network (VP: transit-free clique member)",
              eval::tier1_config(42), topo::AsKind::kTier1);
  return 0;
}
