// Resource-limited deployment (§5.8).
//
// The paper: full bdrmap needs ~150MB of RAM, while the prober (scamper)
// on a BISmark device used 3.5MB — so bdrmap state lives on a central
// controller and the device only executes measurement commands. This bench
// runs the identical inference through the split deployment and reports
// the device-side footprint vs the controller-side state.
#include <cstdio>

#include "core/bdrmap.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "remote/split.h"

using namespace bdrmap;

int main() {
  eval::Scenario scenario(eval::small_access_config(42));
  net::AsId vp_as = scenario.first_of(topo::AsKind::kAccess);
  auto vp = scenario.vps_in(vp_as).front();
  core::InferenceInputs inputs = scenario.inputs_for(vp_as);

  std::printf("Split prober/controller deployment (§5.8)\n");
  std::printf("paper: bdrmap ~150MB RAM; scamper on a BISmark device "
              "3.5MB, <=3%% CPU\n\n");

  // Monolithic run.
  auto local_services = scenario.services_for(vp, 99);
  core::Bdrmap local(*local_services, inputs);
  auto local_result = local.run();

  // Split run: same inference code, device behind the wire protocol.
  auto device_services = scenario.services_for(vp, 99);
  remote::ProberDevice device(*device_services);
  remote::RemoteProbeServices remote_services(device);
  core::Bdrmap remote(remote_services, inputs);
  auto remote_result = remote.run();
  const remote::ChannelStats& ch = remote_services.channel_stats();

  // Controller-side state footprint (what the device does NOT hold):
  // origin table entries, relationship edges, collected trace hops.
  std::size_t origin_entries = inputs.origins->prefix_count();
  std::size_t rel_edges = inputs.rels->edge_count();
  std::size_t trace_hops = 0;
  for (const auto& t : remote_result.graph.traces()) {
    trace_hops += t.hops.size();
  }
  // Rough byte estimates with the in-memory representations used here.
  std::size_t controller_bytes =
      origin_entries * 64 + rel_edges * 24 + trace_hops * 8;

  std::vector<std::vector<std::string>> cells = {
      {"inferred links (local)", std::to_string(local_result.links.size())},
      {"inferred links (remote)", std::to_string(remote_result.links.size())},
      {"neighbor ASes (local)",
       std::to_string(local_result.links_by_as.size())},
      {"neighbor ASes (remote)",
       std::to_string(remote_result.links_by_as.size())},
      {"messages on channel", std::to_string(ch.messages)},
      {"bytes to device", std::to_string(ch.bytes_to_device)},
      {"bytes from device", std::to_string(ch.bytes_from_device)},
      {"device peak message buffer", std::to_string(ch.peak_message_bytes)},
      {"controller state (approx bytes)", std::to_string(controller_bytes)},
  };
  std::fputs(eval::render_table({"metric", "value"}, cells).c_str(), stdout);

  double ratio = controller_bytes /
                 std::max<double>(1.0, static_cast<double>(
                                           ch.peak_message_bytes));
  std::printf("\ncontroller holds ~%.0fx more state than the device ever "
              "buffers\n(paper's split: 150MB vs 3.5MB = ~43x)\n",
              ratio);
  return 0;
}
