// Resource-limited deployment (§5.8), now over a degraded channel.
//
// The paper: full bdrmap needs ~150MB of RAM, while the prober (scamper)
// on a BISmark device used 3.5MB — so bdrmap state lives on a central
// controller and the device only executes measurement commands. Those
// devices sit behind real, lossy access links, so this bench runs the
// identical inference through the split deployment twice over:
//
//  1. footprint: controller-side state vs device buffer (the seed bench);
//  2. fault sweep: the same run at increasing injected message-loss rates
//     (plus corruption, duplication, reordering and a mid-run device
//     crash), reporting Table-1-style coverage and ground-truth PPV per
//     fault rate — graceful degradation, quantified.
#include <cstdio>

#include "core/bdrmap.h"
#include "eval/degradation.h"
#include "eval/ground_truth.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "remote/channel.h"
#include "remote/split.h"
#include "runtime/flags.h"
#include "runtime/parallel_for.h"

using namespace bdrmap;

namespace {

remote::FaultConfig faults_at(double rate) {
  remote::FaultConfig f;
  f.drop_rate = rate;
  f.corrupt_rate = rate / 2.0;
  f.duplicate_rate = rate / 2.0;
  f.reorder_rate = rate / 4.0;
  f.truncate_rate = rate / 4.0;
  f.seed = 0xFA17;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = runtime::threads_flag(argc, argv);
  auto pool = runtime::make_pool(threads);
  eval::Scenario scenario(eval::small_access_config(42));
  net::AsId vp_as = scenario.first_of(topo::AsKind::kAccess);
  auto vp = scenario.vps_in(vp_as).front();
  core::InferenceInputs inputs = scenario.inputs_for(vp_as);
  eval::GroundTruth truth(scenario.net(), vp_as);

  std::printf("Split prober/controller deployment (§5.8)\n");
  std::printf("paper: bdrmap ~150MB RAM; scamper on a BISmark device "
              "3.5MB, <=3%% CPU\n\n");

  // Monolithic run.
  auto local_services = scenario.services_for(vp, 99);
  core::Bdrmap local(*local_services, inputs);
  auto local_result = local.run();

  // Split run: same inference code, device behind the wire protocol.
  auto device_services = scenario.services_for(vp, 99);
  remote::ProberDevice device(*device_services);
  remote::RemoteProbeServices remote_services(device);
  core::Bdrmap remote(remote_services, inputs);
  auto remote_result = remote.run();
  const remote::ChannelStats& ch = remote_services.channel_stats();

  // Controller-side state footprint (what the device does NOT hold):
  // origin table entries, relationship edges, collected trace hops.
  std::size_t origin_entries = inputs.origins->prefix_count();
  std::size_t rel_edges = inputs.rels->edge_count();
  std::size_t trace_hops = 0;
  for (const auto& t : remote_result.graph.traces()) {
    trace_hops += t.hops.size();
  }
  // Rough byte estimates with the in-memory representations used here.
  std::size_t controller_bytes =
      origin_entries * 64 + rel_edges * 24 + trace_hops * 8;

  std::vector<std::vector<std::string>> cells = {
      {"inferred links (local)", std::to_string(local_result.links.size())},
      {"inferred links (remote)", std::to_string(remote_result.links.size())},
      {"neighbor ASes (local)",
       std::to_string(local_result.links_by_as.size())},
      {"neighbor ASes (remote)",
       std::to_string(remote_result.links_by_as.size())},
      {"messages on channel", std::to_string(ch.messages)},
      {"bytes to device", std::to_string(ch.bytes_to_device)},
      {"bytes from device", std::to_string(ch.bytes_from_device)},
      {"device peak message buffer", std::to_string(ch.peak_message_bytes)},
      {"controller state (approx bytes)", std::to_string(controller_bytes)},
  };
  std::fputs(eval::render_table({"metric", "value"}, cells).c_str(), stdout);

  double ratio = static_cast<double>(controller_bytes) /
                 std::max<double>(1.0, static_cast<double>(
                                           ch.peak_message_bytes));
  std::printf("\ncontroller holds ~%.0fx more state than the device ever "
              "buffers\n(paper's split: 150MB vs 3.5MB = ~43x)\n",
              ratio);

  // --- fault-rate sweep: graceful inference degradation ---

  std::printf("\nFault sweep: inference accuracy vs injected channel "
              "faults (%u threads)\n(drop rate shown; corruption/duplication "
              "at rate/2, reorder/truncation at rate/4;\nthe 10%% row also "
              "power-cycles the device mid-run)\n\n",
              threads);

  // Each sweep point is an independent full pipeline (its own device,
  // channel and Bdrmap instance over the shared read-only scenario), so
  // the points run concurrently; the rendered table stays in rate order
  // because parallel_map returns results by index.
  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.10};
  std::vector<eval::DegradationRow> rows =
      runtime::parallel_map<eval::DegradationRow>(
          pool.get(), rates.size(), [&](std::size_t i) {
            const double rate = rates[i];
            auto backend = scenario.services_for(vp, 99);
            remote::ProberDevice dev(*backend);
            remote::FaultConfig faults = faults_at(rate);
            if (rate >= 0.10) faults.crash_at_message = 2000;
            remote::FaultyChannel channel(dev, faults);
            remote::RemoteProbeServices services(channel);
            core::Bdrmap run(services, inputs);
            auto result = run.run();
            const remote::ChannelStats& stats = services.channel_stats();

            eval::DegradationRow row = eval::score_degraded_run(
                rate, result, truth, *inputs.rels, inputs.vp_ases);
            row.retransmits = stats.retransmits;
            row.timeouts = stats.timeouts;
            row.corrupt_frames_detected = stats.corrupt_frames_detected;
            row.device_restarts = stats.device_restarts;
            row.identical_to_baseline =
                eval::same_border_map(result, remote_result);
            return row;
          });
  std::fputs(eval::render_degradation(rows).c_str(), stdout);

  eval::DegradationRow baseline = eval::score_degraded_run(
      0.0, local_result, truth, *inputs.rels, inputs.vp_ases);
  std::printf("\nlocal (lossless) baseline: %zu links, coverage %.1f%%, "
              "router PPV %.1f%%\n",
              baseline.links, baseline.bgp_coverage * 100.0,
              baseline.router_ppv * 100.0);
  std::printf("0%%-fault run bit-identical to the lossless split run: %s\n",
              rows.front().identical_to_baseline ? "yes" : "NO (bug)");
  return 0;
}
