// Runtime engine benchmark: what the work-stealing pool actually buys.
//
// Three measurements, written to BENCH_runtime.json (and stdout):
//
//  1. single-VP overhead — one VP run directly vs through MultiVpExecutor
//     with a null pool. The executor wrapper must cost <5% (acceptance
//     criterion): it adds a job factory call, one vector move and the
//     ordered reduction over a single result.
//  2. multi-VP scaling — every VP of the small access network, sequential
//     (null pool) vs pooled at 1/2/4/8 workers. Speedups are whatever the
//     host really delivers (a 1-core container honestly reports ~1x).
//  3. determinism spot check — the pooled runs must be bit-identical to
//     the sequential baseline, re-verified here so the numbers published
//     in the JSON are guaranteed to describe equivalent work.
//
// Usage: bench_runtime [--out FILE] [--repeat N] [--threads N,N,...]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/degradation.h"
#include "eval/scenario.h"
#include "obs/metrics.h"
#include "runtime/multi_vp.h"
#include "runtime/thread_pool.h"

using namespace bdrmap;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-N wall time: the minimum is the least noise-contaminated
// estimate of the true cost on a shared machine.
template <typename Fn>
double best_of(int repeat, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    double t0 = now_seconds();
    fn();
    double dt = now_seconds() - t0;
    if (r == 0 || dt < best) best = dt;
  }
  return best;
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_runtime.json";
  // Default high enough that best-of denoises the ~10ms single-VP run;
  // the <5% overhead gate would otherwise flake on timer jitter.
  int repeat = 10;
  std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        thread_counts.push_back(
            static_cast<unsigned>(std::strtoul(p, const_cast<char**>(&p), 10)));
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--repeat N] [--threads N,N,...]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  eval::Scenario scenario(eval::small_access_config(42));
  net::AsId vp_as = scenario.featured_access();
  std::vector<topo::Vp> vps = scenario.vps_in(vp_as);
  std::printf("bench_runtime: %zu VPs, hardware_concurrency=%u, "
              "best of %d\n\n",
              vps.size(), hw, repeat);

  // --- 1. single-VP executor overhead ---
  core::BdrmapResult direct_result = scenario.run_bdrmap(vps[0], {}, 0x515);
  double direct = best_of(repeat, [&] {
    auto r = scenario.run_bdrmap(vps[0], {}, 0x515);
    (void)r;
  });
  runtime::MultiVpResult exec_result =
      scenario.run_bdrmap_parallel({vps[0]}, {}, 0x515, nullptr);
  double via_executor = best_of(repeat, [&] {
    auto r = scenario.run_bdrmap_parallel({vps[0]}, {}, 0x515, nullptr);
    (void)r;
  });
  double overhead_pct = (via_executor / direct - 1.0) * 100.0;
  bool single_identical =
      eval::same_border_map(exec_result.per_vp[0], direct_result);
  std::printf("single VP: direct %.3fs, via executor %.3fs "
              "(overhead %+.2f%%, identical: %s)\n",
              direct, via_executor, overhead_pct,
              single_identical ? "yes" : "NO");

  // --- 2. multi-VP scaling ---
  runtime::MultiVpResult baseline =
      scenario.run_bdrmap_parallel(vps, {}, 0x1000, nullptr);
  double sequential = best_of(repeat, [&] {
    auto r = scenario.run_bdrmap_parallel(vps, {}, 0x1000, nullptr);
    (void)r;
  });
  std::printf("multi VP (%zu): sequential %.3fs\n", vps.size(), sequential);

  struct ScalePoint {
    unsigned threads = 0;
    double seconds = 0.0;
    bool identical = false;
    obs::MetricsSnapshot stats;
  };
  std::vector<ScalePoint> points;
  for (unsigned t : thread_counts) {
    runtime::ThreadPool pool(t);
    ScalePoint p;
    p.threads = t;
    runtime::MultiVpResult check =
        scenario.run_bdrmap_parallel(vps, {}, 0x1000, &pool);
    p.identical = check.per_vp.size() == baseline.per_vp.size();
    for (std::size_t i = 0; p.identical && i < baseline.per_vp.size(); ++i) {
      p.identical =
          eval::same_border_map(check.per_vp[i], baseline.per_vp[i]);
    }
    p.seconds = best_of(repeat, [&] {
      auto r = scenario.run_bdrmap_parallel(vps, {}, 0x1000, &pool);
      (void)r;
    });
    p.stats = pool.metrics().snapshot();
    std::printf("  %u thread(s): %.3fs (%.2fx, identical: %s; "
                "%llu tasks, %llu steals, %llu parks)\n",
                t, p.seconds, sequential / p.seconds,
                p.identical ? "yes" : "NO",
                static_cast<unsigned long long>(
                    p.stats.counter("runtime.tasks_executed")),
                static_cast<unsigned long long>(
                    p.stats.counter("runtime.steals")),
                static_cast<unsigned long long>(
                    p.stats.counter("runtime.parks")));
    points.push_back(p);
  }

  // --- 3. emit JSON ---
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"runtime\",\n";
  out << "  \"scenario\": \"small_access\",\n";
  out << "  \"vps\": " << vps.size() << ",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"repeat\": " << repeat << ",\n";
  out << "  \"single_vp\": {\n";
  out << "    \"direct_seconds\": " << json_double(direct) << ",\n";
  out << "    \"executor_seconds\": " << json_double(via_executor) << ",\n";
  out << "    \"overhead_pct\": " << json_double(overhead_pct) << ",\n";
  out << "    \"identical\": " << (single_identical ? "true" : "false")
      << "\n  },\n";
  out << "  \"multi_vp\": {\n";
  out << "    \"sequential_seconds\": " << json_double(sequential) << ",\n";
  out << "    \"pooled\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    out << "      {\"threads\": " << p.threads
        << ", \"seconds\": " << json_double(p.seconds)
        << ", \"speedup\": " << json_double(sequential / p.seconds)
        << ", \"identical\": " << (p.identical ? "true" : "false")
        << ", \"tasks\": " << p.stats.counter("runtime.tasks_executed")
        << ", \"steals\": " << p.stats.counter("runtime.steals")
        << ", \"parks\": " << p.stats.counter("runtime.parks") << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  bool ok = single_identical && overhead_pct < 5.0;
  for (const ScalePoint& p : points) ok = ok && p.identical;
  if (!ok) {
    std::printf("FAIL: overhead or determinism criterion violated\n");
    return 1;
  }
  return 0;
}
