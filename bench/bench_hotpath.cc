// Forwarding fast-path benchmark: what the route caches actually buy.
//
// Two measurements, written to BENCH_hotpath.json (and stdout):
//
//  1. next_hop throughput — full FIB walks (resolve-once RouteQuery,
//     memoized egress/tier caches, dense IGP indexing) vs the same walks
//     on a cache-disabled Fib over the same topology, which recomputes
//     the resolution and tier scan on every hop exactly as the
//     pre-fast-path code did. Reported in million next_hop calls/second.
//  2. end-to-end multi-VP — the full bdrmap pipeline for every VP of the
//     small access network on a worker pool, cached vs cache-disabled
//     scenario built from the same seed.
//
// Identity is a hard gate: every hop of every sampled walk and every
// per-VP border map must be bit-identical between the cached and
// uncached planes, otherwise the exit code is 1 and the throughput
// numbers are meaningless. The speedup targets (>=3x next_hop, >=1.5x
// end-to-end) only warn unless --strict is given, so CI smoke runs on
// noisy shared hosts do not flake on load spikes.
//
// Usage: bench_hotpath [--out FILE] [--repeat N] [--threads N] [--strict]
//                      [--obs-json FILE]
//
// --obs-json runs ONE extra instrumented multi-VP pass after all the
// measured sections finish, on its own scenario and pool, and exports its
// metrics + spans. The measured numbers above are always from obs-off
// runs; the flag cannot perturb them.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/degradation.h"
#include "eval/scenario.h"
#include "netbase/rng.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "route/fib.h"
#include "runtime/thread_pool.h"

using namespace bdrmap;

namespace {

constexpr std::size_t kMaxWalkHops = 256;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One warmup run (untimed), then the median of `repeat` timed runs —
// the honest middle of the distribution, not the flattering best case.
template <typename Fn>
double median_of(int repeat, Fn&& fn) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    double t0 = now_seconds();
    fn();
    times.push_back(now_seconds() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

struct Probe {
  net::RouterId start;
  net::Ipv4Addr dst;
  std::uint32_t salt = 0;
};

// A deterministic mixed workload: every router origin paired with
// announced-prefix interiors (including the selectively-announced ones),
// interface addresses, and a few ECMP salts — the address classes the
// tracer actually probes.
std::vector<Probe> build_workload(const topo::Internet& net,
                                  std::uint64_t seed) {
  std::vector<Probe> work;
  net::Rng rng(seed);
  const auto& routers = net.routers();
  const auto& announced = net.announced();
  const auto& ifaces = net.ifaces();
  auto any_router = [&] {
    return routers[rng.uniform(0, static_cast<std::uint32_t>(routers.size() -
                                                             1))]
        .id;
  };
  for (const auto& ap : announced) {
    net::Ipv4Addr in_block(ap.prefix.network().value() + 1);
    if (!ap.prefix.contains(in_block)) in_block = ap.prefix.network();
    work.push_back({any_router(), in_block, 0});
    work.push_back({any_router(), in_block, rng.uniform(1, 3)});
  }
  for (std::size_t i = 0; i < ifaces.size(); i += 7) {
    work.push_back({any_router(), ifaces[i].addr, 0});
  }
  return work;
}

// One full FIB walk; appends an encoding of every hop to `trail` (for the
// identity audit) and returns the number of next_hop calls made.
std::size_t walk(const route::Fib& fib, const Probe& p,
                 std::vector<std::uint64_t>* trail) {
  const route::Fib::RouteQuery q = fib.query(p.dst);
  net::RouterId r = p.start;
  std::size_t calls = 0;
  for (std::size_t hop = 0; hop < kMaxWalkHops; ++hop) {
    auto next = fib.next_hop(r, q, p.salt);
    ++calls;
    if (!next.has_value()) {
      if (trail) {
        trail->push_back(fib.delivered_at(r, q) ? 0xD0D0D0D0ull
                                                : 0xDEADull);
      }
      return calls;
    }
    if (trail) {
      trail->push_back((std::uint64_t{next->router.value} << 32) |
                       next->link.value);
      trail->push_back((std::uint64_t{next->ingress.value} << 33) |
                       (std::uint64_t{next->egress.value} << 1) |
                       (next->crossed_interdomain ? 1 : 0));
    }
    r = next->router;
  }
  return calls;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  std::string obs_json_path;
  int repeat = 5;
  unsigned threads = 8;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-json") == 0 && i + 1 < argc) {
      obs_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
      if (threads < 1) threads = 1;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--repeat N] [--threads N] "
                   "[--strict] [--obs-json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  route::FibOptions no_cache;
  no_cache.enable_caches = false;

  // Two scenarios from the same seed: identical topologies, one with the
  // fast path on and one recomputing every hop.
  eval::Scenario cached(eval::small_access_config(42));
  eval::Scenario uncached(eval::small_access_config(42), {}, no_cache);
  std::printf(
      "bench_hotpath: hardware_concurrency=%u, median of %d (1 warmup)\n\n",
      hw, repeat);

  // --- 1. next_hop throughput over full walks ---
  std::vector<Probe> work = build_workload(cached.net(), 0xb0d);
  std::vector<std::uint64_t> trail_cached, trail_uncached;
  std::size_t calls = 0;
  for (const Probe& p : work) calls += walk(cached.fib(), p, &trail_cached);
  for (const Probe& p : work) walk(uncached.fib(), p, &trail_uncached);
  bool walks_identical = trail_cached == trail_uncached;

  double t_cached = median_of(repeat, [&] {
    for (const Probe& p : work) walk(cached.fib(), p, nullptr);
  });
  double t_uncached = median_of(repeat, [&] {
    for (const Probe& p : work) walk(uncached.fib(), p, nullptr);
  });
  double mps_cached = static_cast<double>(calls) / t_cached / 1e6;
  double mps_uncached = static_cast<double>(calls) / t_uncached / 1e6;
  double hop_speedup = t_uncached / t_cached;
  std::printf("next_hop: %zu walks, %zu calls\n", work.size(), calls);
  std::printf("  cached   %.3f Mcalls/s (%.4fs)\n", mps_cached, t_cached);
  std::printf("  uncached %.3f Mcalls/s (%.4fs)\n", mps_uncached, t_uncached);
  std::printf("  speedup %.2fx, identical: %s\n\n", hop_speedup,
              walks_identical ? "yes" : "NO");

  // --- 2. end-to-end multi-VP pipeline ---
  std::vector<topo::Vp> vps = cached.vps_in(cached.featured_access());
  runtime::ThreadPool pool(threads);
  runtime::MultiVpResult res_cached =
      cached.run_bdrmap_parallel(vps, {}, 0x515, &pool);
  runtime::MultiVpResult res_uncached =
      uncached.run_bdrmap_parallel(vps, {}, 0x515, &pool);
  bool e2e_identical = res_cached.per_vp.size() == res_uncached.per_vp.size();
  for (std::size_t i = 0; e2e_identical && i < res_cached.per_vp.size(); ++i) {
    e2e_identical =
        eval::same_border_map(res_cached.per_vp[i], res_uncached.per_vp[i]);
  }
  double e2e_cached = median_of(repeat, [&] {
    auto r = cached.run_bdrmap_parallel(vps, {}, 0x515, &pool);
    (void)r;
  });
  double e2e_uncached = median_of(repeat, [&] {
    auto r = uncached.run_bdrmap_parallel(vps, {}, 0x515, &pool);
    (void)r;
  });
  double e2e_speedup = e2e_uncached / e2e_cached;
  std::printf("end-to-end (%zu VPs, %u pool workers, hw=%u):\n", vps.size(),
              pool.size(), hw);
  std::printf("  cached   %.3fs\n", e2e_cached);
  std::printf("  uncached %.3fs\n", e2e_uncached);
  std::printf("  speedup %.2fx, identical: %s\n\n", e2e_speedup,
              e2e_identical ? "yes" : "NO");

  // --- 3. emit JSON ---
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"hotpath\",\n";
  out << "  \"scenario\": \"small_access\",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"repeat\": " << repeat << ",\n";
  out << "  \"warmup\": true,\n";
  out << "  \"next_hop\": {\n";
  out << "    \"walks\": " << work.size() << ",\n";
  out << "    \"calls\": " << calls << ",\n";
  out << "    \"cached_mcalls_per_sec\": " << json_double(mps_cached) << ",\n";
  out << "    \"uncached_mcalls_per_sec\": " << json_double(mps_uncached)
      << ",\n";
  out << "    \"speedup\": " << json_double(hop_speedup) << ",\n";
  out << "    \"identical\": " << (walks_identical ? "true" : "false")
      << "\n  },\n";
  out << "  \"end_to_end\": {\n";
  out << "    \"vps\": " << vps.size() << ",\n";
  out << "    \"threads\": " << threads << ",\n";
  // Honesty: the worker count the pool actually spawned, which is what
  // the speedup was measured on (a loaded or small host may differ from
  // the --threads request).
  out << "    \"pool_workers\": " << pool.size() << ",\n";
  out << "    \"cached_seconds\": " << json_double(e2e_cached) << ",\n";
  out << "    \"uncached_seconds\": " << json_double(e2e_uncached) << ",\n";
  out << "    \"speedup\": " << json_double(e2e_speedup) << ",\n";
  out << "    \"identical\": " << (e2e_identical ? "true" : "false")
      << "\n  }\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  // --- 4. optional instrumented pass (unmeasured) ---
  if (!obs_json_path.empty()) {
    obs::ObsOptions obs_options;
    obs_options.enabled = true;
    obs_options.run_label = "hotpath";
    obs::Observability obs(obs_options);
    route::FibOptions instrumented_fib;
    instrumented_fib.metrics = obs.registry();
    eval::Scenario instrumented(eval::small_access_config(42), {},
                                instrumented_fib);
    runtime::ThreadPool obs_pool(threads, obs.registry());
    core::BdrmapConfig obs_config;
    obs_config.obs = &obs;
    auto obs_run =
        instrumented.run_bdrmap_parallel(vps, obs_config, 0x515, &obs_pool);
    (void)obs_run;
    obs::ExportInfo info;
    info.tool = "bench_hotpath";
    info.scenario = "small_access";
    info.seed = 42;
    info.vps = vps.size();
    info.threads = threads;
    if (!obs::write_json_file(obs_json_path, obs, info)) {
      std::fprintf(stderr, "cannot write %s\n", obs_json_path.c_str());
      return 1;
    }
    std::printf("wrote observability export to %s\n", obs_json_path.c_str());
  }

  // Identity is non-negotiable; throughput targets gate only under
  // --strict so shared-host noise cannot fail a smoke run.
  if (!walks_identical || !e2e_identical) {
    std::printf("FAIL: cached plane is not bit-identical to the baseline\n");
    return 1;
  }
  bool fast_enough = hop_speedup >= 3.0 && e2e_speedup >= 1.5;
  if (!fast_enough) {
    std::printf("%s: speedup below target (next_hop %.2fx < 3.0x or "
                "e2e %.2fx < 1.5x)\n",
                strict ? "FAIL" : "WARN", hop_speedup, e2e_speedup);
    if (strict) return 1;
  }
  return 0;
}
