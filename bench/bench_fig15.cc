// Reproduces Figure 15 (§6): marginal utility of additional VPs for
// discovering a large access network's interconnections with two transit
// networks and several CDNs.
//
// Paper shapes: a single VP sees ALL Akamai links (selective per-link
// prefix announcement); Level3 needs ~17 geographically diverse VPs to
// reveal all 45 links (hot-potato routing); other networks fall between.
#include <cstdio>
#include <set>
#include <vector>

#include "eval/analysis.h"
#include "eval/scenario.h"
#include "eval/vp_selection.h"
#include "runtime/flags.h"

using namespace bdrmap;

int main(int argc, char** argv) {
  const unsigned threads = runtime::threads_flag(argc, argv);
  auto pool = runtime::make_pool(threads);
  eval::Scenario scenario(eval::large_access_config(42));
  net::AsId vp_as = scenario.featured_access();
  auto vps = scenario.vps_in(vp_as);
  eval::GroundTruth truth(scenario.net(), vp_as);

  struct Target {
    std::string name;
    net::AsId as;
    std::size_t truth_links = 0;
  };
  // Second transit target: the access network's first transit provider
  // (the paper used two large transit providers and five CDNs).
  net::AsId transit2;
  for (net::AsId p :
       scenario.net().truth_relationships().providers(vp_as)) {
    transit2 = p;
    break;
  }
  std::vector<Target> targets = {
      {"Level3-like (Tier-1 peer)", scenario.level3_like()},
      {"Transit-2 (provider)", transit2},
      {"Akamai-like (pinned prefixes)", scenario.akamai_like()},
      {"Google-like (coastal)", scenario.google_like()},
      {"CDN-3", scenario.first_of(topo::AsKind::kContent, 2)},
      {"CDN-4", scenario.first_of(topo::AsKind::kContent, 3)},
      {"CDN-5", scenario.first_of(topo::AsKind::kContent, 4)},
  };
  for (auto& t : targets) {
    if (!t.as.valid()) continue;
    for (const auto& il : scenario.net().interdomain_links()) {
      bool touches_target =
          truth.same_org(il.as_a, t.as) || truth.same_org(il.as_b, t.as);
      bool touches_vp =
          truth.same_org(il.as_a, vp_as) || truth.same_org(il.as_b, vp_as);
      if (touches_target && touches_vp) ++t.truth_links;
    }
  }

  std::printf("Figure 15: marginal utility of VPs (%zu VPs, large access "
              "network, %u threads)\n\n",
              vps.size(), threads);

  // All VP pipelines in parallel (seeded 0x2000 + i, as before). The
  // marginal-utility curve is inherently ordered — "links after k VPs" —
  // so the cumulative reduction below must walk VP order; parallelism
  // only accelerates the runs feeding it.
  runtime::MultiVpResult runs =
      scenario.run_bdrmap_parallel(vps, {}, 0x2000, pool.get());

  // Cumulative discovered interconnects per target, in VP order; also the
  // per-VP Tier-1 link sets for the deployment-planning comparison below.
  std::vector<std::set<std::uint32_t>> discovered(targets.size());
  std::vector<std::vector<std::size_t>> curve(targets.size());
  std::vector<std::set<std::uint32_t>> tier1_per_vp;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const auto& result = runs.per_vp[i];
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (!targets[t].as.valid()) continue;
      auto links = eval::discovered_links_with(result, truth, targets[t].as);
      if (t == 0) tier1_per_vp.push_back(links);
      discovered[t].insert(links.begin(), links.end());
      curve[t].push_back(discovered[t].size());
    }
    std::printf("  VP %2zu/%zu reduced\r", i + 1, vps.size());
    std::fflush(stdout);
  }
  std::printf("\n\nlinks discovered after k VPs (row: network; truth count "
              "in parentheses)\n\n          VPs:");
  for (std::size_t i = 1; i <= vps.size(); ++i) std::printf("%4zu", i);
  std::printf("\n");
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (!targets[t].as.valid()) continue;
    std::printf("%-28s (%2zu):", targets[t].name.c_str(),
                targets[t].truth_links);
    for (std::size_t v : curve[t]) std::printf("%4zu", v);
    std::printf("\n");
  }

  // Headline checks.
  std::printf("\nAkamai-like from one VP: %zu/%zu links "
              "(paper: a single VP observes all)\n",
              curve[2].empty() ? 0 : curve[2].front(),
              targets[2].truth_links);
  std::size_t full_at = 0;
  for (std::size_t i = 0; i < curve[0].size(); ++i) {
    if (curve[0][i] == curve[0].back()) {
      full_at = i + 1;
      break;
    }
  }
  std::printf("Level3-like saturates at %zu VPs with %zu/%zu links "
              "(paper: 17 VPs for all 45)\n",
              full_at, curve[0].empty() ? 0 : curve[0].back(),
              targets[0].truth_links);

  // Deployment planning: the west-to-east order above vs greedy placement
  // (the operator's question behind §6's marginal-utility study).
  auto greedy = eval::greedy_vp_selection(tier1_per_vp);
  std::printf("\ngreedy VP placement for the Tier-1 peer: ");
  for (std::size_t c : greedy.coverage) std::printf("%zu ", c);
  std::printf("\n90%% coverage needs %zu VPs greedily (vs %zu west-to-east)\n",
              greedy.vps_for(0.9), [&] {
                double needed = 0.9 * static_cast<double>(
                                          greedy.total_links);
                for (std::size_t i = 0; i < curve[0].size(); ++i) {
                  if (static_cast<double>(curve[0][i]) >= needed) {
                    return i + 1;
                  }
                }
                return curve[0].size();
              }());
  return 0;
}
