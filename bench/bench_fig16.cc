// Reproduces Figure 16 (§6): the impact of the VP's geographic location on
// the interdomain links it observes, for a Level3-like Tier-1 (hot potato:
// each VP sees nearby links), a Google-like CDN (coastal interconnects
// only), and an Akamai-like CDN (selective announcement: every VP sees
// every link).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "eval/analysis.h"
#include "eval/scenario.h"
#include "runtime/flags.h"

using namespace bdrmap;

namespace {

// Renders one row of the figure: the VP (o) and the observed link
// longitudes (*) on a west-east axis.
std::string row(double vp_lon, const std::vector<double>& link_lons) {
  constexpr double kWest = -125.0, kEast = -68.0;
  constexpr int kWidth = 58;
  std::string axis(kWidth, '.');
  auto col = [&](double lon) {
    int c = static_cast<int>((lon - kWest) / (kEast - kWest) * (kWidth - 1));
    return std::clamp(c, 0, kWidth - 1);
  };
  for (double lon : link_lons) axis[static_cast<std::size_t>(col(lon))] = '*';
  std::size_t vp_col = static_cast<std::size_t>(col(vp_lon));
  axis[vp_col] = axis[vp_col] == '*' ? '@' : 'o';
  return axis;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = runtime::threads_flag(argc, argv);
  auto pool = runtime::make_pool(threads);
  eval::Scenario scenario(eval::large_access_config(42));
  net::AsId vp_as = scenario.featured_access();
  auto vps = scenario.vps_in(vp_as);
  eval::GroundTruth truth(scenario.net(), vp_as);

  struct Target {
    const char* name;
    net::AsId as;
  };
  std::vector<Target> targets = {
      {"Level3-like (hot potato)", scenario.level3_like()},
      {"Google-like (coastal)", scenario.google_like()},
      {"Akamai-like (selective announcement)", scenario.akamai_like()},
  };

  std::printf("Figure 16: VP longitude (o) vs observed interdomain link "
              "longitudes (*)\nwest %-50s east\n\n", "");

  // Longitude of each truth link: the VP-side router's PoP.
  auto link_longitude = [&](std::uint32_t link_value) {
    for (const auto& il : scenario.net().interdomain_links()) {
      if (il.link.value != link_value) continue;
      net::RouterId near_router =
          truth.same_org(il.as_a, vp_as) ? il.router_a : il.router_b;
      return scenario.net()
          .pops()[scenario.net().router(near_router).pop]
          .longitude;
    }
    return 0.0;
  };

  // One bdrmap run per VP (seeded 0x3000 + i, as the sequential loop
  // was), reused across the three targets; results land in VP order.
  std::vector<core::BdrmapResult> results =
      std::move(scenario.run_bdrmap_parallel(vps, {}, 0x3000, pool.get())
                    .per_vp);
  std::printf("  %zu VPs done on %u threads\n", vps.size(), threads);

  for (const auto& target : targets) {
    if (!target.as.valid()) continue;
    std::printf("\n-- %s --\n", target.name);
    for (std::size_t i = 0; i < vps.size(); ++i) {
      std::vector<double> lons;
      for (std::uint32_t link :
           eval::discovered_links_with(results[i], truth, target.as)) {
        lons.push_back(link_longitude(link));
      }
      double vp_lon = scenario.net().pops()[vps[i].pop].longitude;
      std::printf("%-14s %s\n",
                  scenario.net().pops()[vps[i].pop].city.c_str(),
                  row(vp_lon, lons).c_str());
    }
  }
  std::printf("\npaper shapes: Level3 links cluster near each VP; Google "
              "links sit on the coasts;\nAkamai rows are identical (every "
              "VP sees every link).\n");
  return 0;
}
