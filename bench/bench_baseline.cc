// Baseline comparison: bdrmap vs naive longest-prefix IP-AS mapping.
//
// §3 cites Huffaker et al.'s best router-ownership heuristic at 71%
// correct; §4 explains why plain IP-AS fails (provider-assigned link
// addressing, third-party addresses, unrouted space...). This bench scores
// both methods on identical traces against ground truth.
#include <cstdio>

#include "core/baseline.h"
#include "core/mapit.h"
#include "eval/ground_truth.h"
#include "eval/report.h"
#include "eval/scenario.h"

using namespace bdrmap;

namespace {

struct Row {
  std::string name;
  double bdrmap_acc = 0.0;
  double baseline_acc = 0.0;
  double mapit_acc = 0.0;
  double mapit_terminal_share = 0.0;  // the §3 critique, quantified
  std::size_t routers = 0;
  std::size_t baseline_false_links = 0;
};

Row compare(const char* name, const topo::GeneratorConfig& config,
            topo::AsKind vp_kind) {
  eval::Scenario scenario(config);
  net::AsId vp_as = scenario.first_of(vp_kind);
  auto vp = scenario.vps_in(vp_as).front();
  auto inputs = scenario.inputs_for(vp_as);
  auto result = scenario.run_bdrmap(vp);
  eval::GroundTruth truth(scenario.net(), vp_as);
  auto summary = truth.validate(result);

  Row row;
  row.name = name;
  row.routers = summary.routers_total;
  row.bdrmap_acc = 100.0 * summary.router_accuracy();

  auto baseline = core::naive_ip_as(result.graph.traces(), *inputs.origins,
                                    inputs.vp_ases);
  std::size_t total = 0, correct = 0;
  for (const auto& [addr, as] : baseline.owners) {
    auto r = scenario.net().router_at(addr);
    if (!r) continue;
    net::AsId owner = scenario.net().router(*r).owner;
    if (truth.same_org(owner, vp_as)) continue;  // score far side only
    ++total;
    correct += truth.same_org(as, owner);
  }
  row.baseline_acc = eval::pct(correct, total);

  // MAP-IT-style multipass interface relabeling on the same traces.
  auto mapit = core::run_mapit(result.graph.traces(), *inputs.origins,
                               inputs.vp_ases);
  std::size_t mtotal = 0, mcorrect = 0;
  for (const auto& [addr, as] : mapit.owners) {
    auto r = scenario.net().router_at(addr);
    if (!r) continue;
    net::AsId owner = scenario.net().router(*r).owner;
    if (truth.same_org(owner, vp_as)) continue;
    ++mtotal;
    mcorrect += as.valid() && truth.same_org(as, owner);
  }
  row.mapit_acc = eval::pct(mcorrect, mtotal);
  row.mapit_terminal_share =
      eval::pct(mapit.terminal_interfaces, mapit.owners.size());

  // Baseline "interdomain links" naming an AS that is not actually the
  // operator on the far side (third-party / provider-addressing errors).
  for (const auto& link : baseline.links) {
    auto far = scenario.net().router_at(link.far_addr);
    if (!far) continue;
    if (!truth.same_org(scenario.net().router(*far).owner, link.far_as)) {
      ++row.baseline_false_links;
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf("bdrmap vs naive longest-prefix IP-AS ownership\n");
  std::printf("paper context: best prior router-ownership heuristic "
              "validated at 71%% [17]\n\n");
  std::vector<Row> rows = {
      compare("R&E network", eval::research_education_config(42),
              topo::AsKind::kResearchEdu),
      compare("Large access network", eval::large_access_config(42),
              topo::AsKind::kAccess),
      compare("Tier-1 network", eval::tier1_config(42), topo::AsKind::kTier1),
  };
  std::vector<std::vector<std::string>> cells;
  for (const auto& r : rows) {
    cells.push_back({r.name, std::to_string(r.routers),
                     eval::format_double(r.bdrmap_acc) + "%",
                     eval::format_double(r.baseline_acc) + "%",
                     eval::format_double(r.mapit_acc) + "%",
                     eval::format_double(r.mapit_terminal_share) + "%",
                     std::to_string(r.baseline_false_links)});
  }
  std::fputs(eval::render_table({"network", "routers scored", "bdrmap",
                                 "naive IP-AS", "MAP-IT-style",
                                 "terminal ifaces", "false links (naive)"},
                                cells)
                 .c_str(),
             stdout);
  std::printf("\nMAP-IT's constraint gap (§3): interfaces terminal in every "
              "trace have no\nsubsequent addresses to reason from — the "
              "paper notes half its interdomain\nlinks sit at path ends, "
              "where bdrmap's destination-based heuristics still "
              "apply.\n");
  return 0;
}
