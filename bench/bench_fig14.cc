// Reproduces Figure 14 (§6): distribution of the number of distinct border
// routers and next-hop ASes observed on paths to all routed prefixes from
// 19 VPs in a large access network.
//
// Paper shapes: <2% of prefixes leave via the same border router from every
// VP; 73% of prefixes see 5-15 distinct border routers; 13% more than 15;
// most (67%) prefixes use the same next-hop AS regardless of VP.
#include <cstdio>
#include <map>
#include <set>

#include "eval/analysis.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "runtime/flags.h"

using namespace bdrmap;

int main(int argc, char** argv) {
  const unsigned threads = runtime::threads_flag(argc, argv);
  auto pool = runtime::make_pool(threads);
  eval::Scenario scenario(eval::large_access_config(42));
  net::AsId vp_as = scenario.featured_access();
  auto vps = scenario.vps_in(vp_as);
  eval::GroundTruth truth(scenario.net(), vp_as);
  std::printf("Figure 14: border-router / next-hop-AS diversity from %zu "
              "VPs in the large access network (%u threads)\n\n",
              vps.size(), threads);

  // All VP pipelines in parallel (seeded 0x1000 + i, as the sequential
  // loop always was); the per-prefix reduction below walks VP order.
  runtime::MultiVpResult runs =
      scenario.run_bdrmap_parallel(vps, {}, 0x1000, pool.get());

  std::map<net::Prefix, std::set<std::uint32_t>> routers_per_prefix;
  std::map<net::Prefix, std::set<std::uint32_t>> nextas_per_prefix;
  const auto& origins = scenario.collectors().public_origins();
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const auto& result = runs.per_vp[i];
    // One answer per (VP, prefix): the VP's dominant egress and next-hop
    // AS across its traces into the prefix (single stray replies from
    // rate-limited borders would otherwise masquerade as path diversity).
    std::map<net::Prefix, std::map<std::uint32_t, int>> vp_routers;
    std::map<net::Prefix, std::map<std::uint32_t, int>> vp_nextas;
    for (const auto& exit : eval::trace_exits(result, truth, origins)) {
      ++vp_routers[exit.prefix][exit.egress_truth.value];
      ++vp_nextas[exit.prefix][exit.next_as.value];
    }
    auto majority = [](const std::map<std::uint32_t, int>& votes) {
      std::uint32_t best = 0;
      int best_count = 0;
      for (const auto& [value, count] : votes) {
        if (count > best_count) {
          best = value;
          best_count = count;
        }
      }
      return best;
    };
    for (const auto& [prefix, votes] : vp_routers) {
      routers_per_prefix[prefix].insert(majority(votes));
    }
    for (const auto& [prefix, votes] : vp_nextas) {
      nextas_per_prefix[prefix].insert(majority(votes));
    }
    std::printf("  VP %2zu/%zu reduced (%s)\r", i + 1, vps.size(),
                scenario.net().pops()[vps[i].pop].city.c_str());
    std::fflush(stdout);
  }
  std::printf("\n\nmulti-VP stage: %.2fs run + %.3fs reduce\n\n",
              runs.times.run_seconds, runs.times.reduce_seconds);

  // A directly-attached customer's prefixes always leave via its own
  // access link — in the real table those are <2% of 500k+ prefixes, but
  // our synthetic Internet is ~300 ASes, so report both populations.
  auto is_direct = [&](const net::Prefix& p) {
    const auto* set = origins.origins(p.first());
    if (!set) return false;
    for (net::AsId o : *set) {
      if (scenario.net().truth_relationships().are_neighbors(vp_as, o)) {
        return true;
      }
    }
    return false;
  };

  std::vector<int> router_counts, nextas_counts;
  std::size_t single_router = 0, mid_range = 0, high_range = 0;
  std::size_t same_nextas = 0;
  std::size_t distant_total = 0, distant_single = 0, distant_mid = 0,
              distant_high = 0;
  for (const auto& [prefix, routers] : routers_per_prefix) {
    int n = static_cast<int>(routers.size());
    router_counts.push_back(n);
    single_router += n == 1;
    mid_range += n >= 5 && n <= 15;
    high_range += n > 15;
    if (!is_direct(prefix)) {
      ++distant_total;
      distant_single += n == 1;
      distant_mid += n >= 5 && n <= 15;
      distant_high += n > 15;
    }
  }
  for (const auto& [prefix, ases] : nextas_per_prefix) {
    nextas_counts.push_back(static_cast<int>(ases.size()));
    same_nextas += ases.size() == 1;
  }
  const double total = static_cast<double>(router_counts.size());
  const double distant = static_cast<double>(std::max<std::size_t>(
      distant_total, 1));

  std::printf("prefixes measured: %zu (%zu behind non-neighbor origins)\n",
              router_counts.size(), distant_total);
  std::printf("same border router from every VP: %5.1f%% all, %5.1f%% "
              "distant   (paper: <2%%)\n",
              100.0 * static_cast<double>(single_router) / total,
              100.0 * static_cast<double>(distant_single) / distant);
  std::printf("5-15 distinct border routers:     %5.1f%% all, %5.1f%% "
              "distant   (paper: 73%%)\n",
              100.0 * static_cast<double>(mid_range) / total,
              100.0 * static_cast<double>(distant_mid) / distant);
  std::printf(">15 distinct border routers:      %5.1f%% all, %5.1f%% "
              "distant   (paper: 13%%)\n",
              100.0 * static_cast<double>(high_range) / total,
              100.0 * static_cast<double>(distant_high) / distant);
  std::printf("same next-hop AS from every VP:   %5.1f%%   (paper: 67%%)\n\n",
              100.0 * static_cast<double>(same_nextas) / total);

  std::printf("CDF: number of distinct border routers per prefix\n");
  for (const auto& [value, fraction] : eval::cdf(router_counts)) {
    std::printf("  <=%2d routers: %5.1f%%\n", value, 100.0 * fraction);
  }
  std::printf("\nCDF: number of distinct next-hop ASes per prefix\n");
  for (const auto& [value, fraction] : eval::cdf(nextas_counts)) {
    std::printf("  <=%2d ASes: %5.1f%%\n", value, 100.0 * fraction);
  }
  return 0;
}
