// Reproduces the §5.6 ground-truth validation: the paper validated 3,277
// links across four networks at 96.3% - 98.9% correct. We play the role of
// the four operators using the generator's truth tables. Beyond the four
// clean networks, every adversarial family in the scenario registry runs at
// the same canonical seed and is gated against its link-accuracy floor —
// the bench exits nonzero if any family regresses below its floor.
#include <algorithm>
#include <cstdio>

#include "eval/ground_truth.h"
#include "eval/report.h"
#include "eval/scenario_registry.h"
#include "runtime/flags.h"
#include "runtime/parallel_for.h"

using namespace bdrmap;

namespace {

constexpr std::uint64_t kBenchSeed = 42;

struct Row {
  std::string network;
  bool adversarial = false;
  double floor = 0.0;
  std::size_t links = 0;
  std::size_t links_correct = 0;
  std::size_t routers = 0;
  std::size_t routers_correct = 0;

  double link_accuracy() const {
    return static_cast<double>(links_correct) /
           static_cast<double>(std::max<std::size_t>(links, 1));
  }
  bool passed() const { return links > 0 && link_accuracy() >= floor; }
};

Row validate(const eval::ScenarioSpec& spec, bool adversarial,
             runtime::ThreadPool* pool) {
  eval::Scenario scenario(spec);
  net::AsId vp_as = scenario.first_of(spec.vp_kind);
  eval::GroundTruth truth(scenario.net(), vp_as);
  Row row;
  row.network = spec.name;
  row.adversarial = adversarial;
  row.floor = spec.link_accuracy_floor;
  auto vps = scenario.vps_in(vp_as);
  if (vps.size() > spec.bench_vp_count) vps.resize(spec.bench_vp_count);
  // Every VP of this network in parallel (nested under the per-network
  // fan-out: TaskGroup helping keeps the workers busy, not deadlocked).
  // VP i probes with seed 0x515 + i: distinct per VP, as distinct
  // measurement processes should be (the old loop reused 0x515 for all).
  runtime::MultiVpResult runs =
      scenario.run_bdrmap_parallel(vps, {}, 0x515, pool);
  for (const auto& result : runs.per_vp) {
    auto summary = truth.validate(result);
    row.links += summary.links_total;
    row.links_correct += summary.links_correct;
    row.routers += summary.routers_total;
    row.routers_correct += summary.routers_correct;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = runtime::threads_flag(argc, argv);
  auto pool = runtime::make_pool(threads);
  std::printf("Validation against ground truth (§5.6, %u threads)\n",
              threads);
  std::printf("paper: R&E 96.3%%, large access 97.0-98.9%% (3 VPs), "
              "Tier-1 97.5%%, small access 96.6%%\n\n");

  // Registry order: the four §5.6-style clean networks first, then every
  // adversarial family at the same canonical seed.
  struct Job {
    eval::ScenarioSpec spec;
    bool adversarial;
  };
  std::vector<Job> jobs;
  const auto adversarial = eval::adversarial_scenario_names();
  for (const std::string& name : eval::scenario_names()) {
    auto spec = eval::scenario_spec(name, kBenchSeed);
    bool adv = std::find(adversarial.begin(), adversarial.end(), name) !=
               adversarial.end();
    jobs.push_back({*spec, adv});
  }
  runtime::ThreadPool* p = pool.get();
  std::vector<Row> rows = runtime::parallel_map<Row>(
      p, jobs.size(), [&jobs, p](std::size_t i) {
        return validate(jobs[i].spec, jobs[i].adversarial, p);
      });

  std::vector<std::vector<std::string>> cells;
  std::size_t total_links = 0, total_correct = 0;
  bool all_passed = true;
  for (const auto& r : rows) {
    if (!r.adversarial) {
      total_links += r.links;
      total_correct += r.links_correct;
    }
    all_passed = all_passed && r.passed();
    cells.push_back(
        {r.network, r.adversarial ? "adversarial" : "clean",
         std::to_string(r.links),
         eval::format_double(eval::pct(r.links_correct,
                                       std::max<std::size_t>(r.links, 1))) +
             "%",
         eval::format_double(r.floor * 100.0) + "%",
         r.passed() ? "ok" : "FAIL",
         std::to_string(r.routers),
         eval::format_double(eval::pct(
             r.routers_correct, std::max<std::size_t>(r.routers, 1))) + "%"});
  }
  cells.push_back(
      {"TOTAL (clean)", "", std::to_string(total_links),
       eval::format_double(eval::pct(
           total_correct, std::max<std::size_t>(total_links, 1))) + "%",
       "", "", "", ""});
  std::fputs(eval::render_table({"network", "kind", "links", "link acc",
                                 "floor", "gate", "neighbor routers",
                                 "router acc"},
                                cells)
                 .c_str(),
             stdout);
  if (!all_passed) {
    std::fprintf(stderr,
                 "\nFAIL: at least one family fell below its accuracy "
                 "floor\n");
    return 1;
  }
  return 0;
}
