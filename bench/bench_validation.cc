// Reproduces the §5.6 ground-truth validation: the paper validated 3,277
// links across four networks at 96.3% - 98.9% correct. We play the role of
// the four operators using the generator's truth tables.
#include <cstdio>

#include "eval/ground_truth.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "runtime/flags.h"
#include "runtime/parallel_for.h"

using namespace bdrmap;

namespace {

struct Row {
  std::string network;
  std::size_t links = 0;
  std::size_t links_correct = 0;
  std::size_t routers = 0;
  std::size_t routers_correct = 0;
};

Row validate(const char* name, const topo::GeneratorConfig& config,
             topo::AsKind vp_kind, std::size_t vp_count,
             runtime::ThreadPool* pool) {
  eval::Scenario scenario(config);
  net::AsId vp_as = scenario.first_of(vp_kind);
  eval::GroundTruth truth(scenario.net(), vp_as);
  Row row;
  row.network = name;
  auto vps = scenario.vps_in(vp_as);
  if (vps.size() > vp_count) vps.resize(vp_count);
  // Every VP of this network in parallel (nested under the per-network
  // fan-out: TaskGroup helping keeps the workers busy, not deadlocked).
  // VP i probes with seed 0x515 + i: distinct per VP, as distinct
  // measurement processes should be (the old loop reused 0x515 for all).
  runtime::MultiVpResult runs =
      scenario.run_bdrmap_parallel(vps, {}, 0x515, pool);
  for (const auto& result : runs.per_vp) {
    auto summary = truth.validate(result);
    row.links += summary.links_total;
    row.links_correct += summary.links_correct;
    row.routers += summary.routers_total;
    row.routers_correct += summary.routers_correct;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = runtime::threads_flag(argc, argv);
  auto pool = runtime::make_pool(threads);
  std::printf("Validation against ground truth (§5.6, %u threads)\n",
              threads);
  std::printf("paper: R&E 96.3%%, large access 97.0-98.9%% (3 VPs), "
              "Tier-1 97.5%%, small access 96.6%%\n\n");

  struct Network {
    const char* name;
    topo::GeneratorConfig config;
    topo::AsKind vp_kind;
    std::size_t vp_count;
  };
  const std::vector<Network> networks = {
      {"R&E network", eval::research_education_config(42),
       topo::AsKind::kResearchEdu, 1},
      // The paper evaluated three VPs inside the large access network.
      {"Large access network (3 VPs)", eval::large_access_config(42),
       topo::AsKind::kAccess, 3},
      {"Tier-1 network", eval::tier1_config(42), topo::AsKind::kTier1, 1},
      {"Small access network", eval::small_access_config(42),
       topo::AsKind::kAccess, 1},
  };
  runtime::ThreadPool* p = pool.get();
  std::vector<Row> rows = runtime::parallel_map<Row>(
      p, networks.size(), [&networks, p](std::size_t i) {
        const Network& n = networks[i];
        return validate(n.name, n.config, n.vp_kind, n.vp_count, p);
      });

  std::vector<std::vector<std::string>> cells;
  std::size_t total_links = 0, total_correct = 0;
  for (const auto& r : rows) {
    total_links += r.links;
    total_correct += r.links_correct;
    cells.push_back(
        {r.network, std::to_string(r.links),
         eval::format_double(eval::pct(r.links_correct,
                                       std::max<std::size_t>(r.links, 1))) +
             "%",
         std::to_string(r.routers),
         eval::format_double(eval::pct(
             r.routers_correct, std::max<std::size_t>(r.routers, 1))) + "%"});
  }
  cells.push_back(
      {"TOTAL", std::to_string(total_links),
       eval::format_double(eval::pct(
           total_correct, std::max<std::size_t>(total_links, 1))) + "%",
       "", ""});
  std::fputs(eval::render_table({"network", "links", "link acc",
                                 "neighbor routers", "router acc"},
                                cells)
                 .c_str(),
             stdout);
  return 0;
}
