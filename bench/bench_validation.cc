// Reproduces the §5.6 ground-truth validation: the paper validated 3,277
// links across four networks at 96.3% - 98.9% correct. We play the role of
// the four operators using the generator's truth tables.
#include <cstdio>

#include "eval/ground_truth.h"
#include "eval/report.h"
#include "eval/scenario.h"

using namespace bdrmap;

namespace {

struct Row {
  std::string network;
  std::size_t links = 0;
  std::size_t links_correct = 0;
  std::size_t routers = 0;
  std::size_t routers_correct = 0;
};

Row validate(const char* name, const topo::GeneratorConfig& config,
             topo::AsKind vp_kind, std::size_t vp_count) {
  eval::Scenario scenario(config);
  net::AsId vp_as = scenario.first_of(vp_kind);
  eval::GroundTruth truth(scenario.net(), vp_as);
  Row row;
  row.network = name;
  auto vps = scenario.vps_in(vp_as);
  for (std::size_t i = 0; i < vps.size() && i < vp_count; ++i) {
    auto result = scenario.run_bdrmap(vps[i]);
    auto summary = truth.validate(result);
    row.links += summary.links_total;
    row.links_correct += summary.links_correct;
    row.routers += summary.routers_total;
    row.routers_correct += summary.routers_correct;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Validation against ground truth (§5.6)\n");
  std::printf("paper: R&E 96.3%%, large access 97.0-98.9%% (3 VPs), "
              "Tier-1 97.5%%, small access 96.6%%\n\n");

  std::vector<Row> rows;
  rows.push_back(validate("R&E network", eval::research_education_config(42),
                          topo::AsKind::kResearchEdu, 1));
  // The paper evaluated three VPs inside the large access network.
  rows.push_back(validate("Large access network (3 VPs)",
                          eval::large_access_config(42),
                          topo::AsKind::kAccess, 3));
  rows.push_back(validate("Tier-1 network", eval::tier1_config(42),
                          topo::AsKind::kTier1, 1));
  rows.push_back(validate("Small access network",
                          eval::small_access_config(42),
                          topo::AsKind::kAccess, 1));

  std::vector<std::vector<std::string>> cells;
  std::size_t total_links = 0, total_correct = 0;
  for (const auto& r : rows) {
    total_links += r.links;
    total_correct += r.links_correct;
    cells.push_back(
        {r.network, std::to_string(r.links),
         eval::format_double(eval::pct(r.links_correct,
                                       std::max<std::size_t>(r.links, 1))) +
             "%",
         std::to_string(r.routers),
         eval::format_double(eval::pct(
             r.routers_correct, std::max<std::size_t>(r.routers, 1))) + "%"});
  }
  cells.push_back(
      {"TOTAL", std::to_string(total_links),
       eval::format_double(eval::pct(
           total_correct, std::max<std::size_t>(total_links, 1))) + "%",
       "", ""});
  std::fputs(eval::render_table({"network", "links", "link acc",
                                 "neighbor routers", "router acc"},
                                cells)
                 .c_str(),
             stdout);
  return 0;
}
