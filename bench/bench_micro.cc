// Microbenchmarks (google-benchmark): the hot paths of the pipeline —
// longest-prefix matching, forwarding steps, trace generation, alias
// closure, and the full per-VP inference.
#include <benchmark/benchmark.h>

#include "core/alias_resolution.h"
#include "core/bdrmap.h"
#include "eval/scenario.h"
#include "netbase/radix_trie.h"
#include "netbase/rng.h"

using namespace bdrmap;

namespace {

const eval::Scenario& shared_scenario() {
  static eval::Scenario scenario(eval::small_access_config(42));
  return scenario;
}

void BM_TrieLongestPrefixMatch(benchmark::State& state) {
  net::RadixTrie<int> trie;
  net::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    trie.insert(net::Prefix(net::Ipv4Addr(rng.uniform(0, 0xffffffffu)),
                            static_cast<std::uint8_t>(rng.uniform(8, 24))),
                i);
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    probe = probe * 2654435761u + 12345u;
    benchmark::DoNotOptimize(trie.match(net::Ipv4Addr(probe)));
  }
}
BENCHMARK(BM_TrieLongestPrefixMatch);

void BM_FibNextHop(benchmark::State& state) {
  const auto& s = shared_scenario();
  auto vp = s.vps_in(s.first_of(topo::AsKind::kAccess)).front();
  const auto& announced = s.net().announced();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ap = announced[i++ % announced.size()];
    benchmark::DoNotOptimize(
        s.fib().next_hop(vp.attach_router,
                         net::Ipv4Addr(ap.prefix.first().value() + 1)));
  }
}
BENCHMARK(BM_FibNextHop);

void BM_Traceroute(benchmark::State& state) {
  const auto& s = shared_scenario();
  auto vp = s.vps_in(s.first_of(topo::AsKind::kAccess)).front();
  probe::TracerouteEngine engine(s.net(), s.fib(), vp, 7);
  const auto& announced = s.net().announced();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& ap = announced[i++ % announced.size()];
    benchmark::DoNotOptimize(
        engine.trace(net::Ipv4Addr(ap.prefix.first().value() + 1)));
  }
}
BENCHMARK(BM_Traceroute);

void BM_AliasClosure(benchmark::State& state) {
  const auto& s = shared_scenario();
  auto vp = s.vps_in(s.first_of(topo::AsKind::kAccess)).front();
  auto services = s.services_for(vp);
  core::AliasResolver resolver(*services);
  // Synthesize a few hundred verdicts over a dense address set.
  std::vector<net::Ipv4Addr> addrs;
  net::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    addrs.push_back(net::Ipv4Addr(0x0a000000u + static_cast<uint32_t>(i)));
  }
  for (int i = 0; i < 300; ++i) {
    auto a = rng.pick(addrs);
    auto b = rng.pick(addrs);
    if (a == b) continue;
    resolver.declare(a, b,
                     rng.chance(0.8) ? core::AliasVerdict::kAlias
                                     : core::AliasVerdict::kNotAlias);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.groups(addrs));
  }
}
BENCHMARK(BM_AliasClosure);

void BM_FullBdrmapRun(benchmark::State& state) {
  const auto& s = shared_scenario();
  auto vp = s.vps_in(s.first_of(topo::AsKind::kAccess)).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.run_bdrmap(vp));
  }
}
BENCHMARK(BM_FullBdrmapRun)->Unit(benchmark::kMillisecond);

void BM_GenerateInternet(benchmark::State& state) {
  for (auto _ : state) {
    auto config = eval::small_access_config(42);
    benchmark::DoNotOptimize(topo::generate(config));
  }
}
BENCHMARK(BM_GenerateInternet)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
