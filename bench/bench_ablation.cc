// Ablation bench for the §5.4 heuristic registry (DESIGN.md §15).
//
// For every registered scenario family this measures, against the
// generator's ground truth (§5.6):
//
//  1. full-registry accuracy and wall clock — link/router accuracy of the
//     default engine, median of --repeat runs after one warmup;
//  2. a hard identity gate — the legacy hard-coded ladder must produce the
//     same border map as the registry (eval::same_border_map); any
//     divergence exits 1, no warn-only mode;
//  3. a confidence-threshold sweep — per threshold t, the accuracy and
//     coverage of only the links whose emitted confidence is >= t. Higher
//     thresholds should trade coverage for precision; the committed JSON
//     is the regression reference for that trade-off;
//  4. leave-one-out rule subsets — each of the eight registry rules
//     disabled in turn via HeuristicsConfig::rule_overrides, re-scored.
//     The accuracy drop attributes ground-truth damage to individual
//     §5.4 steps (the per-rule floors live in EXPERIMENTS.md and gate
//     warn-only in CI through tools/check_ablation.py).
//
// Honesty rules match bench_scale: timings are medians of --repeat runs
// after one warmup, and the JSON records repeat, warmup and the host's
// hardware concurrency next to every number.
//
// Usage: bench_ablation [--out FILE] [--repeat N] [--smoke]
//
// --smoke keeps only the "small" family with one repeat: same code paths
// and the same identity gate, CI-friendly wall clock.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/heuristic_engine.h"
#include "eval/degradation.h"
#include "eval/ground_truth.h"
#include "eval/report.h"
#include "eval/scenario.h"
#include "eval/scenario_registry.h"

using namespace bdrmap;

namespace {

constexpr double kThresholds[] = {0.0, 0.25, 0.5, 0.75, 0.9};
constexpr std::uint64_t kScenarioSeed = 42;
constexpr std::uint64_t kRunSeed = 0x515;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double median_of(int repeat, Fn&& fn) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    double t0 = now_seconds();
    fn();
    times.push_back(now_seconds() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

struct ThresholdRow {
  double threshold = 0.0;
  std::size_t retained = 0;   // links with confidence >= threshold
  std::size_t correct = 0;    // retained links scored correct
  double accuracy = 0.0;      // correct / retained (0 when none retained)
  double coverage = 0.0;      // retained / links_total
};

struct SubsetRow {
  std::string rule;           // disabled rule's slug ("" == full registry)
  std::size_t links = 0;
  double link_accuracy = 0.0;
  double router_accuracy = 0.0;
};

struct FamilyReport {
  std::string family;
  std::size_t links = 0;
  double link_accuracy = 0.0;
  double router_accuracy = 0.0;
  double registry_seconds = 0.0;
  bool legacy_identical = false;
  std::vector<ThresholdRow> thresholds;
  std::vector<SubsetRow> leave_one_out;
};

SubsetRow score(const eval::GroundTruth& truth,
                const core::BdrmapResult& result, std::string rule) {
  eval::ValidationSummary summary = truth.validate(result);
  SubsetRow row;
  row.rule = std::move(rule);
  row.links = summary.links_total;
  row.link_accuracy = summary.link_accuracy();
  row.router_accuracy = summary.router_accuracy();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_ablation.json";
  int repeat = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--repeat N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) repeat = 1;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::string> families =
      smoke ? std::vector<std::string>{"small"} : eval::scenario_names();

  std::printf("bench_ablation: %zu families, median of %d (1 warmup), "
              "hardware_concurrency=%u\n\n",
              families.size(), repeat, hw);

  std::vector<FamilyReport> reports;
  bool all_identical = true;
  for (const std::string& family : families) {
    auto scenario = eval::make_scenario(family, kScenarioSeed);
    if (!scenario) {
      std::fprintf(stderr, "unknown scenario family %s\n", family.c_str());
      return 1;
    }
    net::AsId vp_as = scenario->first_of(scenario->spec().vp_kind);
    auto vps = scenario->vps_in(vp_as);
    if (vps.empty()) {
      std::fprintf(stderr, "family %s has no VPs\n", family.c_str());
      return 1;
    }
    const topo::Vp vp = vps.front();
    eval::GroundTruth truth(scenario->net(), vp_as);

    auto run_with = [&](core::BdrmapConfig config) {
      return scenario->run_bdrmap(vp, config, kRunSeed);
    };

    FamilyReport report;
    report.family = family;

    // 1. Full registry: score once, then the honest median wall clock.
    core::BdrmapResult full = run_with({});
    eval::ValidationSummary summary = truth.validate(full);
    report.links = summary.links_total;
    report.link_accuracy = summary.link_accuracy();
    report.router_accuracy = summary.router_accuracy();
    report.registry_seconds =
        median_of(repeat, [&] { auto r = run_with({}); (void)r; });

    // 2. Hard identity gate against the legacy ladder.
    core::BdrmapConfig legacy_config;
    legacy_config.heuristics.engine = core::HeuristicEngineKind::kLegacy;
    core::BdrmapResult legacy = run_with(legacy_config);
    report.legacy_identical = eval::same_border_map(full, legacy);
    all_identical &= report.legacy_identical;

    // 3. Confidence-threshold sweep over the scored links. LinkTruth rows
    // index into BdrmapResult::links, where the §15 confidence lives.
    for (double threshold : kThresholds) {
      ThresholdRow row;
      row.threshold = threshold;
      for (const eval::LinkTruth& link : summary.links) {
        if (full.links[link.link_index].confidence < threshold) continue;
        ++row.retained;
        row.correct += link.correct;
      }
      row.accuracy = row.retained == 0
                         ? 0.0
                         : static_cast<double>(row.correct) /
                               static_cast<double>(row.retained);
      row.coverage = summary.links_total == 0
                         ? 0.0
                         : static_cast<double>(row.retained) /
                               static_cast<double>(summary.links_total);
      report.thresholds.push_back(row);
    }

    // 4. Leave-one-out rule subsets.
    for (const core::HeuristicRule& rule :
         core::HeuristicEngine::registry()) {
      core::BdrmapConfig config;
      config.heuristics.rule_overrides[rule.slug()].enabled = false;
      report.leave_one_out.push_back(
          score(truth, run_with(config), rule.slug()));
    }

    std::printf("%-28s links %4zu  link acc %5.1f%%  router acc %5.1f%%  "
                "%.3fs  legacy identical: %s\n",
                family.c_str(), report.links, 100.0 * report.link_accuracy,
                100.0 * report.router_accuracy, report.registry_seconds,
                report.legacy_identical ? "yes" : "NO");
    reports.push_back(std::move(report));
  }

  // Per-rule damage table (accuracy delta vs the full registry).
  std::printf("\nleave-one-out link-accuracy deltas (percentage points):\n");
  std::vector<std::vector<std::string>> cells;
  for (const auto& report : reports) {
    std::vector<std::string> row{report.family};
    for (const SubsetRow& subset : report.leave_one_out) {
      double delta = 100.0 * (subset.link_accuracy - report.link_accuracy);
      row.push_back(eval::format_double(delta));
    }
    cells.push_back(std::move(row));
  }
  std::vector<std::string> header{"family"};
  for (const core::HeuristicRule& rule : core::HeuristicEngine::registry()) {
    header.push_back(std::string("-") + rule.slug());
  }
  std::fputs(eval::render_table(header, cells).c_str(), stdout);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"ablation\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"repeat\": " << repeat << ",\n";
  out << "  \"warmup\": true,\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"scenario_seed\": " << kScenarioSeed << ",\n";
  out << "  \"families\": [\n";
  for (std::size_t f = 0; f < reports.size(); ++f) {
    const FamilyReport& r = reports[f];
    out << "    {\n";
    out << "      \"family\": \"" << r.family << "\",\n";
    out << "      \"links\": " << r.links << ",\n";
    out << "      \"link_accuracy\": " << json_double(r.link_accuracy)
        << ",\n";
    out << "      \"router_accuracy\": " << json_double(r.router_accuracy)
        << ",\n";
    out << "      \"registry_seconds\": " << json_double(r.registry_seconds)
        << ",\n";
    out << "      \"legacy_identical\": "
        << (r.legacy_identical ? "true" : "false") << ",\n";
    out << "      \"thresholds\": [\n";
    for (std::size_t t = 0; t < r.thresholds.size(); ++t) {
      const ThresholdRow& row = r.thresholds[t];
      out << "        {\"threshold\": " << json_double(row.threshold)
          << ", \"links_retained\": " << row.retained
          << ", \"accuracy\": " << json_double(row.accuracy)
          << ", \"coverage\": " << json_double(row.coverage) << "}"
          << (t + 1 < r.thresholds.size() ? "," : "") << "\n";
    }
    out << "      ],\n";
    out << "      \"leave_one_out\": [\n";
    for (std::size_t s = 0; s < r.leave_one_out.size(); ++s) {
      const SubsetRow& row = r.leave_one_out[s];
      out << "        {\"rule\": \"" << row.rule
          << "\", \"links\": " << row.links
          << ", \"link_accuracy\": " << json_double(row.link_accuracy)
          << ", \"router_accuracy\": " << json_double(row.router_accuracy)
          << "}" << (s + 1 < r.leave_one_out.size() ? "," : "") << "\n";
    }
    out << "      ]\n";
    out << "    }" << (f + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::printf("FAIL: registry engine diverged from the legacy ladder\n");
    return 1;
  }
  return 0;
}
