// Ablations over bdrmap's design choices (§5.3-§5.5).
//
// Each row disables one mechanism DESIGN.md calls out and measures the
// damage on link accuracy and probing cost for the same VP:
//   - alias resolution off  -> Figure 13's failure mode (split routers)
//   - stop set off          -> probing cost explodes (§5.3)
//   - third-party detection off -> §5.4.5 misattributions return
//   - relationship data off -> steps 5.3-5.5 unavailable
#include <cstdio>

#include "eval/ground_truth.h"
#include "eval/report.h"
#include "eval/scenario.h"

using namespace bdrmap;

namespace {

struct Row {
  std::string name;
  std::size_t links = 0;
  double link_acc = 0.0;
  double router_acc = 0.0;
  std::uint64_t probes = 0;
  std::size_t routers = 0;
};

Row run(const char* name, const eval::Scenario& scenario,
        const topo::Vp& vp, net::AsId vp_as, core::BdrmapConfig config,
        probe::TracerConfig tracer = {}) {
  auto result = scenario.run_bdrmap(vp, config, 0x515, tracer);
  eval::GroundTruth truth(scenario.net(), vp_as);
  auto summary = truth.validate(result);
  Row row;
  row.name = name;
  row.links = summary.links_total;
  row.link_acc = 100.0 * summary.link_accuracy();
  row.router_acc = 100.0 * summary.router_accuracy();
  row.probes = result.stats.probes_sent;
  row.routers = result.stats.routers;
  return row;
}

}  // namespace

int main() {
  eval::Scenario scenario(eval::large_access_config(42));
  net::AsId vp_as = scenario.featured_access();
  auto vp = scenario.vps_in(vp_as).front();

  std::printf("Ablation study (one VP in the large access network)\n\n");

  std::vector<Row> rows;
  rows.push_back(run("full bdrmap", scenario, vp, vp_as, {}));
  {
    core::BdrmapConfig c;
    c.enable_alias_resolution = false;
    rows.push_back(run("no alias resolution", scenario, vp, vp_as, c));
  }
  {
    core::BdrmapConfig c;
    c.enable_stop_set = false;
    rows.push_back(run("no stop set", scenario, vp, vp_as, c));
  }
  {
    core::BdrmapConfig c;
    c.heuristics.enable_third_party = false;
    rows.push_back(run("no third-party detection", scenario, vp, vp_as, c));
  }
  {
    core::BdrmapConfig c;
    c.heuristics.enable_relationships = false;
    rows.push_back(run("no relationship data", scenario, vp, vp_as, c));
  }
  {
    core::BdrmapConfig c;
    c.heuristics.enable_analytic_alias = false;
    rows.push_back(run("no analytic alias (7.1)", scenario, vp, vp_as, c));
  }
  {
    core::BdrmapConfig c;
    c.max_addrs_per_block = 1;
    rows.push_back(run("1 address per block", scenario, vp, vp_as, c));
  }
  {
    core::BdrmapConfig c;
    c.enable_timestamp_checks = true;  // the [26] extension, normally off
    rows.push_back(run("+ timestamp checks [26]", scenario, vp, vp_as, c));
  }
  {
    core::BdrmapConfig c;
    c.enable_midar_discovery = true;  // MIDAR-style discovery, normally off
    rows.push_back(run("+ MIDAR discovery [21]", scenario, vp, vp_as, c));
  }
  {
    probe::TracerConfig t;
    t.paris = false;  // classic traceroute splices ECMP paths [2]
    rows.push_back(run("classic traceroute (no Paris)", scenario, vp, vp_as,
                       {}, t));
  }

  std::vector<std::vector<std::string>> cells;
  for (const auto& r : rows) {
    cells.push_back({r.name, std::to_string(r.links),
                     eval::format_double(r.link_acc) + "%",
                     eval::format_double(r.router_acc) + "%",
                     std::to_string(r.routers), std::to_string(r.probes)});
  }
  std::fputs(eval::render_table({"configuration", "links", "link acc",
                                 "router acc", "routers", "probes"},
                                cells)
                 .c_str(),
             stdout);
  return 0;
}
